/**
 * @file
 * Bit-error-rate model tying link reliability to the received optical
 * power margin.
 *
 * The paper sizes every receiver budget against a 10^-15 BER floor at
 * the nominal operating point (Section 2.2, Eq. 6's sensitivity is the
 * power for 10^-12 at 10 Gb/s; the system design adds margin to reach
 * 10^-15). We reduce that to the standard Gaussian-noise Q-factor
 * model:
 *
 *     BER = 0.5 * erfc(Q / sqrt(2)),         Q ~ P_received / P_required
 *
 * calibrated so a margin of 1.0 (received power exactly covering the
 * requirement at the current bit rate) gives BER 1e-15. The received
 * power scales with the VOA optical level (modulator scheme) or the
 * drive voltage (VCSEL scheme); the required power scales linearly with
 * bit rate (shot-noise-limited receiver, same trend as
 * Photodetector::requiredOpticalPowerMw). Running a fast link on
 * reduced light therefore costs reliability — the power/reliability
 * tradeoff the fault injector turns into retransmissions.
 */

#ifndef OENET_PHY_BER_HH
#define OENET_PHY_BER_HH

namespace oenet {

/** Q at margin 1.0, solving 0.5*erfc(Q/sqrt 2) = 1e-15. */
inline constexpr double kQAtNominalMargin = 7.941345326170997;

/** BER the nominal operating point is designed for. */
inline constexpr double kNominalBer = 1e-15;

/**
 * BER at @p margin = received optical power / required optical power
 * (both relative to the nominal full-power operating point). Margin 1
 * gives 1e-15; margin 0.5 is already ~3.5e-5. Clamped to [0, 0.5]
 * (margin <= 0 means no light: coin-flip bits).
 */
double berFromMargin(double margin);

/**
 * Optical power margin of a link operating point.
 *
 * @param received_fraction  delivered optical power as a fraction of
 *                           full power (VOA scale, or vdd/vmax for a
 *                           directly modulated VCSEL)
 * @param br_gbps            current bit rate
 * @param br_max_gbps        full bit rate the receiver was sized for
 */
double opticalMargin(double received_fraction, double br_gbps,
                     double br_max_gbps);

/** Probability at least one of @p bits bits of a flit is in error. */
double flitErrorProb(double ber, int bits);

} // namespace oenet

#endif // OENET_PHY_BER_HH
