/**
 * @file
 * Whole-link power model used by the network simulator.
 *
 * The paper reduces the circuit detail of Section 2 to the per-component
 * budget and scaling trends of Table 2 before simulating:
 *
 *     component        mW @ (10 Gb/s, 1.8 V)     scaling trend
 *     VCSEL            30                        ~ Vdd
 *     VCSEL driver     10                        Vdd^2 * BR
 *     modulator driver 40                        BR        (fixed Vdd)
 *     TIA              100                       Vdd * BR
 *     CDR              150                       Vdd^2 * BR
 *     photodetector    ~1 (we use 1.25)          ~ received optical power
 *
 * This class implements exactly that interface: a link's power as a
 * function of (scheme, bit rate, supply voltage, optical scale). With
 * the defaults a VCSEL link burns 291.25 mW at the full operating point
 * and 61.25 mW at (5 Gb/s, 0.9 V) — the paper's quoted ~290 mW and
 * 61.25 mW.
 *
 * Each trend row summarizes one of the paper's component equations,
 * implemented in full elsewhere in src/phy/:
 *
 *     VCSEL            Eqs. 1-2  (vcsel.hh)
 *     VCSEL driver     Eq. 3     (vcsel.hh)
 *     MQW modulator    Eq. 4     (modulator.hh)
 *     modulator driver Eq. 5     (modulator.hh)
 *     photodetector    Eq. 6     (receiver.hh)
 *     TIA              Eqs. 7-8  (receiver.hh)
 *     CDR              Eq. 9     (receiver.hh)
 *
 * Consistency of the trends against those full component models is
 * asserted by tests/phy/link_power_test.cc and cross-checked by
 * bench_table2_link_power.
 */

#ifndef OENET_PHY_LINK_POWER_HH
#define OENET_PHY_LINK_POWER_HH

#include <string>

namespace oenet {

/** Which transmitter technology a link uses (Section 2.1). */
enum class LinkScheme
{
    kVcsel,     ///< directly modulated VCSEL
    kModulator, ///< external laser + MQW modulator
};

const char *linkSchemeName(LinkScheme scheme);

/** Calibration constants for the whole-link model. */
struct LinkPowerParams
{
    double vcselMw = 30.0;        ///< VCSEL at full drive
    double vcselDriverMw = 10.0;  ///< VCSEL driver at (vmax, brMax)
    double modDriverMw = 40.0;    ///< modulator driver at brMax
    double tiaMw = 100.0;         ///< TIA at (vmax, brMax)
    double cdrMw = 150.0;         ///< CDR at (vmax, brMax)
    double detectorMw = 1.25;     ///< photodetector + bias at full light
    double vmaxV = 1.8;           ///< full supply voltage
    double brMaxGbps = 10.0;      ///< full bit rate
};

class LinkPowerModel
{
  public:
    /** Per-component contributions at one operating point, in mW. */
    struct Breakdown
    {
        double txLaserMw;   ///< VCSEL (VCSEL scheme) or 0 (modulator)
        double txDriverMw;  ///< VCSEL driver or modulator driver
        double detectorMw;
        double tiaMw;
        double cdrMw;
        double totalMw;
    };

    LinkPowerModel(LinkScheme scheme, const LinkPowerParams &params = {});

    /**
     * Link power at an operating point.
     *
     * @param br_gbps        link bit rate
     * @param vdd            supply voltage of the scalable circuits
     * @param optical_scale  fraction of full optical power delivered
     *                       (modulator scheme: VOA level; VCSEL scheme:
     *                       implied by vdd and ignored)
     */
    double powerMw(double br_gbps, double vdd,
                   double optical_scale = 1.0) const;

    Breakdown breakdown(double br_gbps, double vdd,
                        double optical_scale = 1.0) const;

    /** Power at the full operating point (the non-power-aware cost). */
    double maxPowerMw() const;

    LinkScheme scheme() const { return scheme_; }
    const LinkPowerParams &params() const { return params_; }

  private:
    LinkScheme scheme_;
    LinkPowerParams params_;
};

} // namespace oenet

#endif // OENET_PHY_LINK_POWER_HH
