#include "phy/ber.hh"

#include <cmath>

namespace oenet {

double
berFromMargin(double margin)
{
    if (margin <= 0.0)
        return 0.5;
    double q = kQAtNominalMargin * margin;
    double ber = 0.5 * std::erfc(q / std::sqrt(2.0));
    return ber > 0.5 ? 0.5 : ber;
}

double
opticalMargin(double received_fraction, double br_gbps,
              double br_max_gbps)
{
    if (br_gbps <= 0.0 || br_max_gbps <= 0.0)
        return 0.0;
    // Required power scales linearly with bit rate, so the margin is
    // the delivered fraction over the bit-rate fraction.
    double required_fraction = br_gbps / br_max_gbps;
    return received_fraction / required_fraction;
}

double
flitErrorProb(double ber, int bits)
{
    if (ber <= 0.0)
        return 0.0;
    if (ber >= 0.5)
        return 1.0 - std::pow(0.5, bits);
    // 1 - (1-ber)^bits via expm1/log1p for tiny ber.
    return -std::expm1(static_cast<double>(bits) * std::log1p(-ber));
}

} // namespace oenet
