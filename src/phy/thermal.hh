/**
 * @file
 * Static (leakage) power and link thermal state.
 *
 * The Table 2 budget reproduced by LinkPowerModel is *dynamic* power
 * only. McPAT-style circuit models treat static leakage as first-class:
 * sub-threshold leakage grows roughly linearly with Vdd and
 * exponentially with junction temperature, while gate (oxide tunneling)
 * leakage scales with Vdd^2 and is nearly temperature-independent.
 * This header adds both, plus the feedback loop that makes them
 * interesting: dissipated power raises the link's temperature through a
 * lumped thermal resistance, and a hotter link leaks more, which the
 * DVS policy can observe as *effective* (dynamic + leakage) power.
 *
 * The thermal plant is a single-pole RC: the junction relaxes toward
 *
 *     T_ss = T_ambient + P_total[W] * R_th[°C/W]
 *
 * with time constant tau. Temperatures are stepped once per thermal
 * epoch using the exact exponential solution
 *
 *     T' = T + (T_ss - T) * (1 - exp(-dt/tau))
 *
 * which is monotone for any dt (0 < alpha <= 1), so a fixed load
 * converges to a stable temperature without oscillation — the property
 * tests/phy/thermal_test.cc pins.
 *
 * Everything here is disabled by default (ThermalParams::enabled =
 * false). With leakage off, no caller adds any term anywhere, keeping
 * every output byte-identical to the leakage-free era
 * (docs/DETERMINISM.md §6).
 */

#ifndef OENET_PHY_THERMAL_HH
#define OENET_PHY_THERMAL_HH

#include "common/types.hh"

namespace oenet {

/** Leakage + thermal-plant calibration for one link's circuits. */
struct ThermalParams
{
    /** Master switch. Off: no leakage terms, no thermal state, no new
     *  trace/CSV fields — outputs byte-identical to leakage-free. */
    bool enabled = false;

    // -- Leakage at the reference point (vmax, refTempC) --------------

    /** Sub-threshold leakage of the scalable circuits (driver, TIA,
     *  CDR) at full supply and reference temperature, mW. */
    double subLeakMw = 4.0;

    /** Gate (oxide tunneling) leakage at full supply, mW. */
    double gateLeakMw = 1.0;

    /** Junction temperature the leakage constants are quoted at, °C. */
    double refTempC = 45.0;

    /** Sub-threshold exponential temperature scale, °C: leakage grows
     *  by e per this many degrees above refTempC (~doubles per 21 °C
     *  with the default 30). */
    double subTempSlopeC = 30.0;

    /** Gate-leakage temperature scale, °C. Gate leakage is nearly
     *  temperature-independent, hence the long default slope. */
    double gateTempSlopeC = 300.0;

    // -- Thermal plant -------------------------------------------------

    double ambientC = 45.0;        ///< package/coolant temperature, °C
    double thermalResCPerW = 40.0; ///< junction-to-ambient R_th, °C/W
    Cycle tauCycles = 625000;      ///< RC time constant (~1 ms @625MHz)
    Cycle epochCycles = 1000;      ///< temperature update period

    /** DVS thermal throttle: at or above this junction temperature the
     *  controller forces down-transitions regardless of utilization
     *  (0 disables the throttle but keeps the model). */
    double throttleC = 85.0;

    /** Fatal() on nonsensical values; no-op when disabled. */
    void validate() const;
};

/**
 * Evaluates leakage power and steady-state temperature for one set of
 * ThermalParams. Stateless; per-link temperature lives in the
 * LinkPowerLedger's SoA columns.
 */
class LeakageModel
{
  public:
    LeakageModel() = default;
    LeakageModel(const ThermalParams &params, double vmax_v);

    /**
     * Static power at supply fraction @p vdd_frac (= vdd/vmax, 0 when
     * power-gated) and junction temperature @p temp_c, mW:
     *
     *   subLeak * f * exp((T-ref)/subSlope)
     *     + gateLeak * f^2 * exp((T-ref)/gateSlope)
     */
    double leakageMw(double vdd_frac, double temp_c) const;

    /** Equilibrium junction temperature under @p total_mw dissipated:
     *  ambient + P * R_th (mW -> W conversion inside), °C. */
    double steadyTempC(double total_mw) const;

    /** One RC step of length @p dt_cycles from @p temp_c toward the
     *  equilibrium for @p total_mw, using the exact exponential
     *  update (monotone, never overshoots). */
    double stepTempC(double temp_c, double total_mw,
                     Cycle dt_cycles) const;

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_{};
    double vmaxV_ = 1.8;
};

} // namespace oenet

#endif // OENET_PHY_THERMAL_HH
