#include "phy/laser_source.hh"

#include "common/log.hh"
#include "common/units.hh"

namespace oenet {

double
opticalLevelFraction(OpticalLevel level)
{
    switch (level) {
      case OpticalLevel::kLow:
        return 0.25;
      case OpticalLevel::kMid:
        return 0.5;
      case OpticalLevel::kHigh:
        return 1.0;
    }
    panic("opticalLevelFraction: bad level %d", static_cast<int>(level));
}

OpticalLevel
requiredOpticalLevel(double br_gbps)
{
    if (br_gbps < 4.0)
        return OpticalLevel::kLow;
    if (br_gbps <= 6.0)
        return OpticalLevel::kMid;
    return OpticalLevel::kHigh;
}

double
maxBitRateForLevel(OpticalLevel level)
{
    switch (level) {
      case OpticalLevel::kLow:
        return 4.0 - 1e-9;
      case OpticalLevel::kMid:
        return 6.0;
      case OpticalLevel::kHigh:
        return 10.0;
    }
    panic("maxBitRateForLevel: bad level %d", static_cast<int>(level));
}

LaserSource::LaserSource(const LaserSourceParams &params) : params_(params)
{
    if (params_.rackFanout < 1 || params_.fiberFanout < 1)
        fatal("LaserSource: fanouts must be >= 1");
    if (params_.outputPowerMw <= 0.0)
        fatal("LaserSource: output power must be positive");
}

double
LaserSource::perFiberPowerMw() const
{
    double p = params_.outputPowerMw;
    p /= params_.rackFanout;
    p = applyLossDb(p, params_.rackSplitLossDb);
    p /= params_.fiberFanout;
    p = applyLossDb(p, params_.fiberSplitLossDb);
    return p;
}

double
LaserSource::perFiberPowerMw(OpticalLevel level) const
{
    return perFiberPowerMw() * opticalLevelFraction(level);
}

Cycle
LaserSource::attenuatorResponseCycles() const
{
    return microsToCycles(params_.attenuatorResponseUs);
}

int
LaserSource::totalFibers() const
{
    return params_.rackFanout * params_.fiberFanout;
}

bool
LaserSource::supports(OpticalLevel level, double required_mw,
                      double path_loss_db) const
{
    return applyLossDb(perFiberPowerMw(level), path_loss_db) >=
           required_mw;
}

} // namespace oenet
