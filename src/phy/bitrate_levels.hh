/**
 * @file
 * Bit-rate / supply-voltage level tables (Section 3.2.1).
 *
 * A power-aware link runs at one of a small number of discrete bit-rate
 * levels; the required supply voltage scales linearly with bit rate
 * (1.8 V at 10 Gb/s down to 0.9 V at 5 Gb/s in the reference design).
 * The paper's two evaluated configurations are 6 levels over 5–10 Gb/s
 * and 6 levels over 3.3–10 Gb/s.
 */

#ifndef OENET_PHY_BITRATE_LEVELS_HH
#define OENET_PHY_BITRATE_LEVELS_HH

#include <vector>

namespace oenet {

/** One operating point of a power-aware link. */
struct BitrateLevel
{
    double brGbps;   ///< link bit rate, Gb/s
    double vddV;     ///< supply voltage for the scalable circuits, V
};

/**
 * Ordered table of operating points, index 0 = slowest. All levels in a
 * table share the same maximum bit rate / voltage (the last entry).
 */
class BitrateLevelTable
{
  public:
    /** Build @p count levels with bit rate linear in [min, max] and
     *  voltage linear with bit rate: V(br) = vmax * br / max. */
    static BitrateLevelTable linear(double min_gbps, double max_gbps,
                                    int count, double vmax = 1.8);

    /** Build from explicit levels; must be sorted ascending in brGbps. */
    explicit BitrateLevelTable(std::vector<BitrateLevel> levels);

    int numLevels() const { return static_cast<int>(levels_.size()); }
    const BitrateLevel &level(int i) const;
    int maxLevel() const { return numLevels() - 1; }
    double maxBitRateGbps() const { return levels_.back().brGbps; }
    double minBitRateGbps() const { return levels_.front().brGbps; }
    double maxVoltageV() const { return levels_.back().vddV; }

    /** Smallest level whose bit rate is >= @p br_gbps (clamped). */
    int levelAtLeast(double br_gbps) const;

    /** Fraction of full capacity at level @p i: br_i / br_max. */
    double capacityFraction(int i) const;

  private:
    std::vector<BitrateLevel> levels_;
};

} // namespace oenet

#endif // OENET_PHY_BITRATE_LEVELS_HH
