/**
 * @file
 * LinkPowerLedger — struct-of-arrays power accounting for every link
 * of one simulated system.
 *
 * Motivation (ROADMAP item 4): the per-epoch power snapshot and the
 * end-of-run energy aggregation used to walk every OpticalLink through
 * a pointer, run its lazy state-machine advance, and read a private
 * TimeWeighted — a cache-hostile loop executed at every metrics epoch
 * over ~1200 links. The ledger keeps the same piecewise-constant
 * integrals in flat parallel arrays: links *push* each power change
 * into their column (one store next to the TimeWeighted update they
 * already do), and aggregation becomes a sequential scan. The
 * committed microbench (BM_PowerAccountingDirect vs
 * BM_PowerAccountingLedger) gates the speedup in CI.
 *
 * It is also where the leakage + thermal model (phy/thermal.hh) lives:
 * per-link junction temperature, leakage power, and their integrals
 * are ledger columns updated in one batched pass per thermal epoch —
 * never per cycle — alongside per-VC flit counters used to attribute
 * link energy to virtual channels in snapshots and CSV reports.
 *
 * Determinism contract (docs/DETERMINISM.md §3, §5):
 *
 *  - updateDynamic / countFlit mirror, value for value in the same
 *    call order, the TimeWeighted updates of the owning OpticalLink.
 *    They are invoked only from code that already mutates that link —
 *    i.e. from the shard that owns the link's sender during a parallel
 *    phase, or from the driving thread between phases. No column is
 *    ever written concurrently (TSan-checked by the sharded CI
 *    smokes).
 *  - advanceThermal() and every total*() aggregate run on the driving
 *    thread between phases and fold in link-id order — the same order
 *    the direct per-link walk uses — so sums are bitwise identical to
 *    the direct path and shard-count invariant.
 *  - With thermal disabled every leakage column stays exactly 0.0 and
 *    no aggregate adds a term the direct path would not, keeping
 *    leakage-off outputs byte-identical to the pre-ledger era.
 *
 * Links with a FaultInjector attached bypass the ledger entirely
 *  (Network detaches it): scheduled faults must be processed at exact
 *  cycles during each link's lazy advance, which only the per-link
 *  walk does.
 */

#ifndef OENET_PHY_POWER_LEDGER_HH
#define OENET_PHY_POWER_LEDGER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "phy/thermal.hh"

namespace oenet {

class LinkPowerLedger
{
  public:
    /** Configure the thermal/leakage model and VC count before any
     *  addLink(). @p vmax_v is the full supply the vdd fractions are
     *  relative to. */
    void configure(int num_vcs, const ThermalParams &thermal,
                   double vmax_v);

    /** Register one link (id = registration order = the network's link
     *  index). @p kind_index is the LinkKind as an int. */
    int addLink(int kind_index, double baseline_mw, int level,
                double initial_mw, double initial_vdd_frac);

    int numLinks() const { return static_cast<int>(dynMw_.size()); }
    int numVcs() const { return numVcs_; }
    bool thermalEnabled() const { return thermal_.enabled; }
    const ThermalParams &thermal() const { return thermal_; }

    // ------------------------------------------------------------------
    // Producer side (the owning link; see determinism note above)
    // ------------------------------------------------------------------

    /** Dynamic power changed to @p mw at @p at. Exact mirror of
     *  TimeWeighted::update — same fold, same operand order. */
    void updateDynamic(int id, Cycle at, double mw, double vdd_frac)
    {
        auto i = static_cast<std::size_t>(id);
        dynMwCycles_[i] +=
            dynMw_[i] * static_cast<double>(at - dynLast_[i]);
        dynLast_[i] = at;
        dynMw_[i] = mw;
        vddFrac_[i] = vdd_frac;
    }

    /** Mirror of TimeWeighted::reset + the link's flit-counter reset:
     *  restarts the dynamic and leakage integrals and the per-VC/total
     *  flit attribution rows at @p at. */
    void resetDynamic(int id, Cycle at);

    /** The link's stable (or transition-target) level changed. */
    void setLevel(int id, int level)
    {
        brLevel_[static_cast<std::size_t>(id)] = level;
    }

    /** Track whether the link is mid-transition: an unstable link's
     *  power can change at a scheduled phase end without any call
     *  touching it, so snapshot readers must advance exactly the
     *  unstable links first (Network::advancePendingPower). A plain
     *  per-link flag column — not a shared dense set — so the write
     *  stays owned by the link's shard like every other column, and
     *  readers visit unstable links in id order (trace events emitted
     *  by those advances must flush in the same order as the direct
     *  walk's). */
    void setStable(int id, bool stable)
    {
        unstable_[static_cast<std::size_t>(id)] = stable ? 0 : 1;
    }

    /** One flit accepted on @p vc (per-VC energy attribution). */
    void countFlit(int id, int vc)
    {
        totalFlits_[static_cast<std::size_t>(id)]++;
        vcFlits_[static_cast<std::size_t>(id) *
                     static_cast<std::size_t>(numVcs_) +
                 static_cast<std::size_t>(vc)]++;
    }

    /** Is the link mid-transition (stable/off links excluded)? */
    bool isUnstable(int id) const
    {
        return unstable_[static_cast<std::size_t>(id)] != 0;
    }

    // ------------------------------------------------------------------
    // Thermal epoch (driving thread, between phases)
    // ------------------------------------------------------------------

    /**
     * Batched leakage/temperature step at @p now: per link, fold the
     * leakage integral, average the dynamic power over the elapsed
     * epoch, relax the junction temperature toward its equilibrium,
     * and recompute leakage at the new (T, vdd). Flat-array loop in
     * link-id order; no-op when thermal is disabled. Callers must
     * advance unstable links to @p now first.
     */
    void advanceThermal(Cycle now);

    // ------------------------------------------------------------------
    // Readers (driving thread, between phases)
    // ------------------------------------------------------------------

    double dynPowerMw(int id) const
    {
        return dynMw_[static_cast<std::size_t>(id)];
    }

    /** Integral of dynamic power, mW-cycles, since construction or the
     *  last resetDynamic — identical bits to the link's TimeWeighted. */
    double dynIntegralMwCycles(int id, Cycle now) const
    {
        auto i = static_cast<std::size_t>(id);
        return dynMwCycles_[i] +
               dynMw_[i] * static_cast<double>(now - dynLast_[i]);
    }

    double leakPowerMw(int id) const
    {
        return leakMw_[static_cast<std::size_t>(id)];
    }

    double leakIntegralMwCycles(int id, Cycle now) const
    {
        auto i = static_cast<std::size_t>(id);
        return leakMwCycles_[i] +
               leakMw_[i] * static_cast<double>(now - leakLast_[i]);
    }

    /** Dynamic + leakage power right now, mW — what a thermally aware
     *  policy should budget against. */
    double effectivePowerMw(int id) const
    {
        auto i = static_cast<std::size_t>(id);
        return dynMw_[i] + leakMw_[i];
    }

    double tempC(int id) const
    {
        return tempC_[static_cast<std::size_t>(id)];
    }

    int level(int id) const
    {
        return brLevel_[static_cast<std::size_t>(id)];
    }

    int kindIndex(int id) const
    {
        return kind_[static_cast<std::size_t>(id)];
    }

    double baselineMw(int id) const
    {
        return baselineMw_[static_cast<std::size_t>(id)];
    }

    std::uint64_t totalFlits(int id) const
    {
        return totalFlits_[static_cast<std::size_t>(id)];
    }

    std::uint64_t vcFlits(int id, int vc) const
    {
        return vcFlits_[static_cast<std::size_t>(id) *
                            static_cast<std::size_t>(numVcs_) +
                        static_cast<std::size_t>(vc)];
    }

    // Flat scans in link-id order (the canonical fold order).

    /** Sum of dynamic power over all links, mW. */
    double totalDynMw() const;

    /** Sum of dynamic power integrals over all links, mW-cycles. */
    double totalDynIntegralMwCycles(Cycle now) const;

    /** Sum of leakage power over all links, mW (0 when disabled). */
    double totalLeakMw() const;

    /** Sum of leakage integrals over all links, mW-cycles. */
    double totalLeakIntegralMwCycles(Cycle now) const;

    /** Hottest junction across all links, °C (ambient when cold). */
    double maxTempC() const;

    /**
     * Dynamic energy integral attributed to each VC, mW-cycles:
     * link i's integral split proportionally to its per-VC flit
     * counts (links that carried nothing attribute nothing). Folded
     * in link-id order into @p out (resized to numVcs).
     */
    void attributeVcEnergy(Cycle now, std::vector<double> &out) const;

  private:
    int numVcs_ = 1;
    ThermalParams thermal_{};
    LeakageModel model_{};
    Cycle lastThermal_ = 0;

    // Per-link columns, indexed by link id.
    std::vector<double> dynMw_;
    std::vector<Cycle> dynLast_;
    std::vector<double> dynMwCycles_;
    std::vector<double> dynMarkMwCycles_; ///< integral at last epoch
    std::vector<double> vddFrac_;
    std::vector<double> baselineMw_;
    std::vector<double> tempC_;
    std::vector<double> leakMw_;
    std::vector<Cycle> leakLast_;
    std::vector<double> leakMwCycles_;
    std::vector<std::int16_t> brLevel_;
    std::vector<std::int8_t> kind_;
    std::vector<std::uint64_t> totalFlits_;
    std::vector<std::uint64_t> vcFlits_; ///< numLinks x numVcs

    std::vector<std::uint8_t> unstable_; ///< 1 = mid-transition
};

} // namespace oenet

#endif // OENET_PHY_POWER_LEDGER_HH
