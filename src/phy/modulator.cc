#include "phy/modulator.hh"

#include "common/log.hh"

namespace oenet {

MqwModulator::MqwModulator(const MqwModulatorParams &params)
    : params_(params)
{
    if (params_.contrastRatio <= 1.0)
        fatal("MqwModulator: contrast ratio must exceed 1 (got %f)",
              params_.contrastRatio);
    if (params_.insertionLoss < 0.0 || params_.insertionLoss >= 1.0)
        fatal("MqwModulator: insertion loss must be in [0,1) (got %f)",
              params_.insertionLoss);
}

double
MqwModulator::powerMw(double input_mw) const
{
    // Eq. 4: 0.5 * Rs * PI * [IL*(Vbias-Vdd) + (1 - (1-IL)/CR) * Vbias].
    // Rs [A/W] * PI [mW] gives photocurrent in mA; times volts -> mW.
    const auto &p = params_;
    double on_term = p.insertionLoss * (p.biasVoltageV - p.vddV);
    double off_term = (1.0 - (1.0 - p.insertionLoss) / p.contrastRatio) *
                      p.biasVoltageV;
    double power = 0.5 * p.responsivityAPerW * input_mw *
                   (on_term + off_term);
    // The "on" term can be slightly negative when Vdd > Vbias (energy
    // returned to the supply); total dissipation is still positive for
    // sane parameters, but clamp defensively.
    return power > 0.0 ? power : 0.0;
}

double
MqwModulator::onOutputMw(double input_mw) const
{
    return input_mw * (1.0 - params_.insertionLoss);
}

double
MqwModulator::offOutputMw(double input_mw) const
{
    return onOutputMw(input_mw) / params_.contrastRatio;
}

double
MqwModulator::averageOutputMw(double input_mw) const
{
    return (onOutputMw(input_mw) + offOutputMw(input_mw)) / 2.0;
}

ModulatorDriver::ModulatorDriver(const ModulatorDriverParams &params)
    : params_(params)
{
}

double
ModulatorDriver::powerMw(double br_gbps) const
{
    const auto &p = params_;
    return p.switchingActivity * p.loadCapacitancePf * p.vddV * p.vddV *
           br_gbps;
}

} // namespace oenet
