#include "phy/bitrate_levels.hh"

#include "common/log.hh"

namespace oenet {

BitrateLevelTable
BitrateLevelTable::linear(double min_gbps, double max_gbps, int count,
                          double vmax)
{
    if (count < 1)
        fatal("BitrateLevelTable: need at least 1 level, got %d", count);
    if (!(min_gbps > 0.0) || !(max_gbps >= min_gbps))
        fatal("BitrateLevelTable: bad bit-rate range [%f, %f]", min_gbps,
              max_gbps);
    std::vector<BitrateLevel> levels;
    levels.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; i++) {
        double f = count == 1
                       ? 1.0
                       : static_cast<double>(i) / (count - 1);
        double br = min_gbps + f * (max_gbps - min_gbps);
        levels.push_back({br, vmax * br / max_gbps});
    }
    return BitrateLevelTable(std::move(levels));
}

BitrateLevelTable::BitrateLevelTable(std::vector<BitrateLevel> levels)
    : levels_(std::move(levels))
{
    if (levels_.empty())
        fatal("BitrateLevelTable: empty level set");
    for (std::size_t i = 1; i < levels_.size(); i++) {
        if (levels_[i].brGbps <= levels_[i - 1].brGbps)
            fatal("BitrateLevelTable: levels must be strictly increasing");
    }
}

const BitrateLevel &
BitrateLevelTable::level(int i) const
{
    if (i < 0 || i >= numLevels())
        panic("BitrateLevelTable: level %d out of range [0, %d)", i,
              numLevels());
    return levels_[static_cast<std::size_t>(i)];
}

int
BitrateLevelTable::levelAtLeast(double br_gbps) const
{
    for (int i = 0; i < numLevels(); i++) {
        if (levels_[static_cast<std::size_t>(i)].brGbps >= br_gbps)
            return i;
    }
    return maxLevel();
}

double
BitrateLevelTable::capacityFraction(int i) const
{
    return level(i).brGbps / maxBitRateGbps();
}

} // namespace oenet
