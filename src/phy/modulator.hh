/**
 * @file
 * Transmitter option (2): external laser with a multiple-quantum-well
 * (MQW) electro-absorption modulator and its driver (Section 2.1.2,
 * Eqs. 4-5).
 *
 * The modulator absorbs the incoming light for zeros ("off") and passes
 * it for ones ("on"); insertion loss (IL) and contrast ratio (CR)
 * characterize how much light survives each state. Absorbed light turns
 * into dissipated electrical power (Eq. 4). The driver is an inverter
 * chain whose supply voltage stays *fixed* under power control — scaling
 * it would collapse the contrast ratio — so driver power scales only
 * with bit rate (Eq. 5, Section 2.3).
 *
 * Defaults calibrate the driver to 40 mW at 10 Gb/s (Table 2).
 */

#ifndef OENET_PHY_MODULATOR_HH
#define OENET_PHY_MODULATOR_HH

namespace oenet {

/** MQW electro-absorption modulator parameters. */
struct MqwModulatorParams
{
    double responsivityAPerW = 0.8; ///< Rs: optical->current conversion
    double insertionLoss = 0.2;     ///< IL: fraction lost in "on" state
    double contrastRatio = 10.0;    ///< CR: on/off optical power ratio
    double biasVoltageV = 2.0;      ///< Vbias applied to the diode
    double vddV = 1.8;              ///< driver swing (fixed)
};

class MqwModulator
{
  public:
    explicit MqwModulator(const MqwModulatorParams &params = {});

    /** Eq. 4: average dissipated power (mW) for input optical power
     *  @p input_mw, assuming equiprobable ones and zeros. */
    double powerMw(double input_mw) const;

    /** Optical power passed downstream in the "on" state (mW). */
    double onOutputMw(double input_mw) const;

    /** Optical power leaking downstream in the "off" state (mW). */
    double offOutputMw(double input_mw) const;

    /** Mean launched optical power over equiprobable bits (mW). */
    double averageOutputMw(double input_mw) const;

    const MqwModulatorParams &params() const { return params_; }

  private:
    MqwModulatorParams params_;
};

/** Inverter-chain driver for the MQW modulator (Eq. 5). */
struct ModulatorDriverParams
{
    double switchingActivity = 0.5;           ///< alpha2
    double loadCapacitancePf = 2.4691358025;  ///< C_md: driver+modulator
    double vddV = 1.8;                        ///< fixed supply
};

class ModulatorDriver
{
  public:
    explicit ModulatorDriver(const ModulatorDriverParams &params = {});

    /** Eq. 5 at the fixed supply: alpha2 * C_md * Vdd^2 * BR, in mW. */
    double powerMw(double br_gbps) const;

    const ModulatorDriverParams &params() const { return params_; }

  private:
    ModulatorDriverParams params_;
};

} // namespace oenet

#endif // OENET_PHY_MODULATOR_HH
