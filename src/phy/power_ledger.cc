#include "phy/power_ledger.hh"

#include <algorithm>

#include "common/log.hh"

namespace oenet {

void
LinkPowerLedger::configure(int num_vcs, const ThermalParams &thermal,
                           double vmax_v)
{
    if (numLinks() > 0)
        panic("LinkPowerLedger::configure after addLink");
    if (num_vcs < 1)
        panic("LinkPowerLedger: numVcs must be >= 1, got %d", num_vcs);
    thermal.validate();
    numVcs_ = num_vcs;
    thermal_ = thermal;
    model_ = LeakageModel(thermal, vmax_v);
}

int
LinkPowerLedger::addLink(int kind_index, double baseline_mw, int level,
                         double initial_mw, double initial_vdd_frac)
{
    int id = numLinks();
    dynMw_.push_back(initial_mw);
    dynLast_.push_back(0);
    dynMwCycles_.push_back(0.0);
    dynMarkMwCycles_.push_back(0.0);
    vddFrac_.push_back(initial_vdd_frac);
    baselineMw_.push_back(baseline_mw);
    tempC_.push_back(thermal_.ambientC);
    leakMw_.push_back(
        model_.leakageMw(initial_vdd_frac, thermal_.ambientC));
    leakLast_.push_back(0);
    leakMwCycles_.push_back(0.0);
    brLevel_.push_back(static_cast<std::int16_t>(level));
    kind_.push_back(static_cast<std::int8_t>(kind_index));
    totalFlits_.push_back(0);
    vcFlits_.insert(vcFlits_.end(),
                    static_cast<std::size_t>(numVcs_), 0);
    unstable_.push_back(0);
    return id;
}

void
LinkPowerLedger::resetDynamic(int id, Cycle at)
{
    auto i = static_cast<std::size_t>(id);
    dynMwCycles_[i] = 0.0;
    dynLast_[i] = at;
    dynMarkMwCycles_[i] = 0.0;
    leakMwCycles_[i] = 0.0;
    leakLast_[i] = at;
    totalFlits_[i] = 0;
    std::fill_n(vcFlits_.begin() +
                    static_cast<std::ptrdiff_t>(
                        i * static_cast<std::size_t>(numVcs_)),
                numVcs_, 0);
}

void
LinkPowerLedger::advanceThermal(Cycle now)
{
    if (!thermal_.enabled)
        return;
    if (now <= lastThermal_)
        return;
    Cycle dt = now - lastThermal_;
    lastThermal_ = now;
    std::size_t n = dynMw_.size();
    for (std::size_t i = 0; i < n; i++) {
        // Fold the (piecewise-constant per epoch) leakage integral.
        leakMwCycles_[i] +=
            leakMw_[i] * static_cast<double>(now - leakLast_[i]);
        leakLast_[i] = now;
        // Dissipation over the elapsed epoch: average dynamic power
        // (from the exact integral delta) plus the epoch's leakage.
        double dyn_int =
            dynMwCycles_[i] +
            dynMw_[i] * static_cast<double>(now - dynLast_[i]);
        double avg_dyn =
            (dyn_int - dynMarkMwCycles_[i]) / static_cast<double>(dt);
        dynMarkMwCycles_[i] = dyn_int;
        // RC relaxation, then leakage at the new operating point —
        // the feedback loop: hotter links leak more, leaking links
        // run hotter. tau >> epoch keeps the discrete loop stable.
        tempC_[i] =
            model_.stepTempC(tempC_[i], avg_dyn + leakMw_[i], dt);
        leakMw_[i] = model_.leakageMw(vddFrac_[i], tempC_[i]);
    }
}

double
LinkPowerLedger::totalDynMw() const
{
    double sum = 0.0;
    for (double v : dynMw_)
        sum += v;
    return sum;
}

double
LinkPowerLedger::totalDynIntegralMwCycles(Cycle now) const
{
    double sum = 0.0;
    std::size_t n = dynMw_.size();
    for (std::size_t i = 0; i < n; i++) {
        sum += dynMwCycles_[i] +
               dynMw_[i] * static_cast<double>(now - dynLast_[i]);
    }
    return sum;
}

double
LinkPowerLedger::totalLeakMw() const
{
    if (!thermal_.enabled)
        return 0.0;
    double sum = 0.0;
    for (double v : leakMw_)
        sum += v;
    return sum;
}

double
LinkPowerLedger::totalLeakIntegralMwCycles(Cycle now) const
{
    if (!thermal_.enabled)
        return 0.0;
    double sum = 0.0;
    std::size_t n = leakMw_.size();
    for (std::size_t i = 0; i < n; i++) {
        sum += leakMwCycles_[i] +
               leakMw_[i] * static_cast<double>(now - leakLast_[i]);
    }
    return sum;
}

double
LinkPowerLedger::maxTempC() const
{
    double t = thermal_.ambientC;
    for (double v : tempC_)
        t = std::max(t, v);
    return t;
}

void
LinkPowerLedger::attributeVcEnergy(Cycle now,
                                   std::vector<double> &out) const
{
    out.assign(static_cast<std::size_t>(numVcs_), 0.0);
    std::size_t n = dynMw_.size();
    for (std::size_t i = 0; i < n; i++) {
        std::uint64_t flits = totalFlits_[i];
        if (flits == 0)
            continue;
        double integral =
            dynMwCycles_[i] +
            dynMw_[i] * static_cast<double>(now - dynLast_[i]);
        const std::uint64_t *row =
            &vcFlits_[i * static_cast<std::size_t>(numVcs_)];
        for (int vc = 0; vc < numVcs_; vc++) {
            out[static_cast<std::size_t>(vc)] +=
                integral *
                (static_cast<double>(row[vc]) /
                 static_cast<double>(flits));
        }
    }
}

} // namespace oenet
