#include "phy/vcsel.hh"

#include <algorithm>

#include "common/log.hh"

namespace oenet {

Vcsel::Vcsel(const VcselParams &params) : params_(params)
{
    if (params_.biasMa < params_.thresholdMa)
        warn("Vcsel: bias current %.3f mA below threshold %.3f mA; "
             "turn-on will be slow in a real device",
             params_.biasMa, params_.thresholdMa);
}

double
Vcsel::emittedOpticalPowerMw(double i_ma) const
{
    double above = i_ma - params_.thresholdMa;
    if (above <= 0.0)
        return 0.0;
    // S [W/A] * I [mA] = P [mW].
    return params_.slopeWPerA * above;
}

double
Vcsel::modulationCurrentMa(double vdd) const
{
    double scale = std::clamp(vdd / params_.vmaxV, 0.0, 1.0);
    return params_.modulationMaxMa * scale;
}

double
Vcsel::averagePowerMw(double vdd) const
{
    // Eq. 2: P = (Ibias + Im/2) * Vbias, Im scaled by supply voltage.
    double i_avg = params_.biasMa + modulationCurrentMa(vdd) / 2.0;
    return i_avg * params_.biasVoltageV;
}

double
Vcsel::averageOpticalPowerMw(double vdd) const
{
    double im = modulationCurrentMa(vdd);
    double one = emittedOpticalPowerMw(params_.biasMa + im);
    double zero = emittedOpticalPowerMw(params_.biasMa);
    return (one + zero) / 2.0;
}

VcselDriver::VcselDriver(const VcselDriverParams &params) : params_(params)
{
}

double
VcselDriver::powerMw(double vdd, double br_gbps) const
{
    // alpha [.] * C [pF] * V^2 [V^2] * BR [Gb/s]:
    // 1e-12 F * V^2 * 1e9 /s = 1e-3 W = mW.
    return params_.switchingActivity * params_.loadCapacitancePf * vdd *
           vdd * br_gbps;
}

} // namespace oenet
