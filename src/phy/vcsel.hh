/**
 * @file
 * Transmitter option (1): directly modulated VCSEL and its driver
 * (Section 2.1.1, Eqs. 1-3).
 *
 * The VCSEL is biased just above its threshold current; the driver adds
 * a modulation current Im for ones. Emitted optical power grows linearly
 * with drive current above threshold (Eq. 1); electrical power is the
 * average drive current times the bias voltage (Eq. 2). The inverter
 * chain driver burns alpha * C * Vdd^2 * BR (Eq. 3). Under dynamic
 * power control the modulation current scales with the driver supply
 * voltage, so both the VCSEL's electrical power and its optical output
 * track Vdd.
 *
 * Default parameters are calibrated so that at the full operating point
 * (10 Gb/s, 1.8 V) the VCSEL dissipates 30 mW and the driver 10 mW,
 * matching Table 2.
 */

#ifndef OENET_PHY_VCSEL_HH
#define OENET_PHY_VCSEL_HH

namespace oenet {

/** Physical parameters of a VCSEL (oxide-aperture-confined class). */
struct VcselParams
{
    double thresholdMa = 0.5;      ///< Ith: threshold current, mA
    double biasMa = 0.5;           ///< Ibias: steady bias above use
    double modulationMaxMa = 24.0; ///< Im at full supply voltage, mA
    double slopeWPerA = 0.35;      ///< S: slope efficiency, W/A
    double biasVoltageV = 2.4;     ///< Vbias across the diode, V
    double vmaxV = 1.8;            ///< driver supply at full rate, V
};

class Vcsel
{
  public:
    explicit Vcsel(const VcselParams &params = {});

    /** Eq. 1: emitted optical power (mW) at drive current @p i_ma. */
    double emittedOpticalPowerMw(double i_ma) const;

    /** Modulation current at driver supply @p vdd (linear in Vdd). */
    double modulationCurrentMa(double vdd) const;

    /** Eq. 2: average electrical power (mW) assuming equiprobable bits,
     *  with the modulation current set by @p vdd. */
    double averagePowerMw(double vdd) const;

    /** Mean optical power (mW) launched into the fiber at @p vdd,
     *  averaging the one (Ibias+Im) and zero (Ibias) symbols. */
    double averageOpticalPowerMw(double vdd) const;

    const VcselParams &params() const { return params_; }

  private:
    VcselParams params_;
};

/** Inverter-chain driver for a directly modulated VCSEL (Eq. 3). */
struct VcselDriverParams
{
    double switchingActivity = 0.5; ///< alpha1: P(bit transition)
    double loadCapacitancePf = 0.6172839506; ///< C_LD: total switched cap
};

class VcselDriver
{
  public:
    explicit VcselDriver(const VcselDriverParams &params = {});

    /** Eq. 3: alpha1 * C_LD * Vdd^2 * BR, in mW (pF * V^2 * Gb/s). */
    double powerMw(double vdd, double br_gbps) const;

    const VcselDriverParams &params() const { return params_; }

  private:
    VcselDriverParams params_;
};

} // namespace oenet

#endif // OENET_PHY_VCSEL_HH
