#include "phy/receiver.hh"

#include "common/log.hh"
#include "common/units.hh"

namespace oenet {

Photodetector::Photodetector(const PhotodetectorParams &params)
    : params_(params)
{
    double nu = opticalFrequencyHz(params_.wavelengthNm);
    responsivityAPerW_ = kElectronChargeC / (kPlanckJs * nu);
}

double
Photodetector::requiredOpticalPowerMw(double br_gbps) const
{
    return params_.sensitivityMwAt10G * br_gbps / 10.0;
}

double
Photodetector::powerMw(double received_mw) const
{
    // Eq. 6: Prec * (q/h nu) * Vbias * (CR+1)/(CR-1).
    double cr = params_.contrastRatio;
    return received_mw * responsivityAPerW_ * params_.biasVoltageV *
           (cr + 1.0) / (cr - 1.0);
}

double
Photodetector::photocurrentMa(double received_mw) const
{
    return received_mw * responsivityAPerW_;
}

Tia::Tia(const TiaParams &params) : params_(params)
{
    if (params_.feedbackOhm <= 0.0)
        fatal("Tia: feedback impedance must be positive");
}

double
Tia::biasCurrentMa(double br_max_gbps) const
{
    return params_.biasPerGbpsMa * br_max_gbps;
}

double
Tia::powerMw(double br_max_gbps, double vdd) const
{
    return biasCurrentMa(br_max_gbps) * vdd;
}

double
Tia::outputSwingMv(double ip_ma) const
{
    return ip_ma * params_.feedbackOhm;
}

Cdr::Cdr(const CdrParams &params) : params_(params)
{
}

double
Cdr::powerMw(double vdd, double br_gbps) const
{
    return params_.switchingActivity * params_.capacitancePf * vdd * vdd *
           br_gbps;
}

} // namespace oenet
