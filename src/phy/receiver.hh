/**
 * @file
 * Receiver-side components (Section 2.2): photodetector (Eq. 6),
 * transimpedance amplifier (Eqs. 7-8), and clock/data recovery (Eq. 9).
 *
 * Power-control behaviour (Sections 2.2.2-2.2.3):
 *  - the photodetector burns well under a milliwatt, so it carries no
 *    control mechanism of its own;
 *  - the TIA's bias current is sized for the maximum bit rate it must
 *    admit, so when the link scales down, the bias (and with it power,
 *    ~ Vdd * BR) scales too;
 *  - the CDR is a mostly-digital PLL whose power goes as Vdd^2 * BR; on
 *    any bit-rate change it loses lock and is unusable for a relock
 *    period T_br (the link-disable window the network must absorb).
 *
 * Defaults are calibrated to Table 2: TIA 100 mW and CDR 150 mW at
 * 10 Gb/s / 1.8 V.
 */

#ifndef OENET_PHY_RECEIVER_HH
#define OENET_PHY_RECEIVER_HH

#include "common/types.hh"

namespace oenet {

/** PIN/MSM photodetector parameters. */
struct PhotodetectorParams
{
    double sensitivityMwAt10G = 0.025; ///< Prec for BER 1e-12 at 10 Gb/s
    double biasVoltageV = 2.0;         ///< Vbias
    double contrastRatio = 10.0;       ///< CR of the incoming signal
    double wavelengthNm = 1550.0;      ///< carrier wavelength
};

class Photodetector
{
  public:
    explicit Photodetector(const PhotodetectorParams &params = {});

    /** Receiver sensitivity (mW) needed for BER 1e-12 at @p br_gbps;
     *  scales linearly with bit rate. */
    double requiredOpticalPowerMw(double br_gbps) const;

    /** Eq. 6: dissipated power (mW) when receiving @p received_mw. */
    double powerMw(double received_mw) const;

    /** Mean photocurrent (mA) produced from @p received_mw. */
    double photocurrentMa(double received_mw) const;

    const PhotodetectorParams &params() const { return params_; }

  private:
    PhotodetectorParams params_;
    double responsivityAPerW_; ///< q / (h*nu)
};

/** Transimpedance amplifier parameters. */
struct TiaParams
{
    double biasPerGbpsMa = 5.5555555556; ///< c of Eq. 7, mA per Gb/s
    double feedbackOhm = 2000.0;         ///< Rf
    double vmaxV = 1.8;                  ///< supply at full rate
};

class Tia
{
  public:
    explicit Tia(const TiaParams &params = {});

    /** Eq. 7: bias current (mA) to support @p br_max_gbps. */
    double biasCurrentMa(double br_max_gbps) const;

    /** Eq. 8: power (mW) when biased for @p br_max_gbps at @p vdd. */
    double powerMw(double br_max_gbps, double vdd) const;

    /** Output swing (mV) for photocurrent @p ip_ma. */
    double outputSwingMv(double ip_ma) const;

    const TiaParams &params() const { return params_; }

  private:
    TiaParams params_;
};

/** Clock and data recovery parameters. */
struct CdrParams
{
    double switchingActivity = 0.5;     ///< alpha3
    double capacitancePf = 9.2592592593; ///< C_CDR
    Cycle relockCycles = 20;            ///< T_br in router cycles
};

class Cdr
{
  public:
    explicit Cdr(const CdrParams &params = {});

    /** Eq. 9: alpha3 * C_CDR * Vdd^2 * BR, in mW. */
    double powerMw(double vdd, double br_gbps) const;

    /** Relock time after any bit-rate change (router cycles). */
    Cycle relockCycles() const { return params_.relockCycles; }

    const CdrParams &params() const { return params_; }

  private:
    CdrParams params_;
};

} // namespace oenet

#endif // OENET_PHY_RECEIVER_HH
