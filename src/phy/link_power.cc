#include "phy/link_power.hh"

#include "common/log.hh"

namespace oenet {

const char *
linkSchemeName(LinkScheme scheme)
{
    switch (scheme) {
      case LinkScheme::kVcsel:
        return "vcsel";
      case LinkScheme::kModulator:
        return "modulator";
    }
    panic("linkSchemeName: bad scheme %d", static_cast<int>(scheme));
}

LinkPowerModel::LinkPowerModel(LinkScheme scheme,
                               const LinkPowerParams &params)
    : scheme_(scheme), params_(params)
{
    if (params_.vmaxV <= 0.0 || params_.brMaxGbps <= 0.0)
        fatal("LinkPowerModel: vmax and brMax must be positive");
}

LinkPowerModel::Breakdown
LinkPowerModel::breakdown(double br_gbps, double vdd,
                          double optical_scale) const
{
    const auto &p = params_;
    double v = vdd / p.vmaxV;       // voltage fraction
    double b = br_gbps / p.brMaxGbps; // bit-rate fraction

    Breakdown d{};
    if (scheme_ == LinkScheme::kVcsel) {
        // Laser output tracks the driver supply in the VCSEL scheme;
        // the detector budget is bias-dominated and stays flat.
        d.txLaserMw = p.vcselMw * v;
        d.txDriverMw = p.vcselDriverMw * v * v * b;
        d.detectorMw = p.detectorMw;
    } else {
        d.txLaserMw = 0.0; // external laser is off-budget (Section 2.1.2)
        d.txDriverMw = p.modDriverMw * b; // fixed driver supply
        d.detectorMw = p.detectorMw * optical_scale;
    }
    d.tiaMw = p.tiaMw * v * b;
    d.cdrMw = p.cdrMw * v * v * b;
    d.totalMw = d.txLaserMw + d.txDriverMw + d.detectorMw + d.tiaMw +
                d.cdrMw;
    return d;
}

double
LinkPowerModel::powerMw(double br_gbps, double vdd,
                        double optical_scale) const
{
    return breakdown(br_gbps, vdd, optical_scale).totalMw;
}

double
LinkPowerModel::maxPowerMw() const
{
    return powerMw(params_.brMaxGbps, params_.vmaxV, 1.0);
}

} // namespace oenet
