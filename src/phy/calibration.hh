/**
 * @file
 * Link power calibration files.
 *
 * The paper closes by describing its next step: fabricate the link
 * circuits in 0.18 um CMOS and feed measured characteristics back into
 * the network simulator "in place of current models". This module is
 * that feed-in path: a small key=value file format holding the
 * whole-link calibration constants (LinkPowerParams) and, optionally,
 * a measured bit-rate/voltage level table, so a test-chip
 * characterization replaces the Table 2 defaults without recompiling.
 *
 * Format (one key=value per line, '#' comments):
 *
 *     # oenet link calibration
 *     vcsel_mw = 30.0
 *     vcsel_driver_mw = 10.0
 *     mod_driver_mw = 40.0
 *     tia_mw = 100.0
 *     cdr_mw = 150.0
 *     detector_mw = 1.25
 *     vmax_v = 1.8
 *     br_max_gbps = 10.0
 *     # optional measured operating points, ascending bit rate:
 *     level = 5.0 0.90
 *     level = 6.1 1.12
 *     ...
 */

#ifndef OENET_PHY_CALIBRATION_HH
#define OENET_PHY_CALIBRATION_HH

#include <optional>
#include <string>

#include "phy/bitrate_levels.hh"
#include "phy/link_power.hh"

namespace oenet {

struct LinkCalibration
{
    LinkPowerParams power{};
    /** Present when the file carries measured operating points. */
    std::optional<BitrateLevelTable> levels;
};

/** Parse a calibration file; fatal() on I/O or format errors. */
LinkCalibration loadLinkCalibration(const std::string &path);

/** Write @p calibration in the canonical format. */
void saveLinkCalibration(const std::string &path,
                         const LinkCalibration &calibration);

} // namespace oenet

#endif // OENET_PHY_CALIBRATION_HH
