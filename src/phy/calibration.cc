#include "phy/calibration.hh"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hh"

namespace oenet {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

LinkCalibration
loadLinkCalibration(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadLinkCalibration: cannot open '%s'", path.c_str());

    LinkCalibration cal;
    std::vector<BitrateLevel> levels;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("%s:%d: expected key = value", path.c_str(), lineno);
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));

        if (key == "level") {
            std::istringstream ss(value);
            BitrateLevel lv{};
            if (!(ss >> lv.brGbps >> lv.vddV))
                fatal("%s:%d: level expects '<br_gbps> <vdd_v>'",
                      path.c_str(), lineno);
            levels.push_back(lv);
            continue;
        }

        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            fatal("%s:%d: '%s' is not a number", path.c_str(), lineno,
                  value.c_str());

        if (key == "vcsel_mw") {
            cal.power.vcselMw = v;
        } else if (key == "vcsel_driver_mw") {
            cal.power.vcselDriverMw = v;
        } else if (key == "mod_driver_mw") {
            cal.power.modDriverMw = v;
        } else if (key == "tia_mw") {
            cal.power.tiaMw = v;
        } else if (key == "cdr_mw") {
            cal.power.cdrMw = v;
        } else if (key == "detector_mw") {
            cal.power.detectorMw = v;
        } else if (key == "vmax_v") {
            cal.power.vmaxV = v;
        } else if (key == "br_max_gbps") {
            cal.power.brMaxGbps = v;
        } else {
            fatal("%s:%d: unknown calibration key '%s'", path.c_str(),
                  lineno, key.c_str());
        }
    }

    if (!levels.empty())
        cal.levels = BitrateLevelTable(std::move(levels));
    return cal;
}

void
saveLinkCalibration(const std::string &path,
                    const LinkCalibration &calibration)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveLinkCalibration: cannot open '%s'", path.c_str());
    const auto &p = calibration.power;
    out << "# oenet link calibration\n";
    out << "vcsel_mw = " << p.vcselMw << "\n";
    out << "vcsel_driver_mw = " << p.vcselDriverMw << "\n";
    out << "mod_driver_mw = " << p.modDriverMw << "\n";
    out << "tia_mw = " << p.tiaMw << "\n";
    out << "cdr_mw = " << p.cdrMw << "\n";
    out << "detector_mw = " << p.detectorMw << "\n";
    out << "vmax_v = " << p.vmaxV << "\n";
    out << "br_max_gbps = " << p.brMaxGbps << "\n";
    if (calibration.levels) {
        for (int i = 0; i < calibration.levels->numLevels(); i++) {
            const auto &lv = calibration.levels->level(i);
            out << "level = " << lv.brGbps << " " << lv.vddV << "\n";
        }
    }
    if (!out)
        fatal("saveLinkCalibration: write failure on '%s'",
              path.c_str());
}

} // namespace oenet
