#include "phy/thermal.hh"

#include <cmath>

#include "common/log.hh"

namespace oenet {

void
ThermalParams::validate() const
{
    if (!enabled)
        return;
    if (!(subLeakMw >= 0.0))
        fatal("leakage.sub_mw must be >= 0, got %g", subLeakMw);
    if (!(gateLeakMw >= 0.0))
        fatal("leakage.gate_mw must be >= 0, got %g", gateLeakMw);
    if (!(subTempSlopeC > 0.0))
        fatal("leakage.sub_slope must be > 0, got %g", subTempSlopeC);
    if (!(gateTempSlopeC > 0.0))
        fatal("leakage.gate_slope must be > 0, got %g", gateTempSlopeC);
    if (!(thermalResCPerW >= 0.0))
        fatal("thermal.resistance must be >= 0, got %g",
              thermalResCPerW);
    if (tauCycles == 0)
        fatal("thermal.tau must be > 0 cycles");
    if (epochCycles == 0)
        fatal("thermal.epoch must be > 0 cycles when leakage is "
              "enabled");
}

LeakageModel::LeakageModel(const ThermalParams &params, double vmax_v)
    : params_(params), vmaxV_(vmax_v)
{
    if (!(vmax_v > 0.0))
        fatal("LeakageModel: vmax must be > 0, got %g", vmax_v);
}

double
LeakageModel::leakageMw(double vdd_frac, double temp_c) const
{
    if (!params_.enabled || vdd_frac <= 0.0)
        return 0.0;
    double dt = temp_c - params_.refTempC;
    double sub = params_.subLeakMw * vdd_frac *
                 std::exp(dt / params_.subTempSlopeC);
    double gate = params_.gateLeakMw * vdd_frac * vdd_frac *
                  std::exp(dt / params_.gateTempSlopeC);
    return sub + gate;
}

double
LeakageModel::steadyTempC(double total_mw) const
{
    return params_.ambientC +
           total_mw * 1e-3 * params_.thermalResCPerW;
}

double
LeakageModel::stepTempC(double temp_c, double total_mw,
                        Cycle dt_cycles) const
{
    // Exact solution of tau*T' = T_ss - T over one step: alpha in
    // (0, 1], so T moves monotonically toward T_ss and can never
    // overshoot — a fixed load converges without oscillation.
    double alpha = -std::expm1(-static_cast<double>(dt_cycles) /
                               static_cast<double>(params_.tauCycles));
    return temp_c + (steadyTempC(total_mw) - temp_c) * alpha;
}

} // namespace oenet
