#include "fault/fault_injector.hh"

#include "common/log.hh"

namespace oenet {

FaultInjector::FaultInjector(const FaultParams &params, int num_links)
    : params_(params)
{
    if (num_links < 0)
        panic("fault injector built with %d links", num_links);
    links_.resize(static_cast<std::size_t>(num_links));
    for (int i = 0; i < num_links; ++i) {
        LinkStream &ls = links_[static_cast<std::size_t>(i)];
        ls.rng.seed(deriveStreamSeed(params_.seed,
                                     static_cast<std::uint64_t>(i)));
        // Anchor the first scheduled events now, from the stream's
        // pristine state, so their timing is independent of how many
        // corruption draws the link makes before they strike.
        ls.nextLockLoss = drawGap(ls.rng, params_.lockLossPerCycle);
        ls.hardFailAt = drawGap(ls.rng, params_.hardFailPerCycle);
        if (params_.killLink == i && params_.killCycle < ls.hardFailAt)
            ls.hardFailAt = params_.killCycle;
    }
}

Cycle
FaultInjector::drawGap(Rng &rng, double p)
{
    if (p <= 0.0)
        return kNeverCycle;
    std::uint64_t gap = rng.geometric(p);
    if (gap >= kNeverCycle - 1)
        return kNeverCycle;
    return gap + 1;
}

bool
FaultInjector::drawFlitCorrupt(int link, double prob)
{
    if (prob <= 0.0)
        return false;
    return links_[static_cast<std::size_t>(link)].rng.bernoulli(prob);
}

Cycle
FaultInjector::peekLockLoss(int link) const
{
    return links_[static_cast<std::size_t>(link)].nextLockLoss;
}

void
FaultInjector::consumeLockLoss(int link)
{
    LinkStream &ls = links_[static_cast<std::size_t>(link)];
    if (ls.nextLockLoss == kNeverCycle)
        panic("consuming a lock-loss event that was never scheduled");
    Cycle gap = drawGap(ls.rng, params_.lockLossPerCycle);
    Cycle base = ls.nextLockLoss + params_.lockLossOutageCycles;
    ls.nextLockLoss =
        (gap == kNeverCycle || base > kNeverCycle - gap) ? kNeverCycle
                                                         : base + gap;
}

Cycle
FaultInjector::hardFailAtCycle(int link) const
{
    return links_[static_cast<std::size_t>(link)].hardFailAt;
}

VoaFault
FaultInjector::drawVoaFault(int link)
{
    if (params_.voaLossProb <= 0.0 && params_.voaDelayProb <= 0.0)
        return VoaFault::kClean;
    LinkStream &ls = links_[static_cast<std::size_t>(link)];
    double u = ls.rng.uniform();
    if (u < params_.voaLossProb)
        return VoaFault::kLost;
    if (u < params_.voaLossProb + params_.voaDelayProb)
        return VoaFault::kDelayed;
    return VoaFault::kClean;
}

} // namespace oenet
