/**
 * @file
 * Deterministic fault injection.
 *
 * One FaultInjector serves a whole system instance. Every link gets its
 * own xoshiro stream, seeded deriveStreamSeed(params.seed, link index),
 * so fault draws depend only on (seed, link, the order of that link's
 * own draws) — never on thread count or the interleaving of other
 * links. That keeps faulted sweeps bit-identical at any --jobs value,
 * the same discipline the sweep runner applies to traffic seeds.
 *
 * Scheduled faults (CDR lock loss, hard failure) are drawn as geometric
 * inter-arrival gaps and anchored at absolute cycles up front, so the
 * lazily-advanced link phase machine can peek "when is the next fault?"
 * and process it at its exact cycle without per-cycle sampling — the
 * answer never depends on when callers happen to poll.
 */

#ifndef OENET_FAULT_FAULT_INJECTOR_HH
#define OENET_FAULT_FAULT_INJECTOR_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace oenet {

/** Outcome of a control-plane (VOA command) fault draw. */
enum class VoaFault { kClean, kDelayed, kLost };

class FaultInjector
{
  public:
    /** @param num_links number of links in the network (trace-id order) */
    FaultInjector(const FaultParams &params, int num_links);

    const FaultParams &params() const { return params_; }

    /** Bernoulli corruption draw for one flit on @p link. */
    bool drawFlitCorrupt(int link, double prob);

    /** Cycle of @p link's next CDR loss-of-lock (kNeverCycle if none
     *  scheduled). Stable until consumed. */
    Cycle peekLockLoss(int link) const;

    /** Consume the pending lock-loss event and schedule the next one
     *  (a fresh geometric gap past the relock outage, so events cannot
     *  stack inside one outage window). */
    void consumeLockLoss(int link);

    /** Cycle @p link hard-fails (geometric draw or scripted
     *  killLink/killCycle), kNeverCycle if never. Fixed at
     *  construction. */
    Cycle hardFailAtCycle(int link) const;

    /** Fault draw for one dispatched VOA command on @p link. */
    VoaFault drawVoaFault(int link);

  private:
    struct LinkStream
    {
        Rng rng{0};
        Cycle nextLockLoss = kNeverCycle;
        Cycle hardFailAt = kNeverCycle;
    };

    Cycle drawGap(Rng &rng, double p);

    FaultParams params_;
    std::vector<LinkStream> links_;
};

} // namespace oenet

#endif // OENET_FAULT_FAULT_INJECTOR_HH
