#include "fault/crc.hh"

#include "router/flit.hh"

namespace oenet {

std::uint16_t
crc16(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= static_cast<std::uint16_t>(bytes[i]) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

std::uint16_t
flitCrc(const Flit &flit)
{
    // Serialize the identity fields into a fixed-layout buffer rather
    // than hashing the struct (padding bytes are indeterminate).
    std::uint8_t buf[8 + 4 + 4 + 2 + 2 + 1] = {};
    std::size_t off = 0;
    auto put = [&](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i)
            buf[off++] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    put(flit.packet, 8);
    put(flit.src, 4);
    put(flit.dst, 4);
    put(flit.seq, 2);
    put(flit.len, 2);
    put(flit.flags, 1);
    return crc16(buf, off);
}

} // namespace oenet
