/**
 * @file
 * CRC-16/CCITT-FALSE over flit identity fields.
 *
 * The link layer tags every flit with a 16-bit CRC so the receiver can
 * detect corruption injected by the fault model. A real serdes would
 * compute the CRC over the payload bits; the simulator carries no
 * payload, so we hash the identity fields that matter for protocol
 * correctness (packet id, source, destination, sequence number, flags).
 * The polynomial is the standard CCITT 0x1021 with init 0xFFFF.
 */

#ifndef OENET_FAULT_CRC_HH
#define OENET_FAULT_CRC_HH

#include <cstddef>
#include <cstdint>

namespace oenet {

struct Flit;

/** CRC-16/CCITT-FALSE of @p len bytes at @p data. */
std::uint16_t crc16(const void *data, std::size_t len);

/** CRC over a flit's identity fields. */
std::uint16_t flitCrc(const Flit &flit);

} // namespace oenet

#endif // OENET_FAULT_CRC_HH
