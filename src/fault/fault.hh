/**
 * @file
 * Fault-model parameters.
 *
 * Everything the fault injector and the link-layer reliability machinery
 * need is collected in one aggregate so SystemConfig can carry it and a
 * bench can sweep it. All fault draws are made from per-link xoshiro
 * streams derived from a single seed (see FaultInjector), so a faulted
 * run is bit-identical at any --jobs value, same discipline as the
 * sweep runner.
 *
 * Fault classes, mirroring the failure modes the paper's budgets guard
 * against:
 *
 *  - Transient flit corruption. Each flit is corrupted with probability
 *    flitErrorProb(ber, kFlitBits) where the BER follows from the
 *    received optical power margin (phy/ber.hh): a link running fast on
 *    reduced light (low VOA level, low Vdd) sees more errors. berScale
 *    multiplies that physical BER; berFloor adds an operating-point
 *    independent BER floor (dirty connector, aging VCSEL) and is the
 *    natural sweep axis for the resilience bench.
 *
 *  - CDR loss of lock. The receiver's clock-data-recovery loses lock at
 *    a geometric rate and needs lockLossOutageCycles to relock; flits
 *    in flight during the outage are corrupted and the link is busy
 *    (modelled as a forced kFreqSwitch phase — same machinery as a
 *    retune).
 *
 *  - Hard link failure (VCSEL death / fiber cut). Permanent; in-flight
 *    flits are lost, the router port goes dead and adaptive routing
 *    routes around it. Either drawn at a geometric rate per link or
 *    scripted precisely via killLink/killCycle.
 *
 *  - Control-plane faults: a VOA response (laser power change) can be
 *    delayed (voaDelayFactor x nominal) or lost entirely; a lost
 *    command is re-issued after voaTimeoutCycles.
 *
 * Reliability layer: flits carry a CRC-16 (fault/crc.hh); a corrupted
 * flit fails its check at the receiver, which NACKs; the sender holds
 * each flit in a retransmission buffer until ACKed and replays on NACK
 * after a bounded exponential backoff (retryBackoffBase doubling up to
 * retryBackoffCap cycles).
 */

#ifndef OENET_FAULT_FAULT_HH
#define OENET_FAULT_FAULT_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace oenet {

struct FaultParams
{
    /** Master switch. When false (default) no fault code runs and the
     *  simulator's output is byte-identical to a build without it. */
    bool enabled = false;

    /** Base seed of the per-link fault streams. 0 means "derive from
     *  the experiment's traffic seed" (runExperiment fills it in), so
     *  sweep points stay independently seeded and jobs-invariant. */
    std::uint64_t seed = 0;

    /** Multiplier on the physical margin-derived BER. */
    double berScale = 1.0;

    /** Additive BER floor independent of the operating point. */
    double berFloor = 0.0;

    /** Per-cycle probability a link's CDR loses lock. */
    double lockLossPerCycle = 0.0;

    /** Cycles a link is dark while the CDR relocks. */
    Cycle lockLossOutageCycles = 20;

    /** Per-cycle probability of a permanent link failure. */
    double hardFailPerCycle = 0.0;

    /** Scripted hard failure: link index to kill (kInvalid = none). */
    int killLink = kInvalid;

    /** Cycle at which the scripted failure strikes. */
    Cycle killCycle = 0;

    /** Probability a dispatched VOA command is slow. */
    double voaDelayProb = 0.0;

    /** Response-time multiplier for a slow VOA command. */
    double voaDelayFactor = 4.0;

    /** Probability a dispatched VOA command is lost outright. */
    double voaLossProb = 0.0;

    /** Cycles before a lost VOA command is re-issued. */
    Cycle voaTimeoutCycles = microsToCycles(400.0);

    /** Receiver-side cycles to check CRC and emit the ACK/NACK. */
    Cycle ackProcessingCycles = 2;

    /** First retransmission backoff, cycles; doubles per attempt. */
    Cycle retryBackoffBase = 4;

    /** Backoff ceiling, cycles. */
    Cycle retryBackoffCap = 256;

    /** Windowed flit error rate above which the DVS controller clamps
     *  the link: no further down-transitions. */
    double clampErrorRate = 0.05;

    /** When clamped, also force an up-transition toward full margin. */
    bool clampForceUp = true;

    /** Cycles after which a router reclaims a wormhole stranded by a
     *  dead input link (0 disables reclaim). */
    Cycle orphanTimeoutCycles = 4096;
};

} // namespace oenet

#endif // OENET_FAULT_FAULT_HH
