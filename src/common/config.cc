#include "common/config.hh"

#include <cstdlib>
#include <fstream>

#include "common/log.hh"

namespace oenet {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::parseToken(const std::string &token)
{
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
    return true;
}

void
Config::parseArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; i++) {
        std::string tok(argv[i]);
        if (tok.rfind("--config=", 0) == 0) {
            loadFile(tok.substr(9));
            continue;
        }
        if (!parseToken(tok))
            fatal("bad argument '%s', expected key=value", tok.c_str());
    }
}

void
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (!parseToken(line))
            fatal("%s:%d: bad line '%s'", path.c_str(), lineno,
                  line.c_str());
    }
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

long
Config::getInt(const std::string &key, long def) const
{
    used_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

unsigned long
Config::getUint(const std::string &key, unsigned long def) const
{
    used_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    unsigned long v = std::strtoul(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an unsigned integer",
              key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    used_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    used_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(), v.c_str());
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &kv : values_)
        if (!used_.count(kv.first))
            out.push_back(kv.first);
    return out;
}

std::vector<std::pair<std::string, std::string>>
Config::items() const
{
    return {values_.begin(), values_.end()};
}

} // namespace oenet
