#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace oenet {

void
RunningStat::add(double x)
{
    n_++;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    std::size_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(n);
    mean_ += delta * static_cast<double>(other.n_) /
             static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ = n;
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0)
{
    if (!(hi > lo) || bins == 0)
        panic("Histogram: bad range [%f, %f) with %zu bins", lo, hi, bins);
}

void
Histogram::add(double x)
{
    count_++;
    if (x < lo_) {
        underflow_++;
    } else if (x >= hi_) {
        overflow_++;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        if (i >= bins_.size())
            i = bins_.size() - 1; // floating-point edge
        bins_[i]++;
    }
}

void
Histogram::merge(const Histogram &other)
{
    if (other.lo_ != lo_ || other.hi_ != hi_ ||
        other.bins_.size() != bins_.size())
        panic("Histogram::merge: layout mismatch ([%f, %f) x %zu vs "
              "[%f, %f) x %zu)",
              lo_, hi_, bins_.size(), other.lo_, other.hi_,
              other.bins_.size());
    for (std::size_t i = 0; i < bins_.size(); i++)
        bins_[i] += other.bins_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    count_ += other.count_;
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i) + width_;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<double>(count_) * q;
    double cum = static_cast<double>(underflow_);
    if (cum >= target)
        return lo_;
    for (std::size_t i = 0; i < bins_.size(); i++) {
        double next = cum + static_cast<double>(bins_[i]);
        if (next >= target && bins_[i] > 0) {
            double frac = (target - cum) / static_cast<double>(bins_[i]);
            return binLo(i) + frac * width_;
        }
        cum = next;
    }
    return hi_;
}

double
TimeSeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &x : samples_)
        s += x.value;
    return s / static_cast<double>(samples_.size());
}

void
TimeWeighted::update(Cycle now, double new_value)
{
    if (now < lastChange_)
        panic("TimeWeighted: time went backwards (%llu < %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(lastChange_));
    integral_ += value_ * static_cast<double>(now - lastChange_);
    lastChange_ = now;
    value_ = new_value;
}

double
TimeWeighted::integral(Cycle now) const
{
    return integral_ + value_ * static_cast<double>(now - lastChange_);
}

double
TimeWeighted::average(Cycle now) const
{
    if (now <= resetAt_)
        return value_;
    return integral(now) / static_cast<double>(now - resetAt_);
}

void
TimeWeighted::reset(Cycle now)
{
    integral_ = 0.0;
    lastChange_ = now;
    resetAt_ = now;
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace oenet
