/**
 * @file
 * Status / error reporting in the gem5 tradition:
 *
 *   panic()  -- an internal invariant broke; abort() so the bug is loud.
 *   fatal()  -- the user asked for something impossible; exit(1).
 *   warn()   -- questionable but survivable condition.
 *   inform() -- plain status output.
 *
 * All take printf-style format strings. Output goes to stderr except
 * inform(), which goes to stdout.
 */

#ifndef OENET_COMMON_LOG_HH
#define OENET_COMMON_LOG_HH

#include <cstdarg>

namespace oenet {

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true if output is currently suppressed. */
bool quiet();

} // namespace oenet

#endif // OENET_COMMON_LOG_HH
