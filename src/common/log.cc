#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace oenet {

namespace {
bool g_quiet = false;

void
vreport(FILE *stream, const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stream, "%s: ", tag);
    std::vfprintf(stream, fmt, ap);
    std::fprintf(stream, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info", fmt, ap);
    va_end(ap);
}

void
setQuiet(bool quiet)
{
    g_quiet = quiet;
}

bool
quiet()
{
    return g_quiet;
}

} // namespace oenet
