#include "common/fs.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"

namespace oenet {

namespace {

std::string
errnoMessage(const char *op, const std::string &path)
{
    return std::string(op) + " '" + path +
           "' failed: " + std::strerror(errno);
}

void
setError(std::string *error, const char *op, const std::string &path)
{
    if (error)
        *error = errnoMessage(op, path);
}

/** Directory part of @p path ("." when the path has no slash). */
std::string
dirnameOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

} // namespace

std::string
atomicTempPath(const std::string &path)
{
    return path + ".tmp." + std::to_string(static_cast<long>(getpid()));
}

bool
atomicWriteFile(const std::string &path, const std::string &data,
                std::string *error)
{
    std::string tmp = atomicTempPath(path);

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
        setError(error, "open", tmp);
        return false;
    }

    const char *p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write", tmp);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }

    if (::fsync(fd) != 0) {
        setError(error, "fsync", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setError(error, "close", tmp);
        ::unlink(tmp.c_str());
        return false;
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename", tmp);
        ::unlink(tmp.c_str());
        return false;
    }

    // Make the rename durable: fsync the directory entry. Failure here
    // is not worth unwinding (the data is already complete and in
    // place); surface it only if the directory cannot even be opened
    // read-only, which would point at a deeper problem.
    std::string dir = dirnameOf(path);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

void
atomicWriteFileOrDie(const std::string &path, const std::string &data)
{
    std::string error;
    if (!atomicWriteFile(path, data, &error))
        fatal("atomic write of '%s': %s", path.c_str(), error.c_str());
}

bool
atomicPublishFile(const std::string &tmp, const std::string &path,
                  std::string *error)
{
    // fsync works on a read-only descriptor; the writer already closed
    // its own.
    int fd = ::open(tmp.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        setError(error, "open", tmp);
        return false;
    }
    if (::fsync(fd) != 0) {
        setError(error, "fsync", tmp);
        ::close(fd);
        return false;
    }
    ::close(fd);

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename", tmp);
        ::unlink(tmp.c_str());
        return false;
    }

    std::string dir = dirnameOf(path);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

bool
readFile(const std::string &path, std::string *out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        errno = errno ? errno : ENOENT;
        setError(error, "open", path);
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        setError(error, "read", path);
        return false;
    }
    *out = ss.str();
    return true;
}

} // namespace oenet
