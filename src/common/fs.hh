/**
 * @file
 * Crash-safe file plumbing shared by every writer of results the user
 * cannot afford to lose (sweep manifests, CSVs, journals, traces).
 *
 * The core primitive is write-temp + fsync + rename: the destination
 * path either keeps its previous contents or atomically becomes the
 * complete new contents — a crash mid-write can never leave a torn
 * file at the published name. POSIX rename(2) within one directory is
 * atomic; the temp file lives next to the destination so the rename
 * never crosses filesystems.
 */

#ifndef OENET_COMMON_FS_HH
#define OENET_COMMON_FS_HH

#include <string>

namespace oenet {

/**
 * Atomically replace @p path with @p data: write "<path>.tmp.<pid>",
 * fsync it, rename over @p path, then fsync the containing directory
 * so the rename itself is durable.
 *
 * @return true on success; on failure, fills @p error (when non-null)
 * with a message carrying the failing syscall and errno context, and
 * removes the temp file.
 */
bool atomicWriteFile(const std::string &path, const std::string &data,
                     std::string *error = nullptr);

/** atomicWriteFile or die: fatal() with the errno-context message. */
void atomicWriteFileOrDie(const std::string &path,
                          const std::string &data);

/**
 * Publish an already-written temp file: fsync @p tmp, rename it over
 * @p path, fsync the containing directory. For writers that stream to
 * "<path>.tmp.<pid>" themselves (e.g. trace sinks) instead of staging
 * the whole payload in memory.
 */
bool atomicPublishFile(const std::string &tmp, const std::string &path,
                       std::string *error = nullptr);

/** The temp-file name atomicWriteFile-style writers stage under:
 *  "<path>.tmp.<pid>". */
std::string atomicTempPath(const std::string &path);

/** Read a whole file into @p out. @return false (with @p error filled
 *  when non-null) if the file cannot be opened or read. */
bool readFile(const std::string &path, std::string *out,
              std::string *error = nullptr);

} // namespace oenet

#endif // OENET_COMMON_FS_HH
