/**
 * @file
 * Fundamental scalar types shared across all oenet subsystems.
 */

#ifndef OENET_COMMON_TYPES_HH
#define OENET_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace oenet {

/** Router-core clock cycle count. The router core runs at a fixed
 *  frequency (625 MHz in the reference system), so a Cycle is the
 *  natural simulation time unit. */
using Cycle = std::uint64_t;

/** A cycle value that is never reached. */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Identifier of a processing node (0 .. numNodes-1). */
using NodeId = std::uint32_t;

/** Identifier of a packet, unique over a simulation run. */
using PacketId = std::uint64_t;

/** Invalid marker for ports / VCs / indices. */
inline constexpr int kInvalid = -1;

} // namespace oenet

#endif // OENET_COMMON_TYPES_HH
