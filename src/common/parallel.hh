/**
 * @file
 * Minimal worker-pool primitive shared by everything that fans
 * independent work items across threads (the sweep runner above all).
 *
 * Design rules that keep parallel runs bit-identical to serial ones:
 *
 *  - work items must be self-contained (no shared mutable state);
 *  - the *assignment* of items to threads is dynamic (an atomic
 *    counter), but nothing about an item's execution may depend on
 *    which worker ran it or in what order;
 *  - jobs == 1 runs everything inline on the calling thread — the
 *    exact serial behavior, no pool involved.
 */

#ifndef OENET_COMMON_PARALLEL_HH
#define OENET_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace oenet {

/** Worker count a "use the hardware" request resolves to (>= 1). */
int hardwareJobs();

/** Resolve a --jobs request against @p items work items: 0 (or any
 *  non-positive value) means hardwareJobs(); never more threads than
 *  items; at least 1. */
int effectiveJobs(int jobs, std::size_t items);

/**
 * Run fn(index, worker) for every index in [0, n), sharded across
 * effectiveJobs(jobs, n) threads. Indices are claimed from a shared
 * atomic counter, so long items do not stall the queue behind them.
 * @p worker is in [0, jobs) and is stable for the duration of one
 * call — use it to index per-worker accumulators. Blocks until all
 * items finish; the first exception thrown by any item is rethrown.
 */
void parallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t index, int worker)> &fn);

} // namespace oenet

#endif // OENET_COMMON_PARALLEL_HH
