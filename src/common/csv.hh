/**
 * @file
 * Minimal CSV emission used by the benchmark harness to dump the series
 * behind every regenerated figure next to the human-readable table.
 */

#ifndef OENET_COMMON_CSV_HH
#define OENET_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace oenet {

class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write the header row. Must be the first row written. */
    void header(const std::vector<std::string> &columns);

    /** Append one row of string cells (quoted if needed). */
    void row(const std::vector<std::string> &cells);

    /** Append one row of numeric cells. */
    void rowNumeric(const std::vector<double> &cells, int precision = 6);

    /** Rows written so far, excluding the header. */
    std::size_t rowCount() const { return rows_; }

    const std::string &path() const { return path_; }

  private:
    void writeCells(const std::vector<std::string> &cells);

    std::string path_;
    std::ofstream out_;
    std::size_t rows_ = 0;
    bool wroteHeader_ = false;
};

/** Quote a CSV cell if it contains separators/quotes/newlines. */
std::string csvQuote(const std::string &cell);

} // namespace oenet

#endif // OENET_COMMON_CSV_HH
