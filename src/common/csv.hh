/**
 * @file
 * Minimal CSV emission used by the benchmark harness to dump the series
 * behind every regenerated figure next to the human-readable table.
 *
 * Rows accumulate in memory and the file is published atomically
 * (write-temp + fsync + rename, common/fs.hh) on close() or
 * destruction: a run that is killed mid-sweep never leaves a torn CSV
 * where a previous complete one stood.
 */

#ifndef OENET_COMMON_CSV_HH
#define OENET_COMMON_CSV_HH

#include <string>
#include <vector>

namespace oenet {

class CsvWriter
{
  public:
    /** Stage output for @p path; the file appears atomically when the
     *  writer is closed or destroyed. */
    explicit CsvWriter(const std::string &path);

    /** Publishes via close() if still open; any failure is fatal()
     *  there, never silently swallowed. */
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write the header row. Must be the first row written. */
    void header(const std::vector<std::string> &columns);

    /** Append one row of string cells (quoted if needed). */
    void row(const std::vector<std::string> &cells);

    /** Append one row of numeric cells. */
    void rowNumeric(const std::vector<double> &cells, int precision = 6);

    /** Atomically publish the accumulated rows to path(); fatal() with
     *  errno context on I/O failure. Idempotent. */
    void close();

    /** Rows written so far, excluding the header. */
    std::size_t rowCount() const { return rows_; }

    const std::string &path() const { return path_; }

  private:
    void writeCells(const std::vector<std::string> &cells);

    std::string path_;
    std::string buffer_;
    std::size_t rows_ = 0;
    bool wroteHeader_ = false;
    bool closed_ = false;
};

/** Quote a CSV cell if it contains separators/quotes/newlines. */
std::string csvQuote(const std::string &cell);

} // namespace oenet

#endif // OENET_COMMON_CSV_HH
