#include "common/csv.hh"

#include "common/fs.hh"
#include "common/log.hh"
#include "common/stats.hh"

namespace oenet {

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(const std::string &path) : path_(path)
{
}

CsvWriter::~CsvWriter()
{
    close();
}

void
CsvWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    atomicWriteFileOrDie(path_, buffer_);
}

void
CsvWriter::writeCells(const std::vector<std::string> &cells)
{
    if (closed_)
        panic("CsvWriter: row written after close for '%s'",
              path_.c_str());
    for (std::size_t i = 0; i < cells.size(); i++) {
        if (i)
            buffer_ += ',';
        buffer_ += csvQuote(cells[i]);
    }
    buffer_ += '\n';
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    if (wroteHeader_)
        panic("CsvWriter: header written twice for '%s'", path_.c_str());
    writeCells(columns);
    wroteHeader_ = true;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    writeCells(cells);
    rows_++;
}

void
CsvWriter::rowNumeric(const std::vector<double> &cells, int precision)
{
    std::vector<std::string> s;
    s.reserve(cells.size());
    for (double v : cells)
        s.push_back(formatDouble(v, precision));
    row(s);
}

} // namespace oenet
