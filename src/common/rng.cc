#include "common/rng.hh"

#include <cmath>

#include "common/log.hh"

namespace oenet {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Stateless splitmix64 finalizer (full-avalanche 64-bit mix). */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitmix64(x);
    // A state of all zeros is the one illegal state; splitmix64 cannot
    // produce four zero outputs in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random bits into the mantissa for a uniform double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt: n must be > 0");
    // Debiased modulo via rejection.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return ~0ull; // never
    // Inversion: floor(ln(U) / ln(1-p)).
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth: multiply uniforms until the product drops below e^-mean.
        double limit = std::exp(-mean);
        double prod = uniform();
        std::uint64_t k = 0;
        while (prod > limit) {
            prod *= uniform();
            k++;
        }
        return k;
    }
    // Normal approximation with continuity correction; adequate for the
    // aggregate arrival rates the simulator uses.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    double v = mean + std::sqrt(mean) * z + 0.5;
    return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

std::uint64_t
deriveStreamSeed(std::uint64_t base, std::uint64_t index)
{
    // Mix base and index through independent finalizer passes before
    // combining, so (base+1, index) and (base, index+1) cannot collide
    // the way a linear combination would. The rotation decorrelates the
    // two hash images; the final pass restores full avalanche.
    std::uint64_t a = mix64(base ^ 0x6A09E667F3BCC909ull);
    std::uint64_t b = mix64(index + 0x9E3779B97F4A7C15ull);
    return mix64(a ^ rotl(b, 23));
}

void
Rng::jump()
{
    static const std::uint64_t kJump[] = {
        0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
        0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull,
    };
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; b++) {
            if (jump & (1ull << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            next();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

} // namespace oenet
