/**
 * @file
 * Key/value parameter store.
 *
 * Every oenet binary is parameterized through a Config: a flat map from
 * dotted names ("policy.window_cycles") to string values, populated from
 * "key=value" command-line tokens and/or simple config files (one
 * key=value per line, '#' comments). Typed accessors convert on read and
 * fall back to defaults, recording which keys were touched so unknown
 * keys can be reported.
 */

#ifndef OENET_COMMON_CONFIG_HH
#define OENET_COMMON_CONFIG_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace oenet {

class Config
{
  public:
    Config() = default;

    /** Set a key explicitly (overwrites). */
    void set(const std::string &key, const std::string &value);

    /** Parse a single "key=value" token. @return false on bad syntax. */
    bool parseToken(const std::string &token);

    /** Parse argv-style tokens; calls fatal() on malformed input. */
    void parseArgs(int argc, const char *const *argv);

    /** Load key=value lines from @p path; fatal() if unreadable. */
    void loadFile(const std::string &path);

    /** @return true if @p key was explicitly set. */
    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    long getInt(const std::string &key, long def) const;
    unsigned long getUint(const std::string &key, unsigned long def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Keys that were set but never read through a getter. */
    std::vector<std::string> unusedKeys() const;

    /** All stored key/value pairs, sorted by key. */
    std::vector<std::pair<std::string, std::string>> items() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::set<std::string> used_;
};

} // namespace oenet

#endif // OENET_COMMON_CONFIG_HH
