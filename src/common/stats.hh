/**
 * @file
 * Statistics primitives used throughout the simulator:
 *
 *   RunningStat  -- streaming mean / variance / min / max (Welford).
 *   Histogram    -- fixed-width bins with under/overflow, quantiles.
 *   TimeSeries   -- (cycle, value) samples for figure generation.
 *   TimeWeighted -- integral of a piecewise-constant signal over time,
 *                   used for buffer occupancy (B_u) and link power so we
 *                   never have to sample per cycle.
 */

#ifndef OENET_COMMON_STATS_HH
#define OENET_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace oenet {

/** Streaming mean/variance accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    /** Fold @p other into this accumulator as if every sample it saw
     *  had been add()ed here (Chan et al. parallel combination — the
     *  join step for per-worker accumulators in parallel sweeps). The
     *  result is order-independent up to floating-point rounding. */
    void merge(const RunningStat &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Fixed-width-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void reset();

    /** Fold @p other (same lo/hi/bin layout; panics otherwise) into
     *  this histogram — the join step for per-worker histograms. */
    void merge(const Histogram &other);

    std::size_t count() const { return count_; }
    std::size_t bin(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    double binLo(std::size_t i) const;
    double binHi(std::size_t i) const;

    /** Approximate quantile (q in [0,1]) by linear scan of bins. */
    double quantile(double q) const;

  private:
    double lo_, hi_, width_;
    std::vector<std::size_t> bins_;
    std::size_t underflow_ = 0, overflow_ = 0, count_ = 0;
};

/** Ordered (cycle, value) samples; the backing store for figures. */
class TimeSeries
{
  public:
    struct Sample
    {
        Cycle cycle;
        double value;
    };

    void add(Cycle cycle, double value) { samples_.push_back({cycle, value}); }
    void reset() { samples_.clear(); }
    const std::vector<Sample> &samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }

    /** Mean of all sample values (unweighted). */
    double mean() const;

  private:
    std::vector<Sample> samples_;
};

/**
 * Integral of a piecewise-constant signal. The owner calls update(now,
 * newValue) whenever the signal changes; the accumulated integral makes
 * time-averaged queries O(1) with no per-cycle work.
 */
class TimeWeighted
{
  public:
    explicit TimeWeighted(double initial = 0.0) : value_(initial) {}

    /** Change the signal value at time @p now. */
    void update(Cycle now, double new_value);

    /** Current signal value. */
    double value() const { return value_; }

    /** Integral of the signal from t=lastReset to @p now. */
    double integral(Cycle now) const;

    /** Time-average of the signal from t=lastReset to @p now. */
    double average(Cycle now) const;

    /** Restart integration at @p now, keeping the current value. */
    void reset(Cycle now);

  private:
    double value_;
    double integral_ = 0.0;
    Cycle lastChange_ = 0;
    Cycle resetAt_ = 0;
};

/** Format helper: fixed precision double to string. */
std::string formatDouble(double v, int precision = 4);

} // namespace oenet

#endif // OENET_COMMON_STATS_HH
