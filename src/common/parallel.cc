#include "common/parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace oenet {

int
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

int
effectiveJobs(int jobs, std::size_t items)
{
    if (jobs <= 0)
        jobs = hardwareJobs();
    if (items < static_cast<std::size_t>(jobs))
        jobs = static_cast<int>(items);
    return jobs < 1 ? 1 : jobs;
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(std::size_t, int)> &fn)
{
    if (n == 0)
        return;
    jobs = effectiveJobs(jobs, n);

    if (jobs == 1) {
        for (std::size_t i = 0; i < n; i++)
            fn(i, 0);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex errorMutex;

    auto worker = [&](int id) {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i, id);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                // Drain the queue so siblings finish promptly.
                next.store(n, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int id = 0; id < jobs; id++)
        pool.emplace_back(worker, id);
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace oenet
