/**
 * @file
 * Growable power-of-two ring buffer for hot-path FIFO queues.
 *
 * std::deque pays a heap allocation roughly every page of elements and
 * double indirection on every access; the node source queue sits on the
 * injection fast path, so it uses this flat ring instead. Capacity is
 * always a power of two (index masking instead of modulo) and doubles
 * when full, preserving FIFO order — semantically an unbounded queue,
 * physically one contiguous allocation that is reused for the rest of
 * the run.
 */

#ifndef OENET_COMMON_RING_BUFFER_HH
#define OENET_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace oenet {

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }

    void push_back(const T &value)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & (slots_.size() - 1)] = value;
        size_++;
    }

    void push_back(T &&value)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(value);
        size_++;
    }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    /** Element @p i positions behind the front (0 = front). */
    const T &at(std::size_t i) const
    {
        return slots_[(head_ + i) & (slots_.size() - 1)];
    }

    void pop_front()
    {
        slots_[head_] = T{}; // drop payload eagerly (no dangling state)
        head_ = (head_ + 1) & (slots_.size() - 1);
        size_--;
    }

    void clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    void grow()
    {
        std::vector<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < size_; i++)
            bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
        slots_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace oenet

#endif // OENET_COMMON_RING_BUFFER_HH
