/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * oenet simulations must be exactly reproducible for a given seed, so we
 * carry our own generator (xoshiro256**, seeded through splitmix64)
 * rather than depending on standard-library distribution internals that
 * vary across implementations. All distributions used by the simulator
 * (uniform, bernoulli, geometric inter-arrival, exponential, zipf) are
 * implemented here from first principles.
 */

#ifndef OENET_COMMON_RNG_HH
#define OENET_COMMON_RNG_HH

#include <cstdint>

namespace oenet {

/**
 * xoshiro256** generator. Small, fast, and high quality; each traffic
 * source owns its own instance so sources are independent streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Bernoulli trial with probability @p p of true. */
    bool bernoulli(double p);

    /**
     * Number of whole failures before the first success of a Bernoulli
     * process with per-trial probability @p p. Used for arrival-skip
     * sampling: if a source injects with probability p each cycle, the
     * gap to the next injection is geometric(p) + 1 cycles.
     */
    std::uint64_t geometric(double p);

    /** Exponential variate with mean @p mean. */
    double exponential(double mean);

    /** Poisson variate with the given mean (Knuth for small means,
     *  normal approximation above 30). */
    std::uint64_t poisson(double mean);

    /** Jump to an independent stream (2^128 steps ahead). */
    void jump();

  private:
    std::uint64_t s_[4];
};

/**
 * Derive the seed of an indexed substream from a base seed:
 * seed = hash(base, index) through two decorrelated splitmix64-style
 * finalizer passes. Used by the sweep runner to give every sweep point
 * its own independent stream that depends only on (base seed, point
 * index) — never on thread count, scheduling, or execution order — so
 * sweeps are bit-identical at any --jobs value. Distinct indices under
 * the same base, and the same index under distinct bases, yield
 * unrelated seeds.
 */
std::uint64_t deriveStreamSeed(std::uint64_t base, std::uint64_t index);

} // namespace oenet

#endif // OENET_COMMON_RNG_HH
