/**
 * @file
 * Subprocess isolation primitives for the sweep runner: run a work
 * item in a forked child with its result returned over a pipe, so a
 * segfault, OOM kill, or hang in one item cannot take down the
 * driving process. The parent enforces a wall-clock deadline with
 * poll(2) and SIGKILLs + reaps a child that exceeds it.
 *
 * The child must confine itself to computing and writing its payload:
 * the body runs after fork() in a multi-threaded parent, so it must
 * not touch locks other threads might have held (our bodies build a
 * fresh simulation and write a trivially-copyable result — malloc is
 * made fork-safe by glibc's pthread_atfork handlers). The child exits
 * with _exit(), never exit(), so no parent-owned atexit state runs
 * twice.
 */

#ifndef OENET_COMMON_PROC_HH
#define OENET_COMMON_PROC_HH

#include <functional>
#include <string>

namespace oenet {

/** Outcome of one isolated child execution. */
struct ChildResult
{
    enum class Status
    {
        kOk,       ///< child exited 0 and delivered a payload
        kExited,   ///< child exited nonzero (code holds the exit code)
        kSignaled, ///< child died on a signal (code holds the signal)
        kTimeout,  ///< deadline hit; child was SIGKILLed and reaped
        kError,    ///< fork/pipe/read machinery failed (error filled)
    };

    Status status = Status::kError;
    int code = 0;        ///< exit code or signal number
    std::string payload; ///< bytes the child wrote (kOk / kExited)
    std::string error;   ///< errno context for kError

    bool ok() const { return status == Status::kOk; }

    /** "exit 3" / "signal 11 (SIGSEGV)" / "timeout" for messages. */
    std::string describe() const;
};

/**
 * Fork a child, run @p body(write_fd) in it, and read everything the
 * child writes to @p write_fd until EOF or @p timeout_ms elapses
 * (<= 0 disables the deadline). The body should write its result and
 * return; the wrapper then _exit(0)s. An exception escaping the body
 * becomes _exit(kChildExceptionExit). On timeout the child is killed
 * with SIGKILL and reaped — no zombies are left behind in any path.
 *
 * Thread-safe: may be called concurrently from worker threads; each
 * call owns its pipe and child.
 */
ChildResult runInChild(const std::function<void(int write_fd)> &body,
                       double timeout_ms);

/** Exit code runInChild's wrapper uses when the body throws. */
inline constexpr int kChildExceptionExit = 125;

/** Write exactly @p len bytes to @p fd, retrying on EINTR/short
 *  writes. @return false on write error (e.g. closed pipe). */
bool writeAll(int fd, const void *data, std::size_t len);

} // namespace oenet

#endif // OENET_COMMON_PROC_HH
