/**
 * @file
 * Unit helpers. All physical quantities in oenet are carried as doubles
 * in a single canonical unit per dimension, declared here once:
 *
 *   bit rate      : Gb/s
 *   voltage       : V
 *   current       : mA
 *   power (elec)  : mW
 *   power (opt)   : mW   (dBm helpers provided)
 *   energy        : mJ
 *   capacitance   : pF
 *   time          : router cycles (see types.hh) or seconds for wall
 *                   quantities such as attenuator response
 *
 * Helper functions convert from other customary units so call sites can
 * state values the way the paper quotes them.
 */

#ifndef OENET_COMMON_UNITS_HH
#define OENET_COMMON_UNITS_HH

#include <cmath>

#include "common/types.hh"

namespace oenet {

/** Reference router core frequency: 625 MHz (Section 4.1). */
inline constexpr double kRouterFreqHz = 625e6;

/** Flit width in bits (Section 4.1). */
inline constexpr int kFlitBits = 16;

/** Maximum link bit rate: 10 Gb/s (Section 4.1). */
inline constexpr double kMaxBitRateGbps = 10.0;

/** Seconds per router cycle. */
inline constexpr double kSecondsPerCycle = 1.0 / kRouterFreqHz;

/** Convert a duration in microseconds to router cycles (rounded). */
constexpr Cycle
microsToCycles(double us)
{
    return static_cast<Cycle>(us * 1e-6 * kRouterFreqHz + 0.5);
}

/** Convert router cycles to microseconds. */
constexpr double
cyclesToMicros(Cycle cycles)
{
    return static_cast<double>(cycles) * kSecondsPerCycle * 1e6;
}

/** Flits per router cycle a link moves at bit rate @p br_gbps.
 *  At 10 Gb/s with 16-bit flits and a 625 MHz core this is exactly 1. */
constexpr double
flitsPerCycle(double br_gbps)
{
    return br_gbps * 1e9 / (kFlitBits * kRouterFreqHz);
}

/** Router cycles needed to serialize one flit at @p br_gbps. */
constexpr double
cyclesPerFlit(double br_gbps)
{
    return 1.0 / flitsPerCycle(br_gbps);
}

/** Optical power: dBm to mW. */
inline double
dbmToMw(double dbm)
{
    return std::pow(10.0, dbm / 10.0);
}

/** Optical power: mW to dBm. */
inline double
mwToDbm(double mw)
{
    return 10.0 * std::log10(mw);
}

/** Apply a loss given in dB to a power in mW. */
inline double
applyLossDb(double mw, double loss_db)
{
    return mw * std::pow(10.0, -loss_db / 10.0);
}

/** Electron charge, C. */
inline constexpr double kElectronChargeC = 1.602176634e-19;

/** Planck constant, J*s. */
inline constexpr double kPlanckJs = 6.62607015e-34;

/** Speed of light, m/s. */
inline constexpr double kSpeedOfLightMps = 2.99792458e8;

/** Optical frequency (Hz) of a carrier at @p wavelength_nm. */
inline double
opticalFrequencyHz(double wavelength_nm)
{
    return kSpeedOfLightMps / (wavelength_nm * 1e-9);
}

} // namespace oenet

#endif // OENET_COMMON_UNITS_HH
