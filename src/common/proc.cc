#include "common/proc.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace oenet {

namespace {

std::string
errnoError(const char *op)
{
    return std::string(op) + " failed: " + std::strerror(errno);
}

/** Classify a waitpid status into the result (kOk decided by caller). */
void
classifyExit(int wstatus, ChildResult &result)
{
    if (WIFEXITED(wstatus)) {
        result.status = WEXITSTATUS(wstatus) == 0
                            ? ChildResult::Status::kOk
                            : ChildResult::Status::kExited;
        result.code = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
        result.status = ChildResult::Status::kSignaled;
        result.code = WTERMSIG(wstatus);
    } else {
        result.status = ChildResult::Status::kError;
        result.error = "unrecognized wait status";
    }
}

/** Block (retrying EINTR) until @p pid is reaped. */
int
reap(pid_t pid)
{
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    return wstatus;
}

} // namespace

std::string
ChildResult::describe() const
{
    switch (status) {
      case Status::kOk:
        return "ok";
      case Status::kExited:
        return "exit " + std::to_string(code);
      case Status::kSignaled:
        return "signal " + std::to_string(code) + " (" +
               strsignal(code) + ")";
      case Status::kTimeout:
        return "timeout";
      case Status::kError:
        return "error: " + error;
    }
    return "unknown";
}

bool
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

ChildResult
runInChild(const std::function<void(int write_fd)> &body,
           double timeout_ms)
{
    ChildResult result;

    int fds[2];
    if (::pipe(fds) != 0) {
        result.error = errnoError("pipe");
        return result;
    }
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);

    pid_t pid = ::fork();
    if (pid < 0) {
        result.error = errnoError("fork");
        ::close(fds[0]);
        ::close(fds[1]);
        return result;
    }

    if (pid == 0) {
        // Child: the write end is our only channel back. A SIGPIPE
        // (parent gave up) must not core-dump the child into a
        // confusing "signaled" classification.
        ::close(fds[0]);
        ::signal(SIGPIPE, SIG_IGN);
        try {
            body(fds[1]);
        } catch (...) {
            ::_exit(kChildExceptionExit);
        }
        ::_exit(0);
    }

    // Parent: drain the pipe under the deadline.
    ::close(fds[1]);
    auto start = std::chrono::steady_clock::now();
    bool timedOut = false;
    char buf[4096];
    for (;;) {
        int waitMs = -1;
        if (timeout_ms > 0) {
            double elapsed =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            double left = timeout_ms - elapsed;
            if (left <= 0) {
                timedOut = true;
                break;
            }
            // Round up so a sub-millisecond remainder still waits.
            waitMs = static_cast<int>(left) + 1;
        }

        struct pollfd pfd = {fds[0], POLLIN, 0};
        int pr = ::poll(&pfd, 1, waitMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            result.error = errnoError("poll");
            break;
        }
        if (pr == 0)
            continue; // deadline recheck at loop head

        ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            result.error = errnoError("read");
            break;
        }
        if (n == 0)
            break; // EOF: child closed its end (usually by exiting)
        result.payload.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);

    if (timedOut) {
        ::kill(pid, SIGKILL);
        reap(pid);
        result.status = ChildResult::Status::kTimeout;
        result.payload.clear();
        return result;
    }
    if (!result.error.empty()) {
        ::kill(pid, SIGKILL);
        reap(pid);
        result.status = ChildResult::Status::kError;
        return result;
    }

    classifyExit(reap(pid), result);
    return result;
}

} // namespace oenet
