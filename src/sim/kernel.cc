#include "sim/kernel.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/log.hh"

namespace oenet {

thread_local Kernel::Domain *Kernel::tlsDomain_ = nullptr;

namespace {

/** One spin-wait iteration: cheap CPU hint first, OS yield once the
 *  wait is clearly longer than a pipeline hiccup. */
inline void
spinPause(int &spins)
{
    if (++spins < 1024) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#endif
    } else {
        std::this_thread::yield();
    }
}

} // namespace

Kernel::Kernel()
{
    domains_.push_back(std::make_unique<Domain>());
    domains_[0]->index = 0;
}

Kernel::~Kernel()
{
    if (!workers_.empty()) {
        quit_.store(true, std::memory_order_relaxed);
        phaseGen_.fetch_add(1, std::memory_order_release);
        for (auto &w : workers_)
            w.join();
    }
}

void
Kernel::addTicking(Ticking *component)
{
    if (!component)
        panic("Kernel::addTicking: null component");
    if (component->kernel_ && component->kernel_ != this)
        panic("Kernel::addTicking: component already registered "
              "with another kernel");
    component->kernel_ = this;
    component->tickOrder_ = static_cast<std::uint32_t>(ticking_.size());
    component->domainIdx_ = 0;
    component->asleep_ = false;
    component->pendingWake_ = kNeverCycle;
    ticking_.push_back(component);
    Domain &dom = *domains_[0];
    dom.members.push_back(component); // appended in order: stays sorted
    dom.active.push_back(component);
}

void
Kernel::configureSharding(int shards)
{
    if (shards < 1)
        panic("Kernel::configureSharding: shards must be >= 1");
    if (phased_)
        panic("Kernel::configureSharding: already configured");
    if (now_ != 0)
        panic("Kernel::configureSharding: must run before the first step");
    phased_ = true;
    shards_ = shards;
    for (int d = 1; d <= shards; d++) {
        domains_.push_back(std::make_unique<Domain>());
        domains_.back()->index = d;
    }
    // The driving thread runs shard domain 1's phase itself; domains
    // 2..N each get a worker. One shard therefore needs no threads at
    // all while exercising the exact same phase structure.
    for (int d = 2; d <= shards; d++)
        workers_.emplace_back([this, d] { workerLoop(d); });
}

void
Kernel::setDomain(Ticking *component, int domain)
{
    if (!component || component->kernel_ != this)
        panic("Kernel::setDomain: component not registered here");
    if (domain < 0 || domain > shards_)
        panic("Kernel::setDomain: domain %d out of range [0, %d]",
              domain, shards_);
    if (now_ != 0)
        panic("Kernel::setDomain: must run before the first step");
    Domain &from = *domains_[component->domainIdx_];
    std::erase(from.members, component);
    std::erase(from.active, component);
    component->domainIdx_ = static_cast<std::uint16_t>(domain);
    Domain &to = *domains_[domain];
    auto by_order = [](const Ticking *a, const Ticking *b) {
        return a->tickOrder_ < b->tickOrder_;
    };
    to.members.insert(std::lower_bound(to.members.begin(),
                                       to.members.end(), component,
                                       by_order),
                      component);
    to.active.insert(std::lower_bound(to.active.begin(), to.active.end(),
                                      component, by_order),
                     component);
}

void
Kernel::setDomainPrePass(int domain, std::function<void(Cycle)> hook)
{
    if (domain < 1 || domain > shards_)
        panic("Kernel::setDomainPrePass: domain %d out of range [1, %d]",
              domain, shards_);
    domains_[domain]->prePass = std::move(hook);
}

void
Kernel::addPostPass(std::function<void(Cycle)> hook)
{
    postPass_.push_back(std::move(hook));
}

void
Kernel::markDomainWork(int domain)
{
    domains_[domain]->pendingWork = true;
}

int
Kernel::shardPassDomain()
{
    return tlsDomain_->index;
}

std::uint32_t
Kernel::shardPassOrder()
{
    return tlsDomain_->passOrder;
}

std::size_t
Kernel::activeCount() const
{
    std::size_t n = 0;
    for (const auto &dom : domains_)
        n += dom->active.size();
    return n;
}

void
Kernel::step()
{
    if (now_ == nextEpoch_) {
        epochHook_(now_);
        nextEpoch_ += epochInterval_;
    }
    events_.runDue(now_);
    // Serial phase: domain 0 on the driving thread. This is the whole
    // kernel when sharding is off.
    runDomainPass(*domains_[0], now_);
    if (phased_ && !shardsQuiet()) {
        for (int d = 1; d <= shards_; d++)
            domains_[d]->pendingWork = false;
        if (workers_.empty()) {
            for (int d = 1; d <= shards_; d++)
                runShardPhase(*domains_[d], now_);
        } else {
            phaseCycle_ = now_;
            phaseDone_.store(0, std::memory_order_relaxed);
            phaseGen_.fetch_add(1, std::memory_order_release);
            runShardPhase(*domains_[1], now_);
            const int expected = static_cast<int>(workers_.size());
            int spins = 0;
            while (phaseDone_.load(std::memory_order_acquire) < expected)
                spinPause(spins);
        }
        for (auto &hook : postPass_)
            hook(now_);
    }
    now_++;
}

void
Kernel::runDomainPass(Domain &dom, Cycle now)
{
    if (!idleElision_) {
        for (Ticking *t : dom.members) {
            dom.passOrder = t->tickOrder_;
            t->tick(now);
        }
        return;
    }
    // Admit every component whose timed wake is due. Entries are
    // lazily deleted: pendingWake_ is the authority, so a heap entry
    // that was superseded (component woke earlier and re-armed later)
    // is simply skipped.
    while (!dom.wakeHeap.empty() && dom.wakeHeap.top().at <= now) {
        Ticking *c = dom.wakeHeap.top().component;
        dom.wakeHeap.pop();
        if (c->asleep_ && c->pendingWake_ <= now)
            admit(dom, c);
    }
    dom.inTickPass = true;
    bool parked = false;
    // Indexed loop: wake edges may insert into active mid-pass, but
    // only at positions past the cursor (see wakeSleeping).
    for (std::size_t i = 0; i < dom.active.size(); i++) {
        Ticking *t = dom.active[i];
        dom.passOrder = t->tickOrder_;
        t->tick(now);
        Cycle wake = t->nextWakeCycle(now);
        // Park hysteresis: a component due again at now+2 would pay a
        // heap push plus an O(active) sorted re-admit just to skip a
        // single cycle; ticking it through the gap is cheaper. The
        // extra tick is a no-op by the quiescence contract (elision
        // off ticks everything every cycle and stays byte-identical),
        // so output is unchanged.
        if (wake > now + 2) {
            t->asleep_ = true;
            t->pendingWake_ = wake;
            if (wake != kNeverCycle)
                dom.wakeHeap.push(WakeEntry{wake, t});
            parked = true;
        }
    }
    dom.inTickPass = false;
    if (parked)
        std::erase_if(dom.active,
                      [](const Ticking *t) { return t->asleep_; });
}

void
Kernel::runShardPhase(Domain &dom, Cycle now)
{
    tlsDomain_ = &dom;
    dom.passOrder = 0; // pre-pass emissions sort before any tick's
    if (dom.prePass)
        dom.prePass(now);
    runDomainPass(dom, now);
    tlsDomain_ = nullptr;
}

bool
Kernel::shardsQuiet() const
{
    if (!idleElision_)
        return false;
    for (int d = 1; d <= shards_; d++) {
        const Domain &dom = *domains_[d];
        if (!dom.active.empty() || dom.pendingWork)
            return false;
        // A stale heap head (superseded wake) conservatively runs the
        // phase; the domain's own admit loop then discards it.
        if (!dom.wakeHeap.empty() && dom.wakeHeap.top().at <= now_)
            return false;
    }
    return true;
}

void
Kernel::workerLoop(int domain_index)
{
    std::uint64_t seen = 0;
    for (;;) {
        int spins = 0;
        while (phaseGen_.load(std::memory_order_acquire) == seen)
            spinPause(spins);
        seen++;
        if (quit_.load(std::memory_order_relaxed))
            return;
        runShardPhase(*domains_[domain_index], phaseCycle_);
        phaseDone_.fetch_add(1, std::memory_order_release);
    }
}

void
Kernel::admit(Domain &dom, Ticking *component)
{
    component->asleep_ = false;
    component->pendingWake_ = kNeverCycle;
    auto pos = std::lower_bound(
        dom.active.begin(), dom.active.end(), component,
        [](const Ticking *a, const Ticking *b) {
            return a->tickOrder_ < b->tickOrder_;
        });
    dom.active.insert(pos, component);
}

void
Kernel::wakeSleeping(Ticking *component, Cycle at)
{
    Domain &dom = *domains_[component->domainIdx_];
    if (tlsDomain_ && tlsDomain_ != &dom)
        panic("Kernel: cross-shard wake of component %u from domain %d "
              "during a parallel pass",
              component->tickOrder_, tlsDomain_->index);
    if (at <= now_) {
        // Due immediately. Mid-pass we may only insert past the
        // cursor; a wake aimed at an already-passed position ticks
        // next cycle instead — exactly when an always-awake component
        // would first observe the time-tagged interaction.
        if (!dom.inTickPass || component->tickOrder_ > dom.passOrder) {
            admit(dom, component);
            return;
        }
        at = now_ + 1;
    }
    if (at < component->pendingWake_) {
        component->pendingWake_ = at;
        dom.wakeHeap.push(WakeEntry{at, component});
    }
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; i++)
        step();
}

void
Kernel::setIdleElision(bool on)
{
    if (idleElision_ == on)
        return;
    idleElision_ = on;
    if (!on) {
        // Re-admit everyone; the classic full pass resumes next step.
        for (Ticking *t : ticking_) {
            t->asleep_ = false;
            t->pendingWake_ = kNeverCycle;
        }
        for (auto &dom : domains_) {
            dom->active = dom->members;
            dom->wakeHeap = {};
        }
    }
}

void
Kernel::setEpochHook(Cycle interval, std::function<void(Cycle)> hook)
{
    if (interval == 0 || !hook) {
        epochHook_ = nullptr;
        epochInterval_ = 0;
        nextEpoch_ = kNeverCycle;
        return;
    }
    epochHook_ = std::move(hook);
    epochInterval_ = interval;
    nextEpoch_ = now_ + interval;
}

void
Kernel::schedule(Cycle when, EventQueue::Action action)
{
    events_.schedule(when, std::move(action));
}

void
Kernel::schedulePeriodic(Cycle first, Cycle period,
                         std::function<void(Cycle)> action)
{
    if (period == 0)
        panic("Kernel::schedulePeriodic: zero period");
    events_.schedulePeriodic(first, period, std::move(action));
}

} // namespace oenet
