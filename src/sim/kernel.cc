#include "sim/kernel.hh"

#include <memory>
#include <utility>

#include "common/log.hh"

namespace oenet {

void
Kernel::addTicking(Ticking *component)
{
    if (!component)
        panic("Kernel::addTicking: null component");
    ticking_.push_back(component);
}

void
Kernel::step()
{
    if (now_ == nextEpoch_) {
        epochHook_(now_);
        nextEpoch_ += epochInterval_;
    }
    events_.runDue(now_);
    for (Ticking *t : ticking_)
        t->tick(now_);
    now_++;
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; i++)
        step();
}

void
Kernel::setEpochHook(Cycle interval, std::function<void(Cycle)> hook)
{
    if (interval == 0 || !hook) {
        epochHook_ = nullptr;
        epochInterval_ = 0;
        nextEpoch_ = kNeverCycle;
        return;
    }
    epochHook_ = std::move(hook);
    epochInterval_ = interval;
    nextEpoch_ = now_ + interval;
}

void
Kernel::schedule(Cycle when, EventQueue::Action action)
{
    events_.schedule(when, std::move(action));
}

void
Kernel::schedulePeriodic(Cycle first, Cycle period,
                         std::function<void(Cycle)> action)
{
    if (period == 0)
        panic("Kernel::schedulePeriodic: zero period");
    struct Repeater
    {
        Kernel *kernel;
        Cycle period;
        std::function<void(Cycle)> action;

        void fire(Cycle when) const
        {
            action(when);
            auto self = *this; // copy keeps the chain alive in the queue
            kernel->events_.schedule(
                when + period,
                [self, next = when + period]() { self.fire(next); });
        }
    };
    Repeater rep{this, period, std::move(action)};
    events_.schedule(first, [rep, first]() { rep.fire(first); });
}

} // namespace oenet
