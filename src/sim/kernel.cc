#include "sim/kernel.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/log.hh"

namespace oenet {

void
Kernel::addTicking(Ticking *component)
{
    if (!component)
        panic("Kernel::addTicking: null component");
    if (component->kernel_ && component->kernel_ != this)
        panic("Kernel::addTicking: component already registered "
              "with another kernel");
    component->kernel_ = this;
    component->tickOrder_ = static_cast<std::uint32_t>(ticking_.size());
    component->asleep_ = false;
    component->pendingWake_ = kNeverCycle;
    ticking_.push_back(component);
    active_.push_back(component); // appended in order: stays sorted
}

void
Kernel::step()
{
    if (now_ == nextEpoch_) {
        epochHook_(now_);
        nextEpoch_ += epochInterval_;
    }
    events_.runDue(now_);
    if (!idleElision_) {
        for (Ticking *t : ticking_)
            t->tick(now_);
        now_++;
        return;
    }
    // Admit every component whose timed wake is due. Entries are
    // lazily deleted: pendingWake_ is the authority, so a heap entry
    // that was superseded (component woke earlier and re-armed later)
    // is simply skipped.
    while (!wakeHeap_.empty() && wakeHeap_.top().at <= now_) {
        Ticking *c = wakeHeap_.top().component;
        wakeHeap_.pop();
        if (c->asleep_ && c->pendingWake_ <= now_)
            admit(c);
    }
    inTickPass_ = true;
    bool parked = false;
    // Indexed loop: wake edges may insert into active_ mid-pass, but
    // only at positions past the cursor (see wakeSleeping).
    for (std::size_t i = 0; i < active_.size(); i++) {
        Ticking *t = active_[i];
        passOrder_ = t->tickOrder_;
        t->tick(now_);
        Cycle wake = t->nextWakeCycle(now_);
        if (wake > now_ + 1) {
            t->asleep_ = true;
            t->pendingWake_ = wake;
            if (wake != kNeverCycle)
                wakeHeap_.push(WakeEntry{wake, t});
            parked = true;
        }
    }
    inTickPass_ = false;
    if (parked)
        std::erase_if(active_,
                      [](const Ticking *t) { return t->asleep_; });
    now_++;
}

void
Kernel::admit(Ticking *component)
{
    component->asleep_ = false;
    component->pendingWake_ = kNeverCycle;
    auto pos = std::lower_bound(
        active_.begin(), active_.end(), component,
        [](const Ticking *a, const Ticking *b) {
            return a->tickOrder_ < b->tickOrder_;
        });
    active_.insert(pos, component);
}

void
Kernel::wakeSleeping(Ticking *component, Cycle at)
{
    if (at <= now_) {
        // Due immediately. Mid-pass we may only insert past the
        // cursor; a wake aimed at an already-passed position ticks
        // next cycle instead — exactly when an always-awake component
        // would first observe the time-tagged interaction.
        if (!inTickPass_ || component->tickOrder_ > passOrder_) {
            admit(component);
            return;
        }
        at = now_ + 1;
    }
    if (at < component->pendingWake_) {
        component->pendingWake_ = at;
        wakeHeap_.push(WakeEntry{at, component});
    }
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; i++)
        step();
}

void
Kernel::setIdleElision(bool on)
{
    if (idleElision_ == on)
        return;
    idleElision_ = on;
    if (!on) {
        // Re-admit everyone; the classic full pass resumes next step.
        for (Ticking *t : ticking_) {
            t->asleep_ = false;
            t->pendingWake_ = kNeverCycle;
        }
        active_ = ticking_;
        wakeHeap_ = {};
    }
}

void
Kernel::setEpochHook(Cycle interval, std::function<void(Cycle)> hook)
{
    if (interval == 0 || !hook) {
        epochHook_ = nullptr;
        epochInterval_ = 0;
        nextEpoch_ = kNeverCycle;
        return;
    }
    epochHook_ = std::move(hook);
    epochInterval_ = interval;
    nextEpoch_ = now_ + interval;
}

void
Kernel::schedule(Cycle when, EventQueue::Action action)
{
    events_.schedule(when, std::move(action));
}

void
Kernel::schedulePeriodic(Cycle first, Cycle period,
                         std::function<void(Cycle)> action)
{
    if (period == 0)
        panic("Kernel::schedulePeriodic: zero period");
    events_.schedulePeriodic(first, period, std::move(action));
}

} // namespace oenet
