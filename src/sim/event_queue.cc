#include "sim/event_queue.hh"

#include <utility>

#include "common/log.hh"

namespace oenet {

void
EventQueue::schedule(Cycle when, Action action)
{
    if (when < lastRun_)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(lastRun_));
    heap_.push(Entry{when, nextSeq_++, std::move(action)});
}

void
EventQueue::runDue(Cycle now)
{
    lastRun_ = now;
    while (!heap_.empty() && heap_.top().when <= now) {
        // Copy out before pop so the action can schedule new events.
        Action action = heap_.top().action;
        heap_.pop();
        action();
    }
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNeverCycle : heap_.top().when;
}

} // namespace oenet
