#include "sim/event_queue.hh"

#include <utility>

#include "common/log.hh"

namespace oenet {

void
EventQueue::schedule(Cycle when, Action action)
{
    if (when < lastRun_)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(lastRun_));
    heap_.push(Entry{when, nextSeq_++, std::move(action), nullptr});
}

void
EventQueue::schedulePeriodic(Cycle first, Cycle period,
                             PeriodicAction action)
{
    if (period == 0)
        panic("EventQueue::schedulePeriodic: zero period");
    if (first < lastRun_)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(lastRun_));
    periodics_.push_back(
        std::make_unique<Periodic>(Periodic{period, std::move(action)}));
    heap_.push(Entry{first, nextSeq_++, Action{}, periodics_.back().get()});
}

void
EventQueue::runDue(Cycle now)
{
    lastRun_ = now;
    while (!heap_.empty() && heap_.top().when <= now) {
        const Entry &top = heap_.top();
        if (Periodic *p = top.periodic) {
            Cycle when = top.when;
            heap_.pop();
            // Action first, then re-arm: same relative order as a
            // self-rescheduling one-shot, so same-cycle event ordering
            // is unchanged.
            p->action(when);
            heap_.push(Entry{when + p->period, nextSeq_++, Action{}, p});
            continue;
        }
        // Move out before pop so the action can schedule new events;
        // the comparator never touches `action`, so mutating the top
        // entry's payload in place is safe.
        Action action = std::move(const_cast<Entry &>(top).action);
        heap_.pop();
        action();
    }
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNeverCycle : heap_.top().when;
}

} // namespace oenet
