/**
 * @file
 * Simulation kernel: owns the current cycle, the event queue, and the
 * ordered list of components ticked every cycle.
 *
 * Tick protocol per cycle t:
 *   1. events due at t fire (control plane: policies, transitions,
 *      scheduled injections);
 *   2. every registered Ticking component's tick(t) runs, in
 *      registration order.
 *
 * Cross-component interactions are time-tagged (link arrival cycles,
 * credit return cycles), so results do not depend on registration order;
 * the fixed order only pins down RNG-free determinism.
 */

#ifndef OENET_SIM_KERNEL_HH
#define OENET_SIM_KERNEL_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace oenet {

/** Interface for components that need per-cycle processing. */
class Ticking
{
  public:
    virtual ~Ticking() = default;
    virtual void tick(Cycle now) = 0;
};

class Kernel
{
  public:
    Kernel() = default;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register a component; the kernel does not take ownership. */
    void addTicking(Ticking *component);

    /** Advance one cycle: fire due events, tick all components. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /** Schedule a one-shot action. */
    void schedule(Cycle when, EventQueue::Action action);

    /** Schedule @p action every @p period cycles starting at @p first. */
    void schedulePeriodic(Cycle first, Cycle period,
                          std::function<void(Cycle)> action);

    /**
     * Install the epoch hook: @p hook runs at the start of every step
     * whose cycle is a whole multiple of @p interval after the current
     * cycle (first firing one interval from now), *before* that
     * cycle's events and ticks — i.e. it observes the state exactly as
     * of the epoch boundary. One hook at a time; interval 0 (or a null
     * hook) uninstalls it. Used for the windowed-metrics snapshots of
     * the trace layer; unlike schedulePeriodic it costs one branch per
     * step and nothing in the event queue.
     */
    void setEpochHook(Cycle interval, std::function<void(Cycle)> hook);

    Cycle now() const { return now_; }
    EventQueue &events() { return events_; }

  private:
    Cycle now_ = 0;
    EventQueue events_;
    std::vector<Ticking *> ticking_;

    // Epoch hook (metrics snapshots).
    std::function<void(Cycle)> epochHook_;
    Cycle epochInterval_ = 0;
    Cycle nextEpoch_ = kNeverCycle;
};

} // namespace oenet

#endif // OENET_SIM_KERNEL_HH
