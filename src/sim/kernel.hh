/**
 * @file
 * Simulation kernel: owns the current cycle, the event queue, and the
 * ordered list of components ticked every cycle.
 *
 * Tick protocol per cycle t:
 *   1. the epoch hook (if due) observes the state at the boundary;
 *   2. events due at t fire (control plane: policies, transitions,
 *      scheduled injections);
 *   3. every *active* Ticking component's tick(t) runs, in
 *      registration order.
 *
 * Cross-component interactions are time-tagged (link arrival cycles,
 * credit return cycles), so results do not depend on registration order;
 * the fixed order only pins down RNG-free determinism.
 *
 * Idle elision (on by default) removes quiescent components from the
 * per-cycle pass: after each tick the kernel asks nextWakeCycle(now),
 * and a component answering later than now+1 is parked until that cycle
 * or until an explicit wake edge (wakeAt) pulls it in earlier. A parked
 * component's tick would have been a no-op every skipped cycle, so the
 * simulated outcome — every byte of every manifest and trace — is
 * identical to ticking everything; see DESIGN.md section 9 for the
 * quiescence invariants each component maintains.
 */

#ifndef OENET_SIM_KERNEL_HH
#define OENET_SIM_KERNEL_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace oenet {

class Kernel;

/** Interface for components that need per-cycle processing. */
class Ticking
{
  public:
    virtual ~Ticking() = default;
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle this component could need to tick again,
     * asked by the kernel right after tick(now). Answering now+1 (the
     * default) keeps the component in every cycle's pass; anything
     * later parks it until that cycle (kNeverCycle = indefinitely,
     * until a wake edge). A sleeping component must be woken by
     * whoever hands it work (see wakeAt); the kernel never polls it.
     */
    virtual Cycle nextWakeCycle(Cycle now) { return now + 1; }

    /**
     * Wake edge: ensure this component ticks at cycle @p at (or the
     * next executable cycle if @p at has passed). No-op while the
     * component is active — an active component re-arms itself from
     * its own state via nextWakeCycle, which is always at least as
     * accurate as any external hint.
     */
    void wakeAt(Cycle at);

    /** True while parked by the idle-elision scheduler. */
    bool asleep() const { return asleep_; }

  private:
    friend class Kernel;
    Kernel *kernel_ = nullptr;     ///< set by Kernel::addTicking
    std::uint32_t tickOrder_ = 0;  ///< registration index (tick order)
    bool asleep_ = false;
    Cycle pendingWake_ = kNeverCycle; ///< authoritative earliest wake
};

class Kernel
{
  public:
    Kernel() = default;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register a component; the kernel does not take ownership. */
    void addTicking(Ticking *component);

    /** Advance one cycle: fire due events, tick active components. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /** Schedule a one-shot action. */
    void schedule(Cycle when, EventQueue::Action action);

    /** Schedule @p action every @p period cycles starting at @p first.
     *  The closure is stored once in the event queue and re-armed in
     *  place — no per-firing allocation. */
    void schedulePeriodic(Cycle first, Cycle period,
                          std::function<void(Cycle)> action);

    /**
     * Install the epoch hook: @p hook runs at the start of every step
     * whose cycle is a whole multiple of @p interval after the current
     * cycle (first firing one interval from now), *before* that
     * cycle's events and ticks — i.e. it observes the state exactly as
     * of the epoch boundary. One hook at a time; interval 0 (or a null
     * hook) uninstalls it. Used for the windowed-metrics snapshots of
     * the trace layer; unlike schedulePeriodic it costs one branch per
     * step and nothing in the event queue.
     */
    void setEpochHook(Cycle interval, std::function<void(Cycle)> hook);

    /**
     * Enable or disable idle elision (default on). Disabling mid-run
     * re-admits every parked component so the classic
     * tick-everything-every-cycle pass resumes; both settings produce
     * bit-identical simulations.
     */
    void setIdleElision(bool on);
    bool idleElision() const { return idleElision_; }

    /** Components in the per-cycle pass right now (diagnostics). */
    std::size_t activeCount() const { return active_.size(); }
    std::size_t tickingCount() const { return ticking_.size(); }

    Cycle now() const { return now_; }
    EventQueue &events() { return events_; }

  private:
    friend class Ticking;

    /** Re-admit a parked component into the sorted active list. */
    void admit(Ticking *component);

    /** Handle Ticking::wakeAt for a parked component. */
    void wakeSleeping(Ticking *component, Cycle at);

    Cycle now_ = 0;
    EventQueue events_;
    std::vector<Ticking *> ticking_; ///< all components, registration order
    std::vector<Ticking *> active_;  ///< awake subset, same order

    struct WakeEntry
    {
        Cycle at;
        Ticking *component;
    };
    struct WakeLater
    {
        bool operator()(const WakeEntry &a, const WakeEntry &b) const
        {
            return a.at > b.at;
        }
    };
    /** Timed wakes; lazily deleted — Ticking::pendingWake_ is the
     *  authority, stale entries are skipped on pop. */
    std::priority_queue<WakeEntry, std::vector<WakeEntry>, WakeLater>
        wakeHeap_;

    bool idleElision_ = true;
    bool inTickPass_ = false;
    std::uint32_t passOrder_ = 0; ///< tickOrder_ of component mid-tick

    // Epoch hook (metrics snapshots).
    std::function<void(Cycle)> epochHook_;
    Cycle epochInterval_ = 0;
    Cycle nextEpoch_ = kNeverCycle;
};

inline void
Ticking::wakeAt(Cycle at)
{
    if (asleep_)
        kernel_->wakeSleeping(this, at);
}

} // namespace oenet

#endif // OENET_SIM_KERNEL_HH
