/**
 * @file
 * Simulation kernel: owns the current cycle, the event queue, and the
 * ordered list of components ticked every cycle.
 *
 * Tick protocol per cycle t:
 *   1. the epoch hook (if due) observes the state at the boundary;
 *   2. events due at t fire (control plane: policies, transitions,
 *      scheduled injections);
 *   3. every *active* Ticking component's tick(t) runs, in
 *      registration order.
 *
 * Cross-component interactions are time-tagged (link arrival cycles,
 * credit return cycles), so results do not depend on registration order;
 * the fixed order only pins down RNG-free determinism.
 *
 * Idle elision (on by default) removes quiescent components from the
 * per-cycle pass: after each tick the kernel asks nextWakeCycle(now),
 * and a component answering later than now+1 is parked until that cycle
 * or until an explicit wake edge (wakeAt) pulls it in earlier. A parked
 * component's tick would have been a no-op every skipped cycle, so the
 * simulated outcome — every byte of every manifest and trace — is
 * identical to ticking everything; see DESIGN.md section 9 for the
 * quiescence invariants each component maintains.
 *
 * Sharded execution (configureSharding) splits the per-cycle pass into
 * tick domains: domain 0 ticks serially on the driving thread (the
 * traffic pump and anything else that touches global state), domains
 * 1..N are shards whose passes run concurrently, one thread per shard,
 * separated by a barrier every cycle (the conservative-lookahead
 * quantum degenerates to one cycle here because credits apply at now+1
 * and the minimum link propagation is one cycle). Components in
 * different shards may only interact through phase-separated boundary
 * queues drained by per-domain pre-pass hooks; see DESIGN.md section
 * 11 and docs/DETERMINISM.md for the full contract. Each domain keeps
 * its own active set and wake heap, so idle elision doubles as the
 * per-shard work queue. The single-domain path (no configureSharding
 * call) is the reference implementation and stays byte-identical.
 */

#ifndef OENET_SIM_KERNEL_HH
#define OENET_SIM_KERNEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace oenet {

class Kernel;

/** Interface for components that need per-cycle processing. */
class Ticking
{
  public:
    virtual ~Ticking() = default;
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle this component could need to tick again,
     * asked by the kernel right after tick(now). Answering now+1 (the
     * default) keeps the component in every cycle's pass; anything
     * later parks it until that cycle (kNeverCycle = indefinitely,
     * until a wake edge). The kernel may tick a component *earlier*
     * than its answer (it keeps now+2 answers active rather than pay
     * the park/re-admit round trip for a one-cycle gap); such ticks
     * must be no-ops — the same quiescence invariant elision-off
     * already demands. A sleeping component must be woken by whoever
     * hands it work (see wakeAt); the kernel never polls it.
     */
    virtual Cycle nextWakeCycle(Cycle now) { return now + 1; }

    /**
     * Wake edge: ensure this component ticks at cycle @p at (or the
     * next executable cycle if @p at has passed). No-op while the
     * component is active — an active component re-arms itself from
     * its own state via nextWakeCycle, which is always at least as
     * accurate as any external hint. During a sharded parallel pass a
     * wake may only target a component of the calling thread's own
     * domain (cross-shard wakes go through the boundary queues).
     */
    void wakeAt(Cycle at);

    /** True while parked by the idle-elision scheduler. */
    bool asleep() const { return asleep_; }

  private:
    friend class Kernel;
    Kernel *kernel_ = nullptr;     ///< set by Kernel::addTicking
    std::uint32_t tickOrder_ = 0;  ///< registration index (tick order)
    std::uint16_t domainIdx_ = 0;  ///< tick domain (0 = serial phase)
    bool asleep_ = false;
    Cycle pendingWake_ = kNeverCycle; ///< authoritative earliest wake
};

class Kernel
{
  public:
    Kernel();
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register a component; the kernel does not take ownership. */
    void addTicking(Ticking *component);

    /** Advance one cycle: fire due events, tick active components. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /** Schedule a one-shot action. */
    void schedule(Cycle when, EventQueue::Action action);

    /** Schedule @p action every @p period cycles starting at @p first.
     *  The closure is stored once in the event queue and re-armed in
     *  place — no per-firing allocation. */
    void schedulePeriodic(Cycle first, Cycle period,
                          std::function<void(Cycle)> action);

    /**
     * Install the epoch hook: @p hook runs at the start of every step
     * whose cycle is a whole multiple of @p interval after the current
     * cycle (first firing one interval from now), *before* that
     * cycle's events and ticks — i.e. it observes the state exactly as
     * of the epoch boundary. One hook at a time; interval 0 (or a null
     * hook) uninstalls it. Used for the windowed-metrics snapshots of
     * the trace layer; unlike schedulePeriodic it costs one branch per
     * step and nothing in the event queue.
     */
    void setEpochHook(Cycle interval, std::function<void(Cycle)> hook);

    /**
     * Enable or disable idle elision (default on). Disabling mid-run
     * re-admits every parked component so the classic
     * tick-everything-every-cycle pass resumes; both settings produce
     * bit-identical simulations.
     */
    void setIdleElision(bool on);
    bool idleElision() const { return idleElision_; }

    // ------------------------------------------------------------------
    // Sharded execution
    // ------------------------------------------------------------------

    /**
     * Switch to phased (sharded) stepping with @p shards shard domains
     * (1..shards) plus the serial domain 0. Every already-registered
     * component stays in domain 0; move shard-owned components with
     * setDomain before stepping. shards == 1 keeps everything on the
     * driving thread but uses the exact same phase structure, which is
     * what makes output byte-identical at any shard count; shards > 1
     * spawns shards-1 worker threads, joined by the destructor. Call
     * once, before the first step.
     */
    void configureSharding(int shards);

    /** Shard domains configured (1 when unsharded). */
    int shardCount() const { return shards_; }

    /** True once configureSharding has been called. */
    bool phased() const { return phased_; }

    /** Move @p component to @p domain (0 = serial, 1..shardCount()).
     *  Configuration-time only: call before the first step. */
    void setDomain(Ticking *component, int domain);

    /** Install the pre-pass hook of shard @p domain: it runs on that
     *  shard's thread at the start of every parallel phase, before the
     *  domain's tick pass (boundary-queue drains live here). */
    void setDomainPrePass(int domain, std::function<void(Cycle)> hook);

    /** Append a post-pass hook: runs on the driving thread after the
     *  cycle's parallel phase completes (boundary-buffer swaps, trace
     *  flushes, deferred-sink replays), in registration order. */
    void addPostPass(std::function<void(Cycle)> hook);

    /** Tell the kernel shard @p domain has work next cycle (boundary
     *  deliveries staged by a post-pass hook). Clears when the domain's
     *  pre-pass next runs; an all-quiet parallel phase is skipped. */
    void markDomainWork(int domain);

    /**
     * True on a thread currently executing a shard's parallel phase
     * (pre-pass hook or tick pass). Emission sites that must not write
     * shared sinks mid-pass (trace events, packet-ejection callbacks)
     * test this and defer through per-domain buffers keyed by
     * shardPassOrder(); see docs/DETERMINISM.md.
     */
    static bool inShardPass() { return tlsDomain_ != nullptr; }

    /** Domain index of the shard pass running on this thread.
     *  @pre inShardPass(). */
    static int shardPassDomain();

    /** tickOrder of the component currently ticking on this thread (0
     *  during the pre-pass). Deferred emissions sort by this key, which
     *  reconstructs the canonical serial order. @pre inShardPass(). */
    static std::uint32_t shardPassOrder();

    /** Components in the per-cycle pass right now (diagnostics). */
    std::size_t activeCount() const;
    std::size_t tickingCount() const { return ticking_.size(); }

    Cycle now() const { return now_; }
    EventQueue &events() { return events_; }

  private:
    friend class Ticking;

    struct WakeEntry
    {
        Cycle at;
        Ticking *component;
    };
    struct WakeLater
    {
        bool operator()(const WakeEntry &a, const WakeEntry &b) const
        {
            return a.at > b.at;
        }
    };

    /**
     * One tick domain: a slice of the registered components with its
     * own active list, wake heap, and pass state. Domain 0 always
     * exists and is the whole kernel when sharding is off; shard
     * domains are only touched by their own thread during the parallel
     * phase and by the driving thread between phases.
     */
    struct Domain
    {
        int index = 0;
        std::vector<Ticking *> members; ///< all components, tick order
        std::vector<Ticking *> active;  ///< awake subset, same order
        /** Timed wakes; lazily deleted — Ticking::pendingWake_ is the
         *  authority, stale entries are skipped on pop. */
        std::priority_queue<WakeEntry, std::vector<WakeEntry>, WakeLater>
            wakeHeap;
        bool inTickPass = false;
        std::uint32_t passOrder = 0; ///< tickOrder_ of component mid-tick
        std::function<void(Cycle)> prePass;
        bool pendingWork = false; ///< boundary deliveries staged
    };

    /** Re-admit a parked component into its domain's active list. */
    void admit(Domain &dom, Ticking *component);

    /** Handle Ticking::wakeAt for a parked component. */
    void wakeSleeping(Ticking *component, Cycle at);

    /** One domain's tick pass at cycle @p now (elision-aware). */
    void runDomainPass(Domain &dom, Cycle now);

    /** One shard's full parallel phase: pre-pass drain + tick pass. */
    void runShardPhase(Domain &dom, Cycle now);

    /** True if every shard domain's parallel phase would be a no-op. */
    bool shardsQuiet() const;

    void workerLoop(int domain_index);

    Cycle now_ = 0;
    EventQueue events_;
    std::vector<Ticking *> ticking_; ///< all components, registration order
    std::vector<std::unique_ptr<Domain>> domains_; ///< [0] always exists

    bool idleElision_ = true;
    bool phased_ = false;
    int shards_ = 1;

    // Epoch hook (metrics snapshots).
    std::function<void(Cycle)> epochHook_;
    Cycle epochInterval_ = 0;
    Cycle nextEpoch_ = kNeverCycle;

    // Post-pass hooks (driving thread, after the parallel phase).
    std::vector<std::function<void(Cycle)>> postPass_;

    // Worker synchronization (shards > 1): a generation counter
    // releases the workers into a phase, a done counter is the
    // barrier out of it. Spin-based — a cycle is far shorter than any
    // blocking primitive's round trip.
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> phaseGen_{0};
    std::atomic<int> phaseDone_{0};
    std::atomic<bool> quit_{false};
    Cycle phaseCycle_ = 0; ///< published cycle (ordered by phaseGen_)

    static thread_local Domain *tlsDomain_;
};

inline void
Ticking::wakeAt(Cycle at)
{
    if (asleep_)
        kernel_->wakeSleeping(this, at);
}

} // namespace oenet

#endif // OENET_SIM_KERNEL_HH
