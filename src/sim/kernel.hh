/**
 * @file
 * Simulation kernel: owns the current cycle, the event queue, and the
 * ordered list of components ticked every cycle.
 *
 * Tick protocol per cycle t:
 *   1. events due at t fire (control plane: policies, transitions,
 *      scheduled injections);
 *   2. every registered Ticking component's tick(t) runs, in
 *      registration order.
 *
 * Cross-component interactions are time-tagged (link arrival cycles,
 * credit return cycles), so results do not depend on registration order;
 * the fixed order only pins down RNG-free determinism.
 */

#ifndef OENET_SIM_KERNEL_HH
#define OENET_SIM_KERNEL_HH

#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace oenet {

/** Interface for components that need per-cycle processing. */
class Ticking
{
  public:
    virtual ~Ticking() = default;
    virtual void tick(Cycle now) = 0;
};

class Kernel
{
  public:
    Kernel() = default;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register a component; the kernel does not take ownership. */
    void addTicking(Ticking *component);

    /** Advance one cycle: fire due events, tick all components. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /** Schedule a one-shot action. */
    void schedule(Cycle when, EventQueue::Action action);

    /** Schedule @p action every @p period cycles starting at @p first. */
    void schedulePeriodic(Cycle first, Cycle period,
                          std::function<void(Cycle)> action);

    Cycle now() const { return now_; }
    EventQueue &events() { return events_; }

  private:
    Cycle now_ = 0;
    EventQueue events_;
    std::vector<Ticking *> ticking_;
};

} // namespace oenet

#endif // OENET_SIM_KERNEL_HH
