/**
 * @file
 * Delta event queue for the cycle-driven kernel.
 *
 * The oenet kernel is cycle-driven for the data path (routers tick every
 * cycle), but control actions that fire at sparse future times — voltage
 * ramp completions, attenuator responses, policy epochs, trace
 * injections — are scheduled here so nothing polls for them. Events
 * scheduled for the same cycle fire in schedule order (a monotone
 * sequence number breaks ties), which keeps runs deterministic.
 *
 * Periodic actions are first-class: schedulePeriodic stores the closure
 * once and re-arms the same entry each firing, so a policy window that
 * fires a million times allocates exactly one std::function, not a chain
 * of nested copies.
 */

#ifndef OENET_SIM_EVENT_QUEUE_HH
#define OENET_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace oenet {

class EventQueue
{
  public:
    using Action = std::function<void()>;
    using PeriodicAction = std::function<void(Cycle)>;

    /** Schedule @p action to run at cycle @p when.
     *  @pre when >= the cycle passed to the last runDue() call. */
    void schedule(Cycle when, Action action);

    /**
     * Schedule @p action to run at @p first and every @p period cycles
     * thereafter, receiving the firing cycle. The closure is stored
     * once; each firing runs the action and then re-arms the same
     * stored entry (action first, so anything it schedules for the
     * same cycle fires before the next periodic at that cycle, exactly
     * as a self-rescheduling one-shot would behave).
     */
    void schedulePeriodic(Cycle first, Cycle period,
                          PeriodicAction action);

    /** Run every event due at or before @p now, in (cycle, order) order.
     *  Events may schedule further events, including for @p now. */
    void runDue(Cycle now);

    /** Cycle of the earliest pending event, or kNeverCycle. */
    Cycle nextEventCycle() const;

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

  private:
    /** Persistent state for one schedulePeriodic call; lives for the
     *  queue's lifetime at a stable address referenced by heap
     *  entries. */
    struct Periodic
    {
        Cycle period;
        PeriodicAction action;
    };

    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Action action;             ///< one-shot payload (null if periodic)
        Periodic *periodic = nullptr; ///< persistent payload, re-armed in place
    };

    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<std::unique_ptr<Periodic>> periodics_;
    std::uint64_t nextSeq_ = 0;
    Cycle lastRun_ = 0;
};

} // namespace oenet

#endif // OENET_SIM_EVENT_QUEUE_HH
