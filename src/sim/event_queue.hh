/**
 * @file
 * Delta event queue for the cycle-driven kernel.
 *
 * The oenet kernel is cycle-driven for the data path (routers tick every
 * cycle), but control actions that fire at sparse future times — voltage
 * ramp completions, attenuator responses, policy epochs, trace
 * injections — are scheduled here so nothing polls for them. Events
 * scheduled for the same cycle fire in schedule order (a monotone
 * sequence number breaks ties), which keeps runs deterministic.
 */

#ifndef OENET_SIM_EVENT_QUEUE_HH
#define OENET_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace oenet {

class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action to run at cycle @p when.
     *  @pre when >= the cycle passed to the last runDue() call. */
    void schedule(Cycle when, Action action);

    /** Run every event due at or before @p now, in (cycle, order) order.
     *  Events may schedule further events, including for @p now. */
    void runDue(Cycle now);

    /** Cycle of the earliest pending event, or kNeverCycle. */
    Cycle nextEventCycle() const;

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Action action;
    };

    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    Cycle lastRun_ = 0;
};

} // namespace oenet

#endif // OENET_SIM_EVENT_QUEUE_HH
