#include "traffic/hotspot.hh"

#include "common/log.hh"

namespace oenet {

std::vector<RatePhase>
defaultHotspotSchedule(Cycle total_cycles)
{
    // Shaped after Fig. 6(a): plateaus with small steps (within one
    // optical band) and large jumps (forcing band crossings), expressed
    // as fractions of the total duration.
    struct Seg
    {
        double at;   // fraction of total
        double rate; // packets/cycle
    };
    static const Seg kSegments[] = {
        {0.00, 0.6}, {0.10, 1.2}, {0.20, 3.6}, {0.30, 4.2},
        {0.40, 2.4}, {0.50, 0.9}, {0.60, 4.5}, {0.70, 4.8},
        {0.80, 1.5}, {0.90, 0.6},
    };
    std::vector<RatePhase> phases;
    for (const Seg &s : kSegments) {
        phases.push_back(RatePhase{
            static_cast<Cycle>(s.at * static_cast<double>(total_cycles)),
            s.rate});
    }
    return phases;
}

HotspotTraffic::HotspotTraffic(const Params &params)
    : params_(params), arrivals_(params.seed)
{
    if (params_.numNodes < 2)
        fatal("HotspotTraffic: need >= 2 nodes");
    if (params_.phases.empty())
        fatal("HotspotTraffic: empty phase schedule");
    for (std::size_t i = 1; i < params_.phases.size(); i++) {
        if (params_.phases[i].start <= params_.phases[i - 1].start)
            fatal("HotspotTraffic: phase starts must increase");
    }
    if (params_.hotNode >= static_cast<NodeId>(params_.numNodes))
        fatal("HotspotTraffic: hot node %u out of range",
              params_.hotNode);
    if (params_.hotWeight < 1)
        fatal("HotspotTraffic: hot weight must be >= 1");
}

double
HotspotTraffic::offeredRate(Cycle now) const
{
    // Walk the phase pointer monotonically (callers poll in time order;
    // random access falls back to a scan from the start).
    if (phaseIdx_ >= params_.phases.size() ||
        params_.phases[phaseIdx_].start > now)
        phaseIdx_ = 0;
    while (phaseIdx_ + 1 < params_.phases.size() &&
           params_.phases[phaseIdx_ + 1].start <= now)
        phaseIdx_++;
    if (params_.phases[phaseIdx_].start > now)
        return 0.0; // before the first phase
    return params_.phases[phaseIdx_].rate;
}

void
HotspotTraffic::arrivals(Cycle now, std::vector<PacketDesc> &out)
{
    std::uint64_t k = arrivals_.draw(offeredRate(now));
    auto n = static_cast<std::uint64_t>(params_.numNodes);
    auto weighted = n + static_cast<std::uint64_t>(params_.hotWeight - 1);
    for (std::uint64_t i = 0; i < k; i++) {
        auto src = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        NodeId dst;
        do {
            // Weighted pick: indices >= n alias onto the hot node.
            std::uint64_t t = arrivals_.rng().uniformInt(weighted);
            dst = t < n ? static_cast<NodeId>(t) : params_.hotNode;
        } while (params_.excludeSelf && dst == src);
        out.push_back(PacketDesc{src, dst, params_.packetLen});
    }
}

} // namespace oenet
