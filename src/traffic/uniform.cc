#include "traffic/uniform.hh"

#include "common/log.hh"

namespace oenet {

UniformRandomTraffic::UniformRandomTraffic(const Params &params)
    : params_(params), arrivals_(params.seed)
{
    if (params_.numNodes < 2)
        fatal("UniformRandomTraffic: need >= 2 nodes");
    if (params_.rate < 0.0)
        fatal("UniformRandomTraffic: negative rate");
    if (params_.packetLen < 1)
        fatal("UniformRandomTraffic: bad packet length %d",
              params_.packetLen);
}

void
UniformRandomTraffic::arrivals(Cycle, std::vector<PacketDesc> &out)
{
    std::uint64_t k = arrivals_.draw(params_.rate);
    auto n = static_cast<std::uint64_t>(params_.numNodes);
    for (std::uint64_t i = 0; i < k; i++) {
        auto src = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        NodeId dst;
        do {
            dst = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        } while (params_.excludeSelf && dst == src);
        out.push_back(PacketDesc{src, dst, params_.packetLen});
    }
}

double
UniformRandomTraffic::offeredRate(Cycle) const
{
    return params_.rate;
}

} // namespace oenet
