#include "traffic/permutation.hh"

#include "common/log.hh"

namespace oenet {

namespace {

int
log2Exact(int n)
{
    int bits = 0;
    while ((1 << bits) < n)
        bits++;
    if ((1 << bits) != n)
        fatal("permutation traffic: %d is not a power of two", n);
    return bits;
}

} // namespace

const char *
permutationPatternName(PermutationPattern pattern)
{
    switch (pattern) {
      case PermutationPattern::kTranspose:
        return "transpose";
      case PermutationPattern::kBitComplement:
        return "bit-complement";
      case PermutationPattern::kBitReverse:
        return "bit-reverse";
      case PermutationPattern::kShuffle:
        return "shuffle";
      case PermutationPattern::kTornado:
        return "tornado";
      case PermutationPattern::kNeighbor:
        return "neighbor";
    }
    panic("permutationPatternName: bad pattern");
}

NodeId
permutationDestination(PermutationPattern pattern, NodeId src,
                       int num_nodes, int mesh_x, int mesh_y,
                       int cluster_size)
{
    auto n = static_cast<std::uint32_t>(num_nodes);
    switch (pattern) {
      case PermutationPattern::kBitComplement:
        return (~src) & (n - 1);
      case PermutationPattern::kBitReverse: {
        int bits = log2Exact(num_nodes);
        std::uint32_t out = 0;
        for (int b = 0; b < bits; b++)
            if (src & (1u << b))
                out |= 1u << (bits - 1 - b);
        return out;
      }
      case PermutationPattern::kShuffle: {
        int bits = log2Exact(num_nodes);
        return ((src << 1) | (src >> (bits - 1))) & (n - 1);
      }
      case PermutationPattern::kTranspose: {
        // Swap rack coordinates; keep the local index.
        int c = cluster_size;
        int rack = static_cast<int>(src) / c;
        int local = static_cast<int>(src) % c;
        int x = rack % mesh_x;
        int y = rack / mesh_x;
        if (mesh_x != mesh_y)
            fatal("transpose traffic needs a square mesh");
        int drack = x * mesh_x + y;
        return static_cast<NodeId>(drack * c + local);
      }
      case PermutationPattern::kTornado: {
        // Half-way around in X within the same row.
        int c = cluster_size;
        int rack = static_cast<int>(src) / c;
        int local = static_cast<int>(src) % c;
        int x = rack % mesh_x;
        int y = rack / mesh_x;
        int dx = (x + mesh_x / 2) % mesh_x;
        (void)mesh_y;
        return static_cast<NodeId>((y * mesh_x + dx) * c + local);
      }
      case PermutationPattern::kNeighbor: {
        // East neighbor rack (wrapping), same local index.
        int c = cluster_size;
        int rack = static_cast<int>(src) / c;
        int local = static_cast<int>(src) % c;
        int x = rack % mesh_x;
        int y = rack / mesh_x;
        int dx = (x + 1) % mesh_x;
        return static_cast<NodeId>((y * mesh_x + dx) * c + local);
      }
    }
    panic("permutationDestination: bad pattern");
}

PermutationTraffic::PermutationTraffic(const Params &params)
    : params_(params), arrivals_(params.seed)
{
    if (params_.numNodes < 2)
        fatal("PermutationTraffic: need >= 2 nodes");
    if (params_.meshX * params_.meshY * params_.clusterSize !=
        params_.numNodes)
        fatal("PermutationTraffic: geometry does not match node count");
}

void
PermutationTraffic::arrivals(Cycle, std::vector<PacketDesc> &out)
{
    std::uint64_t k = arrivals_.draw(params_.rate);
    auto n = static_cast<std::uint64_t>(params_.numNodes);
    for (std::uint64_t i = 0; i < k; i++) {
        auto src = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        NodeId dst = permutationDestination(
            params_.pattern, src, params_.numNodes, params_.meshX,
            params_.meshY, params_.clusterSize);
        if (dst == src)
            continue; // fixed points of the permutation inject nothing
        out.push_back(PacketDesc{src, dst, params_.packetLen});
    }
}

double
PermutationTraffic::offeredRate(Cycle) const
{
    return params_.rate;
}

} // namespace oenet
