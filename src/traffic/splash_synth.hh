/**
 * @file
 * Synthetic SPLASH-2-like traffic traces (Section 4.3.3 substitution).
 *
 * The paper replays RSIM-captured traces of FFT, LU, and Radix on 64
 * processors (48-flit mean packets). Those traces are not available, so
 * this module synthesizes traces with the temporal signatures visible in
 * Fig. 7, which are what the power-aware policy actually responds to:
 *
 *   FFT   — long, smooth compute/communicate waves: broad injection
 *           humps (all-to-all transposes) separated by quiet compute
 *           phases; slow trends the policy can track almost perfectly,
 *           hence the paper's small (1.08x) latency penalty.
 *   LU    — repeated factorization fronts: per-step ramps whose peak
 *           drifts as the active matrix shrinks; medium-period bursts.
 *   Radix — rapid alternation between local counting (quiet) and key
 *           exchange (intense), producing high-frequency spikes that
 *           are hard to predict.
 *
 * Packet lengths are bimodal (short control / long data) with a 48-flit
 * mean, destinations uniform. Rate profiles are deterministic in t with
 * seeded jitter, so traces are reproducible.
 */

#ifndef OENET_TRAFFIC_SPLASH_SYNTH_HH
#define OENET_TRAFFIC_SPLASH_SYNTH_HH

#include "traffic/trace.hh"

namespace oenet {

enum class SplashKind
{
    kFft,
    kLu,
    kRadix,
};

const char *splashKindName(SplashKind kind);

struct SplashSynthParams
{
    SplashKind kind = SplashKind::kFft;
    int numNodes = 512;
    Cycle duration = 300000;   ///< trace length in cycles
    double rateScale = 1.0;    ///< multiplies the whole profile
    std::uint64_t seed = 1;
    int shortLen = 8;          ///< control packet, flits
    int longLen = 88;          ///< data packet, flits
    double longFrac = 0.5;     ///< fraction of long packets (mean 48)
};

/** The deterministic rate profile (packets/cycle aggregate) at @p t. */
double splashRateAt(SplashKind kind, Cycle t, Cycle duration,
                    double scale);

/** Generate a sorted trace realizing the profile. */
TraceData generateSplashTrace(const SplashSynthParams &params);

} // namespace oenet

#endif // OENET_TRAFFIC_SPLASH_SYNTH_HH
