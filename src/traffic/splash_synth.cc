#include "traffic/splash_synth.hh"

#include <cmath>

#include "common/log.hh"

namespace oenet {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Deterministic per-segment hash for Radix's spiky alternation. */
std::uint64_t
segmentHash(std::uint64_t seg)
{
    std::uint64_t x = seg + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

double
fftRate(double f)
{
    // Two broad transpose humps per run over a light compute floor.
    double wave = std::sin(2.0 * kPi * 2.0 * f);
    double hump = wave > 0.0 ? wave * wave * wave * wave : 0.0;
    return 0.02 + 0.40 * hump;
}

double
luRate(double f, Cycle t, Cycle duration)
{
    // Eight factorization fronts; each ramps up then collapses. The
    // peak drifts downward as the remaining matrix shrinks.
    constexpr int kFronts = 8;
    double front_len = static_cast<double>(duration) / kFronts;
    auto front = static_cast<int>(f * kFronts);
    if (front >= kFronts)
        front = kFronts - 1;
    double pos = (static_cast<double>(t) -
                  front * front_len) / front_len; // 0..1 within front
    double peak = 0.38 - 0.02 * front;
    double ramp = pos < 0.7 ? pos / 0.7 : (1.0 - pos) / 0.3;
    return 0.03 + peak * (ramp < 0.0 ? 0.0 : ramp);
}

double
radixRate(Cycle t, Cycle duration)
{
    // Segments alternating pseudo-randomly between quiet counting and
    // intense key exchange. Segment length scales with the trace so
    // compressed traces keep the paper's ratio of burst length to the
    // policy's adaptation time.
    Cycle seg_len = duration / 80;
    if (seg_len < 2000)
        seg_len = 2000;
    std::uint64_t seg = t / seg_len;
    std::uint64_t h = segmentHash(seg);
    bool burst = (h & 3) != 0 ? ((h >> 2) & 1) : true; // ~50/50-ish
    double jitter =
        static_cast<double>((h >> 8) & 0xFF) / 255.0; // [0,1]
    return burst ? 0.28 + 0.16 * jitter : 0.02 + 0.05 * jitter;
}

} // namespace

const char *
splashKindName(SplashKind kind)
{
    switch (kind) {
      case SplashKind::kFft:
        return "fft";
      case SplashKind::kLu:
        return "lu";
      case SplashKind::kRadix:
        return "radix";
    }
    panic("splashKindName: bad kind");
}

double
splashRateAt(SplashKind kind, Cycle t, Cycle duration, double scale)
{
    if (duration == 0)
        panic("splashRateAt: zero duration");
    if (t >= duration)
        return 0.0;
    double f = static_cast<double>(t) / static_cast<double>(duration);
    double rate;
    switch (kind) {
      case SplashKind::kFft:
        rate = fftRate(f);
        break;
      case SplashKind::kLu:
        rate = luRate(f, t, duration);
        break;
      case SplashKind::kRadix:
        rate = radixRate(t, duration);
        break;
      default:
        panic("splashRateAt: bad kind");
    }
    return rate * scale;
}

TraceData
generateSplashTrace(const SplashSynthParams &params)
{
    if (params.numNodes < 2)
        fatal("generateSplashTrace: need >= 2 nodes");
    if (params.longFrac < 0.0 || params.longFrac > 1.0)
        fatal("generateSplashTrace: bad long-packet fraction");

    Rng rng(params.seed);
    TraceData trace;
    auto n = static_cast<std::uint64_t>(params.numNodes);
    for (Cycle t = 0; t < params.duration; t++) {
        double rate = splashRateAt(params.kind, t, params.duration,
                                   params.rateScale);
        std::uint64_t k = rng.poisson(rate);
        for (std::uint64_t i = 0; i < k; i++) {
            auto src = static_cast<NodeId>(rng.uniformInt(n));
            NodeId dst;
            do {
                dst = static_cast<NodeId>(rng.uniformInt(n));
            } while (dst == src);
            int len = rng.bernoulli(params.longFrac) ? params.longLen
                                                     : params.shortLen;
            trace.push_back(TraceRecord{
                t, src, dst, static_cast<std::uint16_t>(len)});
        }
    }
    return trace;
}

} // namespace oenet
