#include "traffic/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace oenet {

namespace {
constexpr const char *kMagic = "oenet-trace-v1";
}

void
saveTrace(const std::string &path, const TraceData &trace)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveTrace: cannot open '%s'", path.c_str());
    out << kMagic << "\n";
    for (const auto &r : trace) {
        out << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << r.len
            << '\n';
    }
    if (!out)
        fatal("saveTrace: write failure on '%s'", path.c_str());
}

TraceData
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadTrace: cannot open '%s'", path.c_str());
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        fatal("loadTrace: '%s' is not an oenet trace (bad magic)",
              path.c_str());
    TraceData trace;
    int lineno = 1;
    while (std::getline(in, line)) {
        lineno++;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        unsigned long long cycle;
        unsigned long src, dst, len;
        if (!(ss >> cycle >> src >> dst >> len))
            fatal("loadTrace: %s:%d: bad record '%s'", path.c_str(),
                  lineno, line.c_str());
        trace.push_back(TraceRecord{static_cast<Cycle>(cycle),
                                    static_cast<NodeId>(src),
                                    static_cast<NodeId>(dst),
                                    static_cast<std::uint16_t>(len)});
    }
    for (std::size_t i = 1; i < trace.size(); i++) {
        if (trace[i].cycle < trace[i - 1].cycle)
            fatal("loadTrace: '%s' is not sorted by cycle at record %zu",
                  path.c_str(), i);
    }
    return trace;
}

void
validateTrace(const TraceData &trace, int num_nodes)
{
    for (std::size_t i = 0; i < trace.size(); i++) {
        const auto &r = trace[i];
        if (i > 0 && r.cycle < trace[i - 1].cycle)
            panic("trace record %zu out of order", i);
        if (r.src >= static_cast<NodeId>(num_nodes) ||
            r.dst >= static_cast<NodeId>(num_nodes))
            panic("trace record %zu: endpoint out of range", i);
        if (r.len < 1)
            panic("trace record %zu: zero-length packet", i);
    }
}

std::vector<double>
traceRateTimeline(const TraceData &trace, Cycle bin)
{
    if (bin == 0)
        panic("traceRateTimeline: zero bin size");
    if (trace.empty())
        return {};
    Cycle span = trace.back().cycle + 1;
    std::size_t bins = static_cast<std::size_t>((span + bin - 1) / bin);
    std::vector<double> timeline(bins, 0.0);
    for (const auto &r : trace)
        timeline[static_cast<std::size_t>(r.cycle / bin)] += 1.0;
    for (auto &v : timeline)
        v /= static_cast<double>(bin);
    return timeline;
}

double
traceMeanPacketLen(const TraceData &trace)
{
    if (trace.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : trace)
        sum += r.len;
    return sum / static_cast<double>(trace.size());
}

TraceSource::TraceSource(const TraceData &trace) : trace_(trace)
{
}

void
TraceSource::arrivals(Cycle now, std::vector<PacketDesc> &out)
{
    while (next_ < trace_.size() && trace_[next_].cycle <= now) {
        const auto &r = trace_[next_];
        out.push_back(PacketDesc{r.src, r.dst, r.len});
        next_++;
    }
}

bool
TraceSource::exhausted(Cycle) const
{
    return next_ >= trace_.size();
}

double
TraceSource::offeredRate(Cycle now) const
{
    // Local estimate over a 1k-cycle look-behind window.
    constexpr Cycle kWindow = 1000;
    Cycle lo = now > kWindow ? now - kWindow : 0;
    // next_ points past all records <= now; walk back.
    std::size_t i = next_;
    std::uint64_t count = 0;
    while (i > 0 && trace_[i - 1].cycle >= lo) {
        count++;
        i--;
    }
    return static_cast<double>(count) / static_cast<double>(kWindow);
}

} // namespace oenet
