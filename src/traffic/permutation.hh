/**
 * @file
 * Classic permutation traffic patterns (transpose, bit-complement,
 * bit-reverse, shuffle, tornado, nearest-neighbor). Not part of the
 * paper's evaluation, but standard fare for a mesh simulator and used by
 * the extension/ablation benches to probe spatially skewed loads.
 */

#ifndef OENET_TRAFFIC_PERMUTATION_HH
#define OENET_TRAFFIC_PERMUTATION_HH

#include "traffic/injection_process.hh"

namespace oenet {

enum class PermutationPattern
{
    kTranspose,
    kBitComplement,
    kBitReverse,
    kShuffle,
    kTornado,
    kNeighbor,
};

const char *permutationPatternName(PermutationPattern pattern);

/** Destination of @p src under @p pattern, for an N-node system laid
 *  out on a meshX x meshY mesh of clusters of size C. N must be a power
 *  of two for the bit-oriented patterns. */
NodeId permutationDestination(PermutationPattern pattern, NodeId src,
                              int num_nodes, int mesh_x, int mesh_y,
                              int cluster_size);

class PermutationTraffic : public TrafficSource
{
  public:
    struct Params
    {
        PermutationPattern pattern = PermutationPattern::kTranspose;
        int numNodes = 512;
        int meshX = 8;
        int meshY = 8;
        int clusterSize = 8;
        double rate = 1.0; ///< packets/cycle, network-wide
        int packetLen = 4;
        std::uint64_t seed = 1;
    };

    explicit PermutationTraffic(const Params &params);

    void arrivals(Cycle now, std::vector<PacketDesc> &out) override;
    double offeredRate(Cycle now) const override;

  private:
    Params params_;
    AggregateArrivals arrivals_;
};

} // namespace oenet

#endif // OENET_TRAFFIC_PERMUTATION_HH
