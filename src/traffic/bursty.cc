#include "traffic/bursty.hh"

#include <cmath>

#include "common/log.hh"

namespace oenet {

OnOffTraffic::OnOffTraffic(const Params &params)
    : params_(params), arrivals_(params.seed)
{
    if (params_.numNodes < 2)
        fatal("OnOffTraffic: need >= 2 nodes");
    if (params_.meanBurstCycles <= 0.0 || params_.meanIdleCycles <= 0.0)
        fatal("OnOffTraffic: period means must be positive");
    // Start in the idle state with a random residual.
    nextToggle_ = static_cast<Cycle>(
        arrivals_.rng().exponential(params_.meanIdleCycles));
}

void
OnOffTraffic::maybeToggle(Cycle now)
{
    while (now >= nextToggle_) {
        on_ = !on_;
        double mean = on_ ? params_.meanBurstCycles
                          : params_.meanIdleCycles;
        double len = arrivals_.rng().exponential(mean);
        if (len < 1.0)
            len = 1.0;
        nextToggle_ += static_cast<Cycle>(len);
    }
}

void
OnOffTraffic::arrivals(Cycle now, std::vector<PacketDesc> &out)
{
    maybeToggle(now);
    double rate = on_ ? params_.burstRate : params_.idleRate;
    std::uint64_t k = arrivals_.draw(rate);
    auto n = static_cast<std::uint64_t>(params_.numNodes);
    for (std::uint64_t i = 0; i < k; i++) {
        auto src = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        NodeId dst;
        do {
            dst = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        } while (dst == src);
        out.push_back(PacketDesc{src, dst, params_.packetLen});
    }
}

double
OnOffTraffic::offeredRate(Cycle) const
{
    return on_ ? params_.burstRate : params_.idleRate;
}

double
OnOffTraffic::meanRate() const
{
    double on_frac = params_.meanBurstCycles /
                     (params_.meanBurstCycles + params_.meanIdleCycles);
    return on_frac * params_.burstRate +
           (1.0 - on_frac) * params_.idleRate;
}

SelfSimilarTraffic::SelfSimilarTraffic(const Params &params)
    : params_(params), arrivals_(params.seed)
{
    if (params_.numNodes < 2)
        fatal("SelfSimilarTraffic: need >= 2 nodes");
    if (params_.numSources < 1)
        fatal("SelfSimilarTraffic: need >= 1 source");
    if (params_.alphaOn <= 1.0 || params_.alphaOff <= 1.0)
        fatal("SelfSimilarTraffic: Pareto shapes must exceed 1 "
              "(finite mean)");

    // Long-run ON fraction per stream from the Pareto means
    // E[X] = alpha*min/(alpha-1).
    double mean_on = params_.alphaOn * params_.minOnCycles /
                     (params_.alphaOn - 1.0);
    double mean_off = params_.alphaOff * params_.minOffCycles /
                      (params_.alphaOff - 1.0);
    double on_frac = mean_on / (mean_on + mean_off);

    // Choose the per-source ON rate so the aggregate long-run rate hits
    // the target.
    perSourceOnRate_ = params_.targetRate /
                       (params_.numSources * on_frac);

    streams_.resize(static_cast<std::size_t>(params_.numSources));
    for (auto &s : streams_) {
        s.on = arrivals_.rng().bernoulli(on_frac);
        double len = paretoCycles(s.on ? params_.alphaOn
                                       : params_.alphaOff,
                                  s.on ? params_.minOnCycles
                                       : params_.minOffCycles);
        s.nextToggle = static_cast<Cycle>(len);
    }
}

double
SelfSimilarTraffic::paretoCycles(double alpha, double minimum)
{
    double u = arrivals_.rng().uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double x = minimum / std::pow(u, 1.0 / alpha);
    // Heavy tails are the point, but a single period longer than any
    // plausible run only wedges a stream; cap at 100M cycles.
    return x < 1e8 ? x : 1e8;
}

void
SelfSimilarTraffic::advanceStreams(Cycle now)
{
    for (auto &s : streams_) {
        while (now >= s.nextToggle) {
            s.on = !s.on;
            double len = paretoCycles(s.on ? params_.alphaOn
                                           : params_.alphaOff,
                                      s.on ? params_.minOnCycles
                                           : params_.minOffCycles);
            if (len < 1.0)
                len = 1.0;
            s.nextToggle += static_cast<Cycle>(len);
        }
    }
}

int
SelfSimilarTraffic::activeSources() const
{
    int n = 0;
    for (const auto &s : streams_)
        if (s.on)
            n++;
    return n;
}

void
SelfSimilarTraffic::arrivals(Cycle now, std::vector<PacketDesc> &out)
{
    advanceStreams(now);
    double rate = perSourceOnRate_ * activeSources();
    std::uint64_t k = arrivals_.draw(rate);
    auto n = static_cast<std::uint64_t>(params_.numNodes);
    for (std::uint64_t i = 0; i < k; i++) {
        auto src = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        NodeId dst;
        do {
            dst = static_cast<NodeId>(arrivals_.rng().uniformInt(n));
        } while (dst == src);
        out.push_back(PacketDesc{src, dst, params_.packetLen});
    }
}

double
SelfSimilarTraffic::offeredRate(Cycle) const
{
    return perSourceOnRate_ * activeSources();
}

} // namespace oenet
