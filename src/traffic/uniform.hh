/**
 * @file
 * Uniform random traffic (Section 4.2, workload 1): every node sends to
 * every other node with equal probability at a constant aggregate
 * injection rate. The constant rate is the worst case for a power-aware
 * policy — no variance means no scaling headroom — which is exactly why
 * the paper uses it to stress the controllers.
 */

#ifndef OENET_TRAFFIC_UNIFORM_HH
#define OENET_TRAFFIC_UNIFORM_HH

#include "traffic/injection_process.hh"

namespace oenet {

class UniformRandomTraffic : public TrafficSource
{
  public:
    struct Params
    {
        int numNodes = 512;
        double rate = 1.0; ///< packets/cycle, network-wide
        int packetLen = 4;
        std::uint64_t seed = 1;
        bool excludeSelf = true;
    };

    explicit UniformRandomTraffic(const Params &params);

    void arrivals(Cycle now, std::vector<PacketDesc> &out) override;
    double offeredRate(Cycle now) const override;

  private:
    Params params_;
    AggregateArrivals arrivals_;
};

} // namespace oenet

#endif // OENET_TRAFFIC_UNIFORM_HH
