/**
 * @file
 * Bursty traffic sources. The paper's motivation (Section 1) leans on
 * the observation that real network traffic exhibits substantial
 * temporal variance — citing Leland et al.'s self-similarity results —
 * so the workload suite includes two burst models beyond the phase
 * schedules:
 *
 *  - OnOffTraffic: a two-state Markov-modulated process (classic
 *    IPP/MMPP): bursts at a high rate alternate with idle gaps, both
 *    geometrically distributed. Simple, analytically transparent
 *    burstiness at one time scale.
 *
 *  - SelfSimilarTraffic: the superposition of many independent on/off
 *    sources whose ON and OFF period lengths are Pareto-distributed
 *    (infinite variance for 1 < alpha < 2). Aggregating heavy-tailed
 *    on/off sources is the standard constructive model of self-similar
 *    traffic, producing burstiness across many time scales — the
 *    hardest case for a windowed DVS policy.
 */

#ifndef OENET_TRAFFIC_BURSTY_HH
#define OENET_TRAFFIC_BURSTY_HH

#include <vector>

#include "traffic/injection_process.hh"

namespace oenet {

/** Two-state Markov-modulated Poisson process. */
class OnOffTraffic : public TrafficSource
{
  public:
    struct Params
    {
        int numNodes = 512;
        double burstRate = 4.0; ///< packets/cycle while ON
        double idleRate = 0.05; ///< packets/cycle while OFF
        double meanBurstCycles = 2000.0;
        double meanIdleCycles = 6000.0;
        int packetLen = 4;
        std::uint64_t seed = 1;
    };

    explicit OnOffTraffic(const Params &params);

    void arrivals(Cycle now, std::vector<PacketDesc> &out) override;
    double offeredRate(Cycle now) const override;

    bool inBurst() const { return on_; }

    /** Long-run average rate implied by the parameters. */
    double meanRate() const;

  private:
    void maybeToggle(Cycle now);

    Params params_;
    AggregateArrivals arrivals_;
    bool on_ = false;
    Cycle nextToggle_ = 0;
};

/** Aggregation of Pareto on/off sources (self-similar traffic). */
class SelfSimilarTraffic : public TrafficSource
{
  public:
    struct Params
    {
        int numNodes = 512;
        int numSources = 64;    ///< independent on/off streams
        double targetRate = 2.0; ///< long-run packets/cycle, aggregate
        double alphaOn = 1.4;   ///< Pareto shape of ON periods
        double alphaOff = 1.2;  ///< Pareto shape of OFF periods
        double minOnCycles = 100.0;  ///< Pareto location of ON
        double minOffCycles = 300.0; ///< Pareto location of OFF
        int packetLen = 4;
        std::uint64_t seed = 1;
    };

    explicit SelfSimilarTraffic(const Params &params);

    void arrivals(Cycle now, std::vector<PacketDesc> &out) override;
    double offeredRate(Cycle now) const override;

    /** Number of sources currently in an ON period. */
    int activeSources() const;

    const Params &params() const { return params_; }

  private:
    struct Stream
    {
        bool on;
        Cycle nextToggle;
    };

    double paretoCycles(double alpha, double minimum);
    void advanceStreams(Cycle now);

    Params params_;
    AggregateArrivals arrivals_;
    std::vector<Stream> streams_;
    double perSourceOnRate_;
};

} // namespace oenet

#endif // OENET_TRAFFIC_BURSTY_HH
