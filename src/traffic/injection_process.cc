#include "traffic/injection_process.hh"

// The interface is header-only today; this translation unit anchors the
// TrafficSource vtable.

namespace oenet {

} // namespace oenet
