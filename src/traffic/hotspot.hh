/**
 * @file
 * Time-varying hot-spot traffic (Section 4.2, workload 2): the
 * aggregate injection rate follows a phase schedule (temporal variance)
 * and one hot node — node 4 in rack (3,5) in the paper — receives a
 * multiple (4x) of everyone else's traffic (spatial variance). This is
 * the stressor for the power-aware *circuit* mechanisms: every rate
 * step exercises the transition machinery.
 */

#ifndef OENET_TRAFFIC_HOTSPOT_HH
#define OENET_TRAFFIC_HOTSPOT_HH

#include <vector>

#include "traffic/injection_process.hh"

namespace oenet {

/** One segment of the rate schedule: @p rate holds from @p start until
 *  the next phase's start. */
struct RatePhase
{
    Cycle start;
    double rate; ///< packets/cycle, network-wide
};

/** The paper's Fig. 6(a)-shaped schedule, compressed to fit
 *  @p total_cycles: alternating low/medium/high plateaus with both
 *  small steps (no optical-band crossing) and large jumps (band
 *  crossing). */
std::vector<RatePhase> defaultHotspotSchedule(Cycle total_cycles);

class HotspotTraffic : public TrafficSource
{
  public:
    struct Params
    {
        int numNodes = 512;
        std::vector<RatePhase> phases;
        NodeId hotNode = 348; ///< rack (3,5) local node 4 on 8x8/C=8
        int hotWeight = 4;    ///< hot node draws 4x the others
        int packetLen = 4;
        std::uint64_t seed = 1;
        bool excludeSelf = true;
    };

    explicit HotspotTraffic(const Params &params);

    void arrivals(Cycle now, std::vector<PacketDesc> &out) override;
    double offeredRate(Cycle now) const override;

  private:
    Params params_;
    AggregateArrivals arrivals_;
    mutable std::size_t phaseIdx_ = 0;
};

} // namespace oenet

#endif // OENET_TRAFFIC_HOTSPOT_HH
