/**
 * @file
 * Traffic source interface and aggregate arrival process.
 *
 * A TrafficSource is polled once per cycle and appends the packets
 * created that cycle. Sources that model open-loop offered load use the
 * AggregateArrivals helper: the network-wide arrival count per cycle is
 * Poisson with the configured mean (equivalent in the aggregate to
 * independent per-node Bernoulli processes, but one RNG draw per cycle
 * instead of one per node).
 *
 * Rates throughout are *network-wide packets per router cycle* — the
 * unit the paper's figures use.
 */

#ifndef OENET_TRAFFIC_INJECTION_PROCESS_HH
#define OENET_TRAFFIC_INJECTION_PROCESS_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace oenet {

/** One packet to create. */
struct PacketDesc
{
    NodeId src;
    NodeId dst;
    int len;
};

class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Append packets created at cycle @p now to @p out. */
    virtual void arrivals(Cycle now, std::vector<PacketDesc> &out) = 0;

    /** True once the source will never produce again (traces). */
    virtual bool exhausted(Cycle now) const
    {
        (void)now;
        return false;
    }

    /** Offered load at @p now, packets/cycle (for reporting). */
    virtual double offeredRate(Cycle now) const = 0;
};

/** Poisson arrival counter at a (possibly time-varying) rate. */
class AggregateArrivals
{
  public:
    explicit AggregateArrivals(std::uint64_t seed) : rng_(seed) {}

    /** Number of packets arriving in one cycle at @p rate pkts/cycle. */
    std::uint64_t draw(double rate) { return rng_.poisson(rate); }

    Rng &rng() { return rng_; }

  private:
    Rng rng_;
};

} // namespace oenet

#endif // OENET_TRAFFIC_INJECTION_PROCESS_HH
