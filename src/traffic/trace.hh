/**
 * @file
 * Packet trace format: an ordered list of (cycle, src, dst, len)
 * records, with a plain-text file representation so traces can be
 * captured, shipped, and replayed. The SPLASH-2 workloads of Section
 * 4.3.3 are replayed through this path.
 *
 * File format (one record per line, '#' comments):
 *     oenet-trace-v1
 *     <cycle> <src> <dst> <len>
 */

#ifndef OENET_TRAFFIC_TRACE_HH
#define OENET_TRAFFIC_TRACE_HH

#include <string>
#include <vector>

#include "traffic/injection_process.hh"

namespace oenet {

struct TraceRecord
{
    Cycle cycle;
    NodeId src;
    NodeId dst;
    std::uint16_t len;
};

using TraceData = std::vector<TraceRecord>;

/** Write @p trace to @p path; fatal() on I/O failure. */
void saveTrace(const std::string &path, const TraceData &trace);

/** Load a trace; fatal() on I/O or format errors. Records must be
 *  sorted by cycle (verified). */
TraceData loadTrace(const std::string &path);

/** Verify ordering + bounds; panic on violations. */
void validateTrace(const TraceData &trace, int num_nodes);

/** Aggregate injection rate of @p trace binned every @p bin cycles:
 *  element i = packets per cycle in [i*bin, (i+1)*bin). */
std::vector<double> traceRateTimeline(const TraceData &trace, Cycle bin);

/** Mean packet length over the trace (flits). */
double traceMeanPacketLen(const TraceData &trace);

/** Replays a TraceData. Does not own the data. */
class TraceSource : public TrafficSource
{
  public:
    /** @param trace must stay alive and sorted by cycle. */
    explicit TraceSource(const TraceData &trace);

    void arrivals(Cycle now, std::vector<PacketDesc> &out) override;
    bool exhausted(Cycle now) const override;
    double offeredRate(Cycle now) const override;

  private:
    const TraceData &trace_;
    std::size_t next_ = 0;
};

} // namespace oenet

#endif // OENET_TRAFFIC_TRACE_HH
