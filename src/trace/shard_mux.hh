/**
 * @file
 * Trace multiplexer for the sharded kernel.
 *
 * Trace sinks are single-threaded consumers (trace.hh), but under the
 * sharded kernel two event families are emitted from inside the
 * parallel phase: link transitions and fault events, both produced by
 * the lazy link walk on whichever shard owns the link's sender. The
 * mux sits between the emission sites and the real sink:
 *
 *   - outside a shard pass (policy decisions, epoch snapshots, packet
 *     retires — all driving-thread emissions) events pass straight
 *     through;
 *   - inside a shard pass the event is buffered in a per-domain
 *     vector, tagged with the emitting component's tick order, and
 *     forwarded by flush() on the driving thread after the barrier.
 *
 * flush() concatenates the per-domain buffers and stable-sorts by tick
 * order. Each tick order lives in exactly one domain, so the sort
 * reconstructs the canonical serial emission order — the same file
 * order at every shard count — while preserving the relative order of
 * events one component emitted within its tick. Buffers are written
 * only by their own shard's thread and drained only between phases, so
 * the kernel's barrier is the only synchronization needed.
 */

#ifndef OENET_TRACE_SHARD_MUX_HH
#define OENET_TRACE_SHARD_MUX_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace oenet {

class ShardTraceMux final : public TraceSink
{
  public:
    /** @param shards shard-domain count (buffers are indexed by the
     *  kernel's domain numbers 1..shards). */
    explicit ShardTraceMux(int shards);

    /** The real sink events are forwarded to (null drops them). */
    void setTarget(TraceSink *target) { target_ = target; }
    TraceSink *target() const { return target_; }

    /** Forward this cycle's buffered events in canonical order.
     *  Driving thread, after the parallel phase. */
    void flush();

    // TraceSink
    void beginRun(const std::vector<TraceLinkInfo> &links) override;
    void linkTransition(const LinkTransitionEvent &e) override;
    void faultEvent(const FaultEvent &e) override;
    void dvsDecision(const DvsDecisionEvent &e) override;
    void laserEvent(const LaserTraceEvent &e) override;
    void packetRetire(const PacketRetireEvent &e) override;
    void powerSnapshot(const PowerSnapshotEvent &e) override;
    void endRun(Cycle at) override;

  private:
    struct Buffered
    {
        std::uint32_t order; ///< emitting component's tick order
        bool isFault;
        LinkTransitionEvent transition{};
        FaultEvent fault{};
    };

    TraceSink *target_ = nullptr;
    std::vector<std::vector<Buffered>> buffers_; ///< per kernel domain
    std::vector<Buffered> scratch_;              ///< flush merge area
};

} // namespace oenet

#endif // OENET_TRACE_SHARD_MUX_HH
