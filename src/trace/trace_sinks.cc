#include "trace/trace_sinks.hh"

#include <cstdio>

#include "common/fs.hh"
#include "common/log.hh"

namespace oenet {

namespace {

/** Shortest round-trip decimal form; deterministic across runs and
 *  thread counts (same contract as the sweep-manifest writer). */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Close a file-backed sink's stream and rename its temp file into
 *  place; no-op for stream-backed sinks. */
void
publishTrace(std::ofstream &owned, const std::string &final_path,
             const char *what)
{
    if (final_path.empty())
        return;
    owned.flush();
    bool streamOk = owned.good();
    owned.close();
    if (!streamOk) {
        fatal("%s: write to '%s' failed", what,
              atomicTempPath(final_path).c_str());
    }
    std::string error;
    if (!atomicPublishFile(atomicTempPath(final_path), final_path,
                           &error)) {
        fatal("%s: publish of '%s': %s", what, final_path.c_str(),
              error.c_str());
    }
}

} // namespace

const char *
traceFormatName(TraceFormat format)
{
    switch (format) {
      case TraceFormat::kJsonl:
        return "jsonl";
      case TraceFormat::kChrome:
        return "chrome";
    }
    panic("traceFormatName: bad format");
}

TraceFormat
parseTraceFormat(const std::string &name)
{
    if (name == "jsonl")
        return TraceFormat::kJsonl;
    if (name == "chrome")
        return TraceFormat::kChrome;
    fatal("unknown trace format '%s' (expected jsonl or chrome)",
          name.c_str());
}

// ---------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : finalPath_(path),
      owned_(atomicTempPath(path), std::ios::binary | std::ios::trunc),
      os_(owned_)
{
    if (!owned_) {
        fatal("JsonlTraceSink: cannot open '%s'",
              atomicTempPath(path).c_str());
    }
}

JsonlTraceSink::JsonlTraceSink(std::ostream &os) : os_(os)
{
}

JsonlTraceSink::~JsonlTraceSink()
{
    publishTrace(owned_, finalPath_, "JsonlTraceSink");
}

void
JsonlTraceSink::beginRun(const std::vector<TraceLinkInfo> &links)
{
    os_ << "{\"type\": \"run_begin\", \"links\": " << links.size()
        << "}\n";
    for (const TraceLinkInfo &l : links) {
        os_ << "{\"type\": \"link\", \"id\": " << l.id
            << ", \"name\": " << quoted(l.name) << ", \"kind\": \""
            << l.kind << "\"}\n";
    }
}

void
JsonlTraceSink::linkTransition(const LinkTransitionEvent &e)
{
    os_ << "{\"type\": \"transition\", \"at\": " << u64(e.completedAt)
        << ", \"start\": " << u64(e.startedAt)
        << ", \"link\": " << e.linkId << ", \"from\": " << e.fromLevel
        << ", \"to\": " << e.toLevel
        << ", \"latency\": " << u64(e.completedAt - e.startedAt)
        << ", \"kind\": \"" << e.type << "\"}\n";
}

void
JsonlTraceSink::dvsDecision(const DvsDecisionEvent &e)
{
    os_ << "{\"type\": \"dvs\", \"at\": " << u64(e.at)
        << ", \"link\": " << e.linkId << ", \"lu\": " << num(e.lu)
        << ", \"avg_lu\": " << num(e.avgLu)
        << ", \"bu\": " << num(e.bu)
        << ", \"th_low\": " << num(e.thLow)
        << ", \"th_high\": " << num(e.thHigh) << ", \"decision\": \""
        << e.decision << "\", \"level\": " << e.level
        << ", \"backlog_escalated\": " << (e.backlogEscalated ? 1 : 0)
        << ", \"downgrade_vetoed\": " << (e.downgradeVetoed ? 1 : 0)
        << "}\n";
}

void
JsonlTraceSink::laserEvent(const LaserTraceEvent &e)
{
    os_ << "{\"type\": \"laser\", \"at\": " << u64(e.at)
        << ", \"link\": " << e.linkId << ", \"action\": \"" << e.action
        << "\", \"from\": " << e.fromLevel << ", \"to\": " << e.toLevel
        << "}\n";
}

void
JsonlTraceSink::packetRetire(const PacketRetireEvent &e)
{
    os_ << "{\"type\": \"packet\", \"at\": " << u64(e.at)
        << ", \"id\": " << u64(e.packet) << ", \"src\": " << e.src
        << ", \"dst\": " << e.dst
        << ", \"created\": " << u64(e.createdAt)
        << ", \"latency\": " << u64(e.latency)
        << ", \"len\": " << e.lenFlits << "}\n";
}

void
JsonlTraceSink::faultEvent(const FaultEvent &e)
{
    os_ << "{\"type\": \"fault\", \"at\": " << u64(e.at)
        << ", \"link\": " << e.linkId << ", \"kind\": \"" << e.kind
        << "\", \"attempts\": " << e.attempts
        << ", \"aux\": " << num(e.aux) << "}\n";
}

void
JsonlTraceSink::powerSnapshot(const PowerSnapshotEvent &e)
{
    os_ << "{\"type\": \"power\", \"at\": " << u64(e.at)
        << ", \"total_mw\": " << num(e.totalPowerMw)
        << ", \"baseline_mw\": " << num(e.baselinePowerMw)
        << ", \"normalized\": " << num(e.normalizedPower)
        << ", \"kinds\": [";
    for (int k = 0; k < e.numKinds; k++) {
        const auto &kr = e.kinds[k];
        if (k > 0)
            os_ << ", ";
        os_ << "{\"kind\": \"" << kr.kind
            << "\", \"count\": " << kr.count
            << ", \"power_mw\": " << num(kr.powerMw)
            << ", \"baseline_mw\": " << num(kr.baselineMw)
            << ", \"mean_level\": " << num(kr.meanLevel)
            << ", \"flits\": " << u64(kr.totalFlits) << "}";
    }
    os_ << "]";
    if (e.hasThermal) {
        // Appended only when the thermal model is on, so leakage-off
        // traces stay byte-identical to the pre-thermal format.
        os_ << ", \"leakage_mw\": " << num(e.leakagePowerMw)
            << ", \"max_temp_c\": " << num(e.maxTempC)
            << ", \"vc_energy_mwc\": [";
        for (std::size_t v = 0; v < e.vcEnergyMwCycles.size(); v++) {
            if (v > 0)
                os_ << ", ";
            os_ << num(e.vcEnergyMwCycles[v]);
        }
        os_ << "]";
    }
    os_ << "}\n";
}

void
JsonlTraceSink::endRun(Cycle at)
{
    os_ << "{\"type\": \"run_end\", \"at\": " << u64(at) << "}\n";
    os_.flush();
}

// ---------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------
//
// Layout: pid 0 holds one thread per link (transitions as "X" slices,
// decisions and laser events as instants); pid 1 holds packet-latency
// slices, one thread per source node; pid 2 holds the counter tracks
// from the periodic power snapshots.

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : finalPath_(path),
      owned_(atomicTempPath(path), std::ios::binary | std::ios::trunc),
      os_(owned_)
{
    if (!owned_) {
        fatal("ChromeTraceSink: cannot open '%s'",
              atomicTempPath(path).c_str());
    }
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(os)
{
}

ChromeTraceSink::~ChromeTraceSink()
{
    if (!closed_)
        endRun(0);
    publishTrace(owned_, finalPath_, "ChromeTraceSink");
}

void
ChromeTraceSink::open(const char *name, const char *cat, const char *ph,
                      Cycle ts, int pid, int tid)
{
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    os_ << "{\"name\": \"" << name << "\", \"cat\": \"" << cat
        << "\", \"ph\": \"" << ph << "\", \"ts\": " << u64(ts)
        << ", \"pid\": " << pid << ", \"tid\": " << tid;
}

void
ChromeTraceSink::beginRun(const std::vector<TraceLinkInfo> &links)
{
    begun_ = true;
    os_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    os_ << "\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": 0, \"args\": {\"name\": \"links\"}}";
    os_ << ",\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": \"packets\"}}";
    os_ << ",\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
           "\"tid\": 0, \"args\": {\"name\": \"metrics\"}}";
    first_ = false;
    for (const TraceLinkInfo &l : links) {
        os_ << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
               "0, \"tid\": "
            << l.id << ", \"args\": {\"name\": " << quoted(l.name)
            << "}}";
    }
}

void
ChromeTraceSink::linkTransition(const LinkTransitionEvent &e)
{
    char name[48];
    std::snprintf(name, sizeof(name), "L%d->L%d", e.fromLevel,
                  e.toLevel);
    open(name, "transition", "X", e.startedAt, 0, e.linkId);
    os_ << ", \"dur\": " << u64(e.completedAt - e.startedAt)
        << ", \"args\": {\"from\": " << e.fromLevel
        << ", \"to\": " << e.toLevel << ", \"kind\": \"" << e.type
        << "\"}}";
}

void
ChromeTraceSink::dvsDecision(const DvsDecisionEvent &e)
{
    open(e.decision, "dvs", "i", e.at, 0, e.linkId);
    os_ << ", \"s\": \"t\", \"args\": {\"lu\": " << num(e.lu)
        << ", \"avg_lu\": " << num(e.avgLu)
        << ", \"bu\": " << num(e.bu)
        << ", \"th_low\": " << num(e.thLow)
        << ", \"th_high\": " << num(e.thHigh)
        << ", \"level\": " << e.level
        << ", \"backlog_escalated\": " << (e.backlogEscalated ? 1 : 0)
        << ", \"downgrade_vetoed\": " << (e.downgradeVetoed ? 1 : 0)
        << "}}";
}

void
ChromeTraceSink::laserEvent(const LaserTraceEvent &e)
{
    char name[48];
    std::snprintf(name, sizeof(name), "laser:%s", e.action);
    open(name, "laser", "i", e.at, 0, e.linkId);
    os_ << ", \"s\": \"t\", \"args\": {\"from\": " << e.fromLevel
        << ", \"to\": " << e.toLevel << "}}";
}

void
ChromeTraceSink::packetRetire(const PacketRetireEvent &e)
{
    open("pkt", "packet", "X", e.createdAt, 1,
         static_cast<int>(e.src));
    os_ << ", \"dur\": " << u64(e.latency)
        << ", \"args\": {\"id\": " << u64(e.packet)
        << ", \"dst\": " << e.dst << ", \"len\": " << e.lenFlits
        << "}}";
}

void
ChromeTraceSink::faultEvent(const FaultEvent &e)
{
    char name[48];
    std::snprintf(name, sizeof(name), "fault:%s", e.kind);
    open(name, "fault", "i", e.at, 0, e.linkId);
    os_ << ", \"s\": \"t\", \"args\": {\"attempts\": " << e.attempts
        << ", \"aux\": " << num(e.aux) << "}}";
}

void
ChromeTraceSink::powerSnapshot(const PowerSnapshotEvent &e)
{
    open("power_mw", "power", "C", e.at, 2, 0);
    os_ << ", \"args\": {";
    for (int k = 0; k < e.numKinds; k++) {
        if (k > 0)
            os_ << ", ";
        os_ << "\"" << e.kinds[k].kind
            << "\": " << num(e.kinds[k].powerMw);
    }
    os_ << "}}";
    open("normalized_power", "power", "C", e.at, 2, 0);
    os_ << ", \"args\": {\"value\": " << num(e.normalizedPower) << "}}";
    open("mean_level", "power", "C", e.at, 2, 0);
    os_ << ", \"args\": {";
    for (int k = 0; k < e.numKinds; k++) {
        if (k > 0)
            os_ << ", ";
        os_ << "\"" << e.kinds[k].kind
            << "\": " << num(e.kinds[k].meanLevel);
    }
    os_ << "}}";
}

void
ChromeTraceSink::endRun(Cycle at)
{
    if (closed_)
        return;
    if (!begun_) {
        // Never attached to a run: emit an empty but valid trace.
        os_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n";
        os_.flush();
        closed_ = true;
        return;
    }
    open("run_end", "meta", "i", at, 2, 0);
    os_ << ", \"s\": \"g\"}";
    os_ << "\n]}\n";
    os_.flush();
    closed_ = true;
}

// ---------------------------------------------------------------------

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &path, TraceFormat format)
{
    switch (format) {
      case TraceFormat::kJsonl:
        return std::make_unique<JsonlTraceSink>(path);
      case TraceFormat::kChrome:
        return std::make_unique<ChromeTraceSink>(path);
    }
    panic("makeTraceSink: bad format");
}

} // namespace oenet
