/**
 * @file
 * Concrete TraceSink implementations:
 *
 *   JsonlTraceSink   -- one JSON object per line, "type"-discriminated;
 *                       greppable and trivially machine-parseable.
 *   ChromeTraceSink  -- chrome://tracing / Perfetto "Trace Event
 *                       Format" JSON: links become threads, transitions
 *                       become complete ("X") slices whose duration is
 *                       the transition latency, decisions become
 *                       instants, power snapshots become counters.
 *
 * Both write cycle stamps and fixed-format numbers only, so a traced
 * run's output is byte-identical for identical (config, seed) at any
 * --jobs count. Timestamps are router-core cycles; in the Chrome
 * viewer 1 "us" on the axis is 1 cycle.
 *
 * File-backed sinks stream to "<path>.tmp.<pid>" and atomically rename
 * to the final path at destruction (common/fs.hh): an interrupted run
 * never leaves a torn trace where a previous complete one stood.
 */

#ifndef OENET_TRACE_TRACE_SINKS_HH
#define OENET_TRACE_TRACE_SINKS_HH

#include <fstream>
#include <memory>
#include <ostream>

#include "trace/trace.hh"

namespace oenet {

/** On-disk trace flavor selected by --trace-format. */
enum class TraceFormat
{
    kJsonl,
    kChrome,
};

const char *traceFormatName(TraceFormat format);

/** Parse "jsonl" / "chrome"; fatal() on anything else. */
TraceFormat parseTraceFormat(const std::string &name);

/** JSON-lines sink. Event order is emission order (cycle-stamped, not
 *  globally sorted — lazy link state walks complete transitions when
 *  the link is next touched). */
class JsonlTraceSink final : public TraceSink
{
  public:
    /** Write to @p path (via its temp file); fatal() if the temp file
     *  cannot be opened. */
    explicit JsonlTraceSink(const std::string &path);

    /** Write to a caller-owned stream (testing). */
    explicit JsonlTraceSink(std::ostream &os);

    /** Publishes a file-backed trace atomically to its final path. */
    ~JsonlTraceSink() override;

    void beginRun(const std::vector<TraceLinkInfo> &links) override;
    void linkTransition(const LinkTransitionEvent &e) override;
    void dvsDecision(const DvsDecisionEvent &e) override;
    void laserEvent(const LaserTraceEvent &e) override;
    void packetRetire(const PacketRetireEvent &e) override;
    void faultEvent(const FaultEvent &e) override;
    void powerSnapshot(const PowerSnapshotEvent &e) override;
    void endRun(Cycle at) override;

  private:
    std::string finalPath_; ///< empty when stream-backed
    std::ofstream owned_;
    std::ostream &os_;
};

/** Chrome "Trace Event Format" sink. Produces a single JSON object
 *  {"displayTimeUnit": ..., "traceEvents": [...]}; load the file in
 *  chrome://tracing or ui.perfetto.dev. */
class ChromeTraceSink final : public TraceSink
{
  public:
    explicit ChromeTraceSink(const std::string &path);
    explicit ChromeTraceSink(std::ostream &os);
    ~ChromeTraceSink() override;

    void beginRun(const std::vector<TraceLinkInfo> &links) override;
    void linkTransition(const LinkTransitionEvent &e) override;
    void dvsDecision(const DvsDecisionEvent &e) override;
    void laserEvent(const LaserTraceEvent &e) override;
    void packetRetire(const PacketRetireEvent &e) override;
    void faultEvent(const FaultEvent &e) override;
    void powerSnapshot(const PowerSnapshotEvent &e) override;
    void endRun(Cycle at) override;

  private:
    /** Start one event object (writes the separating comma). */
    void open(const char *name, const char *cat, const char *ph,
              Cycle ts, int pid, int tid);

    std::string finalPath_; ///< empty when stream-backed
    std::ofstream owned_;
    std::ostream &os_;
    bool begun_ = false;
    bool first_ = true;
    bool closed_ = false;
};

/** In-memory sink for tests: every event is copied into a vector. */
class RecordingTraceSink final : public TraceSink
{
  public:
    void beginRun(const std::vector<TraceLinkInfo> &links) override
    {
        links_ = links;
    }
    void linkTransition(const LinkTransitionEvent &e) override
    {
        transitions_.push_back(e);
    }
    void dvsDecision(const DvsDecisionEvent &e) override
    {
        decisions_.push_back(e);
    }
    void laserEvent(const LaserTraceEvent &e) override
    {
        laser_.push_back(e);
    }
    void packetRetire(const PacketRetireEvent &e) override
    {
        packets_.push_back(e);
    }
    void faultEvent(const FaultEvent &e) override
    {
        faults_.push_back(e);
    }
    void powerSnapshot(const PowerSnapshotEvent &e) override
    {
        snapshots_.push_back(e);
    }
    void endRun(Cycle at) override { endedAt_ = at; }

    const std::vector<TraceLinkInfo> &links() const { return links_; }
    const std::vector<LinkTransitionEvent> &transitions() const
    {
        return transitions_;
    }
    const std::vector<DvsDecisionEvent> &decisions() const
    {
        return decisions_;
    }
    const std::vector<LaserTraceEvent> &laser() const { return laser_; }
    const std::vector<PacketRetireEvent> &packets() const
    {
        return packets_;
    }
    const std::vector<FaultEvent> &faults() const { return faults_; }
    const std::vector<PowerSnapshotEvent> &snapshots() const
    {
        return snapshots_;
    }
    Cycle endedAt() const { return endedAt_; }

  private:
    std::vector<TraceLinkInfo> links_;
    std::vector<LinkTransitionEvent> transitions_;
    std::vector<DvsDecisionEvent> decisions_;
    std::vector<LaserTraceEvent> laser_;
    std::vector<PacketRetireEvent> packets_;
    std::vector<FaultEvent> faults_;
    std::vector<PowerSnapshotEvent> snapshots_;
    Cycle endedAt_ = 0;
};

/** Open a file sink of the requested format. */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &path,
                                         TraceFormat format);

} // namespace oenet

#endif // OENET_TRACE_TRACE_SINKS_HH
