#include "trace/shard_mux.hh"

#include <algorithm>

#include "sim/kernel.hh"

namespace oenet {

ShardTraceMux::ShardTraceMux(int shards)
    : buffers_(static_cast<std::size_t>(shards) + 1)
{
}

void
ShardTraceMux::beginRun(const std::vector<TraceLinkInfo> &links)
{
    if (target_)
        target_->beginRun(links);
}

void
ShardTraceMux::linkTransition(const LinkTransitionEvent &e)
{
    if (!target_)
        return;
    if (!Kernel::inShardPass()) {
        target_->linkTransition(e);
        return;
    }
    auto &buf =
        buffers_[static_cast<std::size_t>(Kernel::shardPassDomain())];
    buf.push_back(Buffered{Kernel::shardPassOrder(), false, e, {}});
}

void
ShardTraceMux::faultEvent(const FaultEvent &e)
{
    if (!target_)
        return;
    if (!Kernel::inShardPass()) {
        target_->faultEvent(e);
        return;
    }
    auto &buf =
        buffers_[static_cast<std::size_t>(Kernel::shardPassDomain())];
    buf.push_back(Buffered{Kernel::shardPassOrder(), true, {}, e});
}

void
ShardTraceMux::dvsDecision(const DvsDecisionEvent &e)
{
    if (target_)
        target_->dvsDecision(e);
}

void
ShardTraceMux::laserEvent(const LaserTraceEvent &e)
{
    if (target_)
        target_->laserEvent(e);
}

void
ShardTraceMux::packetRetire(const PacketRetireEvent &e)
{
    if (target_)
        target_->packetRetire(e);
}

void
ShardTraceMux::powerSnapshot(const PowerSnapshotEvent &e)
{
    if (target_)
        target_->powerSnapshot(e);
}

void
ShardTraceMux::endRun(Cycle at)
{
    if (target_)
        target_->endRun(at);
}

void
ShardTraceMux::flush()
{
    scratch_.clear();
    for (auto &buf : buffers_) {
        scratch_.insert(scratch_.end(), buf.begin(), buf.end());
        buf.clear();
    }
    if (scratch_.empty())
        return;
    // Each tick order belongs to exactly one domain, so sorting by
    // order reconstructs the canonical serial emission order; the
    // stable sort keeps one component's events in emission order.
    std::stable_sort(scratch_.begin(), scratch_.end(),
                     [](const Buffered &a, const Buffered &b) {
                         return a.order < b.order;
                     });
    for (const Buffered &e : scratch_) {
        if (e.isFault)
            target_->faultEvent(e.fault);
        else
            target_->linkTransition(e.transition);
    }
    scratch_.clear();
}

} // namespace oenet
