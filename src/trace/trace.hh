/**
 * @file
 * Structured event tracing for the power-aware opto-electronic network.
 *
 * The paper's claims (Figs. 5-7, Table 3) rest on *when* links change
 * bit rate, voltage, and optical level — end-of-run aggregates cannot
 * show a mistimed P_dec or a DVS oscillation. This layer records typed,
 * cycle-stamped events behind a TraceSink interface:
 *
 *   - link level transitions (old/new level, transition latency);
 *   - per-window DVS decisions (observed L_u/B_u, thresholds in force,
 *     hold/up/down, backlog escalations and vetoes);
 *   - laser VOA traffic (P_inc requests, P_dec dispatches, commits,
 *     preemptions, drops);
 *   - packet end-to-end latency samples at ejection;
 *   - epoch-aligned power/utilization snapshots per link kind.
 *
 * Emission sites hold a nullable `TraceSink *`; a null pointer is the
 * no-op path and costs one predictable branch, so untraced runs pay
 * nothing measurable. Every event carries simulation cycles only — no
 * wall-clock — so traces of the same (config, seed) are byte-identical
 * at any --jobs count, exactly like the sweep manifests.
 *
 * This layer sits below the fabric (it depends only on common/), so
 * links and policies can emit without dependency cycles. Events carry
 * plain ints and string constants rather than fabric enums for the
 * same reason.
 */

#ifndef OENET_TRACE_TRACE_HH
#define OENET_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace oenet {

/** Identity of one traced link, announced once at run start. */
struct TraceLinkInfo
{
    int id = 0;          ///< dense trace id (the network's link index)
    std::string name;    ///< e.g. "inj.n17", "rtr.3.5>3.6"
    const char *kind = ""; ///< linkKindName(): injection/ejection/...
};

/** A completed bit-rate/voltage transition (or gate/wake). */
struct LinkTransitionEvent
{
    Cycle startedAt = 0;   ///< cycle the transition was requested
    Cycle completedAt = 0; ///< cycle the link went stable again
    int linkId = 0;
    int fromLevel = 0;
    int toLevel = 0;
    /** "level" (DVS request), "wake" (power-gate exit), "off". */
    const char *type = "level";
};

/** One window-boundary decision of a link's DVS controller. */
struct DvsDecisionEvent
{
    Cycle at = 0;
    int linkId = 0;
    double lu = 0.0;     ///< this window's utilization sample
    double avgLu = 0.0;  ///< Eq. 11 sliding average
    double bu = 0.0;     ///< downstream buffer utilization
    double thLow = 0.0;  ///< T_L in force for this B_u
    double thHigh = 0.0; ///< T_H in force for this B_u
    /** "hold", "up", "down", or "in-transition" (window skipped). */
    const char *decision = "hold";
    bool backlogEscalated = false; ///< forced up by sender backlog
    bool downgradeVetoed = false;  ///< down -> hold by draining backlog
    int level = 0;                 ///< electrical level before acting
};

/** Laser/VOA control-plane traffic for one fiber. */
struct LaserTraceEvent
{
    Cycle at = 0;
    int linkId = 0;
    /** "request_up" (P_inc dispatched), "request_down" (P_dec
     *  dispatched), "commit" (pending change landed), "preempt_down"
     *  (pending decrease cancelled by an increase), "drop" (request
     *  folded into an in-flight increase). */
    const char *action = "";
    int fromLevel = 0; ///< OpticalLevel as int
    int toLevel = 0;
};

/** End-to-end latency sample recorded when a packet's tail ejects. */
struct PacketRetireEvent
{
    Cycle at = 0; ///< ejection cycle
    PacketId packet = 0;
    NodeId src = 0;
    NodeId dst = 0;
    Cycle createdAt = 0;
    Cycle latency = 0; ///< at - createdAt
    int lenFlits = 0;
};

/** One fault, retry, or degradation event. */
struct FaultEvent
{
    Cycle at = 0;
    int linkId = 0; ///< link the event concerns (kInvalid for none)
    /** "corrupt" (flit failed CRC at the receiver), "retry" (sender
     *  replayed a flit; attempts = attempt count so far), "lock_loss"
     *  (CDR outage began; aux = outage cycles), "hard_fail" (permanent
     *  failure; aux = in-flight flits lost), "voa_delayed" / "voa_lost"
     *  / "voa_retry" (control-plane faults), "dvs_clamp" (controller
     *  froze down-transitions; aux = windowed error rate). */
    const char *kind = "";
    int attempts = 0; ///< retransmission attempts, when meaningful
    double aux = 0.0; ///< kind-specific detail, see above
};

/** Epoch-aligned power/utilization snapshot, per link kind. */
struct PowerSnapshotEvent
{
    struct Kind
    {
        const char *kind = "";
        int count = 0;
        double powerMw = 0.0;
        double baselineMw = 0.0;
        double meanLevel = 0.0;
        std::uint64_t totalFlits = 0;
    };

    Cycle at = 0;
    Kind kinds[3];
    int numKinds = 0;
    double totalPowerMw = 0.0; ///< includes leakage when hasThermal
    double baselinePowerMw = 0.0;
    double normalizedPower = 0.0;

    // Leakage/thermal extension. hasThermal gates emission of these
    // fields in every sink, so with the thermal model disabled the
    // output stream stays byte-identical to the pre-thermal format
    // (docs/DETERMINISM.md §6).
    bool hasThermal = false;
    double leakagePowerMw = 0.0;
    double maxTempC = 0.0;
    std::vector<double> vcEnergyMwCycles; ///< per-VC dynamic energy
};

/**
 * Event consumer. The base class implements every handler as a no-op,
 * so concrete sinks override only what they record and emission sites
 * can treat any sink uniformly. A sink is never shared between
 * concurrently running sweep points, and under the sharded kernel the
 * final sink still sees a single-threaded, canonically ordered stream:
 * events emitted inside a parallel shard pass are buffered per shard
 * by ShardTraceMux (shard_mux.hh) and flushed on the driving thread
 * after the phase barrier, sorted by the emitter's tick order
 * (docs/DETERMINISM.md §4).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Announce the traced system's link table before any event. */
    virtual void beginRun(const std::vector<TraceLinkInfo> &links)
    {
        (void)links;
    }

    virtual void linkTransition(const LinkTransitionEvent &e) { (void)e; }
    virtual void dvsDecision(const DvsDecisionEvent &e) { (void)e; }
    virtual void laserEvent(const LaserTraceEvent &e) { (void)e; }
    virtual void packetRetire(const PacketRetireEvent &e) { (void)e; }
    virtual void faultEvent(const FaultEvent &e) { (void)e; }
    virtual void powerSnapshot(const PowerSnapshotEvent &e) { (void)e; }

    /** Final cycle of the run; the sink may flush/close here. */
    virtual void endRun(Cycle at) { (void)at; }
};

/** Explicit do-nothing sink (equivalent to tracing with nullptr). */
class NullTraceSink final : public TraceSink
{
};

} // namespace oenet

#endif // OENET_TRACE_TRACE_HH
