#include "core/system_config.hh"

#include "phy/calibration.hh"

#include "common/log.hh"

namespace oenet {

SystemConfig
SystemConfig::fromConfig(const Config &config)
{
    SystemConfig c;
    c.topology = parseTopologyKind(
        config.getString("topology", topologyKindName(c.topology)));
    c.meshX = static_cast<int>(config.getInt("mesh.x", c.meshX));
    c.meshY = static_cast<int>(config.getInt("mesh.y", c.meshY));
    c.clusterSize =
        static_cast<int>(config.getInt("mesh.cluster", c.clusterSize));
    c.fatTreeArity =
        static_cast<int>(config.getInt("topo.arity", c.fatTreeArity));

    c.numVcs = static_cast<int>(config.getInt("router.vcs", c.numVcs));
    c.bufferDepthPerPort = static_cast<int>(
        config.getInt("router.buffer", c.bufferDepthPerPort));
    std::string routing = config.getString("router.routing", "xy");
    if (routing == "xy") {
        c.routing = RoutingAlgo::kXY;
    } else if (routing == "yx") {
        c.routing = RoutingAlgo::kYX;
    } else if (routing == "westfirst") {
        c.routing = RoutingAlgo::kWestFirst;
    } else {
        fatal("router.routing must be xy, yx, or westfirst, got '%s'",
              routing.c_str());
    }

    std::string scheme = config.getString("link.scheme", "modulator");
    if (scheme == "vcsel") {
        c.scheme = LinkScheme::kVcsel;
    } else if (scheme == "modulator") {
        c.scheme = LinkScheme::kModulator;
    } else {
        fatal("link.scheme must be vcsel or modulator, got '%s'",
              scheme.c_str());
    }
    c.brMinGbps = config.getDouble("link.br_min", c.brMinGbps);
    c.brMaxGbps = config.getDouble("link.br_max", c.brMaxGbps);
    c.numLevels =
        static_cast<int>(config.getInt("link.levels", c.numLevels));
    c.freqTransitionCycles = config.getUint("link.tbr",
                                            c.freqTransitionCycles);
    c.voltTransitionCycles = config.getUint("link.tv",
                                            c.voltTransitionCycles);
    c.propagationCycles =
        config.getUint("link.propagation", c.propagationCycles);
    c.wakeSettleCycles =
        config.getUint("link.wake_settle", c.wakeSettleCycles);

    c.thermal.enabled =
        config.getBool("leakage.enabled", c.thermal.enabled);
    c.thermal.subLeakMw =
        config.getDouble("leakage.sub_mw", c.thermal.subLeakMw);
    c.thermal.gateLeakMw =
        config.getDouble("leakage.gate_mw", c.thermal.gateLeakMw);
    c.thermal.refTempC =
        config.getDouble("leakage.ref_temp", c.thermal.refTempC);
    c.thermal.subTempSlopeC =
        config.getDouble("leakage.sub_slope", c.thermal.subTempSlopeC);
    c.thermal.gateTempSlopeC = config.getDouble(
        "leakage.gate_slope", c.thermal.gateTempSlopeC);
    c.thermal.ambientC =
        config.getDouble("thermal.ambient", c.thermal.ambientC);
    c.thermal.thermalResCPerW = config.getDouble(
        "thermal.resistance", c.thermal.thermalResCPerW);
    c.thermal.tauCycles =
        config.getUint("thermal.tau", c.thermal.tauCycles);
    c.thermal.epochCycles =
        config.getUint("thermal.epoch", c.thermal.epochCycles);
    c.thermal.throttleC =
        config.getDouble("thermal.throttle", c.thermal.throttleC);

    c.idleElision = config.getBool("sim.idle_elision", c.idleElision);
    if (config.has("sim.conservation_audit")) {
        c.conservationAudit =
            config.getBool("sim.conservation_audit", false);
    }
    c.shards =
        static_cast<int>(config.getInt("sim.shards", c.shards));
    c.directBoundary =
        config.getBool("sim.direct_boundary", c.directBoundary);
    c.metricsIntervalCycles = config.getUint("trace.metrics_interval",
                                             c.metricsIntervalCycles);

    c.powerAware = config.getBool("policy.enabled", c.powerAware);
    std::string mode = config.getString("policy.mode", "dvs");
    if (mode == "dvs") {
        c.policyMode = PolicyMode::kDvs;
    } else if (mode == "onoff") {
        c.policyMode = PolicyMode::kOnOff;
    } else if (mode == "proportional") {
        c.policyMode = PolicyMode::kProportional;
    } else if (mode == "static") {
        c.policyMode = PolicyMode::kStatic;
    } else {
        fatal("policy.mode must be dvs, proportional, onoff, or "
              "static, got '%s'",
              mode.c_str());
    }
    c.windowCycles = config.getUint("policy.window", c.windowCycles);
    c.policy.thLowUncongested =
        config.getDouble("policy.th_low", c.policy.thLowUncongested);
    c.policy.thHighUncongested =
        config.getDouble("policy.th_high", c.policy.thHighUncongested);
    c.policy.thLowCongested = config.getDouble(
        "policy.th_low_congested", c.policy.thLowCongested);
    c.policy.thHighCongested = config.getDouble(
        "policy.th_high_congested", c.policy.thHighCongested);
    c.policy.buCongested =
        config.getDouble("policy.bu_congested", c.policy.buCongested);
    c.policy.slidingWindows = static_cast<int>(
        config.getInt("policy.sliding", c.policy.slidingWindows));

    std::string optical = config.getString("optical.mode", "fixed");
    if (optical == "fixed") {
        c.opticalMode = OpticalMode::kFixed;
    } else if (optical == "trilevel") {
        c.opticalMode = OpticalMode::kTriLevel;
    } else {
        fatal("optical.mode must be fixed or trilevel, got '%s'",
              optical.c_str());
    }
    c.laser.responseCycles =
        config.getUint("optical.response", c.laser.responseCycles);
    c.laser.decisionEpochCycles = config.getUint(
        "optical.epoch", c.laser.decisionEpochCycles);

    c.staticLevel =
        static_cast<int>(config.getInt("policy.static_level",
                                       c.staticLevel));
    c.senderBacklogEscalation =
        config.getBool("policy.backlog_escalation",
                       c.senderBacklogEscalation);
    c.senderBacklogFlits = static_cast<int>(
        config.getInt("policy.backlog_flits", c.senderBacklogFlits));
    c.minLevel =
        static_cast<int>(config.getInt("policy.min_level", c.minLevel));

    c.proportional.targetUtilization = config.getDouble(
        "policy.target_util", c.proportional.targetUtilization);
    c.proportional.slidingWindows = static_cast<int>(config.getInt(
        "policy.prop_sliding", c.proportional.slidingWindows));

    c.fault.enabled = config.getBool("fault.enabled", c.fault.enabled);
    c.fault.seed = config.getUint("fault.seed", c.fault.seed);
    c.fault.berScale =
        config.getDouble("fault.ber_scale", c.fault.berScale);
    c.fault.berFloor =
        config.getDouble("fault.ber_floor", c.fault.berFloor);
    c.fault.lockLossPerCycle = config.getDouble(
        "fault.lock_loss", c.fault.lockLossPerCycle);
    c.fault.lockLossOutageCycles = config.getUint(
        "fault.lock_outage", c.fault.lockLossOutageCycles);
    c.fault.hardFailPerCycle = config.getDouble(
        "fault.hard_fail", c.fault.hardFailPerCycle);
    c.fault.killLink = static_cast<int>(
        config.getInt("fault.kill_link", c.fault.killLink));
    c.fault.killCycle =
        config.getUint("fault.kill_cycle", c.fault.killCycle);
    c.fault.voaDelayProb =
        config.getDouble("fault.voa_delay", c.fault.voaDelayProb);
    c.fault.voaDelayFactor = config.getDouble(
        "fault.voa_delay_factor", c.fault.voaDelayFactor);
    c.fault.voaLossProb =
        config.getDouble("fault.voa_loss", c.fault.voaLossProb);
    c.fault.voaTimeoutCycles = config.getUint(
        "fault.voa_timeout", c.fault.voaTimeoutCycles);
    c.fault.ackProcessingCycles = config.getUint(
        "fault.ack_cycles", c.fault.ackProcessingCycles);
    c.fault.retryBackoffBase = config.getUint(
        "fault.backoff_base", c.fault.retryBackoffBase);
    c.fault.retryBackoffCap = config.getUint(
        "fault.backoff_cap", c.fault.retryBackoffCap);
    c.fault.clampErrorRate =
        config.getDouble("fault.clamp_rate", c.fault.clampErrorRate);
    c.fault.clampForceUp =
        config.getBool("fault.clamp_force_up", c.fault.clampForceUp);
    c.fault.orphanTimeoutCycles = config.getUint(
        "fault.orphan_timeout", c.fault.orphanTimeoutCycles);

    // Test-chip calibration feed-in (Section 5's stated next step).
    std::string calib = config.getString("link.calibration", "");
    if (!calib.empty()) {
        LinkCalibration cal = loadLinkCalibration(calib);
        c.power = cal.power;
        c.vmaxV = cal.power.vmaxV;
        c.brMaxGbps = cal.power.brMaxGbps;
        if (cal.levels) {
            c.measuredLevels = cal.levels;
            c.brMinGbps = cal.levels->minBitRateGbps();
            c.brMaxGbps = cal.levels->maxBitRateGbps();
            c.numLevels = cal.levels->numLevels();
        }
    }

    c.validate();
    return c;
}

void
SystemConfig::validate() const
{
    auto checkProb = [](const char *name, double p) {
        if (!(p >= 0.0 && p <= 1.0))
            fatal("%s must be a probability in [0, 1], got %g", name, p);
    };

    topologyParams().validate();
    if (numVcs < 1)
        fatal("router.vcs must be >= 1, got %d", numVcs);
    if (topology == TopologyKind::kTorus && numVcs < 2) {
        fatal("topology=torus needs router.vcs >= 2 (dateline escape "
              "VC classes), got %d", numVcs);
    }
    if (routing == RoutingAlgo::kWestFirst &&
        topology == TopologyKind::kTorus) {
        fatal("router.routing=westfirst is a mesh-only turn model; "
              "torus routing must be xy or yx");
    }
    {
        TopologyParams tp = topologyParams();
        int ports = tp.portsPerRouter();
        if (ports > 32) {
            fatal("topology %s needs %d ports per router, above the "
                  "32-port limit (shrink mesh.cluster or topo.arity)",
                  topologyKindName(topology), ports);
        }
        if (ports * numVcs > 64) {
            fatal("%d ports x %d VCs = %d exceeds the router's 64-wide "
                  "allocator masks (shrink router.vcs, mesh.cluster, "
                  "or topo.arity)", ports, numVcs, ports * numVcs);
        }
    }
    if (bufferDepthPerPort < numVcs) {
        fatal("router.buffer (%d) must be >= router.vcs (%d): every "
              "VC needs at least one buffer slot",
              bufferDepthPerPort, numVcs);
    }
    if (shards < 1)
        fatal("sim.shards must be >= 1, got %d", shards);
    if (!(brMinGbps > 0.0))
        fatal("link.br_min must be > 0, got %g", brMinGbps);
    if (!(brMaxGbps >= brMinGbps)) {
        fatal("link.br_max (%g) must be >= link.br_min (%g)",
              brMaxGbps, brMinGbps);
    }
    if (numLevels < 1)
        fatal("link.levels must be >= 1, got %d", numLevels);
    if (!(vmaxV > 0.0))
        fatal("vmax must be > 0, got %g", vmaxV);
    // Zero transition times are legitimate (the no_tv/no_tbr
    // ablations); negative values cannot happen (unsigned).
    if (!(offPowerMw >= 0.0))
        fatal("off power must be >= 0, got %g", offPowerMw);

    int max_level = numLevels - 1;
    if (staticLevel != kInvalid &&
        (staticLevel < 0 || staticLevel > max_level)) {
        fatal("policy.static_level %d out of range [0, %d]",
              staticLevel, max_level);
    }
    if (minLevel < 0 || minLevel > max_level) {
        fatal("policy.min_level %d out of range [0, %d]", minLevel,
              max_level);
    }
    if (powerAware && windowCycles == 0)
        fatal("policy.window must be > 0 when the policy is enabled");
    if (metricsIntervalCycles == 0) {
        fatal("trace.metrics_interval must be > 0 (power snapshots "
              "are only emitted while a trace sink is attached; "
              "detach the sink to disable them, do not zero the "
              "interval)");
    }
    thermal.validate();
    if (thermal.enabled && fault.enabled) {
        fatal("leakage.enabled and fault.enabled are mutually "
              "exclusive: fault-attached links are advanced by their "
              "receivers and bypass the power ledger the thermal "
              "model lives in");
    }
    if (opticalMode == OpticalMode::kTriLevel) {
        if (scheme != LinkScheme::kModulator)
            fatal("tri-level optical power requires the modulator "
                  "scheme");
        if (laser.decisionEpochCycles == 0)
            fatal("optical.epoch must be > 0 in tri-level mode");
    }

    checkProb("fault.ber_floor", fault.berFloor);
    if (!(fault.berScale >= 0.0))
        fatal("fault.ber_scale must be >= 0, got %g", fault.berScale);
    checkProb("fault.lock_loss", fault.lockLossPerCycle);
    checkProb("fault.hard_fail", fault.hardFailPerCycle);
    checkProb("fault.voa_delay", fault.voaDelayProb);
    checkProb("fault.voa_loss", fault.voaLossProb);
    if (!(fault.voaDelayProb + fault.voaLossProb <= 1.0)) {
        fatal("fault.voa_delay + fault.voa_loss must be <= 1, got %g",
              fault.voaDelayProb + fault.voaLossProb);
    }
    if (!(fault.voaDelayFactor >= 1.0)) {
        fatal("fault.voa_delay_factor must be >= 1, got %g",
              fault.voaDelayFactor);
    }
    if (fault.killLink != kInvalid && fault.killLink < 0) {
        fatal("fault.kill_link must be a link index or -1, got %d",
              fault.killLink);
    }
    if (fault.retryBackoffCap < fault.retryBackoffBase) {
        fatal("fault.backoff_cap (%llu) must be >= fault.backoff_base "
              "(%llu)",
              static_cast<unsigned long long>(fault.retryBackoffCap),
              static_cast<unsigned long long>(fault.retryBackoffBase));
    }
    checkProb("fault.clamp_rate", fault.clampErrorRate);
}

bool
SystemConfig::conservationAuditEnabled() const
{
    if (conservationAudit.has_value())
        return *conservationAudit;
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

TopologyParams
SystemConfig::topologyParams() const
{
    TopologyParams t;
    t.kind = topology;
    t.meshX = meshX;
    t.meshY = meshY;
    t.clusterSize = clusterSize;
    t.fatTreeArity = fatTreeArity;
    return t;
}

Network::Params
SystemConfig::networkParams() const
{
    Network::Params p;
    p.topo = topologyParams();
    p.router.numVcs = numVcs;
    p.router.bufferDepthPerPort = bufferDepthPerPort;
    p.router.routing = routing;
    p.link.scheme = scheme;
    p.link.power = power;
    p.link.power.vmaxV = vmaxV;
    p.link.power.brMaxGbps = brMaxGbps;
    p.link.freqTransitionCycles = freqTransitionCycles;
    p.link.voltTransitionCycles = voltTransitionCycles;
    p.link.propagationCycles = propagationCycles;
    p.link.offPowerMw = offPowerMw;
    p.link.wakeSettleCycles = wakeSettleCycles;
    // Links start at the maximum rate; the policy scales them down.
    p.link.initialLevel = kInvalid;
    p.levels = measuredLevels
                   ? *measuredLevels
                   : BitrateLevelTable::linear(brMinGbps, brMaxGbps,
                                               numLevels, vmaxV);
    p.shards = shards;
    p.directBoundary = directBoundary;
    p.thermal = thermal;
    return p;
}

PolicyEngine::Params
SystemConfig::engineParams() const
{
    PolicyEngine::Params p;
    p.mode = policyMode;
    p.windowCycles = windowCycles;
    p.link.policy = policy;
    p.link.opticalMode = opticalMode;
    p.link.laser = laser;
    p.link.minLevel = minLevel;
    p.link.senderBacklogEscalation = senderBacklogEscalation;
    p.link.senderBacklogFlits = senderBacklogFlits;
    p.onOff = onOff;
    p.proportional = proportional;
    p.staticLevel = staticLevel;
    return p;
}

} // namespace oenet
