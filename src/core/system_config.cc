#include "core/system_config.hh"

#include "phy/calibration.hh"

#include "common/log.hh"

namespace oenet {

SystemConfig
SystemConfig::fromConfig(const Config &config)
{
    SystemConfig c;
    c.meshX = static_cast<int>(config.getInt("mesh.x", c.meshX));
    c.meshY = static_cast<int>(config.getInt("mesh.y", c.meshY));
    c.clusterSize =
        static_cast<int>(config.getInt("mesh.cluster", c.clusterSize));

    c.numVcs = static_cast<int>(config.getInt("router.vcs", c.numVcs));
    c.bufferDepthPerPort = static_cast<int>(
        config.getInt("router.buffer", c.bufferDepthPerPort));
    std::string routing = config.getString("router.routing", "xy");
    if (routing == "xy") {
        c.routing = RoutingAlgo::kXY;
    } else if (routing == "yx") {
        c.routing = RoutingAlgo::kYX;
    } else if (routing == "westfirst") {
        c.routing = RoutingAlgo::kWestFirst;
    } else {
        fatal("router.routing must be xy, yx, or westfirst, got '%s'",
              routing.c_str());
    }

    std::string scheme = config.getString("link.scheme", "modulator");
    if (scheme == "vcsel") {
        c.scheme = LinkScheme::kVcsel;
    } else if (scheme == "modulator") {
        c.scheme = LinkScheme::kModulator;
    } else {
        fatal("link.scheme must be vcsel or modulator, got '%s'",
              scheme.c_str());
    }
    c.brMinGbps = config.getDouble("link.br_min", c.brMinGbps);
    c.brMaxGbps = config.getDouble("link.br_max", c.brMaxGbps);
    c.numLevels =
        static_cast<int>(config.getInt("link.levels", c.numLevels));
    c.freqTransitionCycles = config.getUint("link.tbr",
                                            c.freqTransitionCycles);
    c.voltTransitionCycles = config.getUint("link.tv",
                                            c.voltTransitionCycles);
    c.propagationCycles =
        config.getUint("link.propagation", c.propagationCycles);

    c.powerAware = config.getBool("policy.enabled", c.powerAware);
    std::string mode = config.getString("policy.mode", "dvs");
    if (mode == "dvs") {
        c.policyMode = PolicyMode::kDvs;
    } else if (mode == "onoff") {
        c.policyMode = PolicyMode::kOnOff;
    } else if (mode == "proportional") {
        c.policyMode = PolicyMode::kProportional;
    } else if (mode == "static") {
        c.policyMode = PolicyMode::kStatic;
    } else {
        fatal("policy.mode must be dvs, proportional, onoff, or "
              "static, got '%s'",
              mode.c_str());
    }
    c.windowCycles = config.getUint("policy.window", c.windowCycles);
    c.policy.thLowUncongested =
        config.getDouble("policy.th_low", c.policy.thLowUncongested);
    c.policy.thHighUncongested =
        config.getDouble("policy.th_high", c.policy.thHighUncongested);
    c.policy.thLowCongested = config.getDouble(
        "policy.th_low_congested", c.policy.thLowCongested);
    c.policy.thHighCongested = config.getDouble(
        "policy.th_high_congested", c.policy.thHighCongested);
    c.policy.buCongested =
        config.getDouble("policy.bu_congested", c.policy.buCongested);
    c.policy.slidingWindows = static_cast<int>(
        config.getInt("policy.sliding", c.policy.slidingWindows));

    std::string optical = config.getString("optical.mode", "fixed");
    if (optical == "fixed") {
        c.opticalMode = OpticalMode::kFixed;
    } else if (optical == "trilevel") {
        c.opticalMode = OpticalMode::kTriLevel;
    } else {
        fatal("optical.mode must be fixed or trilevel, got '%s'",
              optical.c_str());
    }
    c.laser.responseCycles =
        config.getUint("optical.response", c.laser.responseCycles);
    c.laser.decisionEpochCycles = config.getUint(
        "optical.epoch", c.laser.decisionEpochCycles);

    c.staticLevel =
        static_cast<int>(config.getInt("policy.static_level",
                                       c.staticLevel));
    c.senderBacklogEscalation =
        config.getBool("policy.backlog_escalation",
                       c.senderBacklogEscalation);
    c.senderBacklogFlits = static_cast<int>(
        config.getInt("policy.backlog_flits", c.senderBacklogFlits));
    c.minLevel =
        static_cast<int>(config.getInt("policy.min_level", c.minLevel));

    c.proportional.targetUtilization = config.getDouble(
        "policy.target_util", c.proportional.targetUtilization);
    c.proportional.slidingWindows = static_cast<int>(config.getInt(
        "policy.prop_sliding", c.proportional.slidingWindows));

    // Test-chip calibration feed-in (Section 5's stated next step).
    std::string calib = config.getString("link.calibration", "");
    if (!calib.empty()) {
        LinkCalibration cal = loadLinkCalibration(calib);
        c.power = cal.power;
        c.vmaxV = cal.power.vmaxV;
        c.brMaxGbps = cal.power.brMaxGbps;
        if (cal.levels) {
            c.measuredLevels = cal.levels;
            c.brMinGbps = cal.levels->minBitRateGbps();
            c.brMaxGbps = cal.levels->maxBitRateGbps();
            c.numLevels = cal.levels->numLevels();
        }
    }

    if (c.opticalMode == OpticalMode::kTriLevel &&
        c.scheme != LinkScheme::kModulator)
        fatal("tri-level optical power requires the modulator scheme");
    return c;
}

Network::Params
SystemConfig::networkParams() const
{
    Network::Params p;
    p.meshX = meshX;
    p.meshY = meshY;
    p.nodesPerCluster = clusterSize;
    p.router.numVcs = numVcs;
    p.router.bufferDepthPerPort = bufferDepthPerPort;
    p.router.routing = routing;
    p.link.scheme = scheme;
    p.link.power = power;
    p.link.power.vmaxV = vmaxV;
    p.link.power.brMaxGbps = brMaxGbps;
    p.link.freqTransitionCycles = freqTransitionCycles;
    p.link.voltTransitionCycles = voltTransitionCycles;
    p.link.propagationCycles = propagationCycles;
    p.link.offPowerMw = offPowerMw;
    // Links start at the maximum rate; the policy scales them down.
    p.link.initialLevel = kInvalid;
    p.levels = measuredLevels
                   ? *measuredLevels
                   : BitrateLevelTable::linear(brMinGbps, brMaxGbps,
                                               numLevels, vmaxV);
    return p;
}

PolicyEngine::Params
SystemConfig::engineParams() const
{
    PolicyEngine::Params p;
    p.mode = policyMode;
    p.windowCycles = windowCycles;
    p.link.policy = policy;
    p.link.opticalMode = opticalMode;
    p.link.laser = laser;
    p.link.minLevel = minLevel;
    p.link.senderBacklogEscalation = senderBacklogEscalation;
    p.link.senderBacklogFlits = senderBacklogFlits;
    p.onOff = onOff;
    p.proportional = proportional;
    p.staticLevel = staticLevel;
    return p;
}

} // namespace oenet
