/**
 * @file
 * Shared drivers for the figure-regeneration benches: paired
 * (power-aware vs. baseline) runs, and time-series capture of
 * injection rate / normalized power / rolling latency over a run —
 * the raw series behind Figs. 6 and 7.
 */

#ifndef OENET_CORE_SWEEPS_HH
#define OENET_CORE_SWEEPS_HH

#include <vector>

#include "core/experiment.hh"

namespace oenet {

/** A power-aware run normalized against its non-power-aware twin
 *  (same traffic, same seed, links pinned at max). */
struct PairedResult
{
    RunMetrics powerAware;
    RunMetrics baseline;
    NormalizedMetrics normalized;
};

PairedResult runPaired(const SystemConfig &config,
                       const TrafficSpec &spec,
                       const RunProtocol &protocol);

/** Copy of @p config with power-awareness disabled (the baseline). */
SystemConfig baselineConfig(const SystemConfig &config);

/** Time series sampled every @p bin cycles over one run. */
struct TimelineResult
{
    Cycle bin = 0;
    std::vector<double> offeredRate;     ///< packets/cycle in each bin
    std::vector<double> normalizedPower; ///< avg over each bin
    std::vector<double> avgLatency;      ///< packets ejected in bin
    RunMetrics metrics;                  ///< whole-run rollup
};

TimelineResult runTimeline(const SystemConfig &config,
                           const TrafficSpec &spec, Cycle total,
                           Cycle bin, Cycle warmup = 0,
                           const TraceOptions &trace = {});

} // namespace oenet

#endif // OENET_CORE_SWEEPS_HH
