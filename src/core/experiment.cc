#include "core/experiment.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace oenet {

TrafficSpec
TrafficSpec::uniform(double rate, int len, std::uint64_t seed)
{
    TrafficSpec s;
    s.kind = Kind::kUniform;
    s.rate = rate;
    s.packetLen = len;
    s.seed = seed;
    return s;
}

TrafficSpec
TrafficSpec::hotspot(std::vector<RatePhase> phases, int len,
                     std::uint64_t seed)
{
    TrafficSpec s;
    s.kind = Kind::kHotspot;
    s.phases = std::move(phases);
    s.packetLen = len;
    s.seed = seed;
    return s;
}

TrafficSpec
TrafficSpec::traceReplay(const TraceData &trace)
{
    TrafficSpec s;
    s.kind = Kind::kTrace;
    s.trace = &trace;
    return s;
}

std::unique_ptr<TrafficSource>
makeTraffic(const TrafficSpec &spec, const SystemConfig &config)
{
    if (spec.rate < 0.0)
        fatal("makeTraffic: negative injection rate %g", spec.rate);
    if (spec.packetLen < 1)
        fatal("makeTraffic: packet length must be >= 1 flit, got %d",
              spec.packetLen);
    switch (spec.kind) {
      case TrafficSpec::Kind::kUniform: {
        UniformRandomTraffic::Params p;
        p.numNodes = config.numNodes();
        p.rate = spec.rate;
        p.packetLen = spec.packetLen;
        p.seed = spec.seed;
        return std::make_unique<UniformRandomTraffic>(p);
      }
      case TrafficSpec::Kind::kHotspot: {
        HotspotTraffic::Params p;
        p.numNodes = config.numNodes();
        p.phases = spec.phases;
        // The default hot node is the paper's rack-(3,5)-node-4 (id
        // 348); fold it into range on smaller test systems.
        p.hotNode = spec.hotNode %
                    static_cast<NodeId>(config.numNodes());
        p.hotWeight = spec.hotWeight;
        p.packetLen = spec.packetLen;
        p.seed = spec.seed;
        return std::make_unique<HotspotTraffic>(p);
      }
      case TrafficSpec::Kind::kPermutation: {
        if (!config.meshFamily())
            fatal("makeTraffic: permutation patterns are defined by "
                  "mesh coordinates and do not apply to topology=%s "
                  "(use uniform or hotspot)",
                  topologyKindName(config.topology));
        PermutationTraffic::Params p;
        p.pattern = spec.pattern;
        p.numNodes = config.numNodes();
        p.meshX = config.meshX;
        p.meshY = config.meshY;
        p.clusterSize = config.clusterSize;
        p.rate = spec.rate;
        p.packetLen = spec.packetLen;
        p.seed = spec.seed;
        return std::make_unique<PermutationTraffic>(p);
      }
      case TrafficSpec::Kind::kTrace: {
        if (spec.trace == nullptr)
            fatal("makeTraffic: trace spec without trace data");
        return std::make_unique<TraceSource>(*spec.trace);
      }
    }
    panic("makeTraffic: bad spec kind");
}

RunMetrics
runExperiment(const SystemConfig &config, const TrafficSpec &spec,
              const RunProtocol &protocol, const TraceOptions &trace)
{
    SystemConfig cfg = config;
    // An unset fault seed follows the traffic seed (decorrelated by the
    // stream-splitting hash) so every sweep point gets an independent,
    // reproducible fault history with no extra flags.
    if (cfg.fault.enabled && cfg.fault.seed == 0)
        cfg.fault.seed = deriveStreamSeed(spec.seed, 0x0fa117u);
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(spec, cfg));
    if (trace.sink)
        sys.setTraceSink(trace.sink, cfg.metricsIntervalCycles);
    sys.run(protocol.warmup);
    sys.startMeasurement();
    sys.run(protocol.measure);
    sys.stopMeasurement();
    sys.awaitDrain(protocol.drainLimit);
    RunMetrics m = sys.metrics();
    if (cfg.conservationAuditEnabled()) {
        // Detach the sink before the audit's settle cycles so the
        // trace ends exactly where the untraced run's would; nothing
        // below emits events.
        if (trace.sink)
            sys.setTraceSink(nullptr);
        m.auditFailures = sys.auditConservation();
    }
    return m;
}

double
zeroLoadLatency(const SystemConfig &config, int packet_len,
                std::uint64_t seed)
{
    // A trickle light enough that packets essentially never queue.
    TrafficSpec spec = TrafficSpec::uniform(0.01, packet_len, seed);
    RunProtocol protocol;
    protocol.warmup = 5000;
    protocol.measure = 60000;
    RunMetrics m = runExperiment(config, spec, protocol);
    if (m.packetsMeasured == 0)
        panic("zeroLoadLatency: no packets measured");
    return m.avgLatency;
}

double
findSaturationRate(const SystemConfig &config, int packet_len,
                   double rate_hi, const RunProtocol &protocol)
{
    double zero_load = zeroLoadLatency(config, packet_len);
    double threshold = 2.0 * zero_load;
    double lo = 0.0;
    double hi = rate_hi;

    // First make sure the upper bound actually saturates.
    RunMetrics top = runExperiment(
        config, TrafficSpec::uniform(hi, packet_len), protocol);
    if (top.avgLatency <= threshold && top.drained)
        return hi; // never saturates within the probed range

    for (int iter = 0; iter < 7; iter++) {
        double mid = (lo + hi) / 2.0;
        RunMetrics m = runExperiment(
            config, TrafficSpec::uniform(mid, packet_len), protocol);
        bool saturated = m.avgLatency > threshold || !m.drained;
        if (saturated)
            hi = mid;
        else
            lo = mid;
    }
    return (lo + hi) / 2.0;
}

} // namespace oenet
