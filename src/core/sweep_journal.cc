#include "core/sweep_journal.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <type_traits>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/proc.hh"

namespace oenet {

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();

    std::uint32_t crc = 0xffffffffu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

namespace {

std::string
formatExact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Append a body's CRC wrap: {"r": <body>, "crc": "xxxxxxxx"}\n */
std::string
wrapLine(const std::string &body)
{
    char crcHex[16];
    std::snprintf(crcHex, sizeof(crcHex), "%08x",
                  crc32(body.data(), body.size()));
    std::string out;
    out.reserve(body.size() + 32);
    out += "{\"r\": ";
    out += body;
    out += ", \"crc\": \"";
    out += crcHex;
    out += "\"}\n";
    return out;
}

/** Validate @p line's wrap and CRC; on success extract the body. */
bool
unwrapLine(const std::string &line, std::string &body)
{
    // line includes its trailing newline.
    static const char kPrefix[] = "{\"r\": ";
    static const char kCrcMark[] = ", \"crc\": \"";
    constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;   // 6
    constexpr std::size_t kCrcMarkLen = sizeof(kCrcMark) - 1; // 10
    constexpr std::size_t kSuffixLen = kCrcMarkLen + 8 + 2;   // ..."}

    if (line.empty() || line.back() != '\n')
        return false;
    const std::size_t len = line.size() - 1; // without the newline
    if (len < kPrefixLen + kSuffixLen + 2)
        return false;
    if (line.compare(0, kPrefixLen, kPrefix) != 0)
        return false;
    if (line.compare(len - 2, 2, "\"}") != 0)
        return false;
    const std::size_t markAt = len - kSuffixLen;
    if (line.compare(markAt, kCrcMarkLen, kCrcMark) != 0)
        return false;

    char hex[9];
    std::memcpy(hex, line.data() + markAt + kCrcMarkLen, 8);
    hex[8] = '\0';
    char *end = nullptr;
    const unsigned long stored = std::strtoul(hex, &end, 16);
    if (end != hex + 8)
        return false;

    body.assign(line, kPrefixLen, markAt - kPrefixLen);
    return crc32(body.data(), body.size()) ==
           static_cast<std::uint32_t>(stored);
}

/**
 * Strict sequential parser over a record body. The journal only ever
 * parses its own emission, so fields are matched literally, in order —
 * any deviation marks the line corrupt and ends the valid prefix.
 */
struct Parser
{
    const char *p;
    const char *end;
    bool ok = true;

    explicit Parser(const std::string &s)
        : p(s.data()), end(s.data() + s.size())
    {
    }

    bool lit(const char *s)
    {
        if (!ok)
            return false;
        const std::size_t n = std::strlen(s);
        if (static_cast<std::size_t>(end - p) < n ||
            std::memcmp(p, s, n) != 0) {
            ok = false;
            return false;
        }
        p += n;
        return true;
    }

    bool parseString(std::string &out)
    {
        out.clear();
        if (!lit("\""))
            return false;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\') {
                if (p >= end) {
                    ok = false;
                    return false;
                }
                char e = *p++;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  default:
                    ok = false;
                    return false;
                }
            } else {
                out += c;
            }
        }
        return lit("\"");
    }

    bool parseUint(std::uint64_t &out)
    {
        if (!ok)
            return false;
        char *stop = nullptr;
        errno = 0;
        // The backing buffer is a std::string: NUL-terminated, and
        // strtoull stops at the first non-digit well before it.
        out = std::strtoull(p, &stop, 10);
        if (stop == p || stop > end || errno == ERANGE) {
            ok = false;
            return false;
        }
        p = stop;
        return true;
    }

    bool parseInt(long long &out)
    {
        if (!ok)
            return false;
        char *stop = nullptr;
        errno = 0;
        out = std::strtoll(p, &stop, 10);
        if (stop == p || stop > end || errno == ERANGE) {
            ok = false;
            return false;
        }
        p = stop;
        return true;
    }

    bool parseDouble(double &out)
    {
        if (!ok)
            return false;
        char *stop = nullptr;
        errno = 0;
        out = std::strtod(p, &stop);
        if (stop == p || stop > end) {
            ok = false;
            return false;
        }
        p = stop;
        return true;
    }

    bool parseBool(bool &out)
    {
        if (!ok)
            return false;
        if (static_cast<std::size_t>(end - p) >= 4 &&
            std::memcmp(p, "true", 4) == 0) {
            out = true;
            p += 4;
            return true;
        }
        if (static_cast<std::size_t>(end - p) >= 5 &&
            std::memcmp(p, "false", 5) == 0) {
            out = false;
            p += 5;
            return true;
        }
        ok = false;
        return false;
    }

    bool done() const { return ok && p == end; }
};

/** Serialize RunMetrics fields as a comma-joined key list. */
struct MetricsWriter
{
    std::string &out;
    bool first = true;

    template <typename T>
    void operator()(const char *name, const T &value)
    {
        if (!first)
            out += ", ";
        first = false;
        out += '"';
        out += name;
        out += "\": ";
        if constexpr (std::is_same_v<T, bool>) {
            out += value ? "true" : "false";
        } else if constexpr (std::is_floating_point_v<T>) {
            out += formatExact(value);
        } else {
            // Integers stay decimal tokens: a uint64 seed or counter
            // above 2^53 would lose bits through a double.
            out += std::to_string(value);
        }
    }
};

/** Parse RunMetrics fields back, type-faithfully, in emission order. */
struct MetricsParser
{
    Parser &ps;
    bool first = true;

    template <typename T>
    void operator()(const char *name, T &value)
    {
        if (!ps.ok)
            return;
        if (!first)
            ps.lit(", ");
        first = false;
        ps.lit("\"");
        ps.lit(name);
        ps.lit("\": ");
        if constexpr (std::is_same_v<T, bool>) {
            ps.parseBool(value);
        } else if constexpr (std::is_floating_point_v<T>) {
            double d = 0.0;
            if (ps.parseDouble(d))
                value = d;
        } else if constexpr (std::is_signed_v<T>) {
            long long i = 0;
            if (ps.parseInt(i))
                value = static_cast<T>(i);
        } else {
            std::uint64_t u = 0;
            if (ps.parseUint(u))
                value = static_cast<T>(u);
        }
    }
};

bool
parseHeaderBody(const std::string &body, SweepJournal::Header &header)
{
    Parser ps(body);
    ps.lit("{\"journal\": \"oenet-sweep\", \"v\": 1, \"base_seed\": ");
    ps.parseUint(header.baseSeed);
    ps.lit(", \"points\": ");
    ps.parseUint(header.points);
    ps.lit("}");
    return ps.done();
}

bool
parseRecordBody(const std::string &body, SweepOutcome &out)
{
    Parser ps(body);
    std::uint64_t index = 0;
    ps.lit("{\"index\": ");
    ps.parseUint(index);
    ps.lit(", \"label\": ");
    ps.parseString(out.label);
    ps.lit(", \"seed\": ");
    ps.parseUint(out.seed);
    ps.lit(", \"status\": ");
    std::string status;
    ps.parseString(status);
    ps.lit(", \"attempts\": ");
    long long attempts = 0;
    ps.parseInt(attempts);
    ps.lit(", \"error\": ");
    ps.parseString(out.error);
    ps.lit(", \"wall_ms\": ");
    ps.parseDouble(out.wallMs);
    ps.lit(", \"metrics\": {");
    MetricsParser mp{ps};
    forEachRunMetricsField(out.metrics, mp);
    ps.lit("}}");
    if (!ps.done())
        return false;

    out.index = static_cast<std::size_t>(index);
    out.attempts = static_cast<int>(attempts);
    if (status == pointStatusName(PointStatus::kOk))
        out.status = PointStatus::kOk;
    else if (status == pointStatusName(PointStatus::kFailed))
        out.status = PointStatus::kFailed;
    else
        return false;
    return true;
}

} // namespace

std::string
SweepJournal::headerLine(const Header &header)
{
    std::string body = "{\"journal\": \"oenet-sweep\", \"v\": 1, "
                       "\"base_seed\": " +
                       std::to_string(header.baseSeed) +
                       ", \"points\": " + std::to_string(header.points) +
                       "}";
    return wrapLine(body);
}

std::string
SweepJournal::recordLine(const SweepOutcome &outcome)
{
    std::string body;
    body.reserve(1024);
    body += "{\"index\": " + std::to_string(outcome.index);
    body += ", \"label\": \"" + jsonEscape(outcome.label) + "\"";
    body += ", \"seed\": " + std::to_string(outcome.seed);
    body += ", \"status\": \"";
    body += pointStatusName(outcome.status);
    body += "\"";
    body += ", \"attempts\": " + std::to_string(outcome.attempts);
    body += ", \"error\": \"" + jsonEscape(outcome.error) + "\"";
    body += ", \"wall_ms\": " + formatExact(outcome.wallMs);
    body += ", \"metrics\": {";
    MetricsWriter writer{body};
    forEachRunMetricsField(outcome.metrics, writer);
    body += "}}";
    return wrapLine(body);
}

SweepJournal::Loaded
SweepJournal::load(const std::string &path)
{
    Loaded out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;
    out.exists = true;

    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    bool first = true;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break; // torn tail: no newline, cannot be valid
        const std::string line = data.substr(pos, nl - pos + 1);

        std::string body;
        if (!unwrapLine(line, body))
            break;
        if (first) {
            Header header;
            if (!parseHeaderBody(body, header))
                break;
            out.hasHeader = true;
            out.header = header;
        } else {
            SweepOutcome outcome;
            if (!parseRecordBody(body, outcome))
                break;
            out.outcomes.push_back(std::move(outcome));
        }
        first = false;
        pos = nl + 1;
        out.validBytes = pos;
    }

    // Everything past the valid prefix counts as dropped lines.
    if (pos < data.size()) {
        for (std::size_t i = pos; i < data.size(); ++i)
            if (data[i] == '\n')
                ++out.droppedLines;
        if (data.back() != '\n')
            ++out.droppedLines;
    }
    return out;
}

SweepJournal::~SweepJournal()
{
    close();
}

void
SweepJournal::open(const std::string &path, const Header &header,
                   std::size_t keep_bytes)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd_ < 0) {
        fatal("sweep journal: cannot open '%s': %s", path.c_str(),
              std::strerror(errno));
    }
    if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
        fatal("sweep journal: cannot truncate '%s' to %zu bytes: %s",
              path.c_str(), keep_bytes, std::strerror(errno));
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
        fatal("sweep journal: cannot seek '%s': %s", path.c_str(),
              std::strerror(errno));
    }
    path_ = path;
    if (keep_bytes == 0) {
        const std::string line = headerLine(header);
        if (!writeAll(fd_, line.data(), line.size()) ||
            ::fsync(fd_) != 0) {
            fatal("sweep journal: cannot write header to '%s': %s",
                  path.c_str(), std::strerror(errno));
        }
    }
}

void
SweepJournal::append(const SweepOutcome &outcome)
{
    if (fd_ < 0)
        return;
    const std::string line = recordLine(outcome);
    if (!writeAll(fd_, line.data(), line.size()) || ::fsync(fd_) != 0) {
        fatal("sweep journal: cannot append to '%s': %s", path_.c_str(),
              std::strerror(errno));
    }
}

void
SweepJournal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace oenet
