/**
 * @file
 * Experiment protocol: declarative traffic specs, the
 * warmup/measure/drain run procedure, zero-load latency, and the
 * saturation-throughput search (Section 4.1: throughput is the
 * injection rate at which average latency exceeds twice the zero-load
 * latency).
 */

#ifndef OENET_CORE_EXPERIMENT_HH
#define OENET_CORE_EXPERIMENT_HH

#include <memory>
#include <vector>

#include "core/poe_system.hh"
#include "traffic/hotspot.hh"
#include "traffic/permutation.hh"
#include "traffic/splash_synth.hh"
#include "traffic/trace.hh"
#include "traffic/uniform.hh"

namespace oenet {

/** Declarative description of a workload, so sweep drivers can rebuild
 *  fresh sources per run. */
struct TrafficSpec
{
    enum class Kind
    {
        kUniform,
        kHotspot,
        kPermutation,
        kTrace,
    };

    Kind kind = Kind::kUniform;
    double rate = 1.0; ///< packets/cycle (uniform & permutation)
    int packetLen = 4;
    std::uint64_t seed = 1;

    // Hotspot.
    std::vector<RatePhase> phases;
    NodeId hotNode = 348;
    int hotWeight = 4;

    // Permutation.
    PermutationPattern pattern = PermutationPattern::kTranspose;

    // Trace (not owned; must outlive runs).
    const TraceData *trace = nullptr;

    static TrafficSpec uniform(double rate, int len = 4,
                               std::uint64_t seed = 1);
    static TrafficSpec hotspot(std::vector<RatePhase> phases,
                               int len = 4, std::uint64_t seed = 1);
    static TrafficSpec traceReplay(const TraceData &trace);
};

/** Instantiate the source a spec describes for a given system size. */
std::unique_ptr<TrafficSource> makeTraffic(const TrafficSpec &spec,
                                           const SystemConfig &config);

/** Phases of a standard run. */
struct RunProtocol
{
    Cycle warmup = 20000;
    Cycle measure = 100000;
    Cycle drainLimit = 300000;
};

/** Optional event tracing for a run (see trace/trace.hh). The power
 *  snapshot period comes from SystemConfig::metricsIntervalCycles, so
 *  a traced run and its config validate together. */
struct TraceOptions
{
    TraceSink *sink = nullptr; ///< not owned; must outlive the run
};

/** Build a system, run the protocol, return the metrics. */
RunMetrics runExperiment(const SystemConfig &config,
                         const TrafficSpec &spec,
                         const RunProtocol &protocol,
                         const TraceOptions &trace = {});

/** Latency of a packet on an empty network (avg over a light trickle);
 *  the reference for the 2x saturation rule. */
double zeroLoadLatency(const SystemConfig &config, int packet_len,
                       std::uint64_t seed = 7);

/** Binary-search the saturation throughput (packets/cycle) under
 *  uniform random traffic. */
double findSaturationRate(const SystemConfig &config, int packet_len,
                          double rate_hi, const RunProtocol &protocol);

} // namespace oenet

#endif // OENET_CORE_EXPERIMENT_HH
