#include "core/sweeps.hh"

namespace oenet {

SystemConfig
baselineConfig(const SystemConfig &config)
{
    SystemConfig base = config;
    base.powerAware = false;
    return base;
}

PairedResult
runPaired(const SystemConfig &config, const TrafficSpec &spec,
          const RunProtocol &protocol)
{
    PairedResult r;
    r.powerAware = runExperiment(config, spec, protocol);
    r.baseline = runExperiment(baselineConfig(config), spec, protocol);
    r.normalized = normalizeAgainst(r.powerAware, r.baseline);
    return r;
}

TimelineResult
runTimeline(const SystemConfig &config, const TrafficSpec &spec,
            Cycle total, Cycle bin, Cycle warmup,
            const TraceOptions &trace)
{
    TimelineResult result;
    result.bin = bin;

    PoeSystem sys(config);
    sys.setTraffic(makeTraffic(spec, config));
    if (trace.sink)
        sys.setTraceSink(trace.sink, config.metricsIntervalCycles);
    if (warmup > 0)
        sys.run(warmup);
    sys.startMeasurement();

    double base = sys.network().baselinePowerMw();
    double prev_integral =
        sys.network().totalPowerIntegralMwCycles(sys.now());
    std::uint64_t prev_created = sys.measuredCreated();
    double prev_lat_sum = sys.latencyStat().sum();
    std::size_t prev_lat_n = sys.latencyStat().count();

    for (Cycle t = 0; t < total; t += bin) {
        Cycle step = bin < total - t ? bin : total - t;
        sys.run(step);

        double integral =
            sys.network().totalPowerIntegralMwCycles(sys.now());
        result.normalizedPower.push_back(
            (integral - prev_integral) /
            (static_cast<double>(step) * base));
        prev_integral = integral;

        std::uint64_t created = sys.measuredCreated();
        result.offeredRate.push_back(
            static_cast<double>(created - prev_created) /
            static_cast<double>(step));
        prev_created = created;

        double lat_sum = sys.latencyStat().sum();
        std::size_t lat_n = sys.latencyStat().count();
        result.avgLatency.push_back(
            lat_n > prev_lat_n
                ? (lat_sum - prev_lat_sum) /
                      static_cast<double>(lat_n - prev_lat_n)
                : 0.0);
        prev_lat_sum = lat_sum;
        prev_lat_n = lat_n;
    }

    sys.stopMeasurement();
    sys.awaitDrain(300000);
    result.metrics = sys.metrics();
    if (config.conservationAuditEnabled()) {
        if (trace.sink)
            sys.setTraceSink(nullptr);
        result.metrics.auditFailures = sys.auditConservation();
    }
    return result;
}

} // namespace oenet
