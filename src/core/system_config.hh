/**
 * @file
 * One struct holding every knob of the power-aware opto-electronic
 * networked system, with the paper's Section 4.1 values as defaults:
 * 8x8 mesh of 64 racks, 8 nodes each, 625 MHz routers, 16-flit input
 * buffers, 16-bit flits, 10 Gb/s links with 6 bit-rate levels over
 * 5-10 Gb/s, T_br = 20 cycles, T_v = 100 cycles, T_w = 1000 cycles,
 * Table 1 thresholds.
 *
 * Convertible from a generic Config (key=value) so every example and
 * bench accepts the same flags.
 */

#ifndef OENET_CORE_SYSTEM_CONFIG_HH
#define OENET_CORE_SYSTEM_CONFIG_HH

#include <optional>

#include "common/config.hh"
#include "fault/fault.hh"
#include "network/network.hh"
#include "policy/controller.hh"

namespace oenet {

struct SystemConfig
{
    // Topology. meshX/meshY/clusterSize parameterize the mesh family
    // (mesh, torus, cmesh); fatTreeArity is the fat-tree switch radix.
    TopologyKind topology = TopologyKind::kMesh;
    int meshX = 8;
    int meshY = 8;
    int clusterSize = 8;
    int fatTreeArity = 4;

    // Router microarchitecture.
    int numVcs = 2;
    int bufferDepthPerPort = 16;
    RoutingAlgo routing = RoutingAlgo::kXY;

    // Links.
    LinkScheme scheme = LinkScheme::kModulator;
    double brMinGbps = 5.0;
    double brMaxGbps = 10.0;
    int numLevels = 6;
    double vmaxV = 1.8;
    Cycle freqTransitionCycles = 20;  ///< T_br
    Cycle voltTransitionCycles = 100; ///< T_v
    Cycle propagationCycles = 1;
    LinkPowerParams power{};
    double offPowerMw = 2.0;
    /** Wake settle time after a gate-off (OpticalLink::Params). */
    Cycle wakeSettleCycles = 10;

    /** Leakage + per-link thermal model (phy/thermal.hh); off by
     *  default, which keeps all outputs byte-identical to the
     *  leakage-free configuration. */
    ThermalParams thermal{};

    // Policy.
    bool powerAware = true;
    PolicyMode policyMode = PolicyMode::kDvs;
    Cycle windowCycles = 1000; ///< T_w
    HistoryDvsParams policy{};
    OpticalMode opticalMode = OpticalMode::kFixed;
    LaserPowerState::Params laser{};
    OnOffController::Params onOff{};
    int minLevel = 0;
    int staticLevel = kInvalid;
    bool senderBacklogEscalation = true;
    int senderBacklogFlits = 8;
    ProportionalDvsParams proportional{};

    /** Measured operating points from a calibration file, replacing
     *  the linear brMin..brMax table when present. */
    std::optional<BitrateLevelTable> measuredLevels;

    /** Fault injection (off by default; see fault/fault.hh). */
    FaultParams fault{};

    /** Idle elision: park quiescent routers/nodes instead of ticking
     *  them every cycle (kernel active-set scheduler). Simulated
     *  outcomes are bit-identical either way; off exists for
     *  double-checking exactly that. */
    bool idleElision = true;

    /** Shard domains for the sharded kernel: the topology is
     *  partitioned into this many per-thread shards exchanging
     *  boundary flits/credits through phase-separated queues. Output
     *  is byte-identical at every value (docs/DETERMINISM.md); 1 (the
     *  default) runs the same phase structure with no worker
     *  threads. */
    int shards = 1;

    /** Same-shard boundary edges use the zero-copy direct channel
     *  mode (immediate publish, synchronous credit forwarding). The
     *  call sequence is identical either way, so simulated outcomes
     *  are bit-identical; off forces every edge through the generic
     *  cross-shard machinery and exists for double-checking exactly
     *  that (tests/integration/sharded_kernel_test.cc). */
    bool directBoundary = true;

    /** Cycles between power snapshots when a trace sink is attached
     *  (PoeSystem::setTraceSink). Must be > 0 — disable snapshots by
     *  not attaching a sink, not by zeroing the interval. */
    Cycle metricsIntervalCycles = 1000;

    /** End-of-run flit/credit conservation audit (PoeSystem::
     *  auditConservation), run by runExperiment/runTimeline after the
     *  metrics are captured. Unset (the default) enables it in Debug
     *  builds only; set to force it on or off. Violations surface as
     *  RunMetrics::auditFailures, which the sweep runner turns into a
     *  failed outcome — never an abort. */
    std::optional<bool> conservationAudit;

    /** Resolve conservationAudit against the build type. */
    bool conservationAuditEnabled() const;

    /** Topology knobs bundled for makeTopology(). */
    TopologyParams topologyParams() const;

    int numNodes() const { return topologyParams().numNodes(); }

    /** True for fabrics addressed by mesh coordinates (mesh, torus,
     *  cmesh) — the ones permutation traffic patterns understand. */
    bool meshFamily() const
    {
        return topology != TopologyKind::kFatTree;
    }

    /** Parse overrides from a Config (keys documented in README). */
    static SystemConfig fromConfig(const Config &config);

    /**
     * Reject nonsensical configurations with an actionable fatal()
     * message naming the offending field and its constraint. Called by
     * fromConfig() and the PoeSystem constructor, so a bad config
     * fails fast whether it came from flags or from code.
     */
    void validate() const;

    Network::Params networkParams() const;
    PolicyEngine::Params engineParams() const;
};

} // namespace oenet

#endif // OENET_CORE_SYSTEM_CONFIG_HH
