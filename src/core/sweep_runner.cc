#include "core/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <type_traits>

#include "common/csv.hh"
#include "common/fs.hh"
#include "common/log.hh"
#include "common/parallel.hh"
#include "common/proc.hh"
#include "common/rng.hh"
#include "core/sweep_journal.hh"

namespace oenet {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Shortest round-trip decimal form, deterministic across runs. */
std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    out += '"';
    return out;
}

/** The manifest's metrics fields, in one place so the JSON and CSV
 *  writers cannot drift apart. */
std::vector<std::pair<const char *, double>>
metricsFields(const RunMetrics &m)
{
    return {
        {"avg_latency", m.avgLatency},
        {"p50_latency", m.p50Latency},
        {"p95_latency", m.p95Latency},
        {"max_latency", m.maxLatency},
        {"packets_measured", static_cast<double>(m.packetsMeasured)},
        {"avg_power_mw", m.avgPowerMw},
        {"baseline_power_mw", m.baselinePowerMw},
        {"normalized_power", m.normalizedPower},
        {"power_latency_product", m.powerLatencyProduct},
        {"throughput_flits_per_cycle", m.throughputFlitsPerCycle},
        {"offered_rate", m.offeredRate},
        {"packets_injected", static_cast<double>(m.packetsInjected)},
        {"packets_ejected", static_cast<double>(m.packetsEjected)},
        {"drained", m.drained ? 1.0 : 0.0},
        {"transitions", static_cast<double>(m.transitions)},
        {"decisions_up", static_cast<double>(m.decisionsUp)},
        {"decisions_down", static_cast<double>(m.decisionsDown)},
        {"optical_stalls", static_cast<double>(m.opticalStalls)},
        {"measured_cycles", static_cast<double>(m.measuredCycles)},
    };
}

// The isolation pipe carries RunMetrics as raw bytes.
static_assert(std::is_trivially_copyable_v<RunMetrics>,
              "RunMetrics must stay trivially copyable: isolated sweep "
              "points ship it over a pipe as raw bytes");

/** One execution attempt of one sweep point. */
struct Attempt
{
    bool ok = false;
    bool retryable = true;
    RunMetrics metrics;
    std::string error;
};

Attempt
runAttempt(const SweepPoint &staged, std::uint64_t seed,
           const SweepRunner::PointFn &fn, bool isolate, double budget_ms)
{
    Attempt a;
    if (isolate) {
        ChildResult r = runInChild(
            [&](int write_fd) {
                RunMetrics m = fn(staged, seed);
                writeAll(write_fd, &m, sizeof(m));
            },
            budget_ms);
        switch (r.status) {
          case ChildResult::Status::kOk:
            if (r.payload.size() != sizeof(RunMetrics)) {
                a.error = "isolated child returned a short metrics "
                          "payload (" +
                          std::to_string(r.payload.size()) + " of " +
                          std::to_string(sizeof(RunMetrics)) + " bytes)";
                return a;
            }
            std::memcpy(&a.metrics, r.payload.data(), sizeof(RunMetrics));
            break;
          case ChildResult::Status::kTimeout:
            a.error = "watchdog: point exceeded its " +
                      jsonNumber(budget_ms) +
                      " ms budget; child killed";
            return a;
          default:
            a.error = "isolated child failed: " + r.describe();
            return a;
        }
    } else {
        try {
            a.metrics = fn(staged, seed);
        } catch (const std::exception &e) {
            a.error = std::string("point body threw: ") + e.what();
            return a;
        } catch (...) {
            a.error = "point body threw a non-standard exception";
            return a;
        }
    }

    if (a.metrics.auditFailures > 0) {
        // Deterministic by construction -- retrying cannot change it.
        a.error = "conservation audit failed (" +
                  std::to_string(a.metrics.auditFailures) +
                  " violation(s))";
        a.retryable = false;
        return a;
    }
    a.ok = true;
    return a;
}

} // namespace

const char *
pointStatusName(PointStatus status)
{
    return status == PointStatus::kOk ? "ok" : "failed";
}

std::size_t
SweepReport::failedPoints() const
{
    std::size_t failed = 0;
    for (const SweepOutcome &o : outcomes)
        if (!o.ok())
            failed++;
    return failed;
}

double
sweepPointBudgetMs(const SweepRunner::Options &options,
                   std::vector<double> completed_wall_ms)
{
    if (options.timeoutMs > 0.0)
        return options.timeoutMs;
    if (options.timeoutFactor <= 0.0 || completed_wall_ms.size() < 3)
        return 0.0;
    auto mid = completed_wall_ms.begin() +
               static_cast<std::ptrdiff_t>(completed_wall_ms.size() / 2);
    std::nth_element(completed_wall_ms.begin(), mid,
                     completed_wall_ms.end());
    return std::max(100.0, options.timeoutFactor * *mid);
}

SweepRunner::SweepRunner(Options options) : options_(std::move(options))
{
}

std::uint64_t
SweepRunner::pointSeed(const SweepPoint &point, std::size_t index) const
{
    std::uint64_t key = point.seedKey == kSeedKeyFromIndex
                            ? static_cast<std::uint64_t>(index)
                            : point.seedKey;
    return deriveStreamSeed(options_.baseSeed, key);
}

SweepReport
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    return run(points, [this](const SweepPoint &point,
                              std::uint64_t) -> RunMetrics {
        TraceOptions trace;
        std::unique_ptr<TraceSink> sink;
        if (point.trace && options_.traceFactory) {
            sink = options_.traceFactory(point.label);
            trace.sink = sink.get();
        }
        return runExperiment(point.config, point.spec, point.protocol,
                             trace);
    });
}

SweepReport
SweepRunner::run(const std::vector<SweepPoint> &points,
                 const PointFn &fn) const
{
    SweepReport report;
    report.jobs = effectiveJobs(options_.jobs, points.size());
    report.outcomes.resize(points.size());

    // ---- Journal / resume setup -------------------------------------
    if (options_.resume && options_.journalPath.empty())
        fatal("sweep: --resume requires a --journal path");

    std::vector<char> replayed(points.size(), 0);
    SweepJournal journal;
    if (!options_.journalPath.empty()) {
        SweepJournal::Header header;
        header.baseSeed = options_.baseSeed;
        header.points = points.size();

        std::size_t keepBytes = 0;
        if (options_.resume) {
            SweepJournal::Loaded loaded =
                SweepJournal::load(options_.journalPath);
            if (loaded.exists && loaded.hasHeader) {
                if (loaded.header.baseSeed != header.baseSeed ||
                    loaded.header.points != header.points) {
                    fatal("sweep journal '%s' belongs to a different "
                          "sweep (journal: base_seed=%llu points=%llu; "
                          "this run: base_seed=%llu points=%zu) -- "
                          "refusing to resume",
                          options_.journalPath.c_str(),
                          static_cast<unsigned long long>(
                              loaded.header.baseSeed),
                          static_cast<unsigned long long>(
                              loaded.header.points),
                          static_cast<unsigned long long>(header.baseSeed),
                          points.size());
                }
                if (loaded.droppedLines > 0) {
                    warn("sweep journal '%s': discarded %zu corrupt or "
                         "torn trailing line(s); those points re-run",
                         options_.journalPath.c_str(),
                         loaded.droppedLines);
                }
                for (SweepOutcome &o : loaded.outcomes) {
                    if (o.index >= points.size() || replayed[o.index]) {
                        fatal("sweep journal '%s': record for point %zu "
                              "is out of range or duplicated -- refusing "
                              "to resume",
                              options_.journalPath.c_str(), o.index);
                    }
                    const SweepPoint &point = points[o.index];
                    std::uint64_t seed = pointSeed(point, o.index);
                    if (o.label != point.label || o.seed != seed) {
                        fatal("sweep journal '%s': record %zu does not "
                              "match this sweep (journal: '%s' seed=%llu; "
                              "live: '%s' seed=%llu) -- refusing to "
                              "resume",
                              options_.journalPath.c_str(), o.index,
                              o.label.c_str(),
                              static_cast<unsigned long long>(o.seed),
                              point.label.c_str(),
                              static_cast<unsigned long long>(seed));
                    }
                    replayed[o.index] = 1;
                    o.params = point.params; // not journaled; from live
                    report.outcomes[o.index] = std::move(o);
                    report.resumedPoints++;
                }
                keepBytes = loaded.validBytes;
            } else if (loaded.exists) {
                warn("sweep journal '%s' has no valid header; starting "
                     "a fresh journal",
                     options_.journalPath.c_str());
            }
            if (report.resumedPoints > 0) {
                inform("sweep: resumed %zu of %zu point(s) from '%s'",
                       report.resumedPoints, points.size(),
                       options_.journalPath.c_str());
            }
        }
        journal.open(options_.journalPath, header, keepBytes);
    }

    const bool wantWatchdog =
        options_.timeoutMs > 0.0 || options_.timeoutFactor > 0.0;
    if (wantWatchdog && !options_.isolate) {
        warn("sweep: per-point timeouts are only enforceable with "
             "--isolate (an in-process point cannot be safely killed); "
             "running without a watchdog");
    }
    const int maxAttempts = 1 + std::max(0, options_.maxRetries);

    // ---- Execution ---------------------------------------------------
    auto sweepStart = std::chrono::steady_clock::now();
    std::vector<RunningStat> workerWallMs(
        static_cast<std::size_t>(report.jobs));
    std::mutex progressMutex;
    std::size_t done = report.resumedPoints;
    std::vector<double> completedWallMs;

    parallelFor(
        points.size(), report.jobs,
        [&](std::size_t i, int worker) {
            if (replayed[i])
                return;
            const SweepPoint &point = points[i];
            std::uint64_t seed = pointSeed(point, i);

            SweepPoint staged = point;
            if (options_.reseedSpecs)
                staged.spec.seed = seed;

            SweepOutcome out;
            out.index = i;
            out.label = point.label;
            out.params = point.params;
            out.seed = seed;

            double totalWallMs = 0.0;
            for (int attempt = 1;; attempt++) {
                double budgetMs = 0.0;
                if (options_.isolate && wantWatchdog) {
                    std::lock_guard<std::mutex> lock(progressMutex);
                    budgetMs =
                        sweepPointBudgetMs(options_, completedWallMs);
                }

                auto attemptStart = std::chrono::steady_clock::now();
                Attempt a = runAttempt(staged, seed, fn,
                                       options_.isolate, budgetMs);
                totalWallMs += elapsedMs(attemptStart);
                out.attempts = attempt;

                if (a.ok) {
                    out.status = PointStatus::kOk;
                    out.metrics = a.metrics;
                    out.error.clear();
                    break;
                }
                out.error = a.error;
                if (!a.retryable || attempt >= maxAttempts) {
                    out.status = PointStatus::kFailed;
                    out.metrics = RunMetrics{};
                    warn("sweep: point %zu '%s' failed after %d "
                         "attempt(s): %s",
                         i, point.label.c_str(), attempt,
                         out.error.c_str());
                    break;
                }
                double backoffMs = std::min(
                    5000.0, options_.retryBackoffMs *
                                static_cast<double>(1u << (attempt - 1)));
                warn("sweep: point %zu '%s' attempt %d failed (%s); "
                     "retrying in %.0f ms",
                     i, point.label.c_str(), attempt, a.error.c_str(),
                     backoffMs);
                if (backoffMs > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            backoffMs));
                }
            }
            out.wallMs = totalWallMs;
            workerWallMs[static_cast<std::size_t>(worker)].add(
                totalWallMs);

            std::lock_guard<std::mutex> lock(progressMutex);
            if (out.ok())
                completedWallMs.push_back(totalWallMs);
            report.outcomes[i] = std::move(out);
            journal.append(report.outcomes[i]);
            done++;
            if (options_.progress)
                options_.progress(report.outcomes[i], done, points.size());
        });

    report.wallMs = elapsedMs(sweepStart);
    for (const RunningStat &w : workerWallMs)
        report.pointWallMs.merge(w);
    return report;
}

std::vector<TimelineOutcome>
runTimelines(const SweepRunner &runner,
             const std::vector<TimelinePoint> &points)
{
    const SweepRunner::Options &opts = runner.options();
    if (!opts.journalPath.empty() || opts.isolate) {
        warn("sweep: journal/isolate are not supported for timeline "
             "sweeps (per-bin series are not checkpointable records); "
             "running without them");
    }
    const int maxAttempts = 1 + std::max(0, opts.maxRetries);

    std::vector<TimelineOutcome> outcomes(points.size());
    std::mutex progressMutex;
    std::size_t done = 0;

    parallelFor(
        points.size(), effectiveJobs(opts.jobs, points.size()),
        [&](std::size_t i, int) {
            const TimelinePoint &point = points[i];
            std::uint64_t key = point.seedKey == kSeedKeyFromIndex
                                    ? static_cast<std::uint64_t>(i)
                                    : point.seedKey;
            std::uint64_t seed = deriveStreamSeed(opts.baseSeed, key);

            TrafficSpec spec = point.spec;
            if (opts.reseedSpecs)
                spec.seed = seed;

            TimelineOutcome &out = outcomes[i];
            out.index = i;
            out.label = point.label;
            out.seed = seed;

            auto start = std::chrono::steady_clock::now();
            for (int attempt = 1;; attempt++) {
                out.attempts = attempt;
                try {
                    TraceOptions trace;
                    std::unique_ptr<TraceSink> sink;
                    if (point.trace && opts.traceFactory) {
                        sink = opts.traceFactory(point.label);
                        trace.sink = sink.get();
                    }
                    out.timeline =
                        runTimeline(point.config, spec, point.total,
                                    point.bin, point.warmup, trace);
                    out.status = PointStatus::kOk;
                    out.error.clear();
                    break;
                } catch (const std::exception &e) {
                    out.error =
                        std::string("timeline body threw: ") + e.what();
                } catch (...) {
                    out.error = "timeline body threw a non-standard "
                                "exception";
                }
                if (attempt >= maxAttempts) {
                    out.status = PointStatus::kFailed;
                    out.timeline = TimelineResult{};
                    warn("sweep: timeline point %zu '%s' failed after "
                         "%d attempt(s): %s",
                         i, point.label.c_str(), attempt,
                         out.error.c_str());
                    break;
                }
                double backoffMs = std::min(
                    5000.0, opts.retryBackoffMs *
                                static_cast<double>(1u << (attempt - 1)));
                if (backoffMs > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            backoffMs));
                }
            }
            out.wallMs = elapsedMs(start);

            if (opts.progress) {
                SweepOutcome progress;
                progress.index = i;
                progress.label = point.label;
                progress.seed = seed;
                progress.status = out.status;
                progress.attempts = out.attempts;
                progress.error = out.error;
                progress.metrics = out.timeline.metrics;
                progress.wallMs = out.wallMs;
                std::lock_guard<std::mutex> lock(progressMutex);
                done++;
                opts.progress(progress, done, points.size());
            }
        });

    return outcomes;
}

std::vector<SweepOutcome>
timelineRollups(const std::vector<TimelineOutcome> &outcomes)
{
    std::vector<SweepOutcome> rollups;
    rollups.reserve(outcomes.size());
    for (const TimelineOutcome &t : outcomes) {
        SweepOutcome o;
        o.index = t.index;
        o.label = t.label;
        o.seed = t.seed;
        o.status = t.status;
        o.attempts = t.attempts;
        o.error = t.error;
        o.metrics = t.timeline.metrics;
        o.wallMs = t.wallMs;
        rollups.push_back(std::move(o));
    }
    return rollups;
}

std::string
sweepManifestJson(const std::string &sweep_name, std::uint64_t base_seed,
                  const std::vector<SweepOutcome> &outcomes)
{
    std::string out = "{\n";
    out += "  \"sweep\": " + jsonString(sweep_name) + ",\n";
    out += "  \"base_seed\": " + std::to_string(base_seed) + ",\n";
    out += "  \"points\": " + std::to_string(outcomes.size()) + ",\n";
    out += "  \"results\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); i++) {
        const SweepOutcome &o = outcomes[i];
        out += "    {\"index\": " + std::to_string(o.index);
        out += ", \"label\": " + jsonString(o.label);
        out += ", \"seed\": " + std::to_string(o.seed);
        out += ", \"status\": ";
        out += jsonString(pointStatusName(o.status));
        out += ", \"params\": {";
        for (std::size_t p = 0; p < o.params.size(); p++) {
            if (p > 0)
                out += ", ";
            out += jsonString(o.params[p].first) + ": " +
                   jsonNumber(o.params[p].second);
        }
        out += "}, \"metrics\": {";
        auto fields = metricsFields(o.metrics);
        for (std::size_t f = 0; f < fields.size(); f++) {
            if (f > 0)
                out += ", ";
            out += jsonString(fields[f].first) + ": " +
                   jsonNumber(fields[f].second);
        }
        out += "}}";
        out += i + 1 < outcomes.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
writeSweepManifest(const std::string &path, const std::string &sweep_name,
                   std::uint64_t base_seed,
                   const std::vector<SweepOutcome> &outcomes)
{
    atomicWriteFileOrDie(
        path, sweepManifestJson(sweep_name, base_seed, outcomes));
}

void
writeSweepManifestCsv(const std::string &path,
                      const std::vector<SweepOutcome> &outcomes)
{
    CsvWriter csv(path);
    std::vector<std::string> header = {"index", "label", "seed",
                                       "status"};
    std::vector<std::string> paramKeys;
    if (!outcomes.empty()) {
        for (const auto &kv : outcomes.front().params)
            paramKeys.push_back(kv.first);
    }
    for (const auto &k : paramKeys)
        header.push_back(k);
    for (const auto &kv : metricsFields(RunMetrics{}))
        header.push_back(kv.first);
    csv.header(header);

    for (const SweepOutcome &o : outcomes) {
        std::vector<std::string> row = {std::to_string(o.index), o.label,
                                        std::to_string(o.seed),
                                        pointStatusName(o.status)};
        for (const auto &key : paramKeys) {
            std::string cell;
            for (const auto &kv : o.params) {
                if (kv.first == key) {
                    cell = jsonNumber(kv.second);
                    break;
                }
            }
            row.push_back(cell);
        }
        for (const auto &kv : metricsFields(o.metrics))
            row.push_back(jsonNumber(kv.second));
        csv.row(row);
    }
}

} // namespace oenet
