#include "core/sweep_runner.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/csv.hh"
#include "common/log.hh"
#include "common/parallel.hh"
#include "common/rng.hh"

namespace oenet {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Shortest round-trip decimal form, deterministic across runs. */
std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    out += '"';
    return out;
}

/** The manifest's metrics fields, in one place so the JSON and CSV
 *  writers cannot drift apart. */
std::vector<std::pair<const char *, double>>
metricsFields(const RunMetrics &m)
{
    return {
        {"avg_latency", m.avgLatency},
        {"p50_latency", m.p50Latency},
        {"p95_latency", m.p95Latency},
        {"max_latency", m.maxLatency},
        {"packets_measured", static_cast<double>(m.packetsMeasured)},
        {"avg_power_mw", m.avgPowerMw},
        {"baseline_power_mw", m.baselinePowerMw},
        {"normalized_power", m.normalizedPower},
        {"power_latency_product", m.powerLatencyProduct},
        {"throughput_flits_per_cycle", m.throughputFlitsPerCycle},
        {"offered_rate", m.offeredRate},
        {"packets_injected", static_cast<double>(m.packetsInjected)},
        {"packets_ejected", static_cast<double>(m.packetsEjected)},
        {"drained", m.drained ? 1.0 : 0.0},
        {"transitions", static_cast<double>(m.transitions)},
        {"decisions_up", static_cast<double>(m.decisionsUp)},
        {"decisions_down", static_cast<double>(m.decisionsDown)},
        {"optical_stalls", static_cast<double>(m.opticalStalls)},
        {"measured_cycles", static_cast<double>(m.measuredCycles)},
    };
}

} // namespace

SweepRunner::SweepRunner(Options options) : options_(std::move(options))
{
}

std::uint64_t
SweepRunner::pointSeed(const SweepPoint &point, std::size_t index) const
{
    std::uint64_t key = point.seedKey == kSeedKeyFromIndex
                            ? static_cast<std::uint64_t>(index)
                            : point.seedKey;
    return deriveStreamSeed(options_.baseSeed, key);
}

SweepReport
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    return run(points, [this](const SweepPoint &point,
                              std::uint64_t) -> RunMetrics {
        TraceOptions trace;
        std::unique_ptr<TraceSink> sink;
        if (point.trace && options_.traceFactory) {
            sink = options_.traceFactory(point.label);
            trace.sink = sink.get();
        }
        return runExperiment(point.config, point.spec, point.protocol,
                             trace);
    });
}

SweepReport
SweepRunner::run(const std::vector<SweepPoint> &points,
                 const PointFn &fn) const
{
    SweepReport report;
    report.jobs = effectiveJobs(options_.jobs, points.size());
    report.outcomes.resize(points.size());

    auto sweepStart = std::chrono::steady_clock::now();
    std::vector<RunningStat> workerWallMs(
        static_cast<std::size_t>(report.jobs));
    std::mutex progressMutex;
    std::size_t done = 0;

    parallelFor(
        points.size(), report.jobs,
        [&](std::size_t i, int worker) {
            const SweepPoint &point = points[i];
            std::uint64_t seed = pointSeed(point, i);

            SweepPoint staged = point;
            if (options_.reseedSpecs)
                staged.spec.seed = seed;

            auto pointStart = std::chrono::steady_clock::now();
            RunMetrics metrics = fn(staged, seed);
            double wallMs = elapsedMs(pointStart);

            SweepOutcome &out = report.outcomes[i];
            out.index = i;
            out.label = point.label;
            out.params = point.params;
            out.seed = seed;
            out.metrics = metrics;
            out.wallMs = wallMs;
            workerWallMs[static_cast<std::size_t>(worker)].add(wallMs);

            if (options_.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                done++;
                options_.progress(out, done, points.size());
            }
        });

    report.wallMs = elapsedMs(sweepStart);
    for (const RunningStat &w : workerWallMs)
        report.pointWallMs.merge(w);
    return report;
}

std::vector<TimelineOutcome>
runTimelines(const SweepRunner &runner,
             const std::vector<TimelinePoint> &points)
{
    const SweepRunner::Options &opts = runner.options();
    std::vector<TimelineOutcome> outcomes(points.size());
    std::mutex progressMutex;
    std::size_t done = 0;

    parallelFor(
        points.size(), effectiveJobs(opts.jobs, points.size()),
        [&](std::size_t i, int) {
            const TimelinePoint &point = points[i];
            std::uint64_t key = point.seedKey == kSeedKeyFromIndex
                                    ? static_cast<std::uint64_t>(i)
                                    : point.seedKey;
            std::uint64_t seed = deriveStreamSeed(opts.baseSeed, key);

            TrafficSpec spec = point.spec;
            if (opts.reseedSpecs)
                spec.seed = seed;

            TraceOptions trace;
            std::unique_ptr<TraceSink> sink;
            if (point.trace && opts.traceFactory) {
                sink = opts.traceFactory(point.label);
                trace.sink = sink.get();
            }

            auto start = std::chrono::steady_clock::now();
            TimelineResult timeline =
                runTimeline(point.config, spec, point.total, point.bin,
                            point.warmup, trace);
            double wallMs = elapsedMs(start);

            TimelineOutcome &out = outcomes[i];
            out.index = i;
            out.label = point.label;
            out.seed = seed;
            out.timeline = std::move(timeline);
            out.wallMs = wallMs;

            if (opts.progress) {
                SweepOutcome progress;
                progress.index = i;
                progress.label = point.label;
                progress.seed = seed;
                progress.metrics = out.timeline.metrics;
                progress.wallMs = wallMs;
                std::lock_guard<std::mutex> lock(progressMutex);
                done++;
                opts.progress(progress, done, points.size());
            }
        });

    return outcomes;
}

std::vector<SweepOutcome>
timelineRollups(const std::vector<TimelineOutcome> &outcomes)
{
    std::vector<SweepOutcome> rollups;
    rollups.reserve(outcomes.size());
    for (const TimelineOutcome &t : outcomes) {
        SweepOutcome o;
        o.index = t.index;
        o.label = t.label;
        o.seed = t.seed;
        o.metrics = t.timeline.metrics;
        o.wallMs = t.wallMs;
        rollups.push_back(std::move(o));
    }
    return rollups;
}

std::string
sweepManifestJson(const std::string &sweep_name, std::uint64_t base_seed,
                  const std::vector<SweepOutcome> &outcomes)
{
    std::string out = "{\n";
    out += "  \"sweep\": " + jsonString(sweep_name) + ",\n";
    out += "  \"base_seed\": " + std::to_string(base_seed) + ",\n";
    out += "  \"points\": " + std::to_string(outcomes.size()) + ",\n";
    out += "  \"results\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); i++) {
        const SweepOutcome &o = outcomes[i];
        out += "    {\"index\": " + std::to_string(o.index);
        out += ", \"label\": " + jsonString(o.label);
        out += ", \"seed\": " + std::to_string(o.seed);
        out += ", \"params\": {";
        for (std::size_t p = 0; p < o.params.size(); p++) {
            if (p > 0)
                out += ", ";
            out += jsonString(o.params[p].first) + ": " +
                   jsonNumber(o.params[p].second);
        }
        out += "}, \"metrics\": {";
        auto fields = metricsFields(o.metrics);
        for (std::size_t f = 0; f < fields.size(); f++) {
            if (f > 0)
                out += ", ";
            out += jsonString(fields[f].first) + ": " +
                   jsonNumber(fields[f].second);
        }
        out += "}}";
        out += i + 1 < outcomes.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
writeSweepManifest(const std::string &path, const std::string &sweep_name,
                   std::uint64_t base_seed,
                   const std::vector<SweepOutcome> &outcomes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("writeSweepManifest: cannot open '%s'", path.c_str());
    out << sweepManifestJson(sweep_name, base_seed, outcomes);
    if (!out)
        fatal("writeSweepManifest: write to '%s' failed", path.c_str());
}

void
writeSweepManifestCsv(const std::string &path,
                      const std::vector<SweepOutcome> &outcomes)
{
    CsvWriter csv(path);
    std::vector<std::string> header = {"index", "label", "seed"};
    std::vector<std::string> paramKeys;
    if (!outcomes.empty()) {
        for (const auto &kv : outcomes.front().params)
            paramKeys.push_back(kv.first);
    }
    for (const auto &k : paramKeys)
        header.push_back(k);
    for (const auto &kv : metricsFields(RunMetrics{}))
        header.push_back(kv.first);
    csv.header(header);

    for (const SweepOutcome &o : outcomes) {
        std::vector<std::string> row = {std::to_string(o.index), o.label,
                                        std::to_string(o.seed)};
        for (const auto &key : paramKeys) {
            std::string cell;
            for (const auto &kv : o.params) {
                if (kv.first == key) {
                    cell = jsonNumber(kv.second);
                    break;
                }
            }
            row.push_back(cell);
        }
        for (const auto &kv : metricsFields(o.metrics))
            row.push_back(jsonNumber(kv.second));
        csv.row(row);
    }
}

} // namespace oenet
