/**
 * @file
 * PoeSystem — the fully assembled power-aware opto-electronic networked
 * system, and the repository's primary public entry point.
 *
 * It owns the kernel, the network, the policy engine (when power-aware),
 * and the traffic source; pumps traffic into the nodes each cycle;
 * collects packet latencies over a caller-controlled measurement window;
 * and turns the accumulated state into RunMetrics.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *     SystemConfig cfg;                       // paper defaults
 *     PoeSystem sys(cfg);
 *     sys.setTraffic(std::make_unique<UniformRandomTraffic>(...));
 *     sys.run(20000);                         // warm up
 *     sys.startMeasurement();
 *     sys.run(100000);                        // measure
 *     sys.stopMeasurement();
 *     sys.awaitDrain(200000);
 *     RunMetrics m = sys.metrics();
 */

#ifndef OENET_CORE_POE_SYSTEM_HH
#define OENET_CORE_POE_SYSTEM_HH

#include <memory>

#include "core/metrics.hh"
#include "core/system_config.hh"
#include "trace/shard_mux.hh"
#include "trace/trace.hh"
#include "traffic/injection_process.hh"

namespace oenet {

class FaultInjector;

class PoeSystem final : public PacketSink, public Ticking
{
  public:
    explicit PoeSystem(const SystemConfig &config);
    ~PoeSystem() override;

    /** Install the traffic source (replaces any previous). */
    void setTraffic(std::unique_ptr<TrafficSource> traffic);

    /**
     * Attach a trace sink (null detaches): announces the link table,
     * wires link transitions, DVS/laser decisions, and packet retires,
     * and — when @p metrics_interval > 0 — installs the kernel epoch
     * hook emitting per-kind power snapshots every that many cycles.
     * The sink must outlive the system (the destructor ends the run).
     */
    void setTraceSink(TraceSink *sink, Cycle metrics_interval = 1000);

    /** Advance the system by @p cycles cycles. */
    void run(Cycle cycles);

    /** Begin collecting latency/power statistics. Also restarts the
     *  links' cumulative counters (power integral, flit and transition
     *  counts) so per-link reports exclude warm-up transients; the
     *  whole-run packet counters and the DVS state are untouched. */
    void startMeasurement();

    /** Stop the measurement window (packets created inside it keep
     *  being tracked until they eject). */
    void stopMeasurement();

    /** Run until every packet created during the measurement window has
     *  ejected, or @p limit extra cycles elapse.
     *  @return true if fully drained. */
    bool awaitDrain(Cycle limit);

    /** Metrics for the last measurement window. */
    RunMetrics metrics();

    /**
     * Conservation audit (Debug builds, or `sim.conservation_audit`):
     * stop the traffic source, let in-flight flits and returned
     * credits settle (at most @p settle_limit extra cycles), then
     * check that every flit ever injected is accounted for —
     *
     *   injected + poisoned == ejected + poisonTailsRetired
     *                          + droppedOnFail + droppedDeadPort
     *                          + still-in-fabric
     *
     * — and, when the fabric reached quiescence and no link has
     * hard-failed, that every credit pool was restituted: each router
     * output VC free and back at its downstream depth, each node
     * injection VC back at capacity, no pending credits anywhere.
     * Each violation is warn()ed (never an abort) and counted.
     * Detach any trace sink first; the settle cycles emit no events.
     * @return the number of violations (0 = books balance).
     */
    std::uint64_t auditConservation(Cycle settle_limit = 50000);

    /** Instantaneous normalized power (all links, vs. always-max). */
    double normalizedPowerNow();

    // Ticking (traffic pump; registered before routers/nodes).
    void tick(Cycle now) override;

    /** Quiescence (idle elision): with no traffic source installed the
     *  pump has nothing to do; with one installed it must tick every
     *  cycle (sources draw from their RNG per cycle, so eliding a tick
     *  would change the stream). setTraffic is the wake edge. */
    Cycle nextWakeCycle(Cycle now) override
    {
        return traffic_ ? now + 1 : kNeverCycle;
    }

    // PacketSink. During a shard's parallel pass the ejection is
    // buffered (keyed by the ejecting node's tick order) and replayed
    // after the barrier, so latency statistics accumulate in the
    // canonical node order at every shard count.
    void packetEjected(const Flit &tail, Cycle now) override;

    /** Packets created inside the measurement window so far. */
    std::uint64_t measuredCreated() const { return measuredCreated_; }

    /** Packets from the measurement window ejected so far. */
    std::uint64_t measuredEjected() const { return measuredEjected_; }

    /** Streaming latency stats of the measurement window. */
    const RunningStat &latencyStat() const { return latency_; }

    Kernel &kernel() { return kernel_; }
    Network &network() { return *network_; }
    PolicyEngine *engine() { return engine_.get(); }

    /** The fault injector, or null when fault injection is off. */
    FaultInjector *faultInjector() { return faults_.get(); }

    const SystemConfig &config() const { return config_; }
    Cycle now() const { return kernel_.now(); }

  private:
    SystemConfig config_;
    Kernel kernel_;
    std::unique_ptr<Network> network_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<PolicyEngine> engine_;
    std::unique_ptr<TrafficSource> traffic_;
    std::vector<PacketDesc> scratchArrivals_;

    // Measurement state.
    bool measuring_ = false;
    Cycle measureStart_ = 0;
    Cycle measureEnd_ = 0;
    bool measureEnded_ = false;
    double powerIntegralStart_ = 0.0;
    double powerIntegralEnd_ = 0.0;
    double leakIntegralStart_ = 0.0;
    double leakIntegralEnd_ = 0.0;
    std::uint64_t measuredCreated_ = 0;
    std::uint64_t measuredEjected_ = 0;
    std::uint64_t measuredFlitsEjectedStart_ = 0;
    std::uint64_t measuredFlitsEjectedEnd_ = 0;
    double offeredPacketsInWindow_ = 0.0;
    RunningStat latency_;
    Histogram latencyHist_;
    std::uint64_t transitionsStart_ = 0;

    // Tracing. Link-layer events route through the shard mux (they
    // can fire inside a parallel pass); everything emitted from the
    // driving thread goes straight to traceSink_.
    TraceSink *traceSink_ = nullptr;
    std::unique_ptr<ShardTraceMux> traceMux_;

    // Ejections deferred out of the parallel phase, per kernel domain.
    struct PendingEjection
    {
        std::uint32_t order; ///< ejecting node's tick order
        Flit tail;
        Cycle at;
    };
    std::vector<std::vector<PendingEjection>> pendingEjections_;
    std::vector<PendingEjection> ejectScratch_;

    std::uint64_t totalTransitions() const;
    void emitPowerSnapshot(Cycle now);
    void processEjection(const Flit &tail, Cycle now);
    void replayEjections();
};

} // namespace oenet

#endif // OENET_CORE_POE_SYSTEM_HH
