/**
 * @file
 * SweepRunner — the parallel sweep-execution engine behind the
 * benchmark harness.
 *
 * Every evaluation artifact of the paper (Figs. 5-7, Tables 2-3) is a
 * sweep of *independent* simulations: each point is a self-contained
 * (SystemConfig, TrafficSpec, RunProtocol) triple that builds its own
 * PoeSystem and shares nothing with its neighbours. The runner shards
 * those points across a worker pool while keeping results bit-identical
 * at any thread count:
 *
 *  - every point draws its traffic seed from
 *    deriveStreamSeed(baseSeed, seedKey) — a pure function of the sweep
 *    parameters, never of scheduling (points that must share a common
 *    random stream, e.g. a power-aware run and the baseline it is
 *    normalized against, set the same seedKey);
 *  - workers claim point *indices* from an atomic counter but write
 *    results into a pre-sized slot per point and accumulate run
 *    statistics into per-worker accumulators merged at join — there is
 *    no shared mutable state between in-flight points;
 *  - --jobs 1 runs the points inline on the calling thread, exactly
 *    the pre-runner serial behavior.
 *
 * The manifest (JSON or CSV) records per point: parameters, the derived
 * seed, the point's status, and the full metrics record. Wall-clock
 * times are kept in the in-memory SweepOutcome/SweepReport for operator
 * feedback but are deliberately excluded from manifests, which must be
 * byte-identical for identical (points, baseSeed) at any --jobs value.
 *
 * Crash safety (DESIGN.md §13). Long sweeps survive partial failure
 * instead of dying with it:
 *
 *  - journal: with Options::journalPath set, every completed outcome
 *    is appended to a CRC-guarded JSONL checkpoint file the moment it
 *    finishes (core/sweep_journal.hh); Options::resume replays the
 *    valid records, skips those points, and — because seeds derive
 *    from (baseSeed, seedKey), never scheduling — the final manifest
 *    is byte-identical to an uninterrupted run at any --jobs;
 *  - watchdog + retry: a per-point wall-clock budget (absolute
 *    timeoutMs, or timeoutFactor x the running median of completed
 *    points); a point that exceeds it or dies is retried with bounded
 *    exponential backoff up to maxRetries, then recorded as a failed
 *    outcome (status column) so the sweep completes gracefully;
 *  - isolation: with Options::isolate, each point runs in a forked
 *    child returning its metrics over a pipe (common/proc.hh), so a
 *    segfault or OOM in one degenerate config cannot take down the
 *    driver; the watchdog kills and reaps hung children. The deadline
 *    is only enforceable on isolated points — without isolate a hung
 *    in-process point cannot be safely interrupted.
 *
 * All manifest/CSV writers publish atomically (write-temp + fsync +
 * rename, common/fs.hh): an interrupted run never leaves a torn file
 * where a previous good one stood.
 */

#ifndef OENET_CORE_SWEEP_RUNNER_HH
#define OENET_CORE_SWEEP_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sweeps.hh"

namespace oenet {

/** seedKey sentinel: derive from the point's position in the sweep. */
inline constexpr std::uint64_t kSeedKeyFromIndex = ~0ull;

/** One self-contained simulation in a sweep. */
struct SweepPoint
{
    /** Human-readable identity, e.g. "rate=2.0/pa_5to10". */
    std::string label;

    /** Numeric parameters this point varies, for the manifest. */
    std::vector<std::pair<std::string, double>> params;

    SystemConfig config;
    TrafficSpec spec;
    RunProtocol protocol;

    /** Points with equal seedKey get the same derived stream — use for
     *  common-random-number pairs (a run and its baseline). Default:
     *  the point's index, i.e. an independent stream per point. */
    std::uint64_t seedKey = kSeedKeyFromIndex;

    /** When true and Options::traceFactory is set, the default run
     *  body attaches an event-trace sink to this point's system.
     *  Custom PointFn bodies receive the flag but must honor it
     *  themselves. */
    bool trace = false;
};

/** Terminal status of one sweep point. */
enum class PointStatus
{
    kOk,     ///< ran to completion; metrics are valid
    kFailed, ///< exhausted retries (crash/timeout/exception/audit)
};

/** "ok" / "failed" — the manifest status column's vocabulary. */
const char *pointStatusName(PointStatus status);

/** Structured result record for one executed sweep point. */
struct SweepOutcome
{
    std::size_t index = 0;
    std::string label;
    std::vector<std::pair<std::string, double>> params;
    std::uint64_t seed = 0; ///< derived stream seed actually used
    PointStatus status = PointStatus::kOk;
    int attempts = 1;  ///< executions it took (1 = no retries)
    std::string error; ///< failure diagnostic; never in manifests
    RunMetrics metrics; ///< zero-initialized when status == kFailed
    double wallMs = 0.0; ///< informational; never written to manifests

    bool ok() const { return status == PointStatus::kOk; }
};

/** A whole executed sweep: per-point outcomes plus runner telemetry. */
struct SweepReport
{
    std::vector<SweepOutcome> outcomes;
    int jobs = 1;          ///< worker threads actually used
    double wallMs = 0.0;   ///< whole-sweep wall time
    RunningStat pointWallMs; ///< per-point wall times (merged at join)
    std::size_t resumedPoints = 0; ///< points replayed from the journal

    /** Serial-equivalent time / actual time (1.0 when jobs == 1). */
    double speedup() const
    {
        return wallMs > 0.0 ? pointWallMs.sum() / wallMs : 0.0;
    }

    /** Outcomes whose status is kFailed. */
    std::size_t failedPoints() const;

    /** True when every point completed ok (a sweep's exit-code gate). */
    bool allOk() const { return failedPoints() == 0; }
};

class SweepRunner
{
  public:
    /** Called after each point completes; @p done counts finished
     *  points (1-based). Serialized by the runner — no locking needed
     *  inside. Completion order is scheduling-dependent; anything
     *  deterministic must come from SweepReport, not from here. */
    using ProgressFn = std::function<void(
        const SweepOutcome &outcome, std::size_t done, std::size_t total)>;

    /** Custom per-point body: receives the point and its derived seed,
     *  returns the metrics to record. */
    using PointFn = std::function<RunMetrics(const SweepPoint &point,
                                             std::uint64_t seed)>;

    struct Options
    {
        int jobs = 0; ///< worker threads; <= 0 means hardware concurrency
        std::uint64_t baseSeed = 1;
        /** When true (default), each point's TrafficSpec::seed is
         *  replaced with the derived stream seed. Set false to honor
         *  the seeds already baked into the specs. */
        bool reseedSpecs = true;

        // Crash safety (see the file comment).

        /** Append-only checkpoint journal; empty disables. */
        std::string journalPath;
        /** Replay valid journal records and skip those points. The
         *  journal header must match (baseSeed, point count) or the
         *  runner refuses with an actionable fatal(). */
        bool resume = false;
        /** Run each point in a forked child (fork/pipe isolation). */
        bool isolate = false;
        /** Absolute per-point wall-clock budget, ms; 0 disables. Only
         *  enforced on isolated points. */
        double timeoutMs = 0.0;
        /** Median-based budget: timeoutFactor x the running median of
         *  completed point wall times (once >= 3 points finished;
         *  never below 100 ms). 0 disables. An absolute timeoutMs
         *  takes precedence. Only enforced on isolated points. */
        double timeoutFactor = 0.0;
        /** Extra attempts after a point's first failure. */
        int maxRetries = 2;
        /** First retry backoff, doubled per attempt, capped at 5 s.
         *  Exposed so tests do not sleep their wall-clock away. */
        double retryBackoffMs = 100.0;

        ProgressFn progress;
        /** Makes the event-trace sink for each trace-marked point
         *  (argument: the point's label). Null (the default) disables
         *  tracing; benches mark exactly one point per run so a single
         *  --trace path never collides. The sink lives for exactly one
         *  point's system — trace output is untouched by scheduling and
         *  therefore identical at any jobs count. */
        std::function<std::unique_ptr<TraceSink>(const std::string &label)>
            traceFactory;
    };

    SweepRunner() = default;
    explicit SweepRunner(Options options);

    /** Run every point through the standard warmup/measure/drain
     *  experiment protocol. */
    SweepReport run(const std::vector<SweepPoint> &points) const;

    /** Run every point through @p fn (e.g. a paired or custom run). */
    SweepReport run(const std::vector<SweepPoint> &points,
                    const PointFn &fn) const;

    /** Seed the point at @p index will be given. */
    std::uint64_t pointSeed(const SweepPoint &point,
                            std::size_t index) const;

    const Options &options() const { return options_; }

  private:
    Options options_;
};

// ---------------------------------------------------------------------
// Timeline sweeps (Figs. 6-7): per-point time series instead of a
// single metrics rollup.
// ---------------------------------------------------------------------

struct TimelinePoint
{
    std::string label;
    SystemConfig config;
    TrafficSpec spec;
    Cycle total = 0;
    Cycle bin = 0;
    Cycle warmup = 0;
    std::uint64_t seedKey = kSeedKeyFromIndex;
    bool trace = false; ///< see SweepPoint::trace
};

struct TimelineOutcome
{
    std::size_t index = 0;
    std::string label;
    std::uint64_t seed = 0;
    PointStatus status = PointStatus::kOk;
    int attempts = 1;
    std::string error;
    TimelineResult timeline; ///< empty series when status == kFailed
    double wallMs = 0.0;
};

/** Shard timeline captures across the runner's worker pool; same
 *  determinism contract as SweepRunner::run. A point whose body
 *  throws is retried per Options::maxRetries, then recorded failed;
 *  journal/isolate options do not apply to timeline sweeps (their
 *  per-bin series are not checkpointable records) and draw a one-time
 *  warn() if requested. */
std::vector<TimelineOutcome>
runTimelines(const SweepRunner &runner,
             const std::vector<TimelinePoint> &points);

// ---------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------

/** Render the sweep manifest as deterministic JSON: sweep name, base
 *  seed, and per point {index, label, seed, status, params, metrics}.
 *  Byte-identical for identical outcomes regardless of thread count. */
std::string sweepManifestJson(const std::string &sweep_name,
                              std::uint64_t base_seed,
                              const std::vector<SweepOutcome> &outcomes);

/** Write sweepManifestJson() to @p path atomically (write-temp +
 *  fsync + rename); fatal() with errno context on I/O failure. */
void writeSweepManifest(const std::string &path,
                        const std::string &sweep_name,
                        std::uint64_t base_seed,
                        const std::vector<SweepOutcome> &outcomes);

/** Write the same records as CSV (param columns from the first point;
 *  one metrics column per RunMetrics field), atomically. */
void writeSweepManifestCsv(const std::string &path,
                           const std::vector<SweepOutcome> &outcomes);

/**
 * The watchdog budget for the next point attempt, in ms, given the
 * options and the wall times of the points completed so far: the
 * absolute timeoutMs when set, else timeoutFactor x median once three
 * points have finished (floored at 100 ms), else 0 (no budget).
 * Exposed for tests; median-based budgets are intentionally advisory
 * early in a sweep, when no baseline exists yet.
 */
double sweepPointBudgetMs(const SweepRunner::Options &options,
                          std::vector<double> completed_wall_ms);

/** Adapt timeline outcomes (their whole-run rollups) to the manifest
 *  writers. */
std::vector<SweepOutcome>
timelineRollups(const std::vector<TimelineOutcome> &outcomes);

} // namespace oenet

#endif // OENET_CORE_SWEEP_RUNNER_HH
