/**
 * @file
 * SweepJournal — the append-only checkpoint file behind --journal /
 * --resume (DESIGN.md §13).
 *
 * One JSONL line per record, each wrapped as
 *
 *     {"r": <record>, "crc": "xxxxxxxx"}
 *
 * where the CRC-32 is computed over the exact serialized bytes of
 * <record>. The first line is a header naming the sweep's base seed
 * and point count; every following line is one completed SweepOutcome
 * (full RunMetrics, via forEachRunMetricsField — including the
 * counters that are not manifest columns, so a resumed bench prints
 * the same tables an uninterrupted one would). Records are flushed
 * and fsync'd as each point completes, so after SIGKILL the journal
 * holds every finished point plus at most one torn tail line.
 *
 * Recovery rules: load() accepts the longest valid prefix — a line
 * that is truncated, fails its CRC, or does not parse ends the scan,
 * and everything from it on is reported as dropped. Reopening for
 * append truncates the file back to that valid prefix first, so a
 * resumed run's journal is again fully valid.
 *
 * Byte-identity: outcomes round-trip exactly. Doubles are serialized
 * with %.17g (shortest round-trip form — parsing and re-serializing
 * yields the same bytes), integers as decimals, so a manifest built
 * from replayed records is byte-identical to the uninterrupted one.
 */

#ifndef OENET_CORE_SWEEP_JOURNAL_HH
#define OENET_CORE_SWEEP_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep_runner.hh"

namespace oenet {

/** CRC-32 (IEEE 802.3, reflected) over @p data — the journal's
 *  per-record guard. Exposed for tests. */
std::uint32_t crc32(const void *data, std::size_t len);

class SweepJournal
{
  public:
    /** Identity of the sweep a journal belongs to; resume refuses a
     *  journal whose header does not match the live sweep. */
    struct Header
    {
        std::uint64_t baseSeed = 0;
        std::uint64_t points = 0;
    };

    /** Result of scanning a journal file. */
    struct Loaded
    {
        bool exists = false;    ///< file was present and readable
        bool hasHeader = false; ///< a valid header line led the file
        Header header{};
        std::vector<SweepOutcome> outcomes; ///< valid records, file order
        std::size_t validBytes = 0;   ///< length of the valid prefix
        std::size_t droppedLines = 0; ///< torn/corrupt lines discarded
    };

    /** Scan @p path. A missing file yields exists == false (an empty
     *  Loaded) — resuming from nothing is just a fresh run. */
    static Loaded load(const std::string &path);

    SweepJournal() = default;
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open @p path for appending, first truncating it to
     * @p keep_bytes (0 starts a fresh journal and writes the header;
     * pass Loaded::validBytes to keep a resumed run's valid prefix).
     * fatal() with errno context on failure — a requested journal
     * that cannot be written is an unusable crash-safety contract.
     */
    void open(const std::string &path, const Header &header,
              std::size_t keep_bytes);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /** Append one completed outcome: serialize, CRC, write, fsync.
     *  The caller serializes calls (the runner holds its progress
     *  mutex). */
    void append(const SweepOutcome &outcome);

    void close();

    /** Serialized record line for @p outcome, including the CRC wrap
     *  and trailing newline (exposed for tests). */
    static std::string recordLine(const SweepOutcome &outcome);

    /** Serialized header line (exposed for tests). */
    static std::string headerLine(const Header &header);

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace oenet

#endif // OENET_CORE_SWEEP_JOURNAL_HH
