#include "core/poe_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "fault/fault_injector.hh"
#include "network/power_report.hh"

namespace oenet {

PoeSystem::PoeSystem(const SystemConfig &config)
    : config_(config), latencyHist_(0.0, 50000.0, 500)
{
    config_.validate();
    kernel_.setIdleElision(config_.idleElision);
    // The traffic pump ticks before routers and nodes so packets created
    // at cycle t can start injecting at cycle t.
    kernel_.addTicking(this);
    network_ = std::make_unique<Network>(kernel_, config_.networkParams());
    network_->setPacketSink(this);
    if (config_.fault.enabled) {
        if (config_.fault.killLink != kInvalid &&
            config_.fault.killLink >=
                static_cast<int>(network_->numLinks())) {
            warn("fault.kill_link %d >= %zu links; no link will die",
                 config_.fault.killLink, network_->numLinks());
        }
        faults_ = std::make_unique<FaultInjector>(
            config_.fault, static_cast<int>(network_->numLinks()));
        network_->setFaultInjector(faults_.get());
    }
    if (config_.powerAware) {
        engine_ = std::make_unique<PolicyEngine>(kernel_, *network_,
                                                 config_.engineParams());
        if (faults_)
            engine_->setFaultInjector(faults_.get());
    }
    traceMux_ = std::make_unique<ShardTraceMux>(kernel_.shardCount());
    pendingEjections_.resize(
        static_cast<std::size_t>(kernel_.shardCount()) + 1);
    kernel_.addPostPass([this](Cycle) {
        traceMux_->flush();
        replayEjections();
    });
}

PoeSystem::~PoeSystem()
{
    if (traceSink_)
        traceSink_->endRun(kernel_.now());
}

void
PoeSystem::setTraffic(std::unique_ptr<TrafficSource> traffic)
{
    traffic_ = std::move(traffic);
    if (traffic_)
        wakeAt(kernel_.now()); // the pump may have parked while idle
}

void
PoeSystem::setTraceSink(TraceSink *sink, Cycle metrics_interval)
{
    // End the run on the outgoing sink: a caller that detaches (e.g.
    // to run the conservation audit's settle cycles untraced) gets
    // its run_end at the detach cycle — exactly where the destructor
    // would have emitted it — and the destructor won't re-emit.
    if (traceSink_ != nullptr && traceSink_ != sink)
        traceSink_->endRun(kernel_.now());
    traceSink_ = sink;
    // Link-layer emissions can fire inside the parallel phase, so the
    // network sees the mux; the engine and this class emit only from
    // the driving thread and go straight to the sink.
    traceMux_->setTarget(sink);
    network_->setTraceSink(sink ? traceMux_.get() : nullptr);
    if (engine_)
        engine_->setTraceSink(sink);
    // Always clear any previously installed hook first: re-attaching
    // with snapshots disabled (interval 0) used to leave the old hook
    // firing into the new sink.
    kernel_.setEpochHook(0, nullptr);
    if (!sink)
        return;
    sink->beginRun(network_->traceLinkTable());
    if (metrics_interval > 0) {
        kernel_.setEpochHook(metrics_interval, [this](Cycle now) {
            emitPowerSnapshot(now);
        });
    }
}

void
PoeSystem::emitPowerSnapshot(Cycle now)
{
    PowerReport report = makePowerReport(*network_, now);
    PowerSnapshotEvent e;
    e.at = now;
    e.numKinds = 0;
    for (const KindReport &kr : report.byKind) {
        auto &out = e.kinds[e.numKinds++];
        out.kind = linkKindName(kr.kind);
        out.count = kr.count;
        out.powerMw = kr.powerMw;
        out.baselineMw = kr.baselineMw;
        out.meanLevel = kr.meanLevel;
        out.totalFlits = kr.totalFlits;
    }
    e.totalPowerMw = report.totalPowerMw;
    e.baselinePowerMw = report.baselinePowerMw;
    e.normalizedPower = report.normalizedPower;
    if (report.thermal) {
        e.hasThermal = true;
        e.leakagePowerMw = report.leakagePowerMw;
        e.maxTempC = report.maxTempC;
        e.vcEnergyMwCycles = report.vcEnergyMwCycles;
    }
    traceSink_->powerSnapshot(e);
}

void
PoeSystem::tick(Cycle now)
{
    if (!traffic_)
        return;
    scratchArrivals_.clear();
    traffic_->arrivals(now, scratchArrivals_);
    for (const PacketDesc &p : scratchArrivals_) {
        network_->injectPacket(p.src, p.dst, p.len, now);
        if (measuring_)
            measuredCreated_++;
    }
}

void
PoeSystem::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; i++)
        kernel_.step();
}

void
PoeSystem::startMeasurement()
{
    measuring_ = true;
    measureEnded_ = false;
    measureStart_ = kernel_.now();
    // Restart link-level cumulative stats so per-link reports
    // (PowerReport totals, energyMj) exclude the warm-up; the start
    // baselines below are captured *after* the reset, so the delta
    // metrics are unchanged by it.
    network_->resetStats(kernel_.now());
    powerIntegralStart_ =
        network_->totalPowerIntegralMwCycles(kernel_.now());
    leakIntegralStart_ =
        network_->totalLeakageIntegralMwCycles(kernel_.now());
    measuredCreated_ = 0;
    measuredEjected_ = 0;
    measuredFlitsEjectedStart_ = network_->flitsEjected();
    latency_.reset();
    latencyHist_.reset();
    transitionsStart_ = totalTransitions();
}

void
PoeSystem::stopMeasurement()
{
    if (!measuring_)
        panic("PoeSystem::stopMeasurement without startMeasurement");
    measuring_ = false;
    measureEnded_ = true;
    measureEnd_ = kernel_.now();
    powerIntegralEnd_ =
        network_->totalPowerIntegralMwCycles(kernel_.now());
    leakIntegralEnd_ =
        network_->totalLeakageIntegralMwCycles(kernel_.now());
    measuredFlitsEjectedEnd_ = network_->flitsEjected();
}

void
PoeSystem::packetEjected(const Flit &tail, Cycle now)
{
    if (Kernel::inShardPass()) {
        auto &buf = pendingEjections_[static_cast<std::size_t>(
            Kernel::shardPassDomain())];
        buf.push_back(
            PendingEjection{Kernel::shardPassOrder(), tail, now});
        return;
    }
    processEjection(tail, now);
}

void
PoeSystem::replayEjections()
{
    ejectScratch_.clear();
    for (auto &buf : pendingEjections_) {
        ejectScratch_.insert(ejectScratch_.end(), buf.begin(),
                             buf.end());
        buf.clear();
    }
    if (ejectScratch_.empty())
        return;
    // Tick orders are unique across domains, so sorting by order
    // replays ejections in the canonical serial node order.
    std::stable_sort(ejectScratch_.begin(), ejectScratch_.end(),
                     [](const PendingEjection &a,
                        const PendingEjection &b) {
                         return a.order < b.order;
                     });
    for (const PendingEjection &p : ejectScratch_)
        processEjection(p.tail, p.at);
    ejectScratch_.clear();
}

void
PoeSystem::processEjection(const Flit &tail, Cycle now)
{
    if (traceSink_) {
        traceSink_->packetRetire(PacketRetireEvent{
            now, tail.packet, tail.src, tail.dst, tail.createdAt,
            now - tail.createdAt, tail.len});
    }
    bool in_window = tail.createdAt >= measureStart_ &&
                     (measuring_ || tail.createdAt < measureEnd_);
    if (!measureEnded_ && !measuring_)
        in_window = false;
    if (!in_window)
        return;
    measuredEjected_++;
    auto lat = static_cast<double>(now - tail.createdAt);
    latency_.add(lat);
    latencyHist_.add(lat);
}

bool
PoeSystem::awaitDrain(Cycle limit)
{
    for (Cycle i = 0; i < limit; i++) {
        if (measuredEjected_ >= measuredCreated_)
            return true;
        kernel_.step();
    }
    return measuredEjected_ >= measuredCreated_;
}

std::uint64_t
PoeSystem::totalTransitions() const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < network_->numLinks(); i++)
        n += network_->link(i).numTransitions();
    return n;
}

std::uint64_t
PoeSystem::auditConservation(Cycle settle_limit)
{
    // Stop creating packets, then let the fabric settle: in-flight
    // flits eject (or drop at dead ports), returned credits walk back
    // to their pools. Under faults the fabric may never fully drain
    // (stranded wormholes with orphan reclaim off), so the loop is
    // budgeted, and the flit equation below holds at any instant —
    // only the credit check needs quiescence.
    setTraffic(nullptr);
    auto inFabric = [this] {
        return network_->flitsInSystem() - network_->sourceQueuedFlits();
    };
    auto creditsPending = [this] {
        for (int r = 0; r < network_->numRouters(); r++) {
            if (network_->router(r).pendingCreditCount() != 0)
                return true;
        }
        for (int n = 0; n < network_->numNodes(); n++) {
            if (network_->node(n).pendingCreditCount() != 0)
                return true;
        }
        return false;
    };
    for (Cycle i = 0; i < settle_limit; i++) {
        if (inFabric() == 0 && !creditsPending())
            break;
        kernel_.step();
    }

    std::uint64_t violations = 0;

    // Flit conservation (lifetime counters; valid settled or not).
    std::uint64_t injected = network_->flitsInjected();
    std::uint64_t poisoned = network_->poisonedWormholes();
    std::uint64_t ejected = network_->flitsEjected();
    std::uint64_t retired = network_->poisonTailsRetired();
    std::uint64_t dropFail = network_->flitsDroppedOnFailLifetime();
    std::uint64_t dropDead = network_->flitsDroppedDeadPort();
    std::uint64_t inflight = inFabric();
    std::uint64_t lhs = injected + poisoned;
    std::uint64_t rhs = ejected + retired + dropFail + dropDead + inflight;
    if (lhs != rhs) {
        violations++;
        warn("conservation audit: flit ledger imbalance: "
             "injected %llu + poisoned %llu != ejected %llu + "
             "retired %llu + dropped_on_fail %llu + "
             "dropped_dead_port %llu + in_fabric %llu",
             static_cast<unsigned long long>(injected),
             static_cast<unsigned long long>(poisoned),
             static_cast<unsigned long long>(ejected),
             static_cast<unsigned long long>(retired),
             static_cast<unsigned long long>(dropFail),
             static_cast<unsigned long long>(dropDead),
             static_cast<unsigned long long>(inflight));
    }

    // Credit restitution — only meaningful once every flit has left
    // the fabric and every returned credit applied, and only on a
    // fault-free fabric (a hard-failed link legitimately strands the
    // credits of flits it dropped).
    if (inflight != 0 || creditsPending() ||
        network_->failedLinks() != 0) {
        return violations;
    }
    for (int ri = 0; ri < network_->numRouters(); ri++) {
        Router &r = network_->router(ri);
        for (int p = 0; p < r.numPorts(); p++) {
            if (r.outputLink(p) == nullptr)
                continue;
            for (int v = 0; v < r.numVcs(); v++) {
                if (!r.outputVcFree(p, v)) {
                    violations++;
                    warn("conservation audit: %s output %d vc %d "
                         "still allocated at quiescence",
                         r.name().c_str(), p, v);
                }
                if (r.outputCredits(p, v) != r.outputVcCapacity(p, v)) {
                    violations++;
                    warn("conservation audit: %s output %d vc %d "
                         "credits %d != capacity %d",
                         r.name().c_str(), p, v, r.outputCredits(p, v),
                         r.outputVcCapacity(p, v));
                }
            }
        }
    }
    for (int ni = 0; ni < network_->numNodes(); ni++) {
        Node &n = network_->node(ni);
        for (int v = 0; v < n.numVcs(); v++) {
            if (n.injectionCredits(v) != n.injectionVcCapacity()) {
                violations++;
                warn("conservation audit: node %d vc %d injection "
                     "credits %d != capacity %d",
                     ni, v, n.injectionCredits(v),
                     n.injectionVcCapacity());
            }
        }
    }
    return violations;
}

double
PoeSystem::normalizedPowerNow()
{
    return network_->totalPowerMw(kernel_.now()) /
           network_->baselinePowerMw();
}

RunMetrics
PoeSystem::metrics()
{
    RunMetrics m;
    Cycle end = measureEnded_ ? measureEnd_ : kernel_.now();
    double integral_end =
        measureEnded_ ? powerIntegralEnd_
                      : network_->totalPowerIntegralMwCycles(end);
    m.measuredCycles = end > measureStart_ ? end - measureStart_ : 0;

    m.avgLatency = latency_.mean();
    m.maxLatency = latency_.max();
    // Histogram quantiles interpolate within bins; clamp them to the
    // observed range so coarse bins cannot report p95 > max.
    m.p50Latency = std::min(latencyHist_.quantile(0.50), m.maxLatency);
    m.p95Latency = std::min(latencyHist_.quantile(0.95), m.maxLatency);
    m.packetsMeasured = latency_.count();

    if (m.measuredCycles > 0) {
        m.avgPowerMw = (integral_end - powerIntegralStart_) /
                       static_cast<double>(m.measuredCycles);
        // avgPowerMw is *effective* power when the thermal model is
        // on (the total integral then includes leakage); report the
        // leakage component separately as well.
        if (config_.thermal.enabled) {
            double leak_end =
                measureEnded_
                    ? leakIntegralEnd_
                    : network_->totalLeakageIntegralMwCycles(end);
            m.leakagePowerMw = (leak_end - leakIntegralStart_) /
                               static_cast<double>(m.measuredCycles);
        }
        std::uint64_t ejected_end = measureEnded_
                                        ? measuredFlitsEjectedEnd_
                                        : network_->flitsEjected();
        m.throughputFlitsPerCycle =
            static_cast<double>(ejected_end -
                                measuredFlitsEjectedStart_) /
            static_cast<double>(m.measuredCycles);
        m.offeredRate = static_cast<double>(measuredCreated_) /
                        static_cast<double>(m.measuredCycles);
    }
    m.baselinePowerMw = network_->baselinePowerMw();
    if (m.baselinePowerMw > 0.0)
        m.normalizedPower = m.avgPowerMw / m.baselinePowerMw;
    m.powerLatencyProduct = m.normalizedPower * m.avgLatency;

    if (config_.thermal.enabled && network_->ledgerActive())
        m.maxTempC = network_->powerLedger().maxTempC();

    m.packetsInjected = network_->packetsInjected();
    m.packetsEjected = network_->packetsEjected();
    m.drained = measuredEjected_ >= measuredCreated_;
    m.transitions = totalTransitions() - transitionsStart_;
    if (engine_) {
        m.decisionsUp = engine_->totalDecisionsUp();
        m.decisionsDown = engine_->totalDecisionsDown();
        m.opticalStalls = engine_->totalOpticalStalls();
        m.dvsClamps = engine_->totalDvsClamps();
        m.voaDelayed = engine_->totalVoaDelayed();
        m.voaLost = engine_->totalVoaLost();
        m.voaRetries = engine_->totalVoaRetries();
        m.thermalThrottles = engine_->totalThermalThrottles();
    }
    if (faults_) {
        m.linkHardFailures = network_->failedLinks();
        m.flitsCorrupted = network_->flitsCorrupted();
        m.flitRetries = network_->flitRetries();
        m.lockLossEvents = network_->lockLossEvents();
        m.flitsDroppedOnFail = network_->flitsDroppedOnFail();
        m.flitsDroppedDeadPort = network_->flitsDroppedDeadPort();
        m.poisonedWormholes = network_->poisonedWormholes();
    }
    return m;
}

} // namespace oenet
