#include "core/metrics.hh"

#include <cstdio>

#include "common/log.hh"

namespace oenet {

std::string
RunMetrics::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "lat=%.1fcyc p95=%.1f pwr=%.1fmW (%.3f of base) "
                  "plp=%.1f thru=%.3ff/c pkts=%llu drained=%d",
                  avgLatency, p95Latency, avgPowerMw, normalizedPower,
                  powerLatencyProduct, throughputFlitsPerCycle,
                  static_cast<unsigned long long>(packetsMeasured),
                  drained ? 1 : 0);
    return buf;
}

NormalizedMetrics
normalizeAgainst(const RunMetrics &run, const RunMetrics &baseline)
{
    NormalizedMetrics n;
    if (baseline.avgLatency > 0.0)
        n.latencyRatio = run.avgLatency / baseline.avgLatency;
    if (baseline.avgPowerMw > 0.0)
        n.powerRatio = run.avgPowerMw / baseline.avgPowerMw;
    n.plpRatio = n.latencyRatio * n.powerRatio;
    return n;
}

} // namespace oenet
