/**
 * @file
 * Result records for simulation runs, matching the metrics of Section
 * 4.1: packet latency (creation of first flit to ejection of last),
 * throughput, power (absolute and as a fraction of the non-power-aware
 * baseline), and the power-latency product.
 */

#ifndef OENET_CORE_METRICS_HH
#define OENET_CORE_METRICS_HH

#include <string>

#include "common/types.hh"

namespace oenet {

struct RunMetrics
{
    // Latency (cycles), over packets created in the measurement window.
    double avgLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double maxLatency = 0.0;
    std::uint64_t packetsMeasured = 0;

    // Power over the measurement window. avgPowerMw is *effective*
    // power (dynamic + leakage) when the thermal model is enabled,
    // dynamic only otherwise.
    double avgPowerMw = 0.0;
    double baselinePowerMw = 0.0;
    double normalizedPower = 0.0; ///< avg / baseline (non-power-aware)

    // Leakage/thermal activity (all zero with the thermal model off).
    // Like the fault counters below, these are deliberately NOT part
    // of the frozen sweep-manifest columns.
    double leakagePowerMw = 0.0; ///< leakage component of avgPowerMw
    double maxTempC = 0.0;       ///< hottest junction at metrics() time
    std::uint64_t thermalThrottles = 0; ///< forced down-transitions

    // Derived.
    double powerLatencyProduct = 0.0; ///< normalizedPower * avgLatency

    // Delivery.
    double throughputFlitsPerCycle = 0.0; ///< ejected flits per cycle
    double offeredRate = 0.0;             ///< packets/cycle offered
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    bool drained = false; ///< all measured packets left the network

    // Policy activity.
    std::uint64_t transitions = 0;
    std::uint64_t decisionsUp = 0;
    std::uint64_t decisionsDown = 0;
    std::uint64_t opticalStalls = 0;

    // Fault/resilience activity (all zero when faults are disabled).
    // These are whole-run totals, not windowed, and are deliberately
    // NOT part of the sweep manifest columns (which are frozen for
    // byte-compatibility); the resilience bench reports them itself.
    int linkHardFailures = 0;
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t flitRetries = 0;
    std::uint64_t lockLossEvents = 0;
    std::uint64_t flitsDroppedOnFail = 0;
    std::uint64_t flitsDroppedDeadPort = 0;
    std::uint64_t poisonedWormholes = 0;
    std::uint64_t dvsClamps = 0;
    std::uint64_t voaDelayed = 0;
    std::uint64_t voaLost = 0;
    std::uint64_t voaRetries = 0;

    Cycle measuredCycles = 0;

    /** One-line summary for logs. */
    std::string summary() const;
};

/** Ratios of a power-aware run against a baseline run (the
 *  normalization the paper's figures use). */
struct NormalizedMetrics
{
    double latencyRatio = 0.0;
    double powerRatio = 0.0;
    double plpRatio = 0.0; ///< latencyRatio * powerRatio
};

NormalizedMetrics normalizeAgainst(const RunMetrics &run,
                                   const RunMetrics &baseline);

} // namespace oenet

#endif // OENET_CORE_METRICS_HH
