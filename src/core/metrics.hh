/**
 * @file
 * Result records for simulation runs, matching the metrics of Section
 * 4.1: packet latency (creation of first flit to ejection of last),
 * throughput, power (absolute and as a fraction of the non-power-aware
 * baseline), and the power-latency product.
 */

#ifndef OENET_CORE_METRICS_HH
#define OENET_CORE_METRICS_HH

#include <string>

#include "common/types.hh"

namespace oenet {

struct RunMetrics
{
    // Latency (cycles), over packets created in the measurement window.
    double avgLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double maxLatency = 0.0;
    std::uint64_t packetsMeasured = 0;

    // Power over the measurement window. avgPowerMw is *effective*
    // power (dynamic + leakage) when the thermal model is enabled,
    // dynamic only otherwise.
    double avgPowerMw = 0.0;
    double baselinePowerMw = 0.0;
    double normalizedPower = 0.0; ///< avg / baseline (non-power-aware)

    // Leakage/thermal activity (all zero with the thermal model off).
    // Like the fault counters below, these are deliberately NOT part
    // of the frozen sweep-manifest columns.
    double leakagePowerMw = 0.0; ///< leakage component of avgPowerMw
    double maxTempC = 0.0;       ///< hottest junction at metrics() time
    std::uint64_t thermalThrottles = 0; ///< forced down-transitions

    // Derived.
    double powerLatencyProduct = 0.0; ///< normalizedPower * avgLatency

    // Delivery.
    double throughputFlitsPerCycle = 0.0; ///< ejected flits per cycle
    double offeredRate = 0.0;             ///< packets/cycle offered
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    bool drained = false; ///< all measured packets left the network

    // Policy activity.
    std::uint64_t transitions = 0;
    std::uint64_t decisionsUp = 0;
    std::uint64_t decisionsDown = 0;
    std::uint64_t opticalStalls = 0;

    // Fault/resilience activity (all zero when faults are disabled).
    // These are whole-run totals, not windowed, and are deliberately
    // NOT part of the sweep manifest columns (which are frozen for
    // byte-compatibility); the resilience bench reports them itself.
    int linkHardFailures = 0;
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t flitRetries = 0;
    std::uint64_t lockLossEvents = 0;
    std::uint64_t flitsDroppedOnFail = 0;
    std::uint64_t flitsDroppedDeadPort = 0;
    std::uint64_t poisonedWormholes = 0;
    std::uint64_t dvsClamps = 0;
    std::uint64_t voaDelayed = 0;
    std::uint64_t voaLost = 0;
    std::uint64_t voaRetries = 0;

    /** End-of-run conservation-audit violations (PoeSystem::
     *  auditConservation); 0 when the audit passed or did not run.
     *  Not a manifest column; the sweep runner turns a nonzero count
     *  into a failed outcome. */
    std::uint64_t auditFailures = 0;

    Cycle measuredCycles = 0;

    /** One-line summary for logs. */
    std::string summary() const;
};

/**
 * Visit every RunMetrics field as (snake_case_name, reference), in a
 * fixed order, preserving each field's exact type (double, integer,
 * bool). This is the journal's serialization surface: a SweepOutcome
 * checkpointed to disk and replayed on --resume must reproduce the
 * in-memory record exactly, including the fault/leakage counters that
 * are deliberately NOT manifest columns. The manifest writers keep
 * their own frozen subset (sweep_runner.cc) — extending this list is
 * safe, reordering or renaming breaks journal compatibility.
 */
template <typename Metrics, typename Visitor>
void
forEachRunMetricsField(Metrics &m, Visitor &&v)
{
    v("avg_latency", m.avgLatency);
    v("p50_latency", m.p50Latency);
    v("p95_latency", m.p95Latency);
    v("max_latency", m.maxLatency);
    v("packets_measured", m.packetsMeasured);
    v("avg_power_mw", m.avgPowerMw);
    v("baseline_power_mw", m.baselinePowerMw);
    v("normalized_power", m.normalizedPower);
    v("leakage_power_mw", m.leakagePowerMw);
    v("max_temp_c", m.maxTempC);
    v("thermal_throttles", m.thermalThrottles);
    v("power_latency_product", m.powerLatencyProduct);
    v("throughput_flits_per_cycle", m.throughputFlitsPerCycle);
    v("offered_rate", m.offeredRate);
    v("packets_injected", m.packetsInjected);
    v("packets_ejected", m.packetsEjected);
    v("drained", m.drained);
    v("transitions", m.transitions);
    v("decisions_up", m.decisionsUp);
    v("decisions_down", m.decisionsDown);
    v("optical_stalls", m.opticalStalls);
    v("link_hard_failures", m.linkHardFailures);
    v("flits_corrupted", m.flitsCorrupted);
    v("flit_retries", m.flitRetries);
    v("lock_loss_events", m.lockLossEvents);
    v("flits_dropped_on_fail", m.flitsDroppedOnFail);
    v("flits_dropped_dead_port", m.flitsDroppedDeadPort);
    v("poisoned_wormholes", m.poisonedWormholes);
    v("dvs_clamps", m.dvsClamps);
    v("voa_delayed", m.voaDelayed);
    v("voa_lost", m.voaLost);
    v("voa_retries", m.voaRetries);
    v("audit_failures", m.auditFailures);
    v("measured_cycles", m.measuredCycles);
}

/** Ratios of a power-aware run against a baseline run (the
 *  normalization the paper's figures use). */
struct NormalizedMetrics
{
    double latencyRatio = 0.0;
    double powerRatio = 0.0;
    double plpRatio = 0.0; ///< latencyRatio * powerRatio
};

NormalizedMetrics normalizeAgainst(const RunMetrics &run,
                                   const RunMetrics &baseline);

} // namespace oenet

#endif // OENET_CORE_METRICS_HH
