/**
 * @file
 * Fixed-capacity flit FIFO backing one virtual channel's input buffer.
 * Overflow and underflow are protocol violations (credit bugs), so they
 * panic rather than degrade.
 */

#ifndef OENET_ROUTER_BUFFER_HH
#define OENET_ROUTER_BUFFER_HH

#include <vector>

#include "router/flit.hh"

namespace oenet {

class FlitFifo
{
  public:
    explicit FlitFifo(int capacity);

    void push(const Flit &flit);
    Flit pop();
    const Flit &front() const;

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }
    int size() const { return size_; }
    int capacity() const { return capacity_; }
    int freeSlots() const { return capacity_ - size_; }

  private:
    std::vector<Flit> ring_;
    int capacity_;
    int head_ = 0;
    int size_ = 0;
};

} // namespace oenet

#endif // OENET_ROUTER_BUFFER_HH
