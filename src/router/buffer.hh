/**
 * @file
 * Contiguous flit storage for all of a router's input virtual
 * channels: one slab of `segments * depth` flits plus flat per-segment
 * ring indices, replacing one heap-allocated FIFO object per VC.
 * Segment f backs input VC (port, vc) at f = port * numVcs + vc, so
 * the pipeline stage walks touch adjacent cache lines instead of
 * chasing per-object vectors. Overflow and underflow are protocol
 * violations (credit bugs), so they panic rather than degrade.
 */

#ifndef OENET_ROUTER_BUFFER_HH
#define OENET_ROUTER_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "router/flit.hh"

namespace oenet {

class FlitSlab
{
  public:
    FlitSlab() = default;

    /** Allocate @p segments rings of @p depth flits each (resets all
     *  segments to empty). */
    void configure(int segments, int depth);

    void push(int seg, const Flit &flit)
    {
        auto s = static_cast<std::size_t>(seg);
        if (size_[s] == depth_)
            panic("FlitSlab: overflow on segment %d (depth %d); "
                  "credit protocol broken", seg, depth_);
        int tail = head_[s] + size_[s];
        if (tail >= depth_)
            tail -= depth_;
        slab_[s * static_cast<std::size_t>(depth_) +
              static_cast<std::size_t>(tail)] = flit;
        size_[s]++;
    }

    Flit pop(int seg)
    {
        auto s = static_cast<std::size_t>(seg);
        if (size_[s] == 0)
            panic("FlitSlab: underflow on segment %d", seg);
        Flit flit = slab_[s * static_cast<std::size_t>(depth_) +
                          static_cast<std::size_t>(head_[s])];
        head_[s] = head_[s] + 1 == depth_ ? 0 : head_[s] + 1;
        size_[s]--;
        return flit;
    }

    const Flit &front(int seg) const
    {
        auto s = static_cast<std::size_t>(seg);
        if (size_[s] == 0)
            panic("FlitSlab: front of empty segment %d", seg);
        return slab_[s * static_cast<std::size_t>(depth_) +
                     static_cast<std::size_t>(head_[s])];
    }

    bool empty(int seg) const
    {
        return size_[static_cast<std::size_t>(seg)] == 0;
    }
    bool full(int seg) const
    {
        return size_[static_cast<std::size_t>(seg)] == depth_;
    }
    int size(int seg) const
    {
        return size_[static_cast<std::size_t>(seg)];
    }
    int freeSlots(int seg) const { return depth_ - size(seg); }
    int depth() const { return depth_; }
    int segments() const { return static_cast<int>(size_.size()); }

  private:
    std::vector<Flit> slab_;
    std::vector<std::int32_t> head_; ///< ring head, offset within segment
    std::vector<std::int32_t> size_;
    int depth_ = 0;
};

} // namespace oenet

#endif // OENET_ROUTER_BUFFER_HH
