#include "router/allocators.hh"

#include <bit>

#include "common/log.hh"

namespace oenet {

RoundRobinArbiter::RoundRobinArbiter(int size) : size_(size)
{
    if (size < 0 || size > 64)
        panic("RoundRobinArbiter: size %d out of [0, 64]", size);
}

void
RoundRobinArbiter::resize(int size)
{
    if (size < 0 || size > 64)
        panic("RoundRobinArbiter: size %d out of [0, 64]", size);
    size_ = size;
    next_ = 0;
}

int
RoundRobinArbiter::peek(std::uint64_t requests) const
{
    if (requests == 0)
        return -1;
    if (size_ < 64 && (requests >> size_) != 0)
        panic("RoundRobinArbiter: request bits beyond size %d", size_);
    std::uint64_t rotated = requests >> next_;
    if (rotated != 0)
        return next_ + std::countr_zero(rotated);
    return std::countr_zero(requests);
}

int
RoundRobinArbiter::pick(std::uint64_t requests)
{
    int winner = peek(requests);
    if (winner >= 0)
        next_ = (winner + 1) % size_;
    return winner;
}

} // namespace oenet
