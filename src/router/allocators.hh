/**
 * @file
 * Arbiters and allocators for the router's VA and SA pipeline stages.
 *
 * Both allocation stages are built from rotating-priority (round-robin)
 * arbiters — the standard separable organization: switch allocation
 * arbitrates first among the VCs of each input port, then among input
 * ports at each output port; VC allocation pairs requesting input VCs
 * with free output VCs in rotating order.
 *
 * Request sets are 64-bit masks, so a pick is two bit-scans — the
 * router executes thousands of arbitrations per simulated cycle, and
 * this path dominates simulator throughput.
 */

#ifndef OENET_ROUTER_ALLOCATORS_HH
#define OENET_ROUTER_ALLOCATORS_HH

#include <cstdint>

namespace oenet {

/**
 * Rotating-priority arbiter over up to 64 requesters. pick() scans from
 * the slot after the previous winner, so every persistent requester is
 * served within `size` rounds.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int size = 0);

    /** Resize (resets priority). @pre 0 <= size <= 64. */
    void resize(int size);

    /** @return the winning index among set bits of @p requests, or -1.
     *  Bits at or above size() must be clear. The winner becomes
     *  lowest priority for the next pick. */
    int pick(std::uint64_t requests);

    /** Pick without rotating priority (pure query). */
    int peek(std::uint64_t requests) const;

    int size() const { return size_; }

  private:
    int size_;
    int next_ = 0; ///< highest-priority index for the next pick
};

} // namespace oenet

#endif // OENET_ROUTER_ALLOCATORS_HH
