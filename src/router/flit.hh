/**
 * @file
 * Flits and packet flitization.
 *
 * A flit (flow-control unit) is a fixed-size segment of a packet — 16
 * bits of payload on the wire in the reference system. Routers and links
 * operate purely on flits; packet identity is carried in every flit so
 * latency accounting needs no side tables.
 */

#ifndef OENET_ROUTER_FLIT_HH
#define OENET_ROUTER_FLIT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace oenet {

struct Flit
{
    static constexpr std::uint8_t kHeadFlag = 1;
    static constexpr std::uint8_t kTailFlag = 2;
    /** Synthetic tail injected by a router to close a wormhole whose
     *  remaining flits died with a hard-failed input link. Poison flits
     *  free switch state hop by hop and are discarded at ejection
     *  without being counted as a delivered packet. */
    static constexpr std::uint8_t kPoisonFlag = 4;

    PacketId packet = 0;   ///< packet this flit belongs to
    NodeId src = 0;        ///< source processing node
    NodeId dst = 0;        ///< destination processing node
    Cycle createdAt = 0;   ///< cycle the packet was created at the source
    std::uint16_t seq = 0; ///< index of this flit within its packet
    std::uint16_t len = 0; ///< total flits in the packet
    std::uint8_t vc = 0;   ///< virtual channel on the current hop
    std::uint8_t flags = 0;

    bool isHead() const { return flags & kHeadFlag; }
    bool isTail() const { return flags & kTailFlag; }
    bool isPoison() const { return flags & kPoisonFlag; }
};

/**
 * Append the @p len flits of one packet to @p out, with head/tail flags
 * set (a single-flit packet is both head and tail).
 */
void flitizePacket(std::vector<Flit> &out, PacketId id, NodeId src,
                   NodeId dst, int len, Cycle created_at);

/** Human-readable summary for diagnostics. */
const char *flitKindName(const Flit &flit);

} // namespace oenet

#endif // OENET_ROUTER_FLIT_HH
