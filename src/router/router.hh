/**
 * @file
 * 5-stage pipelined virtual-channel wormhole router (Section 3.1,
 * Fig. 4(b)).
 *
 * The router is topology-agnostic: the attached Topology defines the
 * port map (in the mesh family, ports 0..C-1 are injection/ejection
 * ports serving the C processing nodes of the rack and ports C..C+3
 * connect East/West/North/South neighbors) and the routing function,
 * including any VC-class restriction (torus dateline escape classes).
 * Each input port holds `bufferDepthPerPort` flits split evenly across
 * `numVcs` virtual channels; flow control is credit-based.
 *
 * Pipeline stages, one cycle each:
 *   RC  route computation      (head flit; XY dimension-order)
 *   VA  VC allocation          (separable, round-robin)
 *   SA  switch allocation      (input-first then output round-robin)
 *   ST  switch traversal       (output latch -> link)
 *   LT  link traversal         (modeled by OpticalLink)
 *
 * Within a tick the stages run downstream-first (ST, SA, VA, RC, then
 * link arrivals are drained into the buffers) so a flit advances at most
 * one stage per cycle. The router core runs at a fixed 625 MHz clock
 * regardless of the attached links' bit rates (Section 3.1): clock
 * domain crossing is inside OpticalLink, which simply refuses flits
 * while serializing or retraining.
 */

#ifndef OENET_ROUTER_ROUTER_HH
#define OENET_ROUTER_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "link/endpoints.hh"
#include "link/link.hh"
#include "network/topology.hh"
#include "router/allocators.hh"
#include "router/buffer.hh"
#include "router/routing.hh"
#include "sim/kernel.hh"

namespace oenet {

class BoundaryChannel;

class Router final : public Ticking,
                     public CreditSink,
                     public OccupancyProvider
{
  public:
    struct Params
    {
        int numVcs = 2;
        int bufferDepthPerPort = 16; ///< flits, split across the VCs
        RoutingAlgo routing = RoutingAlgo::kXY;
    };

    Router(std::string name, int router_id, const Topology &topo,
           const Params &params);

    /** Attach the link feeding input @p port, along with the upstream
     *  credit sink (sender) and the sender's output-port index. */
    void connectInput(int port, OpticalLink *link, CreditSink *upstream,
                      int upstream_port);

    /**
     * Attach input @p port through a boundary channel instead of
     * polling @p link directly: arrivals are drained from the
     * channel's ready side, credits are returned into the channel,
     * and the link's hard-failure state is read from the channel's
     * propagated flag. The link's registered receiver is its shuttle,
     * not this router; @p link is kept only for introspection
     * (inputLink, policy stats). Used for every inter-router link
     * under the sharded kernel — at every shard count.
     */
    void connectInputBoundary(int port, OpticalLink *link,
                              BoundaryChannel *channel, int upstream_port);

    /** Attach the link driven by output @p port. @p downstream_vc_depth
     *  is the per-VC buffer capacity at the far end (initial credits). */
    void connectOutput(int port, OpticalLink *link,
                       int downstream_vc_depth);

    void tick(Cycle now) override;

    /**
     * Quiescence (idle elision): a router with empty buffers, no
     * latched flits, no VC in any pipeline state (routing, VC-alloc,
     * or active — an active VC may still owe a poison tail on a failed
     * input), and no pending credits has a no-op tick; it parks until
     * the earliest event any input link could hand it (arrival,
     * scheduled fault, transition end). Wake edges: a flit accepted
     * onto an input link (OpticalLink::accept) and a returned credit.
     */
    Cycle nextWakeCycle(Cycle now) override;

    // CreditSink: the downstream receiver of output @p port returns a
    // credit for @p vc (applied at now+1).
    void returnCredit(int port, int vc, Cycle now) override;

    // OccupancyProvider over this router's *input* ports.
    double occupancyIntegral(int port, Cycle now) const override;
    int bufferCapacity(int port) const override;

    // ------------------------------------------------------------------
    // Introspection (tests, policy, stats)
    // ------------------------------------------------------------------

    int numPorts() const { return static_cast<int>(inputs_.size()); }
    int numVcs() const { return params_.numVcs; }
    int routerId() const { return routerId_; }
    const std::string &name() const { return name_; }

    /** Flits currently buffered at input @p port (all VCs). */
    int inputOccupancy(int port) const;

    /** Credits available for (output port, vc). */
    int outputCredits(int port, int vc) const;

    /** Initial credit pool of (output port, vc) — the downstream VC
     *  depth passed to connectOutput. At quiescence on a fault-free
     *  fabric, outputCredits must equal this (conservation audit). */
    int outputVcCapacity(int port, int vc) const;

    /** Returned credits not yet applied (empty at quiescence). */
    std::size_t pendingCreditCount() const
    {
        return pendingCredits_.size();
    }

    /** True if output VC is unallocated. */
    bool outputVcFree(int port, int vc) const;

    OpticalLink *outputLink(int port) const;
    OpticalLink *inputLink(int port) const;

    std::uint64_t flitsSwitched() const { return flitsSwitched_; }

    /** True if any flit is latched or routed toward output @p port
     *  (the on/off policy's wake condition). */
    bool outputWaiting(int port) const;

    /** Flits buffered in this router that are routed toward output
     *  @p port (the sender-side backlog the policy escalates on). */
    int bufferedFor(int port) const;

    /** Total flits buffered anywhere in this router (for drain tests). */
    int totalBufferedFlits() const;

    // ------------------------------------------------------------------
    // Graceful degradation (fault injection)
    // ------------------------------------------------------------------

    /**
     * Enable wormhole reclaim on hard-failed input links: an active
     * input VC that has been empty for @p cycles (its remaining flits
     * died with the link) is closed with a synthetic poison tail that
     * frees the allocated switch state hop by hop. 0 disables.
     */
    void setOrphanTimeout(Cycle cycles) { orphanTimeout_ = cycles; }

    /** Flits dropped at outputs whose link hard-failed. */
    std::uint64_t droppedDeadPort() const { return droppedDeadPort_; }

    /** Stranded wormholes closed with a synthetic poison tail. */
    std::uint64_t poisonedWormholes() const { return poisoned_; }

  private:
    enum class VcState : std::uint8_t
    {
        kIdle,
        kRouting,
        kVcAlloc,
        kActive,
    };

    /** Cold per-input-port wiring; the per-VC pipeline state lives in
     *  the flat hot-state arrays below. */
    struct InputPort
    {
        OpticalLink *link = nullptr;
        BoundaryChannel *boundary = nullptr; ///< set: drain via channel
        CreditSink *upstream = nullptr;
        int upstreamPort = kInvalid;
        TimeWeighted occupancy;
    };

    /** Hard-failure state of the link feeding @p in, through the
     *  boundary flag when the input is channeled (the link object
     *  itself may be mid-walk on another shard's thread). */
    static bool inputFailed(const InputPort &in);

    struct PendingCredit
    {
        int port;
        int vc;
        Cycle effective;
    };

    RouteOption selectRoute(NodeId dst);
    std::uint64_t vcMaskForClass(int vc_class) const;
    void applyCredits(Cycle now);
    void reclaimOrphans(Cycle now);
    void stageSwitchTraversal(Cycle now);
    void stageSwitchAllocation(Cycle now);
    void stageVcAllocation(Cycle now);
    void stageRouteComputation(Cycle now);
    void drainArrivals(Cycle now);

    /** Flat index of input/output VC (@p port, @p vc) into the
     *  hot-state arrays — the same flattening VA's request masks use. */
    int flatIdx(int port, int vc) const
    {
        return port * params_.numVcs + vc;
    }

    std::string name_;
    int routerId_;
    const Topology &topo_;
    Params params_;
    int vcDepth_;
    bool restrictedVcs_; ///< topology routes carry VC classes (torus)

    std::vector<InputPort> inputs_;

    // ------------------------------------------------------------------
    // Hot state, structure-of-arrays. Per-VC arrays are indexed
    // flatIdx(port, vc); per-port arrays by the port. The allocator
    // walks each touch one contiguous array per field instead of
    // striding across per-port/per-VC objects.
    // ------------------------------------------------------------------

    // Input VC pipeline state.
    std::vector<VcState> vcState_;
    std::vector<std::int16_t> vcOutPort_; ///< kInvalid until RC
    std::vector<std::int16_t> vcOutVc_;   ///< kInvalid until VA
    std::vector<std::uint64_t> vcOutVcMask_; ///< output VCs RC allows
    std::vector<Cycle> vcLastActivity_; ///< last push/pop (orphans)
    FlitSlab buffers_; ///< segment flatIdx(port, vc), depth vcDepth_
    std::vector<std::int32_t> portOcc_; ///< flits buffered per input port

    // Hot mirrors of inputs_[p].{boundary, link} for the per-cycle
    // arrival drain: InputPort is cache-line sized (it carries the
    // occupancy tracker), so the drain's all-ports scan packs its two
    // pointers here instead. Written only by the connectInput* calls.
    std::vector<BoundaryChannel *> inBoundary_;
    std::vector<OpticalLink *> inDrainLink_;

    // Output VC credit/allocation state.
    std::vector<std::uint8_t> outAllocated_;
    std::vector<std::int32_t> outCredits_;
    std::vector<std::int32_t> outMaxCredits_; ///< initial pool

    // Per output port.
    std::vector<OpticalLink *> outLink_;
    std::vector<std::uint8_t> latchFull_;
    std::vector<Flit> latch_;
    std::vector<RoundRobinArbiter> saArb_; ///< among input ports
    std::vector<RoundRobinArbiter> vaArb_; ///< among flattened input VCs

    std::vector<RoundRobinArbiter> saInputArb_; ///< per input port
    std::vector<PendingCredit> pendingCredits_;

    std::uint64_t flitsSwitched_ = 0;
    std::uint64_t droppedDeadPort_ = 0;
    std::uint64_t poisoned_ = 0;
    Cycle orphanTimeout_ = 0;

    // Fast-path occupancy counters: stages whose populations are zero
    // are skipped entirely (the common case on an idle fabric).
    int bufferedFlits_ = 0; ///< flits across all input buffers
    int latchCount_ = 0;    ///< occupied output latches
    std::uint64_t latchMask_ = 0; ///< bit q = latchFull_[q] (ST walk)
    int routingCount_ = 0;  ///< input VCs in kRouting
    int vcAllocCount_ = 0;  ///< input VCs in kVcAlloc
    int activeVcCount_ = 0; ///< input VCs in kActive (open wormholes)

    /** Upper bound on ports (masks are 64-bit; VA flattens p*vcs+v). */
    static constexpr int kMaxPorts = 32;

    std::vector<int> saCandidateVc_; ///< per input port, winner VC or -1
};

} // namespace oenet

#endif // OENET_ROUTER_ROUTER_HH
