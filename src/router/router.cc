#include "router/router.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "network/boundary.hh"

namespace oenet {

Router::Router(std::string name, int router_id, const Topology &topo,
               const Params &params)
    : name_(std::move(name)), routerId_(router_id), topo_(topo),
      params_(params),
      restrictedVcs_(topo.numVcClasses() > 1)
{
    if (params_.numVcs < 1)
        fatal("Router %s: need at least one VC", name_.c_str());
    if (params_.numVcs < topo_.numVcClasses())
        fatal("Router %s: %s routing needs %d VC classes but only %d "
              "VCs are configured (raise router.vcs)", name_.c_str(),
              topo_.name(), topo_.numVcClasses(), params_.numVcs);
    if (params_.bufferDepthPerPort < params_.numVcs)
        fatal("Router %s: buffer depth %d cannot cover %d VCs",
              name_.c_str(), params_.bufferDepthPerPort, params_.numVcs);
    vcDepth_ = params_.bufferDepthPerPort / params_.numVcs;

    int ports = topo_.portsPerRouter();
    if (ports > kMaxPorts || ports * params_.numVcs > 64)
        fatal("Router %s: %d ports x %d VCs exceeds allocator masks",
              name_.c_str(), ports, params_.numVcs);
    inputs_.resize(static_cast<std::size_t>(ports));
    outputs_.resize(static_cast<std::size_t>(ports));
    saInputArb_.resize(static_cast<std::size_t>(ports));
    saCandidateVc_.assign(static_cast<std::size_t>(ports), kInvalid);

    for (int p = 0; p < ports; p++) {
        auto &in = inputs_[static_cast<std::size_t>(p)];
        in.vcs.reserve(static_cast<std::size_t>(params_.numVcs));
        for (int v = 0; v < params_.numVcs; v++)
            in.vcs.emplace_back(vcDepth_);
        auto &out = outputs_[static_cast<std::size_t>(p)];
        out.vcs.resize(static_cast<std::size_t>(params_.numVcs));
        out.saArb.resize(ports);
        out.vaArb.resize(ports * params_.numVcs);
        saInputArb_[static_cast<std::size_t>(p)].resize(params_.numVcs);
    }
}

void
Router::connectInput(int port, OpticalLink *link, CreditSink *upstream,
                     int upstream_port)
{
    if (port < 0 || port >= numPorts())
        panic("Router %s: bad input port %d", name_.c_str(), port);
    auto &in = inputs_[static_cast<std::size_t>(port)];
    in.link = link;
    in.upstream = upstream;
    in.upstreamPort = upstream_port;
    if (link != nullptr)
        link->setReceiver(this); // arrival wake edge (idle elision)
}

void
Router::connectInputBoundary(int port, OpticalLink *link,
                             BoundaryChannel *channel, int upstream_port)
{
    if (port < 0 || port >= numPorts())
        panic("Router %s: bad input port %d", name_.c_str(), port);
    auto &in = inputs_[static_cast<std::size_t>(port)];
    in.link = link; // introspection only; the shuttle is the receiver
    in.boundary = channel;
    in.upstream = channel;
    in.upstreamPort = upstream_port;
}

bool
Router::inputFailed(const InputPort &in)
{
    return in.boundary != nullptr
               ? in.boundary->failed()
               : in.link != nullptr && in.link->isFailed();
}

void
Router::connectOutput(int port, OpticalLink *link, int downstream_vc_depth)
{
    if (port < 0 || port >= numPorts())
        panic("Router %s: bad output port %d", name_.c_str(), port);
    auto &out = outputs_[static_cast<std::size_t>(port)];
    out.link = link;
    for (auto &vc : out.vcs) {
        vc.credits = downstream_vc_depth;
        vc.maxCredits = downstream_vc_depth;
    }
}

void
Router::returnCredit(int port, int vc, Cycle now)
{
    pendingCredits_.push_back(PendingCredit{port, vc, now + 1});
    wakeAt(now + 1); // credit wake edge: apply it on time if parked
}

double
Router::occupancyIntegral(int port, Cycle now) const
{
    return inputs_.at(static_cast<std::size_t>(port))
        .occupancy.integral(now);
}

int
Router::bufferCapacity(int) const
{
    return vcDepth_ * params_.numVcs;
}

int
Router::inputOccupancy(int port) const
{
    const auto &in = inputs_.at(static_cast<std::size_t>(port));
    int n = 0;
    for (const auto &vc : in.vcs)
        n += vc.buffer.size();
    return n;
}

int
Router::outputCredits(int port, int vc) const
{
    return outputs_.at(static_cast<std::size_t>(port))
        .vcs.at(static_cast<std::size_t>(vc))
        .credits;
}

int
Router::outputVcCapacity(int port, int vc) const
{
    return outputs_.at(static_cast<std::size_t>(port))
        .vcs.at(static_cast<std::size_t>(vc))
        .maxCredits;
}

bool
Router::outputVcFree(int port, int vc) const
{
    return !outputs_.at(static_cast<std::size_t>(port))
                .vcs.at(static_cast<std::size_t>(vc))
                .allocated;
}

OpticalLink *
Router::outputLink(int port) const
{
    return outputs_.at(static_cast<std::size_t>(port)).link;
}

OpticalLink *
Router::inputLink(int port) const
{
    return inputs_.at(static_cast<std::size_t>(port)).link;
}

bool
Router::outputWaiting(int port) const
{
    const auto &out = outputs_.at(static_cast<std::size_t>(port));
    if (out.latchFull)
        return true;
    for (const auto &in : inputs_) {
        for (const auto &ivc : in.vcs) {
            if (ivc.outPort == port && !ivc.buffer.empty() &&
                (ivc.state == VcState::kActive ||
                 ivc.state == VcState::kVcAlloc))
                return true;
        }
    }
    return false;
}

int
Router::bufferedFor(int port) const
{
    int n = 0;
    for (const auto &in : inputs_) {
        for (const auto &ivc : in.vcs) {
            if (ivc.outPort == port)
                n += ivc.buffer.size();
        }
    }
    const auto &out = outputs_.at(static_cast<std::size_t>(port));
    if (out.latchFull)
        n++;
    return n;
}

int
Router::totalBufferedFlits() const
{
    int n = 0;
    for (int p = 0; p < numPorts(); p++)
        n += inputOccupancy(p);
    for (const auto &out : outputs_)
        n += out.latchFull ? 1 : 0;
    return n;
}

void
Router::applyCredits(Cycle now)
{
    std::size_t i = 0;
    while (i < pendingCredits_.size()) {
        const auto &pc = pendingCredits_[i];
        if (pc.effective <= now) {
            auto &state = outputs_[static_cast<std::size_t>(pc.port)]
                              .vcs[static_cast<std::size_t>(pc.vc)];
            state.credits++;
            if (state.credits > vcDepth_)
                panic("Router %s: credit overflow on output %d vc %d",
                      name_.c_str(), pc.port, pc.vc);
            pendingCredits_[i] = pendingCredits_.back();
            pendingCredits_.pop_back();
        } else {
            i++;
        }
    }
}

void
Router::stageSwitchTraversal(Cycle now)
{
    for (auto &out : outputs_) {
        if (!out.latchFull)
            continue;
        if (out.link == nullptr)
            panic("Router %s: latched flit on unconnected output",
                  name_.c_str());
        if (out.link->canAccept(now)) {
            out.link->accept(now, out.latch);
            out.latchFull = false;
            latchCount_--;
        } else if (out.link->isFailed()) {
            // The link died with this flit waiting; it is lost.
            out.latchFull = false;
            latchCount_--;
            droppedDeadPort_++;
        }
        // Otherwise the flit waits in the latch; SA skips this port.
    }
}

void
Router::stageSwitchAllocation(Cycle now)
{
    int ports = numPorts();
    int vcs = params_.numVcs;

    // Stage 1: each input port nominates one of its VCs. Requests per
    // output port are accumulated as bit masks for stage 2.
    std::uint64_t port_requests[kMaxPorts] = {};
    bool any = false;
    for (int p = 0; p < ports; p++) {
        auto &in = inputs_[static_cast<std::size_t>(p)];
        std::uint64_t req = 0;
        for (int v = 0; v < vcs; v++) {
            const auto &ivc = in.vcs[static_cast<std::size_t>(v)];
            if (ivc.state != VcState::kActive || ivc.buffer.empty())
                continue;
            const auto &out =
                outputs_[static_cast<std::size_t>(ivc.outPort)];
            // A dead output accepts (and discards) anything, so the
            // wormhole headed there can drain regardless of latch or
            // credit state.
            if (out.link == nullptr || !out.link->isFailed()) {
                if (out.latchFull)
                    continue;
                if (out.vcs[static_cast<std::size_t>(ivc.outVc)]
                        .credits <= 0)
                    continue;
            }
            req |= 1ull << v;
        }
        int winner =
            req ? saInputArb_[static_cast<std::size_t>(p)].pick(req)
                : kInvalid;
        saCandidateVc_[static_cast<std::size_t>(p)] = winner;
        if (winner != kInvalid) {
            int q = in.vcs[static_cast<std::size_t>(winner)].outPort;
            port_requests[q] |= 1ull << p;
            any = true;
        }
    }
    if (!any)
        return;

    // Stage 2: each output port picks among nominating input ports.
    for (int q = 0; q < ports; q++) {
        auto &out = outputs_[static_cast<std::size_t>(q)];
        if (port_requests[q] == 0 || out.latchFull)
            continue;
        int p = out.saArb.pick(port_requests[q]);
        int v = saCandidateVc_[static_cast<std::size_t>(p)];
        auto &in = inputs_[static_cast<std::size_t>(p)];
        auto &ivc = in.vcs[static_cast<std::size_t>(v)];

        Flit flit = ivc.buffer.pop();
        bufferedFlits_--;
        in.occupancy.update(now, inputOccupancy(p));
        ivc.lastActivity = now;
        bool dead = out.link != nullptr && out.link->isFailed();
        if (dead) {
            // Flits to a hard-failed link are discarded at the switch;
            // output credits are not touched (the far side will never
            // return them).
            droppedDeadPort_++;
        } else {
            flit.vc = static_cast<std::uint8_t>(ivc.outVc);
            out.latch = flit;
            out.latchFull = true;
            latchCount_++;
            out.vcs[static_cast<std::size_t>(ivc.outVc)].credits--;
            flitsSwitched_++;
        }

        // Return a credit for the slot we just freed — except for a
        // locally injected poison tail, which never consumed an
        // upstream credit (it was synthesized into the buffer, not
        // sent over the input link).
        if (in.upstream != nullptr && !(flit.isPoison() && inputFailed(in)))
            in.upstream->returnCredit(in.upstreamPort, v, now);

        // This input port consumed its switch slot this cycle.
        saCandidateVc_[static_cast<std::size_t>(p)] = kInvalid;

        if (flit.isTail()) {
            out.vcs[static_cast<std::size_t>(ivc.outVc)].allocated =
                false;
            ivc.outPort = kInvalid;
            ivc.outVc = kInvalid;
            activeVcCount_--;
            if (ivc.buffer.empty()) {
                ivc.state = VcState::kIdle;
            } else {
                if (!ivc.buffer.front().isHead())
                    panic("Router %s: non-head after tail on in %d vc %d",
                          name_.c_str(), p, v);
                ivc.state = VcState::kRouting;
                routingCount_++;
            }
        }
    }
}

void
Router::stageVcAllocation(Cycle now)
{
    (void)now;
    int ports = numPorts();
    int vcs = params_.numVcs;

    // Collect requesting input VCs (flattened index p*vcs + v) per
    // requested output port.
    std::uint64_t requests[kMaxPorts] = {};
    for (int p = 0; p < ports; p++) {
        auto &in = inputs_[static_cast<std::size_t>(p)];
        for (int v = 0; v < vcs; v++) {
            const auto &ivc = in.vcs[static_cast<std::size_t>(v)];
            if (ivc.state == VcState::kVcAlloc)
                requests[ivc.outPort] |= 1ull << (p * vcs + v);
        }
    }

    for (int q = 0; q < ports; q++) {
        auto &out = outputs_[static_cast<std::size_t>(q)];
        if (requests[q] == 0)
            continue;

        if (out.link != nullptr && out.link->isFailed()) {
            // Dead output: grant every requester immediately (VC 0,
            // unconditionally) so wormholes stuck routing to it can
            // drain into the drop path instead of waiting forever for
            // an output VC that will never free.
            for (;;) {
                int winner = out.vaArb.pick(requests[q]);
                if (winner < 0)
                    break;
                auto &ivc =
                    inputs_[static_cast<std::size_t>(winner / vcs)]
                        .vcs[static_cast<std::size_t>(winner % vcs)];
                ivc.outVc = 0;
                ivc.state = VcState::kActive;
                vcAllocCount_--;
                activeVcCount_++;
                requests[q] &= ~(1ull << winner);
            }
            continue;
        }

        // Hand each free output VC to one requester, rotating fairly.
        // With a VC-class topology (torus datelines) each requester
        // may only take output VCs inside the mask its route computed;
        // the unrestricted fabrics keep the mask-free fast path.
        for (int ov = 0; ov < vcs; ov++) {
            if (out.vcs[static_cast<std::size_t>(ov)].allocated)
                continue;
            std::uint64_t eligible = requests[q];
            if (restrictedVcs_) {
                for (std::uint64_t rem = eligible; rem != 0;
                     rem &= rem - 1) {
                    int i = std::countr_zero(rem);
                    const auto &rvc =
                        inputs_[static_cast<std::size_t>(i / vcs)]
                            .vcs[static_cast<std::size_t>(i % vcs)];
                    if (!(rvc.outVcMask >> ov & 1))
                        eligible &= ~(1ull << i);
                }
                if (eligible == 0)
                    continue;
            }
            int winner = out.vaArb.pick(eligible);
            if (winner < 0)
                break;
            int p = winner / vcs;
            int v = winner % vcs;
            auto &ivc = inputs_[static_cast<std::size_t>(p)]
                            .vcs[static_cast<std::size_t>(v)];
            ivc.outVc = ov;
            ivc.state = VcState::kActive;
            vcAllocCount_--;
            activeVcCount_++;
            auto &ovc = out.vcs[static_cast<std::size_t>(ov)];
            ovc.allocated = true;
            ovc.ownerInPort = p;
            ovc.ownerInVc = v;
            requests[q] &= ~(1ull << winner);
        }
    }
}

std::uint64_t
Router::vcMaskForClass(int vc_class) const
{
    int vcs = params_.numVcs;
    std::uint64_t all =
        vcs >= 64 ? ~0ull : (1ull << vcs) - 1;
    if (vc_class == kAnyVcClass)
        return all;
    // Split the VC pool evenly across the topology's classes: class 0
    // gets the low half, class 1 the high half (torus datelines).
    int half = vcs / 2;
    if (vc_class == 0)
        return (1ull << half) - 1;
    return all & ~((1ull << half) - 1);
}

RouteOption
Router::selectRoute(NodeId dst)
{
    RouteOption candidates[kMaxRouteCandidates];
    int n = topo_.routeCandidates(params_.routing, routerId_, dst,
                                  candidates);
    // Route around hard failures where the routing function leaves an
    // alternative; if every productive direction is dead, keep the
    // first candidate and let the drop path reclaim the flits.
    RouteOption live[kMaxRouteCandidates];
    int m = 0;
    for (int i = 0; i < n; i++) {
        const auto &out = outputs_[static_cast<std::size_t>(
            candidates[i].port.value())];
        if (out.link != nullptr && out.link->isFailed())
            continue;
        live[m++] = candidates[i];
    }
    if (m == 0) {
        live[0] = candidates[0];
        m = 1;
    }
    if (m == 1)
        return live[0];
    // Adaptive selection: prefer the productive direction with the
    // most downstream credit (least congested), ties to the first.
    RouteOption best = live[0];
    int best_credits = -1;
    for (int i = 0; i < m; i++) {
        const auto &out = outputs_[static_cast<std::size_t>(
            live[i].port.value())];
        int credits = 0;
        for (const auto &vc : out.vcs)
            credits += vc.credits;
        if (credits > best_credits) {
            best_credits = credits;
            best = live[i];
        }
    }
    return best;
}

void
Router::stageRouteComputation(Cycle now)
{
    (void)now;
    for (auto &in : inputs_) {
        for (auto &ivc : in.vcs) {
            if (ivc.state != VcState::kRouting)
                continue;
            if (ivc.buffer.empty() || !ivc.buffer.front().isHead())
                panic("Router %s: routing state without head flit",
                      name_.c_str());
            RouteOption route = selectRoute(ivc.buffer.front().dst);
            ivc.outPort = route.port.value();
            ivc.outVcMask = vcMaskForClass(route.vcClass);
            ivc.state = VcState::kVcAlloc;
            routingCount_--;
            vcAllocCount_++;
        }
    }
}

void
Router::drainArrivals(Cycle now)
{
    for (int p = 0; p < numPorts(); p++) {
        auto &in = inputs_[static_cast<std::size_t>(p)];
        auto deliver = [&](const Flit &flit) {
            int v = flit.vc;
            if (v < 0 || v >= params_.numVcs)
                panic("Router %s: flit with bad VC %d on input %d",
                      name_.c_str(), v, p);
            auto &ivc = in.vcs[static_cast<std::size_t>(v)];
            if (ivc.buffer.full())
                panic("Router %s: input %d vc %d overflow (credit bug)",
                      name_.c_str(), p, v);
            if (ivc.state == VcState::kIdle) {
                if (!flit.isHead())
                    panic("Router %s: body flit into idle in %d vc %d",
                          name_.c_str(), p, v);
                ivc.state = VcState::kRouting;
                routingCount_++;
            }
            ivc.buffer.push(flit);
            ivc.lastActivity = now;
            bufferedFlits_++;
            in.occupancy.update(now, inputOccupancy(p));
        };
        if (in.boundary != nullptr) {
            // Channeled input: everything on the ready side has an
            // arrival stamp <= now (the shuttle staged it one cycle
            // before arrival).
            while (in.boundary->hasReadyArrival())
                deliver(in.boundary->popReadyArrival());
        } else if (in.link != nullptr) {
            while (in.link->hasArrival(now))
                deliver(in.link->popArrival(now));
        }
    }
}

void
Router::reclaimOrphans(Cycle now)
{
    for (int p = 0; p < numPorts(); p++) {
        auto &in = inputs_[static_cast<std::size_t>(p)];
        if (!inputFailed(in))
            continue;
        for (int v = 0; v < params_.numVcs; v++) {
            auto &ivc = in.vcs[static_cast<std::size_t>(v)];
            // kActive with an empty buffer means mid-wormhole: the
            // head went downstream, the rest died with the link. Once
            // the timeout confirms nothing more is coming, close the
            // wormhole with a synthetic poison tail; normal switch
            // allocation forwards it and frees the allocated state at
            // every hop downstream.
            if (ivc.state != VcState::kActive || !ivc.buffer.empty())
                continue;
            if (now < ivc.lastActivity + orphanTimeout_)
                continue;
            Flit tail{};
            tail.flags = Flit::kTailFlag | Flit::kPoisonFlag;
            ivc.buffer.push(tail);
            ivc.lastActivity = now;
            bufferedFlits_++;
            in.occupancy.update(now, inputOccupancy(p));
            poisoned_++;
        }
    }
}

void
Router::tick(Cycle now)
{
    if (!pendingCredits_.empty())
        applyCredits(now);
    if (latchCount_ > 0)
        stageSwitchTraversal(now);
    if (bufferedFlits_ > 0)
        stageSwitchAllocation(now);
    if (vcAllocCount_ > 0)
        stageVcAllocation(now);
    if (routingCount_ > 0)
        stageRouteComputation(now);
    drainArrivals(now);
    if (orphanTimeout_ != 0 && (now & 1023) == 0)
        reclaimOrphans(now);
}

Cycle
Router::nextWakeCycle(Cycle now)
{
    // Any pipeline population keeps the router in the per-cycle pass.
    // activeVcCount_ matters even with empty buffers: an open wormhole
    // may still owe flits (or a poison tail on a failed input link).
    if (bufferedFlits_ > 0 || latchCount_ > 0 || routingCount_ > 0 ||
        vcAllocCount_ > 0 || activeVcCount_ > 0 ||
        !pendingCredits_.empty())
        return now + 1;
    Cycle wake = kNeverCycle;
    for (const auto &in : inputs_) {
        // Channeled inputs contribute nothing: their link belongs to
        // the source shard (reading it here would race its walk), and
        // every delivery comes with a pre-pass wake edge instead.
        if (in.boundary != nullptr)
            continue;
        if (in.link != nullptr)
            wake = std::min(wake, in.link->nextReceiverEventCycle());
    }
    return wake;
}

} // namespace oenet
