#include "router/router.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "network/boundary.hh"

namespace oenet {

Router::Router(std::string name, int router_id, const Topology &topo,
               const Params &params)
    : name_(std::move(name)), routerId_(router_id), topo_(topo),
      params_(params),
      restrictedVcs_(topo.numVcClasses() > 1)
{
    if (params_.numVcs < 1)
        fatal("Router %s: need at least one VC", name_.c_str());
    if (params_.numVcs < topo_.numVcClasses())
        fatal("Router %s: %s routing needs %d VC classes but only %d "
              "VCs are configured (raise router.vcs)", name_.c_str(),
              topo_.name(), topo_.numVcClasses(), params_.numVcs);
    if (params_.bufferDepthPerPort < params_.numVcs)
        fatal("Router %s: buffer depth %d cannot cover %d VCs",
              name_.c_str(), params_.bufferDepthPerPort, params_.numVcs);
    vcDepth_ = params_.bufferDepthPerPort / params_.numVcs;

    int ports = topo_.portsPerRouter();
    if (ports > kMaxPorts || ports * params_.numVcs > 64)
        fatal("Router %s: %d ports x %d VCs exceeds allocator masks",
              name_.c_str(), ports, params_.numVcs);
    auto nports = static_cast<std::size_t>(ports);
    auto nflat = static_cast<std::size_t>(ports * params_.numVcs);
    inputs_.resize(nports);
    vcState_.assign(nflat, VcState::kIdle);
    vcOutPort_.assign(nflat, static_cast<std::int16_t>(kInvalid));
    vcOutVc_.assign(nflat, static_cast<std::int16_t>(kInvalid));
    vcOutVcMask_.assign(nflat, 0);
    vcLastActivity_.assign(nflat, 0);
    buffers_.configure(ports * params_.numVcs, vcDepth_);
    portOcc_.assign(nports, 0);
    inBoundary_.assign(nports, nullptr);
    inDrainLink_.assign(nports, nullptr);
    outAllocated_.assign(nflat, 0);
    outCredits_.assign(nflat, 0);
    outMaxCredits_.assign(nflat, 0);
    outLink_.assign(nports, nullptr);
    latchFull_.assign(nports, 0);
    latch_.assign(nports, Flit{});
    saArb_.resize(nports);
    vaArb_.resize(nports);
    saInputArb_.resize(nports);
    saCandidateVc_.assign(nports, kInvalid);

    for (int p = 0; p < ports; p++) {
        saArb_[static_cast<std::size_t>(p)].resize(ports);
        vaArb_[static_cast<std::size_t>(p)].resize(ports * params_.numVcs);
        saInputArb_[static_cast<std::size_t>(p)].resize(params_.numVcs);
    }
}

void
Router::connectInput(int port, OpticalLink *link, CreditSink *upstream,
                     int upstream_port)
{
    if (port < 0 || port >= numPorts())
        panic("Router %s: bad input port %d", name_.c_str(), port);
    auto &in = inputs_[static_cast<std::size_t>(port)];
    in.link = link;
    in.upstream = upstream;
    in.upstreamPort = upstream_port;
    inDrainLink_[static_cast<std::size_t>(port)] = link;
    if (link != nullptr)
        link->setReceiver(this); // arrival wake edge (idle elision)
}

void
Router::connectInputBoundary(int port, OpticalLink *link,
                             BoundaryChannel *channel, int upstream_port)
{
    if (port < 0 || port >= numPorts())
        panic("Router %s: bad input port %d", name_.c_str(), port);
    auto &in = inputs_[static_cast<std::size_t>(port)];
    in.link = link; // introspection only; the shuttle is the receiver
    in.boundary = channel;
    in.upstream = channel;
    in.upstreamPort = upstream_port;
    inBoundary_[static_cast<std::size_t>(port)] = channel;
}

bool
Router::inputFailed(const InputPort &in)
{
    return in.boundary != nullptr
               ? in.boundary->failed()
               : in.link != nullptr && in.link->isFailed();
}

void
Router::connectOutput(int port, OpticalLink *link, int downstream_vc_depth)
{
    if (port < 0 || port >= numPorts())
        panic("Router %s: bad output port %d", name_.c_str(), port);
    outLink_[static_cast<std::size_t>(port)] = link;
    for (int v = 0; v < params_.numVcs; v++) {
        auto f = static_cast<std::size_t>(flatIdx(port, v));
        outCredits_[f] = downstream_vc_depth;
        outMaxCredits_[f] = downstream_vc_depth;
    }
}

void
Router::returnCredit(int port, int vc, Cycle now)
{
    pendingCredits_.push_back(PendingCredit{port, vc, now + 1});
    wakeAt(now + 1); // credit wake edge: apply it on time if parked
}

double
Router::occupancyIntegral(int port, Cycle now) const
{
    return inputs_.at(static_cast<std::size_t>(port))
        .occupancy.integral(now);
}

int
Router::bufferCapacity(int) const
{
    return vcDepth_ * params_.numVcs;
}

int
Router::inputOccupancy(int port) const
{
    return portOcc_.at(static_cast<std::size_t>(port));
}

int
Router::outputCredits(int port, int vc) const
{
    if (port < 0 || port >= numPorts() || vc < 0 || vc >= params_.numVcs)
        panic("Router %s: bad output VC (%d, %d)", name_.c_str(), port,
              vc);
    return outCredits_[static_cast<std::size_t>(flatIdx(port, vc))];
}

int
Router::outputVcCapacity(int port, int vc) const
{
    if (port < 0 || port >= numPorts() || vc < 0 || vc >= params_.numVcs)
        panic("Router %s: bad output VC (%d, %d)", name_.c_str(), port,
              vc);
    return outMaxCredits_[static_cast<std::size_t>(flatIdx(port, vc))];
}

bool
Router::outputVcFree(int port, int vc) const
{
    if (port < 0 || port >= numPorts() || vc < 0 || vc >= params_.numVcs)
        panic("Router %s: bad output VC (%d, %d)", name_.c_str(), port,
              vc);
    return !outAllocated_[static_cast<std::size_t>(flatIdx(port, vc))];
}

OpticalLink *
Router::outputLink(int port) const
{
    return outLink_.at(static_cast<std::size_t>(port));
}

OpticalLink *
Router::inputLink(int port) const
{
    return inputs_.at(static_cast<std::size_t>(port)).link;
}

bool
Router::outputWaiting(int port) const
{
    if (latchFull_.at(static_cast<std::size_t>(port)))
        return true;
    int flats = numPorts() * params_.numVcs;
    for (int f = 0; f < flats; f++) {
        auto s = static_cast<std::size_t>(f);
        if (vcOutPort_[s] == port && !buffers_.empty(f) &&
            (vcState_[s] == VcState::kActive ||
             vcState_[s] == VcState::kVcAlloc))
            return true;
    }
    return false;
}

int
Router::bufferedFor(int port) const
{
    int n = 0;
    int flats = numPorts() * params_.numVcs;
    for (int f = 0; f < flats; f++) {
        if (vcOutPort_[static_cast<std::size_t>(f)] == port)
            n += buffers_.size(f);
    }
    if (latchFull_.at(static_cast<std::size_t>(port)))
        n++;
    return n;
}

int
Router::totalBufferedFlits() const
{
    int n = 0;
    for (int p = 0; p < numPorts(); p++)
        n += inputOccupancy(p);
    for (std::uint8_t full : latchFull_)
        n += full ? 1 : 0;
    return n;
}

void
Router::applyCredits(Cycle now)
{
    std::size_t i = 0;
    while (i < pendingCredits_.size()) {
        const auto &pc = pendingCredits_[i];
        if (pc.effective <= now) {
            auto f = static_cast<std::size_t>(flatIdx(pc.port, pc.vc));
            outCredits_[f]++;
            if (outCredits_[f] > vcDepth_)
                panic("Router %s: credit overflow on output %d vc %d",
                      name_.c_str(), pc.port, pc.vc);
            pendingCredits_[i] = pendingCredits_.back();
            pendingCredits_.pop_back();
        } else {
            i++;
        }
    }
}

void
Router::stageSwitchTraversal(Cycle now)
{
    // Walk only the occupied latches (ascending port order, same as
    // the full scan). SA runs after ST within a tick, so the mask at
    // entry is exactly the set of latches filled in earlier cycles.
    for (std::uint64_t m = latchMask_; m != 0; m &= m - 1) {
        int q = std::countr_zero(m);
        auto s = static_cast<std::size_t>(q);
        OpticalLink *link = outLink_[s];
        if (link == nullptr)
            panic("Router %s: latched flit on unconnected output",
                  name_.c_str());
        if (link->canAccept(now)) {
            link->accept(now, latch_[s]);
            latchFull_[s] = 0;
            latchMask_ &= ~(1ull << q);
            latchCount_--;
        } else if (link->isFailed()) {
            // The link died with this flit waiting; it is lost.
            latchFull_[s] = 0;
            latchMask_ &= ~(1ull << q);
            latchCount_--;
            droppedDeadPort_++;
        }
        // Otherwise the flit waits in the latch; SA skips this port.
    }
}

void
Router::stageSwitchAllocation(Cycle now)
{
    int ports = numPorts();
    int vcs = params_.numVcs;

    // Stage 1: each input port nominates one of its VCs. Requests per
    // output port are accumulated as bit masks for stage 2.
    std::uint64_t port_requests[kMaxPorts] = {};
    bool any = false;
    for (int p = 0; p < ports; p++) {
        // A port with no buffered flits can nominate nothing.
        if (portOcc_[static_cast<std::size_t>(p)] == 0) {
            saCandidateVc_[static_cast<std::size_t>(p)] = kInvalid;
            continue;
        }
        int base = p * vcs;
        std::uint64_t req = 0;
        for (int v = 0; v < vcs; v++) {
            auto f = static_cast<std::size_t>(base + v);
            if (vcState_[f] != VcState::kActive ||
                buffers_.empty(base + v))
                continue;
            int q = vcOutPort_[f];
            OpticalLink *olink = outLink_[static_cast<std::size_t>(q)];
            // A dead output accepts (and discards) anything, so the
            // wormhole headed there can drain regardless of latch or
            // credit state.
            if (olink == nullptr || !olink->isFailed()) {
                if (latchFull_[static_cast<std::size_t>(q)])
                    continue;
                if (outCredits_[static_cast<std::size_t>(
                        q * vcs + vcOutVc_[f])] <= 0)
                    continue;
            }
            req |= 1ull << v;
        }
        int winner =
            req ? saInputArb_[static_cast<std::size_t>(p)].pick(req)
                : kInvalid;
        saCandidateVc_[static_cast<std::size_t>(p)] = winner;
        if (winner != kInvalid) {
            int q = vcOutPort_[static_cast<std::size_t>(base + winner)];
            port_requests[q] |= 1ull << p;
            any = true;
        }
    }
    if (!any)
        return;

    // Stage 2: each output port picks among nominating input ports.
    for (int q = 0; q < ports; q++) {
        auto qs = static_cast<std::size_t>(q);
        if (port_requests[q] == 0 || latchFull_[qs])
            continue;
        int p = saArb_[qs].pick(port_requests[q]);
        int v = saCandidateVc_[static_cast<std::size_t>(p)];
        auto &in = inputs_[static_cast<std::size_t>(p)];
        int fi = p * vcs + v;
        auto fs = static_cast<std::size_t>(fi);

        Flit flit = buffers_.pop(fi);
        bufferedFlits_--;
        portOcc_[static_cast<std::size_t>(p)]--;
        in.occupancy.update(now, portOcc_[static_cast<std::size_t>(p)]);
        vcLastActivity_[fs] = now;
        int ov = vcOutVc_[fs];
        OpticalLink *olink = outLink_[qs];
        bool dead = olink != nullptr && olink->isFailed();
        if (dead) {
            // Flits to a hard-failed link are discarded at the switch;
            // output credits are not touched (the far side will never
            // return them).
            droppedDeadPort_++;
        } else {
            flit.vc = static_cast<std::uint8_t>(ov);
            latch_[qs] = flit;
            latchFull_[qs] = 1;
            latchMask_ |= 1ull << q;
            latchCount_++;
            outCredits_[static_cast<std::size_t>(q * vcs + ov)]--;
            flitsSwitched_++;
        }

        // Return a credit for the slot we just freed — except for a
        // locally injected poison tail, which never consumed an
        // upstream credit (it was synthesized into the buffer, not
        // sent over the input link).
        if (in.upstream != nullptr && !(flit.isPoison() && inputFailed(in)))
            in.upstream->returnCredit(in.upstreamPort, v, now);

        // This input port consumed its switch slot this cycle.
        saCandidateVc_[static_cast<std::size_t>(p)] = kInvalid;

        if (flit.isTail()) {
            outAllocated_[static_cast<std::size_t>(q * vcs + ov)] = 0;
            vcOutPort_[fs] = static_cast<std::int16_t>(kInvalid);
            vcOutVc_[fs] = static_cast<std::int16_t>(kInvalid);
            activeVcCount_--;
            if (buffers_.empty(fi)) {
                vcState_[fs] = VcState::kIdle;
            } else {
                if (!buffers_.front(fi).isHead())
                    panic("Router %s: non-head after tail on in %d vc %d",
                          name_.c_str(), p, v);
                vcState_[fs] = VcState::kRouting;
                routingCount_++;
            }
        }
    }
}

void
Router::stageVcAllocation(Cycle now)
{
    (void)now;
    int ports = numPorts();
    int vcs = params_.numVcs;

    // Collect requesting input VCs (flattened index p*vcs + v) per
    // requested output port — a single walk over the flat state array.
    std::uint64_t requests[kMaxPorts] = {};
    int flats = ports * vcs;
    for (int f = 0; f < flats; f++) {
        auto fs = static_cast<std::size_t>(f);
        if (vcState_[fs] == VcState::kVcAlloc)
            requests[vcOutPort_[fs]] |= 1ull << f;
    }

    for (int q = 0; q < ports; q++) {
        if (requests[q] == 0)
            continue;
        auto qs = static_cast<std::size_t>(q);

        if (outLink_[qs] != nullptr && outLink_[qs]->isFailed()) {
            // Dead output: grant every requester immediately (VC 0,
            // unconditionally) so wormholes stuck routing to it can
            // drain into the drop path instead of waiting forever for
            // an output VC that will never free.
            for (;;) {
                int winner = vaArb_[qs].pick(requests[q]);
                if (winner < 0)
                    break;
                auto ws = static_cast<std::size_t>(winner);
                vcOutVc_[ws] = 0;
                vcState_[ws] = VcState::kActive;
                vcAllocCount_--;
                activeVcCount_++;
                requests[q] &= ~(1ull << winner);
            }
            continue;
        }

        // Hand each free output VC to one requester, rotating fairly.
        // With a VC-class topology (torus datelines) each requester
        // may only take output VCs inside the mask its route computed;
        // the unrestricted fabrics keep the mask-free fast path.
        int qbase = q * vcs;
        for (int ov = 0; ov < vcs; ov++) {
            if (outAllocated_[static_cast<std::size_t>(qbase + ov)])
                continue;
            std::uint64_t eligible = requests[q];
            if (restrictedVcs_) {
                for (std::uint64_t rem = eligible; rem != 0;
                     rem &= rem - 1) {
                    int i = std::countr_zero(rem);
                    if (!(vcOutVcMask_[static_cast<std::size_t>(i)] >> ov &
                          1))
                        eligible &= ~(1ull << i);
                }
                if (eligible == 0)
                    continue;
            }
            int winner = vaArb_[qs].pick(eligible);
            if (winner < 0)
                break;
            auto ws = static_cast<std::size_t>(winner);
            vcOutVc_[ws] = static_cast<std::int16_t>(ov);
            vcState_[ws] = VcState::kActive;
            vcAllocCount_--;
            activeVcCount_++;
            outAllocated_[static_cast<std::size_t>(qbase + ov)] = 1;
            requests[q] &= ~(1ull << winner);
        }
    }
}

std::uint64_t
Router::vcMaskForClass(int vc_class) const
{
    int vcs = params_.numVcs;
    std::uint64_t all =
        vcs >= 64 ? ~0ull : (1ull << vcs) - 1;
    if (vc_class == kAnyVcClass)
        return all;
    // Split the VC pool evenly across the topology's classes: class 0
    // gets the low half, class 1 the high half (torus datelines).
    int half = vcs / 2;
    if (vc_class == 0)
        return (1ull << half) - 1;
    return all & ~((1ull << half) - 1);
}

RouteOption
Router::selectRoute(NodeId dst)
{
    RouteOption candidates[kMaxRouteCandidates];
    int n = topo_.routeCandidates(params_.routing, routerId_, dst,
                                  candidates);
    // Route around hard failures where the routing function leaves an
    // alternative; if every productive direction is dead, keep the
    // first candidate and let the drop path reclaim the flits.
    RouteOption live[kMaxRouteCandidates];
    int m = 0;
    for (int i = 0; i < n; i++) {
        OpticalLink *link = outLink_[static_cast<std::size_t>(
            candidates[i].port.value())];
        if (link != nullptr && link->isFailed())
            continue;
        live[m++] = candidates[i];
    }
    if (m == 0) {
        live[0] = candidates[0];
        m = 1;
    }
    if (m == 1)
        return live[0];
    // Adaptive selection: prefer the productive direction with the
    // most downstream credit (least congested), ties to the first.
    RouteOption best = live[0];
    int best_credits = -1;
    for (int i = 0; i < m; i++) {
        int base = live[i].port.value() * params_.numVcs;
        int credits = 0;
        for (int v = 0; v < params_.numVcs; v++)
            credits += outCredits_[static_cast<std::size_t>(base + v)];
        if (credits > best_credits) {
            best_credits = credits;
            best = live[i];
        }
    }
    return best;
}

void
Router::stageRouteComputation(Cycle now)
{
    (void)now;
    int flats = numPorts() * params_.numVcs;
    for (int f = 0; f < flats; f++) {
        auto fs = static_cast<std::size_t>(f);
        if (vcState_[fs] != VcState::kRouting)
            continue;
        if (buffers_.empty(f) || !buffers_.front(f).isHead())
            panic("Router %s: routing state without head flit",
                  name_.c_str());
        RouteOption route = selectRoute(buffers_.front(f).dst);
        vcOutPort_[fs] = static_cast<std::int16_t>(route.port.value());
        vcOutVcMask_[fs] = vcMaskForClass(route.vcClass);
        vcState_[fs] = VcState::kVcAlloc;
        routingCount_--;
        vcAllocCount_++;
    }
}

void
Router::drainArrivals(Cycle now)
{
    for (int p = 0; p < numPorts(); p++) {
        auto deliver = [&](const Flit &flit) {
            int v = flit.vc;
            if (v < 0 || v >= params_.numVcs)
                panic("Router %s: flit with bad VC %d on input %d",
                      name_.c_str(), v, p);
            int fi = flatIdx(p, v);
            auto fs = static_cast<std::size_t>(fi);
            if (buffers_.full(fi))
                panic("Router %s: input %d vc %d overflow (credit bug)",
                      name_.c_str(), p, v);
            if (vcState_[fs] == VcState::kIdle) {
                if (!flit.isHead())
                    panic("Router %s: body flit into idle in %d vc %d",
                          name_.c_str(), p, v);
                vcState_[fs] = VcState::kRouting;
                routingCount_++;
            }
            buffers_.push(fi, flit);
            vcLastActivity_[fs] = now;
            bufferedFlits_++;
            portOcc_[static_cast<std::size_t>(p)]++;
            inputs_[static_cast<std::size_t>(p)].occupancy.update(
                now, portOcc_[static_cast<std::size_t>(p)]);
        };
        if (BoundaryChannel *bc = inBoundary_[static_cast<std::size_t>(p)]) {
            // Channeled input: everything on the ready side has an
            // arrival stamp <= now (the shuttle staged it one cycle
            // before arrival).
            while (bc->hasReadyArrival())
                deliver(bc->popReadyArrival());
        } else if (OpticalLink *l =
                       inDrainLink_[static_cast<std::size_t>(p)]) {
            l->drainArrivalsDue(now, deliver);
        }
    }
}

void
Router::reclaimOrphans(Cycle now)
{
    for (int p = 0; p < numPorts(); p++) {
        auto &in = inputs_[static_cast<std::size_t>(p)];
        if (!inputFailed(in))
            continue;
        for (int v = 0; v < params_.numVcs; v++) {
            int fi = flatIdx(p, v);
            auto fs = static_cast<std::size_t>(fi);
            // kActive with an empty buffer means mid-wormhole: the
            // head went downstream, the rest died with the link. Once
            // the timeout confirms nothing more is coming, close the
            // wormhole with a synthetic poison tail; normal switch
            // allocation forwards it and frees the allocated state at
            // every hop downstream.
            if (vcState_[fs] != VcState::kActive || !buffers_.empty(fi))
                continue;
            if (now < vcLastActivity_[fs] + orphanTimeout_)
                continue;
            Flit tail{};
            tail.flags = Flit::kTailFlag | Flit::kPoisonFlag;
            buffers_.push(fi, tail);
            vcLastActivity_[fs] = now;
            bufferedFlits_++;
            portOcc_[static_cast<std::size_t>(p)]++;
            in.occupancy.update(now,
                                portOcc_[static_cast<std::size_t>(p)]);
            poisoned_++;
        }
    }
}

void
Router::tick(Cycle now)
{
    if (!pendingCredits_.empty())
        applyCredits(now);
    if (latchCount_ > 0)
        stageSwitchTraversal(now);
    if (bufferedFlits_ > 0)
        stageSwitchAllocation(now);
    if (vcAllocCount_ > 0)
        stageVcAllocation(now);
    if (routingCount_ > 0)
        stageRouteComputation(now);
    drainArrivals(now);
    if (orphanTimeout_ != 0 && (now & 1023) == 0)
        reclaimOrphans(now);
}

Cycle
Router::nextWakeCycle(Cycle now)
{
    // Any pipeline population keeps the router in the per-cycle pass.
    // activeVcCount_ matters even with empty buffers: an open wormhole
    // may still owe flits (or a poison tail on a failed input link).
    if (bufferedFlits_ > 0 || latchCount_ > 0 || routingCount_ > 0 ||
        vcAllocCount_ > 0 || activeVcCount_ > 0 ||
        !pendingCredits_.empty())
        return now + 1;
    Cycle wake = kNeverCycle;
    for (const auto &in : inputs_) {
        // Channeled inputs contribute nothing: their link belongs to
        // the source shard (reading it here would race its walk), and
        // every delivery comes with a pre-pass wake edge instead.
        if (in.boundary != nullptr)
            continue;
        if (in.link != nullptr)
            wake = std::min(wake, in.link->nextReceiverEventCycle());
    }
    return wake;
}

} // namespace oenet
