#include "router/routing.hh"

#include "common/log.hh"

namespace oenet {

Direction
opposite(Direction dir)
{
    switch (dir) {
      case Direction::kEast:
        return Direction::kWest;
      case Direction::kWest:
        return Direction::kEast;
      case Direction::kNorth:
        return Direction::kSouth;
      case Direction::kSouth:
        return Direction::kNorth;
    }
    panic("opposite: bad direction %d", static_cast<int>(dir));
}

const char *
directionName(Direction dir)
{
    switch (dir) {
      case Direction::kEast:
        return "east";
      case Direction::kWest:
        return "west";
      case Direction::kNorth:
        return "north";
      case Direction::kSouth:
        return "south";
    }
    panic("directionName: bad direction %d", static_cast<int>(dir));
}

const char *
routingAlgoName(RoutingAlgo algo)
{
    switch (algo) {
      case RoutingAlgo::kXY:
        return "xy";
      case RoutingAlgo::kYX:
        return "yx";
      case RoutingAlgo::kWestFirst:
        return "west-first";
    }
    panic("routingAlgoName: bad algorithm");
}

} // namespace oenet
