#include "router/routing.hh"

#include <cstdlib>

#include "common/log.hh"

namespace oenet {

const char *
meshDirName(int dir)
{
    switch (dir) {
      case kDirEast:
        return "east";
      case kDirWest:
        return "west";
      case kDirNorth:
        return "north";
      case kDirSouth:
        return "south";
    }
    panic("meshDirName: bad direction %d", dir);
}

const char *
routingAlgoName(RoutingAlgo algo)
{
    switch (algo) {
      case RoutingAlgo::kXY:
        return "xy";
      case RoutingAlgo::kYX:
        return "yx";
      case RoutingAlgo::kWestFirst:
        return "west-first";
    }
    panic("routingAlgoName: bad algorithm");
}

ClusteredMesh::ClusteredMesh(int mesh_x, int mesh_y, int nodes_per_cluster)
    : meshX_(mesh_x), meshY_(mesh_y), clusterSize_(nodes_per_cluster)
{
    if (mesh_x < 1 || mesh_y < 1)
        fatal("ClusteredMesh: mesh dimensions must be >= 1 (%dx%d)",
              mesh_x, mesh_y);
    if (nodes_per_cluster < 1)
        fatal("ClusteredMesh: need at least one node per cluster");
}

int
ClusteredMesh::rackOf(NodeId node) const
{
    int rack = static_cast<int>(node) / clusterSize_;
    if (rack >= numRouters())
        panic("ClusteredMesh: node %u out of range", node);
    return rack;
}

int
ClusteredMesh::localIndexOf(NodeId node) const
{
    return static_cast<int>(node) % clusterSize_;
}

NodeId
ClusteredMesh::nodeAt(int rack, int local) const
{
    if (rack < 0 || rack >= numRouters() || local < 0 ||
        local >= clusterSize_)
        panic("ClusteredMesh: bad (rack %d, local %d)", rack, local);
    return static_cast<NodeId>(rack * clusterSize_ + local);
}

bool
ClusteredMesh::hasNeighbor(int x, int y, int dir) const
{
    switch (dir) {
      case kDirEast:
        return x + 1 < meshX_;
      case kDirWest:
        return x > 0;
      case kDirNorth:
        return y > 0;
      case kDirSouth:
        return y + 1 < meshY_;
    }
    panic("ClusteredMesh: bad direction %d", dir);
}

int
ClusteredMesh::neighborRack(int x, int y, int dir) const
{
    if (!hasNeighbor(x, y, dir))
        panic("ClusteredMesh: no %s neighbor at (%d, %d)",
              meshDirName(dir), x, y);
    switch (dir) {
      case kDirEast:
        return rackAt(x + 1, y);
      case kDirWest:
        return rackAt(x - 1, y);
      case kDirNorth:
        return rackAt(x, y - 1);
      case kDirSouth:
        return rackAt(x, y + 1);
    }
    panic("ClusteredMesh: bad direction %d", dir);
}

int
ClusteredMesh::route(int x, int y, NodeId dst) const
{
    int rack = rackOf(dst);
    int dx = rackX(rack);
    int dy = rackY(rack);
    if (dx > x)
        return dirPort(kDirEast);
    if (dx < x)
        return dirPort(kDirWest);
    if (dy < y)
        return dirPort(kDirNorth);
    if (dy > y)
        return dirPort(kDirSouth);
    return localIndexOf(dst);
}

int
ClusteredMesh::routeYx(int x, int y, NodeId dst) const
{
    int rack = rackOf(dst);
    int dx = rackX(rack);
    int dy = rackY(rack);
    if (dy < y)
        return dirPort(kDirNorth);
    if (dy > y)
        return dirPort(kDirSouth);
    if (dx > x)
        return dirPort(kDirEast);
    if (dx < x)
        return dirPort(kDirWest);
    return localIndexOf(dst);
}

int
ClusteredMesh::routeCandidates(RoutingAlgo algo, int x, int y,
                               NodeId dst, int out[2]) const
{
    switch (algo) {
      case RoutingAlgo::kXY:
        out[0] = route(x, y, dst);
        return 1;
      case RoutingAlgo::kYX:
        out[0] = routeYx(x, y, dst);
        return 1;
      case RoutingAlgo::kWestFirst:
        break;
      default:
        panic("routeCandidates: bad algorithm");
    }

    int rack = rackOf(dst);
    int dx = rackX(rack) - x;
    int dy = rackY(rack) - y;
    if (dx == 0 && dy == 0) {
        out[0] = localIndexOf(dst);
        return 1;
    }
    // West-first turn model: all westward hops must come first (no
    // turn into west is ever allowed), so a west-bound packet has a
    // single choice; afterwards east/north/south are freely adaptive.
    if (dx < 0) {
        out[0] = dirPort(kDirWest);
        return 1;
    }
    int n = 0;
    if (dx > 0)
        out[n++] = dirPort(kDirEast);
    if (dy < 0)
        out[n++] = dirPort(kDirNorth);
    else if (dy > 0)
        out[n++] = dirPort(kDirSouth);
    return n;
}

int
ClusteredMesh::hopCount(NodeId src, NodeId dst) const
{
    int rs = rackOf(src);
    int rd = rackOf(dst);
    return std::abs(rackX(rs) - rackX(rd)) +
           std::abs(rackY(rs) - rackY(rd)) + 1;
}

} // namespace oenet
