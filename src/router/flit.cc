#include "router/flit.hh"

#include "common/log.hh"

namespace oenet {

void
flitizePacket(std::vector<Flit> &out, PacketId id, NodeId src, NodeId dst,
              int len, Cycle created_at)
{
    if (len < 1)
        panic("flitizePacket: packet length must be >= 1, got %d", len);
    if (len > 0xFFFF)
        panic("flitizePacket: packet length %d exceeds flit seq field",
              len);
    for (int i = 0; i < len; i++) {
        Flit f;
        f.packet = id;
        f.src = src;
        f.dst = dst;
        f.createdAt = created_at;
        f.seq = static_cast<std::uint16_t>(i);
        f.len = static_cast<std::uint16_t>(len);
        f.flags = 0;
        if (i == 0)
            f.flags |= Flit::kHeadFlag;
        if (i == len - 1)
            f.flags |= Flit::kTailFlag;
        out.push_back(f);
    }
}

const char *
flitKindName(const Flit &flit)
{
    if (flit.isHead() && flit.isTail())
        return "head+tail";
    if (flit.isHead())
        return "head";
    if (flit.isTail())
        return "tail";
    return "body";
}

} // namespace oenet
