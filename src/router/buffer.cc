#include "router/buffer.hh"

#include "common/log.hh"

namespace oenet {

FlitFifo::FlitFifo(int capacity)
    : ring_(static_cast<std::size_t>(capacity)), capacity_(capacity)
{
    if (capacity < 1)
        panic("FlitFifo: capacity must be >= 1, got %d", capacity);
}

void
FlitFifo::push(const Flit &flit)
{
    if (full())
        panic("FlitFifo: overflow (capacity %d); credit protocol broken",
              capacity_);
    ring_[static_cast<std::size_t>((head_ + size_) % capacity_)] = flit;
    size_++;
}

Flit
FlitFifo::pop()
{
    if (empty())
        panic("FlitFifo: underflow");
    Flit flit = ring_[static_cast<std::size_t>(head_)];
    head_ = (head_ + 1) % capacity_;
    size_--;
    return flit;
}

const Flit &
FlitFifo::front() const
{
    if (empty())
        panic("FlitFifo: front of empty FIFO");
    return ring_[static_cast<std::size_t>(head_)];
}

} // namespace oenet
