#include "router/buffer.hh"

namespace oenet {

void
FlitSlab::configure(int segments, int depth)
{
    if (segments < 1)
        panic("FlitSlab: need at least one segment, got %d", segments);
    if (depth < 1)
        panic("FlitSlab: segment capacity must be >= 1, got %d", depth);
    depth_ = depth;
    slab_.assign(static_cast<std::size_t>(segments) *
                     static_cast<std::size_t>(depth),
                 Flit{});
    head_.assign(static_cast<std::size_t>(segments), 0);
    size_.assign(static_cast<std::size_t>(segments), 0);
}

} // namespace oenet
