/**
 * @file
 * Topology addressing and routing for the clustered 2-D mesh
 * (Section 3.1, Fig. 3(a)).
 *
 * The system is a meshX x meshY mesh of cluster routers; each router
 * serves C processing nodes (C = 8 boards per rack). Node IDs are dense:
 * node n lives in rack n / C at local index n % C. Router ports are
 * numbered: 0..C-1 local injection/ejection, then East, West, North,
 * South (ports 8-11 in the reference configuration).
 *
 * Routing is deterministic dimension-order (XY): correct X first, then
 * Y, then eject at the local port — deadlock-free on the mesh without
 * VC restrictions.
 */

#ifndef OENET_ROUTER_ROUTING_HH
#define OENET_ROUTER_ROUTING_HH

#include "common/types.hh"

namespace oenet {

/** Direction port offsets beyond the local ports. */
enum MeshDir : int
{
    kDirEast = 0,
    kDirWest = 1,
    kDirNorth = 2,
    kDirSouth = 3,
    kNumDirs = 4,
};

const char *meshDirName(int dir);

/** Routing algorithm for the inter-rack mesh. */
enum class RoutingAlgo
{
    kXY,        ///< dimension order, X first (paper default)
    kYX,        ///< dimension order, Y first
    kWestFirst, ///< turn-model partially adaptive (Glass & Ni):
                ///< west hops, if any, are taken first; all other
                ///< productive directions may then be chosen freely
};

const char *routingAlgoName(RoutingAlgo algo);

/** Addressing + XY routing for a clustered mesh. */
class ClusteredMesh
{
  public:
    ClusteredMesh(int mesh_x, int mesh_y, int nodes_per_cluster);

    int meshX() const { return meshX_; }
    int meshY() const { return meshY_; }
    int nodesPerCluster() const { return clusterSize_; }
    int numRouters() const { return meshX_ * meshY_; }
    int numNodes() const { return numRouters() * clusterSize_; }
    int portsPerRouter() const { return clusterSize_ + kNumDirs; }

    int rackOf(NodeId node) const;
    int localIndexOf(NodeId node) const;
    int rackX(int rack) const { return rack % meshX_; }
    int rackY(int rack) const { return rack / meshX_; }
    int rackAt(int x, int y) const { return y * meshX_ + x; }
    NodeId nodeAt(int rack, int local) const;

    /** Port index for mesh direction @p dir (kDirEast etc.). */
    int dirPort(int dir) const { return clusterSize_ + dir; }

    /** True if the router at (x, y) has a neighbor in direction. */
    bool hasNeighbor(int x, int y, int dir) const;

    /** Rack index of the neighbor in @p dir. @pre hasNeighbor. */
    int neighborRack(int x, int y, int dir) const;

    /**
     * XY route computation: output port at router (x, y) for a packet
     * destined to @p dst. Local ejection ports win once the packet is
     * in its destination rack.
     */
    int route(int x, int y, NodeId dst) const;

    /** YX route computation (Y corrected first). */
    int routeYx(int x, int y, NodeId dst) const;

    /**
     * Candidate output ports at (x, y) for @p dst under @p algo,
     * written into @p out (size >= 2). Deterministic algorithms yield
     * one candidate; west-first yields up to two productive
     * directions once any westward hops are done.
     * @return the number of candidates (>= 1).
     */
    int routeCandidates(RoutingAlgo algo, int x, int y, NodeId dst,
                        int out[2]) const;

    /** Minimal hop count (#routers visited) between two nodes. */
    int hopCount(NodeId src, NodeId dst) const;

  private:
    int meshX_;
    int meshY_;
    int clusterSize_;
};

} // namespace oenet

#endif // OENET_ROUTER_ROUTING_HH
