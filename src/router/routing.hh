/**
 * @file
 * Typed building blocks of topology addressing and routing: mesh
 * directions, router port identifiers, and the routing-algorithm
 * selector.
 *
 * Concrete fabrics (parameterized mesh, torus, concentrated mesh,
 * fat-tree) live behind the Topology abstraction in
 * network/topology.hh; this header only defines the vocabulary they
 * share with the router. Router ports are numbered per topology; in the
 * mesh family ports 0..C-1 are the local injection/ejection ports of
 * the C processing nodes and ports C..C+3 are East, West, North, South
 * (ports 8-11 in the paper's reference configuration).
 */

#ifndef OENET_ROUTER_ROUTING_HH
#define OENET_ROUTER_ROUTING_HH

#include "common/types.hh"

namespace oenet {

/**
 * Mesh-family compass direction. The underlying values index the
 * direction ports beyond the local ports (port = cluster + value), in
 * the fixed E, W, N, S order the link enumeration relies on.
 */
enum class Direction : int
{
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
};

/** Number of mesh-family directions. */
inline constexpr int kNumDirs = 4;

/** Opposite mesh direction (east <-> west, north <-> south). */
Direction opposite(Direction dir);

const char *directionName(Direction dir);

/** All directions in enumeration order (E, W, N, S). */
inline constexpr Direction kAllDirs[kNumDirs] = {
    Direction::kEast, Direction::kWest, Direction::kNorth,
    Direction::kSouth};

/**
 * Typed router-port index. Replaces the raw-int port arithmetic that
 * used to leak through LinkSpec and the routing interfaces: a
 * default-constructed PortId is invalid, and the numeric value is only
 * reachable through value(), so ports cannot be silently confused with
 * router ids, node ids, or direction ordinals.
 */
class PortId
{
  public:
    constexpr PortId() = default;
    constexpr explicit PortId(int value) : value_(value) {}

    constexpr int value() const { return value_; }
    constexpr bool valid() const { return value_ >= 0; }

    friend constexpr bool operator==(PortId a, PortId b)
    {
        return a.value_ == b.value_;
    }
    friend constexpr bool operator!=(PortId a, PortId b)
    {
        return !(a == b);
    }
    friend constexpr bool operator<(PortId a, PortId b)
    {
        return a.value_ < b.value_;
    }

  private:
    int value_ = kInvalid;
};

/** Explicitly invalid port (same as a default-constructed PortId). */
inline constexpr PortId kInvalidPort{};

/** Routing algorithm for the inter-router fabric. */
enum class RoutingAlgo
{
    kXY,        ///< dimension order, X first (paper default)
    kYX,        ///< dimension order, Y first
    kWestFirst, ///< turn-model partially adaptive (Glass & Ni):
                ///< west hops, if any, are taken first; all other
                ///< productive directions may then be chosen freely.
                ///< Mesh family only (invalid on torus/fat-tree).
};

const char *routingAlgoName(RoutingAlgo algo);

} // namespace oenet

#endif // OENET_ROUTER_ROUTING_HH
