#include "common/log.hh"
#include "network/topology.hh"

namespace oenet {

TorusTopology::TorusTopology(int mesh_x, int mesh_y,
                             int nodes_per_cluster)
    : MeshTopology(mesh_x, mesh_y, nodes_per_cluster)
{
    if (mesh_x < 2 || mesh_y < 2)
        fatal("TorusTopology: rings need >= 2 routers per dimension "
              "(%dx%d)", mesh_x, mesh_y);
}

bool
TorusTopology::hasNeighbor(int x, int y, Direction dir) const
{
    (void)x;
    (void)y;
    (void)dir;
    return true; // wrap links close every ring
}

int
TorusTopology::neighborRouter(int x, int y, Direction dir) const
{
    switch (dir) {
      case Direction::kEast:
        return routerAt((x + 1) % meshX_, y);
      case Direction::kWest:
        return routerAt((x + meshX_ - 1) % meshX_, y);
      case Direction::kNorth:
        return routerAt(x, (y + meshY_ - 1) % meshY_);
      case Direction::kSouth:
        return routerAt(x, (y + 1) % meshY_);
    }
    panic("TorusTopology: bad direction %d", static_cast<int>(dir));
}

void
TorusTopology::ringStep(int from, int to, int size, int &step,
                        int &vc_class)
{
    int fwd = (to - from + size) % size;
    // Minimal routing; ties (even ring, half-way destination) go
    // forward so the choice stays deterministic.
    step = (fwd <= size - fwd) ? 1 : -1;
    // Stateless dateline: class 0 while the wrap edge of this ring
    // still lies ahead, class 1 once past it (or never crossing).
    // Forward travel crosses the wrap (size-1 -> 0) iff from > to;
    // backward travel crosses (0 -> size-1) iff from < to. The class
    // can only flip 0 -> 1 along a path, so neither class's channel
    // dependency graph closes a cycle around the ring.
    bool crosses = (step > 0) ? (from > to) : (from < to);
    vc_class = crosses ? 0 : 1;
}

int
TorusTopology::routeCandidates(RoutingAlgo algo, int router,
                               NodeId dst,
                               RouteOption out[kMaxRouteCandidates])
    const
{
    int x = routerX(router);
    int y = routerY(router);
    int rack = routerOf(dst);
    int dx = routerX(rack);
    int dy = routerY(rack);

    if (algo == RoutingAlgo::kWestFirst)
        panic("TorusTopology: west-first is a mesh-only turn model "
              "(torus needs dateline VC classes; use xy or yx)");

    if (x == dx && y == dy) {
        out[0] = {attachPort(dst), kAnyVcClass};
        return 1;
    }

    // Dimension-order minimal ring routing. YX swaps the dimension
    // priority; within a ring both use the same dateline classes.
    bool xFirst = (algo != RoutingAlgo::kYX);
    int step, cls;
    if (x != dx && (xFirst || y == dy)) {
        ringStep(x, dx, meshX_, step, cls);
        Direction d = step > 0 ? Direction::kEast : Direction::kWest;
        out[0] = {dirPort(d), cls};
        return 1;
    }
    ringStep(y, dy, meshY_, step, cls);
    // South is +y, north is -y in the mesh coordinate system.
    Direction d = step > 0 ? Direction::kSouth : Direction::kNorth;
    out[0] = {dirPort(d), cls};
    return 1;
}

int
TorusTopology::hopCount(NodeId src, NodeId dst) const
{
    int rs = routerOf(src);
    int rd = routerOf(dst);
    int fx = (routerX(rd) - routerX(rs) + meshX_) % meshX_;
    int fy = (routerY(rd) - routerY(rs) + meshY_) % meshY_;
    int hx = fx <= meshX_ - fx ? fx : meshX_ - fx;
    int hy = fy <= meshY_ - fy ? fy : meshY_ - fy;
    return hx + hy + 1;
}

} // namespace oenet
