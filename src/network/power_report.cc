#include "network/power_report.hh"

#include <cstdio>

namespace oenet {

PowerReport
makePowerReport(Network &net, Cycle now)
{
    PowerReport report;
    report.at = now;
    int max_level = net.levels().maxLevel();
    for (std::size_t k = 0; k < report.byKind.size(); k++) {
        report.byKind[k].kind = static_cast<LinkKind>(k);
        report.byKind[k].levelHistogram.assign(
            static_cast<std::size_t>(max_level + 1), 0);
    }

    for (std::size_t i = 0; i < net.numLinks(); i++) {
        OpticalLink &link = net.link(i);
        auto &kr =
            report.byKind[static_cast<std::size_t>(link.kind())];
        double p = link.powerMw(now);
        kr.count++;
        kr.powerMw += p;
        kr.baselineMw += link.maxPowerMw();
        kr.meanLevel += link.currentLevel();
        kr.totalFlits += link.totalFlits();
        kr.levelHistogram[static_cast<std::size_t>(
            link.currentLevel())]++;
        report.totalPowerMw += p;
        report.baselinePowerMw += link.maxPowerMw();
    }
    for (auto &kr : report.byKind) {
        if (kr.count > 0) {
            kr.normalizedPower = kr.powerMw / kr.baselineMw;
            kr.meanLevel /= kr.count;
        }
    }
    if (report.baselinePowerMw > 0.0)
        report.normalizedPower =
            report.totalPowerMw / report.baselinePowerMw;
    return report;
}

std::string
PowerReport::toString() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "power @ cycle %llu: %.1f W of %.1f W baseline "
                  "(%.3f)\n",
                  static_cast<unsigned long long>(at),
                  totalPowerMw / 1000.0, baselinePowerMw / 1000.0,
                  normalizedPower);
    out += buf;
    for (const auto &kr : byKind) {
        if (kr.count == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "  %-12s %4d links  %8.1f mW (%.3f of max)  "
                      "mean level %.2f  levels [",
                      linkKindName(kr.kind), kr.count, kr.powerMw,
                      kr.normalizedPower, kr.meanLevel);
        out += buf;
        for (std::size_t i = 0; i < kr.levelHistogram.size(); i++) {
            std::snprintf(buf, sizeof(buf), "%s%d", i ? " " : "",
                          kr.levelHistogram[i]);
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

std::vector<LinkRow>
collectLinkRows(Network &net, Cycle now)
{
    std::vector<LinkRow> rows;
    rows.reserve(net.numLinks());
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        OpticalLink &link = net.link(i);
        rows.push_back(LinkRow{link.name(), link.kind(),
                               link.currentLevel(),
                               link.currentBitRateGbps(),
                               link.powerMw(now), link.totalFlits(),
                               link.numTransitions()});
    }
    return rows;
}

} // namespace oenet
