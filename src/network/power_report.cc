#include "network/power_report.hh"

#include <cstdio>

namespace oenet {

namespace {

void
initKinds(PowerReport &report, int max_level)
{
    for (std::size_t k = 0; k < report.byKind.size(); k++) {
        report.byKind[k].kind = static_cast<LinkKind>(k);
        report.byKind[k].levelHistogram.assign(
            static_cast<std::size_t>(max_level + 1), 0);
    }
}

void
finishReport(PowerReport &report)
{
    for (auto &kr : report.byKind) {
        if (kr.count > 0) {
            kr.normalizedPower = kr.powerMw / kr.baselineMw;
            kr.meanLevel /= kr.count;
        }
    }
    if (report.baselinePowerMw > 0.0)
        report.normalizedPower =
            report.totalPowerMw / report.baselinePowerMw;
}

} // namespace

PowerReport
makePowerReport(Network &net, Cycle now)
{
    if (!net.ledgerActive())
        return makePowerReportDirect(net, now);

    // SoA fast path: one advance pass over the (usually tiny) unstable
    // set, then flat scans in link-id order — the same values folded
    // in the same order as the direct walk, hence bitwise-identical
    // sums.
    net.advancePendingPower(now);
    const LinkPowerLedger &led = net.powerLedger();

    PowerReport report;
    report.at = now;
    initKinds(report, net.levels().maxLevel());

    int n = led.numLinks();
    for (int i = 0; i < n; i++) {
        auto &kr = report.byKind[static_cast<std::size_t>(
            led.kindIndex(i))];
        double p = led.dynPowerMw(i);
        int level = led.level(i);
        kr.count++;
        kr.powerMw += p;
        kr.baselineMw += led.baselineMw(i);
        kr.meanLevel += level;
        kr.totalFlits += led.totalFlits(i);
        kr.levelHistogram[static_cast<std::size_t>(level)]++;
        report.totalPowerMw += p;
        report.baselinePowerMw += led.baselineMw(i);
    }
    if (led.thermalEnabled()) {
        report.thermal = true;
        for (int i = 0; i < n; i++) {
            report.byKind[static_cast<std::size_t>(led.kindIndex(i))]
                .leakageMw += led.leakPowerMw(i);
        }
        report.leakagePowerMw = led.totalLeakMw();
        report.totalPowerMw += report.leakagePowerMw;
        report.maxTempC = led.maxTempC();
        led.attributeVcEnergy(now, report.vcEnergyMwCycles);
    }
    finishReport(report);
    return report;
}

PowerReport
makePowerReportDirect(Network &net, Cycle now)
{
    PowerReport report;
    report.at = now;
    initKinds(report, net.levels().maxLevel());

    for (std::size_t i = 0; i < net.numLinks(); i++) {
        OpticalLink &link = net.link(i);
        auto &kr =
            report.byKind[static_cast<std::size_t>(link.kind())];
        double p = link.powerMw(now);
        kr.count++;
        kr.powerMw += p;
        kr.baselineMw += link.maxPowerMw();
        kr.meanLevel += link.currentLevel();
        kr.totalFlits += link.totalFlits();
        kr.levelHistogram[static_cast<std::size_t>(
            link.currentLevel())]++;
        report.totalPowerMw += p;
        report.baselinePowerMw += link.maxPowerMw();
    }
    finishReport(report);
    return report;
}

std::string
PowerReport::toString() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "power @ cycle %llu: %.1f W of %.1f W baseline "
                  "(%.3f)\n",
                  static_cast<unsigned long long>(at),
                  totalPowerMw / 1000.0, baselinePowerMw / 1000.0,
                  normalizedPower);
    out += buf;
    for (const auto &kr : byKind) {
        if (kr.count == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "  %-12s %4d links  %8.1f mW (%.3f of max)  "
                      "mean level %.2f  levels [",
                      linkKindName(kr.kind), kr.count, kr.powerMw,
                      kr.normalizedPower, kr.meanLevel);
        out += buf;
        for (std::size_t i = 0; i < kr.levelHistogram.size(); i++) {
            std::snprintf(buf, sizeof(buf), "%s%d", i ? " " : "",
                          kr.levelHistogram[i]);
            out += buf;
        }
        out += "]\n";
    }
    if (thermal) {
        std::snprintf(buf, sizeof(buf),
                      "  leakage %.1f mW, hottest junction %.1f C\n",
                      leakagePowerMw, maxTempC);
        out += buf;
    }
    return out;
}

std::vector<LinkRow>
collectLinkRows(Network &net, Cycle now)
{
    std::vector<LinkRow> rows;
    rows.reserve(net.numLinks());
    bool thermal =
        net.ledgerActive() && net.powerLedger().thermalEnabled();
    const LinkPowerLedger &led = net.powerLedger();
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        OpticalLink &link = net.link(i);
        LinkRow row;
        row.name = link.name();
        row.kind = link.kind();
        row.level = link.currentLevel();
        row.brGbps = link.currentBitRateGbps();
        row.powerMw = link.powerMw(now);
        row.totalFlits = link.totalFlits();
        row.transitions = link.numTransitions();
        if (thermal) {
            int id = static_cast<int>(i);
            row.leakageMw = led.leakPowerMw(id);
            row.tempC = led.tempC(id);
            row.vcFlits.reserve(
                static_cast<std::size_t>(led.numVcs()));
            for (int vc = 0; vc < led.numVcs(); vc++)
                row.vcFlits.push_back(led.vcFlits(id, vc));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace oenet
