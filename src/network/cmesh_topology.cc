#include "common/log.hh"
#include "network/topology.hh"

namespace oenet {

namespace {

int
blockSideOf(int concentration)
{
    for (int s = 1; s * s <= concentration; s++)
        if (s * s == concentration)
            return s;
    fatal("CMeshTopology: concentration must be a perfect square, "
          "got %d", concentration);
}

} // namespace

CMeshTopology::CMeshTopology(int mesh_x, int mesh_y, int concentration)
    : MeshTopology(mesh_x, mesh_y, concentration),
      side_(blockSideOf(concentration))
{
}

int
CMeshTopology::routerOf(NodeId node) const
{
    int n = static_cast<int>(node);
    if (n >= numNodes())
        panic("CMeshTopology: node %u out of range", node);
    int w = tileGridWidth();
    int tx = n % w;
    int ty = n / w;
    return routerAt(tx / side_, ty / side_);
}

PortId
CMeshTopology::attachPort(NodeId node) const
{
    int n = static_cast<int>(node);
    int w = tileGridWidth();
    int tx = n % w;
    int ty = n / w;
    return PortId((ty % side_) * side_ + tx % side_);
}

NodeId
CMeshTopology::nodeAt(int router, int local) const
{
    if (router < 0 || router >= numRouters() || local < 0 ||
        local >= nodesPerCluster())
        panic("CMeshTopology: bad (router %d, local %d)", router,
              local);
    int tx = routerX(router) * side_ + local % side_;
    int ty = routerY(router) * side_ + local / side_;
    return static_cast<NodeId>(ty * tileGridWidth() + tx);
}

} // namespace oenet
