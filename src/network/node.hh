/**
 * @file
 * Processing node model: one board in a rack (Fig. 4(a)).
 *
 * A node owns the transmitter of its injection link (node -> router) and
 * the receiver of its ejection link (router -> node). Packets queue in
 * an unbounded source FIFO (so injection backpressure shows up as source
 * queueing delay, which the paper's latency metric includes), are
 * flitized, and trickle onto the injection link under credit flow
 * control — one packet at a time, wormhole-style, on a round-robin
 * choice of virtual channel. Ejected flits are consumed immediately;
 * the tail flit of each packet reports the packet's latency to the
 * attached PacketSink.
 */

#ifndef OENET_NETWORK_NODE_HH
#define OENET_NETWORK_NODE_HH

#include <string>
#include <vector>

#include "common/ring_buffer.hh"
#include "link/endpoints.hh"
#include "link/link.hh"
#include "sim/kernel.hh"

namespace oenet {

/** Observer of packet ejections (latency accounting lives in core/). */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;

    /** Called when the tail flit of a packet leaves the network. */
    virtual void packetEjected(const Flit &tail, Cycle now) = 0;
};

class Node final : public Ticking,
                   public CreditSink,
                   public OccupancyProvider
{
  public:
    struct Params
    {
        int numVcs = 2;
        int vcDepth = 8; ///< per-VC credit pool at the router input
    };

    Node(NodeId id, const Params &params);

    /** Attach the link this node transmits on. */
    void connectInjection(OpticalLink *link);

    /** Attach the link this node receives on, plus the router (credit
     *  sink) and the router's output-port index for that link. */
    void connectEjection(OpticalLink *link, CreditSink *upstream,
                         int upstream_port);

    void setPacketSink(PacketSink *sink) { sink_ = sink; }

    /** Queue a packet of @p len flits for @p dst, created at @p now. */
    void enqueuePacket(PacketId id, NodeId dst, int len, Cycle now);

    void tick(Cycle now) override;

    /**
     * Quiescence (idle elision): a node with an empty source queue and
     * no pending credits has a no-op tick; it parks until the ejection
     * link's next event. Wake edges: enqueuePacket, a returned
     * injection credit, and a flit accepted onto the ejection link.
     */
    Cycle nextWakeCycle(Cycle now) override;

    // CreditSink: the router returns injection-link credits to us.
    void returnCredit(int port, int vc, Cycle now) override;

    // OccupancyProvider for the ejection buffer. The node drains
    // arrivals immediately, so occupancy is identically zero; ejection
    // links therefore always look uncongested to the policy.
    double occupancyIntegral(int port, Cycle now) const override;
    int bufferCapacity(int port) const override;

    NodeId id() const { return id_; }

    /** Flits waiting in the source queue (injection backlog). */
    std::size_t sourceQueueFlits() const { return sourceQueue_.size(); }

    std::uint64_t packetsEnqueued() const { return packetsEnqueued_; }
    std::uint64_t packetsEjected() const { return packetsEjected_; }
    std::uint64_t flitsInjected() const { return flitsInjected_; }
    std::uint64_t flitsEjected() const { return flitsEjected_; }

    /** Synthetic poison tails consumed (wormholes killed upstream by a
     *  hard link failure; not delivered data). */
    std::uint64_t poisonTails() const { return poisonTails_; }

    /** Injection credits currently held for @p vc. At quiescence on a
     *  fault-free fabric this must equal injectionVcCapacity()
     *  (conservation audit). */
    int injectionCredits(int vc) const
    {
        return credits_.at(static_cast<std::size_t>(vc));
    }

    /** Per-VC credit pool backing the injection link. */
    int injectionVcCapacity() const { return params_.vcDepth; }

    int numVcs() const { return params_.numVcs; }

    /** Returned credits not yet applied (empty at quiescence). */
    std::size_t pendingCreditCount() const
    {
        return pendingCredits_.size();
    }

  private:
    struct PendingCredit
    {
        int vc;
        Cycle effective;
    };

    void drainEjection(Cycle now);
    void inject(Cycle now);
    void applyCredits(Cycle now);
    int pickFreeVc();

    NodeId id_;
    Params params_;
    std::string name_;

    OpticalLink *injLink_ = nullptr;
    OpticalLink *ejLink_ = nullptr;
    CreditSink *ejUpstream_ = nullptr;
    int ejUpstreamPort_ = kInvalid;
    PacketSink *sink_ = nullptr;

    RingBuffer<Flit> sourceQueue_;
    std::vector<Flit> flitizeScratch_; ///< reused by enqueuePacket
    std::vector<int> credits_;
    std::vector<PendingCredit> pendingCredits_;
    int currentVc_ = kInvalid; ///< VC of the packet being injected
    int nextVcRr_ = 0;

    std::uint64_t packetsEnqueued_ = 0;
    std::uint64_t packetsEjected_ = 0;
    std::uint64_t flitsInjected_ = 0;
    std::uint64_t flitsEjected_ = 0;
    std::uint64_t poisonTails_ = 0;
};

} // namespace oenet

#endif // OENET_NETWORK_NODE_HH
