#include "common/log.hh"
#include "network/topology.hh"

namespace oenet {

FatTreeTopology::FatTreeTopology(int arity)
    : arity_(arity), half_(arity / 2)
{
    if (arity < 2 || arity % 2 != 0)
        fatal("FatTreeTopology: arity must be even and >= 2, got %d",
              arity);
}

int
FatTreeTopology::podOf(int router) const
{
    if (isCore(router))
        panic("FatTreeTopology: core switch %d belongs to no pod",
              router);
    return (router % numEdge()) / half_;
}

int
FatTreeTopology::routerOf(NodeId node) const
{
    int n = static_cast<int>(node);
    if (n >= numNodes())
        panic("FatTreeTopology: node %u out of range", node);
    return n / half_; // edge switches come first in the index space
}

PortId
FatTreeTopology::attachPort(NodeId node) const
{
    return PortId(static_cast<int>(node) % half_);
}

NodeId
FatTreeTopology::nodeAt(int router, int local) const
{
    if (!isEdge(router) || local < 0 || local >= half_)
        panic("FatTreeTopology: bad (router %d, local %d) — only "
              "edge switches host nodes on down ports 0..k/2-1",
              router, local);
    return static_cast<NodeId>(router * half_ + local);
}

void
FatTreeTopology::appendRouterLinks(std::vector<LinkSpec> &out) const
{
    // By source router, then by source port; both directions of every
    // cable appear as independent unidirectional links, so the order
    // is fully determined by (router, port) and therefore stable.
    auto push = [&](int src, int sp, int dst, int dp) {
        LinkSpec s;
        s.kind = LinkKind::kInterRouter;
        s.srcRouter = src;
        s.srcPort = PortId(sp);
        s.dstRouter = dst;
        s.dstPort = PortId(dp);
        s.name = "rt.r" + std::to_string(src) + ".p" +
                 std::to_string(sp);
        out.push_back(s);
    };

    for (int r = 0; r < numRouters(); r++) {
        if (isEdge(r)) {
            // Up ports k/2..k-1: edge (pod p, pos i) port k/2+j
            // reaches agg (pod p, pos j) at its down port i.
            int p = podOf(r);
            int i = r % half_;
            for (int j = 0; j < half_; j++)
                push(r, half_ + j, numEdge() + p * half_ + j, i);
        } else if (isAgg(r)) {
            int p = podOf(r);
            int j = (r - numEdge()) % half_;
            // Down ports 0..k/2-1 to the pod's edge switches.
            for (int i = 0; i < half_; i++)
                push(r, i, p * half_ + i, half_ + j);
            // Up ports: agg pos j, port k/2+m reaches core (j, m) at
            // its down port p (core port p always faces pod p).
            for (int m = 0; m < half_; m++)
                push(r, half_ + m,
                     numEdge() + numAgg() + j * half_ + m, p);
        } else {
            // Core (j, m): port p down to pod p's agg at position j.
            int idx = r - numEdge() - numAgg();
            int j = idx / half_;
            for (int p = 0; p < arity_; p++)
                push(r, p, numEdge() + p * half_ + j, half_ + idx % half_);
        }
    }
}

int
FatTreeTopology::routeCandidates(RoutingAlgo algo, int router,
                                 NodeId dst,
                                 RouteOption out[kMaxRouteCandidates])
    const
{
    // Deterministic up/down routing: climb toward a common ancestor
    // picked by a destination hash (spreads load across the k/2 up
    // ports), then descend. Down-links never feed up-links, so the
    // channel dependency graph is acyclic with any VC count; the algo
    // knob is ignored.
    (void)algo;
    int d = static_cast<int>(dst);
    int dstEdge = d / half_;
    int dstPod = dstEdge / half_;

    if (isEdge(router)) {
        if (router == dstEdge) {
            out[0] = {attachPort(dst), kAnyVcClass};
            return 1;
        }
        out[0] = {PortId(half_ + d % half_), kAnyVcClass};
        return 1;
    }
    if (isAgg(router)) {
        if (podOf(router) == dstPod) {
            out[0] = {PortId(dstEdge % half_), kAnyVcClass};
            return 1;
        }
        out[0] = {PortId(half_ + (d / half_) % half_), kAnyVcClass};
        return 1;
    }
    out[0] = {PortId(dstPod), kAnyVcClass};
    return 1;
}

int
FatTreeTopology::hopCount(NodeId src, NodeId dst) const
{
    int se = static_cast<int>(src) / half_;
    int de = static_cast<int>(dst) / half_;
    if (se == de)
        return 1; // same edge switch
    if (se / half_ == de / half_)
        return 3; // same pod: edge - agg - edge
    return 5;     // edge - agg - core - agg - edge
}

} // namespace oenet
