/**
 * @file
 * The assembled opto-electronic networked system: routers, nodes, and
 * the full complement of power-aware optical links wiring them
 * together, on whatever fabric the Topology parameters select (the
 * paper's system is the default 8x8 mesh with 8 nodes per rack).
 *
 * The Network owns the topology, routers, nodes, and links; registers
 * the ticking components with the Kernel; and aggregates power/energy
 * across all links. It consumes only the abstract Topology interface —
 * fabric-specific geometry never leaks past construction. Policy
 * controllers attach from outside (see policy/) — a Network with no
 * controllers is exactly the non-power-aware baseline, every link
 * pinned at the maximum bit rate.
 */

#ifndef OENET_NETWORK_NETWORK_HH
#define OENET_NETWORK_NETWORK_HH

#include <memory>
#include <vector>

#include "network/boundary.hh"
#include "network/node.hh"
#include "network/topology.hh"
#include "phy/power_ledger.hh"
#include "router/router.hh"
#include "trace/trace.hh"

namespace oenet {

class FaultInjector;

class Network
{
  public:
    struct Params
    {
        TopologyParams topo{};
        Router::Params router{};
        OpticalLink::Params link{};
        BitrateLevelTable levels =
            BitrateLevelTable::linear(5.0, 10.0, 6);
        /** Shard domains for the sharded kernel (1 = no worker
         *  threads, same phase structure). Output is byte-identical
         *  at every value; see docs/DETERMINISM.md. */
        int shards = 1;
        /** Zero-copy direct channel mode on same-shard boundary
         *  edges; off forces the generic cross-shard machinery
         *  everywhere (bit-identical output, verification only). */
        bool directBoundary = true;
        /** Leakage + thermal model (phy/thermal.hh); disabled by
         *  default, which keeps every output byte-identical to the
         *  leakage-free era. */
        ThermalParams thermal{};
    };

    Network(Kernel &kernel, const Params &params);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    const Topology &topology() const { return *topo_; }
    int numRouters() const { return topo_->numRouters(); }
    int numNodes() const { return topo_->numNodes(); }
    std::size_t numLinks() const { return links_.size(); }

    Router &router(int i) { return *routers_.at(static_cast<std::size_t>(i)); }
    Node &node(NodeId n) { return *nodes_.at(n); }
    OpticalLink &link(std::size_t i) { return *links_.at(i); }
    const LinkSpec &linkSpec(std::size_t i) const { return specs_.at(i); }

    /** The OccupancyProvider + input port at the far end of link @p i,
     *  i.e. where the policy reads B_u for that link. */
    std::pair<const OccupancyProvider *, int>
    downstreamOf(std::size_t i) const;

    // ------------------------------------------------------------------
    // Traffic entry
    // ------------------------------------------------------------------

    /** Create a packet at @p src destined to @p dst with @p len flits.
     *  Returns its PacketId. */
    PacketId injectPacket(NodeId src, NodeId dst, int len, Cycle now);

    /** Observer called on every packet ejection. */
    void setPacketSink(PacketSink *sink);

    /** Attach @p sink to every link (null detaches). Trace ids are the
     *  link indices, which are deterministic (enumeration order). */
    void setTraceSink(TraceSink *sink);

    /** Link identity table for TraceSink::beginRun. */
    std::vector<TraceLinkInfo> traceLinkTable() const;

    /**
     * Attach the system's fault injector to every link (per-link
     * stream index = link index, same as the trace id) and arm the
     * routers' stranded-wormhole reclaim. Null detaches.
     */
    void setFaultInjector(FaultInjector *faults);

    /** Restart every link's cumulative statistics at @p now (see
     *  OpticalLink::resetStats). Packet/flit counters are unaffected. */
    void resetStats(Cycle now);

    // ------------------------------------------------------------------
    // Aggregates
    // ------------------------------------------------------------------

    /** Instantaneous link power (dynamic + leakage when the thermal
     *  model is on), mW, summed over all links. Served from the SoA
     *  ledger's flat scan when active; bitwise identical to the
     *  direct per-link walk. */
    double totalPowerMw(Cycle now);

    /** Integral of total link power in mW-cycles since t=0 (dynamic +
     *  leakage when the thermal model is on). */
    double totalPowerIntegralMwCycles(Cycle now);

    /** The pre-ledger per-link walks, kept as the accounting oracle:
     *  dynamic power only, one lazy advance per link. The committed
     *  microbench compares these against the ledger scan; tests assert
     *  bitwise equality with the fast path. */
    double totalPowerMwDirect(Cycle now);
    double totalPowerIntegralMwCyclesDirect(Cycle now);

    /** Leakage aggregates (exactly 0 with the thermal model off). */
    double totalLeakagePowerMw() const { return ledger_.totalLeakMw(); }
    double totalLeakageIntegralMwCycles(Cycle now) const
    {
        return ledger_.totalLeakIntegralMwCycles(now);
    }

    /** The system power ledger (valid whenever ledgerActive()). */
    LinkPowerLedger &powerLedger() { return ledger_; }
    const LinkPowerLedger &powerLedger() const { return ledger_; }

    /** False once a fault injector detached the ledger mirror; readers
     *  must then fall back to the direct per-link walks. */
    bool ledgerActive() const { return ledgerActive_; }

    /**
     * Advance every mid-transition link to @p now so the ledger
     * columns are current before a flat scan (stable and gated-off
     * links cannot have changed since their last touch). Driving
     * thread only, between phases.
     */
    void advancePendingPower(Cycle now);

    /** Power of the same system with every link at max rate, mW. */
    double baselinePowerMw() const { return baselinePowerMw_; }

    std::uint64_t packetsInjected() const { return packetsInjected_; }
    std::uint64_t packetsEjected() const;
    std::uint64_t flitsInjected() const;
    std::uint64_t flitsEjected() const;

    /** Flits anywhere in flight: source queues, buffers, links. */
    std::uint64_t flitsInSystem() const;

    /** Flits still waiting in source queues (subset of
     *  flitsInSystem; they have not entered the fabric yet). */
    std::uint64_t sourceQueuedFlits() const;

    /** Synthetic poison tails retired at nodes (counterpart of
     *  poisonedWormholes, which counts their creation). */
    std::uint64_t poisonTailsRetired() const;

    // Fault/resilience aggregates (all zero when faults are off).

    /** Links that have hard-failed so far. */
    int failedLinks() const;

    /** Corruption draws that fired (CRC failures), all links. */
    std::uint64_t flitsCorrupted() const;

    /** Link-layer retransmissions, all links. */
    std::uint64_t flitRetries() const;

    /** CDR loss-of-lock outages, all links. */
    std::uint64_t lockLossEvents() const;

    /** In-flight flits lost to hard failures, all links. */
    std::uint64_t flitsDroppedOnFail() const;

    /** Same, but immune to resetStats (whole-run accounting; the
     *  conservation audit balances lifetime counters). */
    std::uint64_t flitsDroppedOnFailLifetime() const;

    /** Flits discarded at dead router outputs, all routers. */
    std::uint64_t flitsDroppedDeadPort() const;

    /** Stranded wormholes closed with poison tails, all routers. */
    std::uint64_t poisonedWormholes() const;

    const BitrateLevelTable &levels() const { return levels_; }

    /** Shard owning router @p r (0-based; from Topology::partition). */
    int shardOf(int r) const
    {
        return shardOf_.at(static_cast<std::size_t>(r));
    }

  private:
    /** Wire boundary channels/shuttles over every inter-router link,
     *  partition the fabric, and install the kernel's shard hooks. */
    void configureSharding(Kernel &kernel, int shards,
                           bool direct_boundary);

    std::unique_ptr<const Topology> topo_;
    BitrateLevelTable levels_;
    std::vector<LinkSpec> specs_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<OpticalLink>> links_;

    // Boundary exchange (one channel + shuttle per inter-router link,
    // in link-enumeration order — the canonical boundary-merge order).
    struct BoundaryEdge
    {
        BoundaryChannel *channel;
        LinkShuttle *shuttle;
        int srcDomain; ///< kernel domain of the source router
        int dstDomain; ///< kernel domain of the destination router
        Router *dstRouter;
    };
    std::vector<std::unique_ptr<BoundaryChannel>> channels_;
    std::vector<std::unique_ptr<LinkShuttle>> shuttles_;
    std::vector<BoundaryEdge> edges_;
    /** Edges whose endpoints are in different shards — the only ones
     *  needing the pre-pass drains and the post-pass publish; edges
     *  with both ends in one shard run in the channel's direct mode
     *  and never appear in a per-cycle scan. */
    std::vector<BoundaryEdge *> crossEdges_;
    /** Per shard domain (index 1..shards): cross-shard edges
     *  delivering into it (ingress wakes) and crediting out of it
     *  (credit drains), each in link-enumeration order. */
    std::vector<std::vector<BoundaryEdge *>> domainIngress_;
    std::vector<std::vector<BoundaryChannel *>> domainEgress_;
    std::vector<int> shardOf_;

    double baselinePowerMw_ = 0.0;
    PacketId nextPacketId_ = 1;
    std::uint64_t packetsInjected_ = 0;

    // SoA power accounting (see phy/power_ledger.hh).
    LinkPowerLedger ledger_;
    bool ledgerActive_ = true;
};

} // namespace oenet

#endif // OENET_NETWORK_NETWORK_HH
