#include "network/network.hh"

#include "common/log.hh"
#include "fault/fault_injector.hh"

namespace oenet {

Network::Network(Kernel &kernel, const Params &params)
    : topo_(makeTopology(params.topo)), levels_(params.levels)
{
    // Routers and nodes.
    routers_.reserve(static_cast<std::size_t>(topo_->numRouters()));
    for (int r = 0; r < topo_->numRouters(); r++) {
        routers_.push_back(std::make_unique<Router>(
            "router" + std::to_string(r), r, *topo_, params.router));
    }
    int vc_depth = params.router.bufferDepthPerPort / params.router.numVcs;
    Node::Params node_params;
    node_params.numVcs = params.router.numVcs;
    node_params.vcDepth = vc_depth;
    nodes_.reserve(static_cast<std::size_t>(topo_->numNodes()));
    for (int n = 0; n < topo_->numNodes(); n++)
        nodes_.push_back(std::make_unique<Node>(static_cast<NodeId>(n),
                                                node_params));

    // Links. Each registers with the SoA power ledger in enumeration
    // order, so ledger ids equal link/trace ids.
    ledger_.configure(params.router.numVcs, params.thermal,
                      params.link.power.vmaxV);
    specs_ = topo_->enumerateLinks();
    links_.reserve(specs_.size());
    for (const auto &spec : specs_) {
        auto link = std::make_unique<OpticalLink>(spec.name, spec.kind,
                                                  levels_, params.link);
        switch (spec.kind) {
          case LinkKind::kInjection: {
            Node &src = *nodes_[spec.srcNode];
            Router &dst = *routers_[static_cast<std::size_t>(
                spec.dstRouter)];
            src.connectInjection(link.get());
            // The router returns credits to the node; port id unused on
            // the node side.
            dst.connectInput(spec.dstPort.value(), link.get(), &src, 0);
            break;
          }
          case LinkKind::kEjection: {
            Router &src = *routers_[static_cast<std::size_t>(
                spec.srcRouter)];
            Node &dst = *nodes_[spec.dstNode];
            src.connectOutput(spec.srcPort.value(), link.get(),
                              vc_depth);
            dst.connectEjection(link.get(), &src, spec.srcPort.value());
            break;
          }
          case LinkKind::kInterRouter: {
            Router &src = *routers_[static_cast<std::size_t>(
                spec.srcRouter)];
            Router &dst = *routers_[static_cast<std::size_t>(
                spec.dstRouter)];
            src.connectOutput(spec.srcPort.value(), link.get(),
                              vc_depth);
            // Every inter-router link is received through a boundary
            // channel + shuttle — at every shard count, even when both
            // ends share a shard. Delivery and credit timing are
            // unchanged; the uniform call sequence is what keeps
            // output byte-identical at any --shards (boundary.hh).
            auto chan = std::make_unique<BoundaryChannel>(
                link.get(), &src, spec.srcPort.value());
            auto shuttle = std::make_unique<LinkShuttle>(link.get(),
                                                         chan.get());
            link->setReceiver(shuttle.get());
            link->setReceiverWakeLead(1);
            dst.connectInputBoundary(spec.dstPort.value(), link.get(),
                                     chan.get(), spec.srcPort.value());
            edges_.push_back(BoundaryEdge{chan.get(), shuttle.get(),
                                          spec.srcRouter,
                                          spec.dstRouter, &dst});
            channels_.push_back(std::move(chan));
            shuttles_.push_back(std::move(shuttle));
            break;
          }
        }
        link->attachLedger(ledger_);
        baselinePowerMw_ += link->maxPowerMw();
        links_.push_back(std::move(link));
    }

    // Tick order: routers, nodes, then boundary shuttles (a shuttle
    // runs after its source router so same-cycle accepts with a
    // one-cycle arrival are still forwarded on time). Interactions are
    // time-tagged, so this only pins determinism, not semantics.
    for (auto &r : routers_)
        kernel.addTicking(r.get());
    for (auto &n : nodes_)
        kernel.addTicking(n.get());
    for (auto &s : shuttles_)
        kernel.addTicking(s.get());

    configureSharding(kernel, params.shards, params.directBoundary);

    if (params.thermal.enabled) {
        // Batched thermal epoch on the driving thread (events run
        // between tick phases): bring mid-transition links current,
        // then relax every temperature and leakage column in one flat
        // pass. Epoch events are in the deterministic event order, so
        // temperatures are shard-count invariant.
        Cycle epoch = params.thermal.epochCycles;
        kernel.schedulePeriodic(epoch, epoch, [this](Cycle now) {
            if (!ledgerActive_)
                return;
            advancePendingPower(now);
            ledger_.advanceThermal(now);
        });
    }
}

void
Network::configureSharding(Kernel &kernel, int shards,
                           bool direct_boundary)
{
    kernel.configureSharding(shards);
    shardOf_ = topo_->partition(shards);

    // Components land in domain 1 + shard: routers by the partition
    // map, nodes with their router (injection/ejection links never
    // cross shards), shuttles with their *source* router (the shuttle
    // polls the link, whose state the sender mutates).
    for (int r = 0; r < topo_->numRouters(); r++)
        kernel.setDomain(routers_[static_cast<std::size_t>(r)].get(),
                         1 + shardOf_[static_cast<std::size_t>(r)]);
    for (int n = 0; n < topo_->numNodes(); n++)
        kernel.setDomain(
            nodes_[static_cast<std::size_t>(n)].get(),
            1 + shardOf_[static_cast<std::size_t>(topo_->routerOf(
                    static_cast<NodeId>(n)))]);
    // BoundaryEdge domains are kernel domains (1 + shard) from here on.
    for (auto &e : edges_) {
        e.srcDomain = 1 + shardOf_[static_cast<std::size_t>(e.srcDomain)];
        e.dstDomain = 1 + shardOf_[static_cast<std::size_t>(e.dstDomain)];
    }
    std::size_t edge_idx = 0;
    for (const auto &spec : specs_) {
        if (spec.kind != LinkKind::kInterRouter)
            continue;
        kernel.setDomain(shuttles_[edge_idx].get(),
                         1 + shardOf_[static_cast<std::size_t>(
                                 spec.srcRouter)]);
        edge_idx++;
    }

    // Edges whose endpoints share a shard switch to direct mode: the
    // shuttle stays (it fixes the link walk's RNG/trace cycles), but
    // publication is immediate, credits forward synchronously, and the
    // per-cycle pre/post-pass hooks below skip the edge entirely. The
    // call sequence is identical either way (boundary.hh); at
    // --shards 1 every edge is direct and the hooks vanish.
    // sim.direct_boundary=off keeps every edge on the generic path so
    // the equivalence can be soaked end to end.
    crossEdges_.clear();
    for (auto &e : edges_) {
        if (direct_boundary && e.srcDomain == e.dstDomain) {
            e.channel->setDirect();
            e.shuttle->setDirectDst(e.dstRouter);
        } else {
            crossEdges_.push_back(&e);
        }
    }

    // Per-domain cross-shard boundary lists, in link-enumeration order
    // — the canonical merge order for boundary events.
    domainIngress_.assign(static_cast<std::size_t>(shards) + 1, {});
    domainEgress_.assign(static_cast<std::size_t>(shards) + 1, {});
    for (BoundaryEdge *e : crossEdges_) {
        domainIngress_[static_cast<std::size_t>(e->dstDomain)]
            .push_back(e);
        domainEgress_[static_cast<std::size_t>(e->srcDomain)]
            .push_back(e->channel);
    }

    // Pre-pass (each shard's thread, before its tick pass): wake
    // routers that have boundary deliveries, forward ready credits.
    for (int d = 1; d <= shards; d++) {
        auto &ingress = domainIngress_[static_cast<std::size_t>(d)];
        auto &egress = domainEgress_[static_cast<std::size_t>(d)];
        if (ingress.empty() && egress.empty())
            continue;
        kernel.setDomainPrePass(d, [&ingress, &egress](Cycle now) {
            for (BoundaryEdge *e : ingress) {
                if (e->channel->takeDeliveryEdge())
                    e->dstRouter->wakeAt(now);
            }
            for (BoundaryChannel *c : egress)
                c->drainCredits();
        });
    }

    // Post-pass (driving thread, after the barrier): publish staged
    // cross-shard boundary traffic and tell the kernel which domains
    // have work, so the all-quiet fast path never skips a delivery.
    // Direct edges publish inline and wake their own router, so with
    // no cross-shard edges (--shards 1) there is nothing to install.
    if (crossEdges_.empty())
        return;
    kernel.addPostPass([this, &kernel](Cycle) {
        for (BoundaryEdge *e : crossEdges_) {
            bool arrivals = e->channel->arrivalsDirty();
            bool credits = e->channel->creditsDirty();
            if (!arrivals && !credits)
                continue;
            e->channel->swapBuffers();
            if (arrivals)
                kernel.markDomainWork(e->dstDomain);
            if (credits)
                kernel.markDomainWork(e->srcDomain);
        }
    });
}

std::pair<const OccupancyProvider *, int>
Network::downstreamOf(std::size_t i) const
{
    const LinkSpec &spec = specs_.at(i);
    switch (spec.kind) {
      case LinkKind::kInjection:
      case LinkKind::kInterRouter:
        return {routers_.at(static_cast<std::size_t>(spec.dstRouter))
                    .get(),
                spec.dstPort.value()};
      case LinkKind::kEjection:
        return {nodes_.at(spec.dstNode).get(), 0};
    }
    panic("Network::downstreamOf: bad link kind");
}

PacketId
Network::injectPacket(NodeId src, NodeId dst, int len, Cycle now)
{
    if (src >= static_cast<NodeId>(numNodes()) ||
        dst >= static_cast<NodeId>(numNodes()))
        panic("Network::injectPacket: bad endpoints %u -> %u", src, dst);
    PacketId id = nextPacketId_++;
    nodes_[src]->enqueuePacket(id, dst, len, now);
    packetsInjected_++;
    return id;
}

void
Network::setPacketSink(PacketSink *sink)
{
    for (auto &n : nodes_)
        n->setPacketSink(sink);
}

void
Network::setTraceSink(TraceSink *sink)
{
    for (std::size_t i = 0; i < links_.size(); i++)
        links_[i]->setTrace(sink, static_cast<int>(i));
}

std::vector<TraceLinkInfo>
Network::traceLinkTable() const
{
    std::vector<TraceLinkInfo> table;
    table.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); i++) {
        table.push_back(TraceLinkInfo{static_cast<int>(i),
                                      links_[i]->name(),
                                      linkKindName(links_[i]->kind())});
    }
    return table;
}

void
Network::setFaultInjector(FaultInjector *faults)
{
    for (std::size_t i = 0; i < links_.size(); i++)
        links_[i]->setFault(faults, static_cast<int>(i));
    Cycle orphan =
        faults != nullptr ? faults->params().orphanTimeoutCycles : 0;
    for (auto &r : routers_)
        r->setOrphanTimeout(orphan);
    if (faults != nullptr && ledgerActive_) {
        // Scheduled faults are processed at exact cycles inside each
        // link's lazy advance, and fault-attached links are advanced
        // by their *receivers* — possibly from another shard. Neither
        // fits the ledger's flat-scan/owner-writes model, so
        // resilience runs keep the direct per-link walk (which also
        // keeps their outputs byte-identical to the fault-era
        // goldens). Detaching is one-way for the run.
        for (auto &l : links_)
            l->detachLedger();
        ledgerActive_ = false;
    }
}

int
Network::failedLinks() const
{
    int n = 0;
    for (const auto &l : links_)
        n += l->isFailed() ? 1 : 0;
    return n;
}

std::uint64_t
Network::flitsCorrupted() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitsCorrupted();
    return n;
}

std::uint64_t
Network::flitRetries() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitRetries();
    return n;
}

std::uint64_t
Network::lockLossEvents() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->lockLossEvents();
    return n;
}

std::uint64_t
Network::flitsDroppedOnFail() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitsDroppedOnFail();
    return n;
}

std::uint64_t
Network::flitsDroppedOnFailLifetime() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitsDroppedOnFailLifetime();
    return n;
}

std::uint64_t
Network::flitsDroppedDeadPort() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->droppedDeadPort();
    return n;
}

std::uint64_t
Network::poisonedWormholes() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->poisonedWormholes();
    return n;
}

void
Network::resetStats(Cycle now)
{
    for (auto &l : links_)
        l->resetStats(now);
}

void
Network::advancePendingPower(Cycle now)
{
    // Id-order scan of the flag column: advances (and any transition
    // trace events they flush) happen in the same order the direct
    // per-link walk used, so event streams stay byte-identical.
    int n = ledger_.numLinks();
    for (int id = 0; id < n; id++) {
        if (ledger_.isUnstable(id))
            links_[static_cast<std::size_t>(id)]->powerMw(now);
    }
}

double
Network::totalPowerMw(Cycle now)
{
    if (!ledgerActive_)
        return totalPowerMwDirect(now);
    advancePendingPower(now);
    double sum = ledger_.totalDynMw();
    if (ledger_.thermalEnabled())
        sum += ledger_.totalLeakMw();
    return sum;
}

double
Network::totalPowerIntegralMwCycles(Cycle now)
{
    if (!ledgerActive_)
        return totalPowerIntegralMwCyclesDirect(now);
    advancePendingPower(now);
    double sum = ledger_.totalDynIntegralMwCycles(now);
    if (ledger_.thermalEnabled())
        sum += ledger_.totalLeakIntegralMwCycles(now);
    return sum;
}

double
Network::totalPowerMwDirect(Cycle now)
{
    double sum = 0.0;
    for (auto &l : links_)
        sum += l->powerMw(now);
    return sum;
}

double
Network::totalPowerIntegralMwCyclesDirect(Cycle now)
{
    double sum = 0.0;
    for (auto &l : links_)
        sum += l->powerIntegralMwCycles(now);
    return sum;
}

std::uint64_t
Network::packetsEjected() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->packetsEjected();
    return n;
}

std::uint64_t
Network::flitsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->flitsInjected();
    return n;
}

std::uint64_t
Network::flitsEjected() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->flitsEjected();
    return n;
}

std::uint64_t
Network::sourceQueuedFlits() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->sourceQueueFlits();
    return n;
}

std::uint64_t
Network::poisonTailsRetired() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->poisonTails();
    return n;
}

std::uint64_t
Network::flitsInSystem() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->sourceQueueFlits();
    for (const auto &r : routers_)
        n += static_cast<std::uint64_t>(r->totalBufferedFlits());
    for (const auto &l : links_)
        n += static_cast<std::uint64_t>(l->inFlight());
    for (const auto &c : channels_)
        n += static_cast<std::uint64_t>(c->staged());
    return n;
}

} // namespace oenet
