#include "network/network.hh"

#include "common/log.hh"
#include "fault/fault_injector.hh"

namespace oenet {

Network::Network(Kernel &kernel, const Params &params)
    : topo_(makeTopology(params.topo)), levels_(params.levels)
{
    // Routers and nodes.
    routers_.reserve(static_cast<std::size_t>(topo_->numRouters()));
    for (int r = 0; r < topo_->numRouters(); r++) {
        routers_.push_back(std::make_unique<Router>(
            "router" + std::to_string(r), r, *topo_, params.router));
    }
    int vc_depth = params.router.bufferDepthPerPort / params.router.numVcs;
    Node::Params node_params;
    node_params.numVcs = params.router.numVcs;
    node_params.vcDepth = vc_depth;
    nodes_.reserve(static_cast<std::size_t>(topo_->numNodes()));
    for (int n = 0; n < topo_->numNodes(); n++)
        nodes_.push_back(std::make_unique<Node>(static_cast<NodeId>(n),
                                                node_params));

    // Links.
    specs_ = topo_->enumerateLinks();
    links_.reserve(specs_.size());
    for (const auto &spec : specs_) {
        auto link = std::make_unique<OpticalLink>(spec.name, spec.kind,
                                                  levels_, params.link);
        switch (spec.kind) {
          case LinkKind::kInjection: {
            Node &src = *nodes_[spec.srcNode];
            Router &dst = *routers_[static_cast<std::size_t>(
                spec.dstRouter)];
            src.connectInjection(link.get());
            // The router returns credits to the node; port id unused on
            // the node side.
            dst.connectInput(spec.dstPort.value(), link.get(), &src, 0);
            break;
          }
          case LinkKind::kEjection: {
            Router &src = *routers_[static_cast<std::size_t>(
                spec.srcRouter)];
            Node &dst = *nodes_[spec.dstNode];
            src.connectOutput(spec.srcPort.value(), link.get(),
                              vc_depth);
            dst.connectEjection(link.get(), &src, spec.srcPort.value());
            break;
          }
          case LinkKind::kInterRouter: {
            Router &src = *routers_[static_cast<std::size_t>(
                spec.srcRouter)];
            Router &dst = *routers_[static_cast<std::size_t>(
                spec.dstRouter)];
            src.connectOutput(spec.srcPort.value(), link.get(),
                              vc_depth);
            dst.connectInput(spec.dstPort.value(), link.get(), &src,
                             spec.srcPort.value());
            break;
          }
        }
        baselinePowerMw_ += link->maxPowerMw();
        links_.push_back(std::move(link));
    }

    // Tick order: routers then nodes. Interactions are time-tagged, so
    // this only pins determinism, not semantics.
    for (auto &r : routers_)
        kernel.addTicking(r.get());
    for (auto &n : nodes_)
        kernel.addTicking(n.get());
}

std::pair<const OccupancyProvider *, int>
Network::downstreamOf(std::size_t i) const
{
    const LinkSpec &spec = specs_.at(i);
    switch (spec.kind) {
      case LinkKind::kInjection:
      case LinkKind::kInterRouter:
        return {routers_.at(static_cast<std::size_t>(spec.dstRouter))
                    .get(),
                spec.dstPort.value()};
      case LinkKind::kEjection:
        return {nodes_.at(spec.dstNode).get(), 0};
    }
    panic("Network::downstreamOf: bad link kind");
}

PacketId
Network::injectPacket(NodeId src, NodeId dst, int len, Cycle now)
{
    if (src >= static_cast<NodeId>(numNodes()) ||
        dst >= static_cast<NodeId>(numNodes()))
        panic("Network::injectPacket: bad endpoints %u -> %u", src, dst);
    PacketId id = nextPacketId_++;
    nodes_[src]->enqueuePacket(id, dst, len, now);
    packetsInjected_++;
    return id;
}

void
Network::setPacketSink(PacketSink *sink)
{
    for (auto &n : nodes_)
        n->setPacketSink(sink);
}

void
Network::setTraceSink(TraceSink *sink)
{
    for (std::size_t i = 0; i < links_.size(); i++)
        links_[i]->setTrace(sink, static_cast<int>(i));
}

std::vector<TraceLinkInfo>
Network::traceLinkTable() const
{
    std::vector<TraceLinkInfo> table;
    table.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); i++) {
        table.push_back(TraceLinkInfo{static_cast<int>(i),
                                      links_[i]->name(),
                                      linkKindName(links_[i]->kind())});
    }
    return table;
}

void
Network::setFaultInjector(FaultInjector *faults)
{
    for (std::size_t i = 0; i < links_.size(); i++)
        links_[i]->setFault(faults, static_cast<int>(i));
    Cycle orphan =
        faults != nullptr ? faults->params().orphanTimeoutCycles : 0;
    for (auto &r : routers_)
        r->setOrphanTimeout(orphan);
}

int
Network::failedLinks() const
{
    int n = 0;
    for (const auto &l : links_)
        n += l->isFailed() ? 1 : 0;
    return n;
}

std::uint64_t
Network::flitsCorrupted() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitsCorrupted();
    return n;
}

std::uint64_t
Network::flitRetries() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitRetries();
    return n;
}

std::uint64_t
Network::lockLossEvents() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->lockLossEvents();
    return n;
}

std::uint64_t
Network::flitsDroppedOnFail() const
{
    std::uint64_t n = 0;
    for (const auto &l : links_)
        n += l->flitsDroppedOnFail();
    return n;
}

std::uint64_t
Network::flitsDroppedDeadPort() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->droppedDeadPort();
    return n;
}

std::uint64_t
Network::poisonedWormholes() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->poisonedWormholes();
    return n;
}

void
Network::resetStats(Cycle now)
{
    for (auto &l : links_)
        l->resetStats(now);
}

double
Network::totalPowerMw(Cycle now)
{
    double sum = 0.0;
    for (auto &l : links_)
        sum += l->powerMw(now);
    return sum;
}

double
Network::totalPowerIntegralMwCycles(Cycle now)
{
    double sum = 0.0;
    for (auto &l : links_)
        sum += l->powerIntegralMwCycles(now);
    return sum;
}

std::uint64_t
Network::packetsEjected() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->packetsEjected();
    return n;
}

std::uint64_t
Network::flitsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->flitsInjected();
    return n;
}

std::uint64_t
Network::flitsEjected() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->flitsEjected();
    return n;
}

std::uint64_t
Network::flitsInSystem() const
{
    std::uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node->sourceQueueFlits();
    for (const auto &r : routers_)
        n += static_cast<std::uint64_t>(r->totalBufferedFlits());
    for (const auto &l : links_)
        n += static_cast<std::uint64_t>(l->inFlight());
    return n;
}

} // namespace oenet
