#include "network/boundary.hh"

#include "common/log.hh"

namespace oenet {

void
BoundaryChannel::swapBuffers()
{
    if (head_ != readyEnd_)
        panic("BoundaryChannel %s: %u ready flits not drained "
              "(missing delivery wake?)",
              link_->name().c_str(), readyEnd_ - head_);
    if (credHead_ != credReadyEnd_)
        panic("BoundaryChannel %s: %u ready credits not drained",
              link_->name().c_str(), credReadyEnd_ - credHead_);
    readyEnd_ = pendEnd_;
    credReadyEnd_ = credPendEnd_;
    if (pendingFailed_) {
        pendingFailed_ = false;
        failed_ = true;
        failEdge_ = true;
    }
    arrivalsDirty_ = false;
    creditsDirty_ = false;
}

} // namespace oenet
