#include "network/boundary.hh"

#include "common/log.hh"

namespace oenet {

void
BoundaryChannel::swapBuffers()
{
    if (readyHead_ != readyArrivals_.size())
        panic("BoundaryChannel %s: %zu ready flits not drained "
              "(missing delivery wake?)",
              link_->name().c_str(),
              readyArrivals_.size() - readyHead_);
    if (!readyCredits_.empty())
        panic("BoundaryChannel %s: %zu ready credits not drained",
              link_->name().c_str(), readyCredits_.size());
    std::swap(readyArrivals_, pendingArrivals_);
    pendingArrivals_.clear();
    readyHead_ = 0;
    std::swap(readyCredits_, pendingCredits_);
    pendingCredits_.clear();
    if (pendingFailed_) {
        pendingFailed_ = false;
        failed_ = true;
        failEdge_ = true;
    }
    arrivalsDirty_ = false;
    creditsDirty_ = false;
}

} // namespace oenet
