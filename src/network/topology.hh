/**
 * @file
 * Link enumeration for the clustered-mesh system (Figs. 3-4).
 *
 * Every rack owns 20 transmitters (= 20 fibers from the light plant in
 * the modulator scheme): 8 node injection links, 8 router ejection
 * links, and up to 4 outgoing inter-router links (fewer on mesh edges).
 * This module produces the canonical ordered list of LinkSpecs the
 * Network materializes, so links have stable indices and names across
 * tools.
 */

#ifndef OENET_NETWORK_TOPOLOGY_HH
#define OENET_NETWORK_TOPOLOGY_HH

#include <string>
#include <vector>

#include "link/link.hh"
#include "router/routing.hh"

namespace oenet {

/** Static description of one unidirectional link. */
struct LinkSpec
{
    LinkKind kind;
    std::string name;

    // Sender side: a node (injection) or a router output port.
    NodeId srcNode = 0;  ///< valid for kInjection
    int srcRouter = kInvalid;
    int srcPort = kInvalid;

    // Receiver side: a node (ejection) or a router input port.
    NodeId dstNode = 0;  ///< valid for kEjection
    int dstRouter = kInvalid;
    int dstPort = kInvalid;
};

/** Enumerate all links of the system: injection links first (by node),
 *  then ejection links (by node), then inter-router links (by source
 *  rack, then direction E, W, N, S). */
std::vector<LinkSpec> enumerateLinks(const ClusteredMesh &mesh);

/** Count links of each kind. */
int countLinks(const ClusteredMesh &mesh, LinkKind kind);

/** Opposite mesh direction (east <-> west, north <-> south). */
int oppositeDir(int dir);

} // namespace oenet

#endif // OENET_NETWORK_TOPOLOGY_HH
