/**
 * @file
 * Pluggable topology abstraction: a directed graph of routers and
 * nodes that owns counts, port maps, link enumeration, and the routing
 * hook. Four fabrics ship behind the interface:
 *
 *   mesh     parameterized kx x ky clustered mesh (the paper's system,
 *            any size); C nodes per router, 4 direction ports.
 *   torus    mesh plus wrap links; minimal ring routing with dateline
 *            VC classes (needs >= 2 VCs for deadlock freedom).
 *   cmesh    concentrated mesh: same router grid, but nodes tile a
 *            2-D grid and map to routers in sqrt(C) x sqrt(C) blocks.
 *   fattree  k-ary 3-level fat-tree (edge/aggregation/core) with
 *            deterministic up/down routing; k^3/4 nodes.
 *
 * The per-rack fiber budget of the modulator scheme is a per-topology
 * quantity, not an invariant: an interior mesh or cmesh rack owns
 * C + C + 4 transmitters (C node injection, C router ejection, up to 4
 * outgoing inter-router — fewer on mesh edges, 20 total in the paper's
 * 8-node racks); a torus rack always owns all C + C + 4 because wrap
 * links close the edges; a fat-tree edge switch owns k/2 + k/2 node
 * fibers plus k/2 up-links, and aggregation/core switches carry only
 * inter-router fibers (k each). enumerateLinks() is the canonical
 * source of each fabric's link budget — it produces the ordered list
 * of LinkSpecs the Network materializes, so links have stable indices
 * and names across tools.
 */

#ifndef OENET_NETWORK_TOPOLOGY_HH
#define OENET_NETWORK_TOPOLOGY_HH

#include <memory>
#include <string>
#include <vector>

#include "link/link.hh"
#include "router/routing.hh"

namespace oenet {

/** Static description of one unidirectional link. */
struct LinkSpec
{
    LinkKind kind;
    std::string name;

    // Sender side: a node (injection) or a router output port.
    NodeId srcNode = 0; ///< valid for kInjection
    int srcRouter = kInvalid;
    PortId srcPort{};

    // Receiver side: a node (ejection) or a router input port.
    NodeId dstNode = 0; ///< valid for kEjection
    int dstRouter = kInvalid;
    PortId dstPort{};
};

/** Which fabric wires the routers together. */
enum class TopologyKind
{
    kMesh,
    kTorus,
    kCMesh,
    kFatTree,
};

const char *topologyKindName(TopologyKind kind);

/** Parse "mesh" / "torus" / "cmesh" / "fattree"; fatal() otherwise. */
TopologyKind parseTopologyKind(const std::string &text);

/**
 * Geometry knobs for every fabric, with the paper's 8x8x8 mesh as the
 * default. Unused knobs are ignored by the other kinds (the fat-tree
 * derives everything from its arity).
 */
struct TopologyParams
{
    TopologyKind kind = TopologyKind::kMesh;
    int meshX = 8;       ///< router columns (mesh/torus/cmesh)
    int meshY = 8;       ///< router rows (mesh/torus/cmesh)
    int clusterSize = 8; ///< nodes per router (mesh/torus/cmesh)
    int fatTreeArity = 4; ///< switch radix k (even); k^3/4 nodes

    /** Node count implied by the knobs, without building the graph. */
    int numNodes() const;

    /** Router count implied by the knobs. */
    int numRouters() const;

    /** Router radix implied by the knobs (ports per router). */
    int portsPerRouter() const;

    /**
     * Reject degenerate geometries with an actionable fatal() naming
     * the offending knob: non-positive mesh dims or cluster size,
     * torus rings shorter than 2, cmesh concentration that is not a
     * perfect square, odd or sub-2 fat-tree arity.
     */
    void validate() const;
};

/** Value of RouteOption::vcClass meaning "any VC may be allocated". */
inline constexpr int kAnyVcClass = -1;

/** Maximum candidates routeCandidates() may produce. */
inline constexpr int kMaxRouteCandidates = 2;

/**
 * One candidate output for a packet at a router: the output port and
 * the VC class the next hop must be allocated in. Class kAnyVcClass
 * places no restriction (mesh, fat-tree); the torus uses classes 0/1
 * as dateline escape levels (class c maps to one half of the VC pool,
 * see Router::vcMaskForClass).
 */
struct RouteOption
{
    PortId port{};
    int vcClass = kAnyVcClass;
};

/**
 * A directed-graph fabric: router/node counts, the node-to-router
 * attachment map, the canonical link list, and the routing hook. All
 * queries are pure and thread-safe; a Topology is immutable after
 * construction and shared by every router of its Network.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Fabric name ("mesh", "torus", "cmesh", "fattree"). */
    virtual const char *name() const = 0;

    virtual int numRouters() const = 0;
    virtual int numNodes() const = 0;

    /** Uniform router radix. Ports not wired by enumerateLinks() stay
     *  unconnected (mesh edge routers, for example). */
    virtual int portsPerRouter() const = 0;

    /** Number of VC classes the routing function distinguishes; the
     *  router needs at least this many VCs (1 = unrestricted). */
    virtual int numVcClasses() const { return 1; }

    /** Router a node attaches to. */
    virtual int routerOf(NodeId node) const = 0;

    /** The node's local (injection/ejection) port on its router. */
    virtual PortId attachPort(NodeId node) const = 0;

    /** Inverse of (routerOf, attachPort). @pre local is a valid local
     *  port index on @p router. */
    virtual NodeId nodeAt(int router, int local) const = 0;

    /**
     * Enumerate all links of the system: injection links first (by
     * node), then ejection links (by node), then inter-router links in
     * a topology-specific but fixed order. Indices into the returned
     * vector are the stable link ids used by traces, faults, and
     * policy controllers.
     */
    std::vector<LinkSpec> enumerateLinks() const;

    /**
     * Candidate output ports at @p router for a packet destined to
     * @p dst under @p algo, written into @p out (size >=
     * kMaxRouteCandidates). Deterministic algorithms yield one
     * candidate; west-first yields up to two productive directions
     * once any westward hops are done.
     * @return the number of candidates (>= 1).
     */
    virtual int routeCandidates(RoutingAlgo algo, int router, NodeId dst,
                                RouteOption out[kMaxRouteCandidates])
        const = 0;

    /** Minimal hop count (#routers visited) between two nodes. */
    virtual int hopCount(NodeId src, NodeId dst) const = 0;

    /**
     * Partition the routers into @p n_shards shards for the sharded
     * kernel: returns a vector of numRouters() entries, entry r = the
     * shard (0-based, < n_shards) owning router r. A node and its
     * router always share a shard (injection/ejection links never
     * cross shards), so only inter-router links can be boundaries.
     * The default splits the canonical router index range into
     * contiguous balanced slices — row stripes on the mesh family
     * (index = y*meshX + x), level-then-index slices on the fat-tree.
     * Shards may be empty when n_shards > numRouters(). The map is a
     * pure function of the topology and n_shards: the same inputs
     * partition identically on every run, a prerequisite of the
     * determinism contract (docs/DETERMINISM.md).
     */
    virtual std::vector<int> partition(int n_shards) const;

  protected:
    /** Append the canonical injection + ejection links (shared by all
     *  fabrics: every node owns one of each, in node order). */
    void appendEndpointLinks(std::vector<LinkSpec> &out) const;

    /** Append this fabric's inter-router links. */
    virtual void appendRouterLinks(std::vector<LinkSpec> &out) const = 0;
};

/** Build the fabric described by @p params (validates first). */
std::unique_ptr<Topology> makeTopology(const TopologyParams &params);

/** Count links of each kind. */
int countLinks(const Topology &topo, LinkKind kind);

// ---------------------------------------------------------------------
// Concrete fabrics. Public so tests and tools can query fabric-specific
// geometry; everything else should consume the Topology interface.
// ---------------------------------------------------------------------

/** Parameterized kx x ky clustered mesh (the paper's fabric). */
class MeshTopology : public Topology
{
  public:
    MeshTopology(int mesh_x, int mesh_y, int nodes_per_cluster);

    const char *name() const override { return "mesh"; }
    int numRouters() const override { return meshX_ * meshY_; }
    int numNodes() const override
    {
        return numRouters() * clusterSize_;
    }
    int portsPerRouter() const override
    {
        return clusterSize_ + kNumDirs;
    }
    int routerOf(NodeId node) const override;
    PortId attachPort(NodeId node) const override;
    NodeId nodeAt(int router, int local) const override;
    int routeCandidates(RoutingAlgo algo, int router, NodeId dst,
                        RouteOption out[kMaxRouteCandidates])
        const override;
    int hopCount(NodeId src, NodeId dst) const override;

    // Mesh-family geometry helpers.
    int meshX() const { return meshX_; }
    int meshY() const { return meshY_; }
    int nodesPerCluster() const { return clusterSize_; }
    int routerX(int router) const { return router % meshX_; }
    int routerY(int router) const { return router / meshX_; }
    int routerAt(int x, int y) const { return y * meshX_ + x; }

    /** Port index for mesh direction @p dir. */
    PortId dirPort(Direction dir) const
    {
        return PortId(clusterSize_ + static_cast<int>(dir));
    }

    /** True if the router at (x, y) has a neighbor in @p dir. A torus
     *  always does (wrap). */
    virtual bool hasNeighbor(int x, int y, Direction dir) const;

    /** Router index of the neighbor in @p dir. @pre hasNeighbor. */
    virtual int neighborRouter(int x, int y, Direction dir) const;

  protected:
    void appendRouterLinks(std::vector<LinkSpec> &out) const override;

    /** XY route computation at (x, y) for @p dst: correct X first,
     *  then Y, then eject at the local port. */
    PortId routeXy(int x, int y, NodeId dst) const;

    /** YX route computation (Y corrected first). */
    PortId routeYx(int x, int y, NodeId dst) const;

    int meshX_;
    int meshY_;
    int clusterSize_;
};

/** Mesh with wrap links; minimal ring routing + dateline VC classes. */
class TorusTopology final : public MeshTopology
{
  public:
    TorusTopology(int mesh_x, int mesh_y, int nodes_per_cluster);

    const char *name() const override { return "torus"; }
    int numVcClasses() const override { return 2; }
    bool hasNeighbor(int x, int y, Direction dir) const override;
    int neighborRouter(int x, int y, Direction dir) const override;
    int routeCandidates(RoutingAlgo algo, int router, NodeId dst,
                        RouteOption out[kMaxRouteCandidates])
        const override;
    int hopCount(NodeId src, NodeId dst) const override;

  private:
    /** Minimal hop toward @p to on a ring of @p size nodes, from
     *  @p from: direction (+1 forward, -1 backward, tie forward) and
     *  the dateline VC class for the next hop. */
    static void ringStep(int from, int to, int size, int &step,
                         int &vc_class);
};

/**
 * Concentrated mesh: nodes tile a (meshX*s) x (meshY*s) grid, s =
 * sqrt(C), and each router serves an s x s block of tiles. Routing is
 * identical to the mesh; only the node-to-router map changes, which
 * shortens average hop distance for spatially local traffic.
 */
class CMeshTopology final : public MeshTopology
{
  public:
    CMeshTopology(int mesh_x, int mesh_y, int concentration);

    const char *name() const override { return "cmesh"; }
    int routerOf(NodeId node) const override;
    PortId attachPort(NodeId node) const override;
    NodeId nodeAt(int router, int local) const override;

    /** Block side s (concentration = s*s). */
    int blockSide() const { return side_; }

    /** Node-grid width, meshX * s tiles. */
    int tileGridWidth() const { return meshX_ * side_; }

  private:
    int side_;
};

/**
 * k-ary 3-level fat-tree: k pods of k/2 edge and k/2 aggregation
 * switches, (k/2)^2 core switches, k/2 hosts per edge switch (k^3/4
 * total). Ports 0..k/2-1 face down (hosts at the edge level, the level
 * below otherwise), ports k/2..k-1 face up; core switches use ports
 * 0..k-1 down to the pods. Routing is deterministic up/down — up to a
 * common ancestor picked by destination hash, then down — which is
 * deadlock-free (no down->up turns) with any VC count.
 */
class FatTreeTopology final : public Topology
{
  public:
    explicit FatTreeTopology(int arity);

    const char *name() const override { return "fattree"; }
    int numRouters() const override
    {
        return arity_ * half_ * 2 + half_ * half_;
    }
    int numNodes() const override { return arity_ * half_ * half_; }
    int portsPerRouter() const override { return arity_; }
    int routerOf(NodeId node) const override;
    PortId attachPort(NodeId node) const override;
    NodeId nodeAt(int router, int local) const override;
    int routeCandidates(RoutingAlgo algo, int router, NodeId dst,
                        RouteOption out[kMaxRouteCandidates])
        const override;
    int hopCount(NodeId src, NodeId dst) const override;

    int arity() const { return arity_; }

    // Level decomposition (router index ranges).
    int numEdge() const { return arity_ * half_; }
    int numAgg() const { return arity_ * half_; }
    int numCore() const { return half_ * half_; }
    bool isEdge(int router) const { return router < numEdge(); }
    bool isAgg(int router) const
    {
        return router >= numEdge() && router < numEdge() + numAgg();
    }
    bool isCore(int router) const
    {
        return router >= numEdge() + numAgg();
    }

    /** Pod of an edge or aggregation switch. @pre not core. */
    int podOf(int router) const;

  protected:
    void appendRouterLinks(std::vector<LinkSpec> &out) const override;

  private:
    int arity_;
    int half_; ///< k/2
};

} // namespace oenet

#endif // OENET_NETWORK_TOPOLOGY_HH
