/**
 * @file
 * Power and utilization reporting over a live Network: aggregates by
 * link kind (injection / ejection / inter-router), level histograms,
 * and per-link detail dumps. Used by examples and benches to explain
 * *where* the savings come from — e.g. the paper's observation that
 * savings persist at saturation because the 1024 injection/ejection
 * fibers stay lightly utilized.
 */

#ifndef OENET_NETWORK_POWER_REPORT_HH
#define OENET_NETWORK_POWER_REPORT_HH

#include <array>
#include <string>
#include <vector>

#include "network/network.hh"

namespace oenet {

/** Aggregate power/utilization for one class of links. */
struct KindReport
{
    LinkKind kind;
    int count = 0;
    double powerMw = 0.0;          ///< instantaneous (dynamic)
    double baselineMw = 0.0;       ///< all-at-max power
    double normalizedPower = 0.0;  ///< powerMw / baselineMw
    double meanLevel = 0.0;        ///< average bit-rate level index
    std::uint64_t totalFlits = 0;  ///< flits carried so far
    double leakageMw = 0.0;        ///< 0 with the thermal model off
    std::vector<int> levelHistogram; ///< links per level index
};

struct PowerReport
{
    Cycle at = 0;
    /** Instantaneous power; includes leakage when the thermal model
     *  is on (effective power), dynamic only otherwise. */
    double totalPowerMw = 0.0;
    double baselinePowerMw = 0.0;
    double normalizedPower = 0.0;
    std::array<KindReport, 3> byKind; ///< indexed by LinkKind order

    // Leakage/thermal extension, populated only when the thermal
    // model is enabled (thermal == true).
    bool thermal = false;
    double leakagePowerMw = 0.0; ///< leakage component of totalPowerMw
    double maxTempC = 0.0;       ///< hottest junction across all links
    /** Dynamic link energy attributed to each VC, mW-cycles
     *  (LinkPowerLedger::attributeVcEnergy). */
    std::vector<double> vcEnergyMwCycles;

    const KindReport &forKind(LinkKind kind) const
    {
        return byKind[static_cast<std::size_t>(kind)];
    }

    /** Multi-line human-readable rendering. */
    std::string toString() const;
};

/**
 * Snapshot the network's power state at @p now. Served from the SoA
 * ledger's flat columns when active (the epoch hot path: no per-link
 * pointer chase); falls back to makePowerReportDirect when a fault
 * injector detached the ledger. With the thermal model off the two
 * paths produce bitwise-identical reports.
 */
PowerReport makePowerReport(Network &net, Cycle now);

/** The pre-ledger walk over OpticalLink objects (dynamic power only).
 *  Kept as the accounting oracle and the microbench baseline. */
PowerReport makePowerReportDirect(Network &net, Cycle now);

/** Per-link rows for CSV dumps: name, kind, level, br, power, flits,
 *  and — with the thermal model on — leakage, junction temperature,
 *  and per-VC flit attribution. */
struct LinkRow
{
    std::string name;
    LinkKind kind;
    int level;
    double brGbps;
    double powerMw;
    std::uint64_t totalFlits;
    std::uint64_t transitions;
    double leakageMw = 0.0; ///< 0 with the thermal model off
    double tempC = 0.0;     ///< 0 with the thermal model off
    std::vector<std::uint64_t> vcFlits; ///< empty with thermal off
};

std::vector<LinkRow> collectLinkRows(Network &net, Cycle now);

} // namespace oenet

#endif // OENET_NETWORK_POWER_REPORT_HH
