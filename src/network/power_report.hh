/**
 * @file
 * Power and utilization reporting over a live Network: aggregates by
 * link kind (injection / ejection / inter-router), level histograms,
 * and per-link detail dumps. Used by examples and benches to explain
 * *where* the savings come from — e.g. the paper's observation that
 * savings persist at saturation because the 1024 injection/ejection
 * fibers stay lightly utilized.
 */

#ifndef OENET_NETWORK_POWER_REPORT_HH
#define OENET_NETWORK_POWER_REPORT_HH

#include <array>
#include <string>
#include <vector>

#include "network/network.hh"

namespace oenet {

/** Aggregate power/utilization for one class of links. */
struct KindReport
{
    LinkKind kind;
    int count = 0;
    double powerMw = 0.0;          ///< instantaneous
    double baselineMw = 0.0;       ///< all-at-max power
    double normalizedPower = 0.0;  ///< powerMw / baselineMw
    double meanLevel = 0.0;        ///< average bit-rate level index
    std::uint64_t totalFlits = 0;  ///< flits carried so far
    std::vector<int> levelHistogram; ///< links per level index
};

struct PowerReport
{
    Cycle at = 0;
    double totalPowerMw = 0.0;
    double baselinePowerMw = 0.0;
    double normalizedPower = 0.0;
    std::array<KindReport, 3> byKind; ///< indexed by LinkKind order

    const KindReport &forKind(LinkKind kind) const
    {
        return byKind[static_cast<std::size_t>(kind)];
    }

    /** Multi-line human-readable rendering. */
    std::string toString() const;
};

/** Snapshot the network's power state at @p now. */
PowerReport makePowerReport(Network &net, Cycle now);

/** Per-link rows for CSV dumps: name, kind, level, br, power, flits. */
struct LinkRow
{
    std::string name;
    LinkKind kind;
    int level;
    double brGbps;
    double powerMw;
    std::uint64_t totalFlits;
    std::uint64_t transitions;
};

std::vector<LinkRow> collectLinkRows(Network &net, Cycle now);

} // namespace oenet

#endif // OENET_NETWORK_POWER_REPORT_HH
