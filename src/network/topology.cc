#include "network/topology.hh"

#include "common/log.hh"

namespace oenet {

const char *
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::kMesh:
        return "mesh";
      case TopologyKind::kTorus:
        return "torus";
      case TopologyKind::kCMesh:
        return "cmesh";
      case TopologyKind::kFatTree:
        return "fattree";
    }
    panic("topologyKindName: bad kind %d", static_cast<int>(kind));
}

TopologyKind
parseTopologyKind(const std::string &text)
{
    if (text == "mesh")
        return TopologyKind::kMesh;
    if (text == "torus")
        return TopologyKind::kTorus;
    if (text == "cmesh")
        return TopologyKind::kCMesh;
    if (text == "fattree")
        return TopologyKind::kFatTree;
    fatal("unknown topology '%s' (expected mesh, torus, cmesh, or "
          "fattree)", text.c_str());
}

namespace {

/** Integer square root of a perfect square, or -1. */
int
perfectSqrt(int v)
{
    for (int s = 1; s * s <= v; s++)
        if (s * s == v)
            return s;
    return -1;
}

} // namespace

int
TopologyParams::numNodes() const
{
    if (kind == TopologyKind::kFatTree)
        return fatTreeArity * fatTreeArity * fatTreeArity / 4;
    return meshX * meshY * clusterSize;
}

int
TopologyParams::numRouters() const
{
    if (kind == TopologyKind::kFatTree) {
        int half = fatTreeArity / 2;
        return fatTreeArity * half * 2 + half * half;
    }
    return meshX * meshY;
}

int
TopologyParams::portsPerRouter() const
{
    if (kind == TopologyKind::kFatTree)
        return fatTreeArity;
    return clusterSize + kNumDirs;
}

void
TopologyParams::validate() const
{
    switch (kind) {
      case TopologyKind::kMesh:
        if (meshX < 1 || meshY < 1)
            fatal("mesh.x/mesh.y must be >= 1, got %dx%d", meshX,
                  meshY);
        if (clusterSize < 1)
            fatal("mesh.cluster must be >= 1, got %d", clusterSize);
        break;
      case TopologyKind::kTorus:
        if (meshX < 2 || meshY < 2)
            fatal("torus rings need mesh.x/mesh.y >= 2, got %dx%d "
                  "(a 1-wide ring is a self-loop; use topology=mesh)",
                  meshX, meshY);
        if (clusterSize < 1)
            fatal("mesh.cluster must be >= 1, got %d", clusterSize);
        break;
      case TopologyKind::kCMesh:
        if (meshX < 1 || meshY < 1)
            fatal("mesh.x/mesh.y must be >= 1, got %dx%d", meshX,
                  meshY);
        if (clusterSize < 1)
            fatal("mesh.cluster must be >= 1, got %d", clusterSize);
        if (perfectSqrt(clusterSize) < 0) {
            int lo = 1;
            while ((lo + 1) * (lo + 1) <= clusterSize)
                lo++;
            fatal("cmesh concentration (mesh.cluster) must be a "
                  "perfect square so nodes tile sqrt(C) x sqrt(C) "
                  "blocks, got %d (try %d or %d)", clusterSize,
                  lo * lo, (lo + 1) * (lo + 1));
        }
        break;
      case TopologyKind::kFatTree:
        if (fatTreeArity < 2 || fatTreeArity % 2 != 0)
            fatal("topo.arity must be an even switch radix >= 2 for "
                  "a k-ary fat-tree (k/2 hosts per edge switch), "
                  "got %d", fatTreeArity);
        break;
    }
}

void
Topology::appendEndpointLinks(std::vector<LinkSpec> &out) const
{
    // Injection links: node -> its router, input port = attach port.
    for (int n = 0; n < numNodes(); n++) {
        auto node = static_cast<NodeId>(n);
        LinkSpec s;
        s.kind = LinkKind::kInjection;
        s.srcNode = node;
        s.dstRouter = routerOf(node);
        s.dstPort = attachPort(node);
        s.name = "inj.n" + std::to_string(n);
        out.push_back(s);
    }

    // Ejection links: router output port = attach port -> node.
    for (int n = 0; n < numNodes(); n++) {
        auto node = static_cast<NodeId>(n);
        LinkSpec s;
        s.kind = LinkKind::kEjection;
        s.srcRouter = routerOf(node);
        s.srcPort = attachPort(node);
        s.dstNode = node;
        s.name = "ej.n" + std::to_string(n);
        out.push_back(s);
    }
}

std::vector<LinkSpec>
Topology::enumerateLinks() const
{
    std::vector<LinkSpec> specs;
    appendEndpointLinks(specs);
    appendRouterLinks(specs);
    return specs;
}

std::vector<int>
Topology::partition(int n_shards) const
{
    if (n_shards < 1)
        panic("Topology::partition: n_shards must be >= 1");
    const int routers = numRouters();
    std::vector<int> shard_of(routers);
    // Contiguous balanced slices of the canonical index range: shard s
    // owns [floor(s*R/n), floor((s+1)*R/n)). On the mesh family the
    // row-major index makes these row stripes, so boundaries are the
    // horizontal links between adjacent stripes.
    for (int s = 0; s < n_shards; s++) {
        const int lo = static_cast<int>(
            static_cast<long long>(s) * routers / n_shards);
        const int hi = static_cast<int>(
            static_cast<long long>(s + 1) * routers / n_shards);
        for (int r = lo; r < hi; r++)
            shard_of[r] = s;
    }
    return shard_of;
}

std::unique_ptr<Topology>
makeTopology(const TopologyParams &params)
{
    params.validate();
    switch (params.kind) {
      case TopologyKind::kMesh:
        return std::make_unique<MeshTopology>(
            params.meshX, params.meshY, params.clusterSize);
      case TopologyKind::kTorus:
        return std::make_unique<TorusTopology>(
            params.meshX, params.meshY, params.clusterSize);
      case TopologyKind::kCMesh:
        return std::make_unique<CMeshTopology>(
            params.meshX, params.meshY, params.clusterSize);
      case TopologyKind::kFatTree:
        return std::make_unique<FatTreeTopology>(params.fatTreeArity);
    }
    panic("makeTopology: bad kind %d", static_cast<int>(params.kind));
}

int
countLinks(const Topology &topo, LinkKind kind)
{
    int n = 0;
    for (const auto &s : topo.enumerateLinks())
        if (s.kind == kind)
            n++;
    return n;
}

} // namespace oenet
