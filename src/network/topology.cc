#include "network/topology.hh"

#include "common/log.hh"

namespace oenet {

int
oppositeDir(int dir)
{
    switch (dir) {
      case kDirEast:
        return kDirWest;
      case kDirWest:
        return kDirEast;
      case kDirNorth:
        return kDirSouth;
      case kDirSouth:
        return kDirNorth;
    }
    panic("oppositeDir: bad direction %d", dir);
}

std::vector<LinkSpec>
enumerateLinks(const ClusteredMesh &mesh)
{
    std::vector<LinkSpec> specs;
    int c = mesh.nodesPerCluster();

    // Injection links: node -> its rack router, input port = local idx.
    for (int n = 0; n < mesh.numNodes(); n++) {
        auto node = static_cast<NodeId>(n);
        LinkSpec s;
        s.kind = LinkKind::kInjection;
        s.srcNode = node;
        s.dstRouter = mesh.rackOf(node);
        s.dstPort = mesh.localIndexOf(node);
        s.name = "inj.n" + std::to_string(n);
        specs.push_back(s);
    }

    // Ejection links: rack router output port = local idx -> node.
    for (int n = 0; n < mesh.numNodes(); n++) {
        auto node = static_cast<NodeId>(n);
        LinkSpec s;
        s.kind = LinkKind::kEjection;
        s.srcRouter = mesh.rackOf(node);
        s.srcPort = mesh.localIndexOf(node);
        s.dstNode = node;
        s.name = "ej.n" + std::to_string(n);
        specs.push_back(s);
    }

    // Inter-router links, one per (rack, direction) that exists.
    for (int r = 0; r < mesh.numRouters(); r++) {
        int x = mesh.rackX(r);
        int y = mesh.rackY(r);
        for (int d = 0; d < kNumDirs; d++) {
            if (!mesh.hasNeighbor(x, y, d))
                continue;
            LinkSpec s;
            s.kind = LinkKind::kInterRouter;
            s.srcRouter = r;
            s.srcPort = c + d;
            s.dstRouter = mesh.neighborRack(x, y, d);
            s.dstPort = c + oppositeDir(d);
            s.name = "rt.r" + std::to_string(r) + "." + meshDirName(d);
            specs.push_back(s);
        }
    }
    return specs;
}

int
countLinks(const ClusteredMesh &mesh, LinkKind kind)
{
    int n = 0;
    for (const auto &s : enumerateLinks(mesh))
        if (s.kind == kind)
            n++;
    return n;
}

} // namespace oenet
