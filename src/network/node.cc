#include "network/node.hh"

#include "common/log.hh"
#include "router/flit.hh"

namespace oenet {

Node::Node(NodeId id, const Params &params)
    : id_(id), params_(params), name_("node" + std::to_string(id))
{
    if (params_.numVcs < 1 || params_.vcDepth < 1)
        fatal("Node %u: bad VC configuration", id);
    credits_.assign(static_cast<std::size_t>(params_.numVcs),
                    params_.vcDepth);
}

void
Node::connectInjection(OpticalLink *link)
{
    injLink_ = link;
}

void
Node::connectEjection(OpticalLink *link, CreditSink *upstream,
                      int upstream_port)
{
    ejLink_ = link;
    ejUpstream_ = upstream;
    ejUpstreamPort_ = upstream_port;
    if (link != nullptr)
        link->setReceiver(this); // ejection wake edge (idle elision)
}

void
Node::enqueuePacket(PacketId id, NodeId dst, int len, Cycle now)
{
    flitizeScratch_.clear(); // keeps its capacity across packets
    flitizePacket(flitizeScratch_, id, id_, dst, len, now);
    for (const Flit &f : flitizeScratch_)
        sourceQueue_.push_back(f);
    packetsEnqueued_++;
    wakeAt(now); // injection wake edge: start serializing this cycle
}

void
Node::returnCredit(int, int vc, Cycle now)
{
    pendingCredits_.push_back(PendingCredit{vc, now + 1});
    wakeAt(now + 1); // credit wake edge: apply it on time if parked
}

double
Node::occupancyIntegral(int, Cycle) const
{
    return 0.0;
}

int
Node::bufferCapacity(int) const
{
    return params_.numVcs * params_.vcDepth;
}

void
Node::applyCredits(Cycle now)
{
    std::size_t i = 0;
    while (i < pendingCredits_.size()) {
        if (pendingCredits_[i].effective <= now) {
            int vc = pendingCredits_[i].vc;
            credits_[static_cast<std::size_t>(vc)]++;
            if (credits_[static_cast<std::size_t>(vc)] > params_.vcDepth)
                panic("Node %u: credit overflow on vc %d", id_, vc);
            pendingCredits_[i] = pendingCredits_.back();
            pendingCredits_.pop_back();
        } else {
            i++;
        }
    }
}

void
Node::drainEjection(Cycle now)
{
    if (ejLink_ == nullptr)
        return;
    ejLink_->drainArrivalsDue(now, [this, now](const Flit &flit) {
        // Immediately free the router-side credit for this flit.
        if (ejUpstream_ != nullptr)
            ejUpstream_->returnCredit(ejUpstreamPort_, flit.vc, now);
        if (flit.isPoison()) {
            // Synthetic tail closing a wormhole killed by a link
            // failure: frees resources but is not delivered data.
            poisonTails_++;
            return;
        }
        flitsEjected_++;
        if (flit.isTail()) {
            packetsEjected_++;
            if (sink_ != nullptr)
                sink_->packetEjected(flit, now);
        }
    });
}

int
Node::pickFreeVc()
{
    for (int i = 0; i < params_.numVcs; i++) {
        int vc = (nextVcRr_ + i) % params_.numVcs;
        if (credits_[static_cast<std::size_t>(vc)] > 0) {
            nextVcRr_ = (vc + 1) % params_.numVcs;
            return vc;
        }
    }
    return kInvalid;
}

void
Node::inject(Cycle now)
{
    if (injLink_ == nullptr)
        return;
    while (!sourceQueue_.empty() && injLink_->canAccept(now)) {
        Flit &front = sourceQueue_.front();
        int vc;
        if (front.isHead()) {
            if (currentVc_ != kInvalid)
                panic("Node %u: head while packet in progress", id_);
            vc = pickFreeVc();
            if (vc == kInvalid)
                return; // no credits on any VC
        } else {
            vc = currentVc_;
            if (vc == kInvalid)
                panic("Node %u: body flit without an active VC", id_);
            if (credits_[static_cast<std::size_t>(vc)] <= 0)
                return; // downstream buffer full
        }
        Flit flit = front;
        sourceQueue_.pop_front();
        flit.vc = static_cast<std::uint8_t>(vc);
        injLink_->accept(now, flit);
        credits_[static_cast<std::size_t>(vc)]--;
        flitsInjected_++;
        currentVc_ = flit.isTail() ? kInvalid : vc;
    }
}

void
Node::tick(Cycle now)
{
    if (!pendingCredits_.empty())
        applyCredits(now);
    drainEjection(now);
    inject(now);
}

Cycle
Node::nextWakeCycle(Cycle now)
{
    // An empty source queue implies no packet is mid-injection (whole
    // packets are enqueued atomically, so the last injected flit of a
    // drained queue was a tail), and pending credits are the only
    // other tick-visible state; everything else is the ejection link's
    // business.
    if (!sourceQueue_.empty() || !pendingCredits_.empty())
        return now + 1;
    return ejLink_ != nullptr ? ejLink_->nextReceiverEventCycle()
                              : kNeverCycle;
}

} // namespace oenet
