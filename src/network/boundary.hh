/**
 * @file
 * Deterministic boundary exchange for the sharded kernel.
 *
 * Every inter-router link is received through a two-piece proxy
 * instead of the destination router polling the link directly:
 *
 *   LinkShuttle       a Ticking in the *source* router's shard. Its
 *                     tick at cycle t pops every flit the link delivers
 *                     by t+1 and stages it into the channel — one cycle
 *                     ahead of arrival, which is exactly the phase
 *                     headroom the handoff needs (the link wakes it
 *                     with a one-cycle lead; see setReceiverWakeLead).
 *   BoundaryChannel   a phase-separated SPSC mailbox backed by
 *                     fixed-capacity ring slabs. The shuttle writes the
 *                     pending region during the parallel phase; the
 *                     driving thread publishes pending -> ready between
 *                     phases by advancing one index (no buffer copy or
 *                     allocation); the destination router drains the
 *                     ready region — at the flit's true arrival cycle —
 *                     during the next parallel phase. Credits ride a
 *                     second ring in the other direction.
 *
 * No payload atomics anywhere: the producer and consumer touch
 * disjoint index ranges in any given phase, and the kernel's phase
 * barrier supplies the happens-before edge across the publish.
 *
 * The proxy is used for every inter-router link at every shard count,
 * including --shards 1 and links whose endpoints share a shard: the
 * shuttle's poll of hasArrival(now + 1) is what fixes the link walk's
 * RNG draw cycles and trace emission points, so it can never be
 * bypassed. What *is* specialized is the publication machinery. A link
 * whose endpoints share a shard runs in **direct mode** (setDirect):
 * staged flits are published immediately (the destination router ticks
 * before the shuttle within a cycle, so it cannot observe them early),
 * credits forward synchronously (they are time-stamped, so application
 * timing is unchanged), and the per-cycle swap/drain hooks skip the
 * edge entirely. The call sequence seen by the link, the routers, and
 * the RNG streams is byte-for-byte identical in both modes; see
 * DESIGN.md section 11 and docs/DETERMINISM.md section 5.
 *
 * Delivery timing is unchanged from a direct receiver in either mode:
 * a flit accepted at t with arrival t+k is staged at t+k-1 and drained
 * at t+k; a credit returned at t applies at t+1.
 */

#ifndef OENET_NETWORK_BOUNDARY_HH
#define OENET_NETWORK_BOUNDARY_HH

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"
#include "link/endpoints.hh"
#include "link/link.hh"
#include "router/flit.hh"
#include "sim/kernel.hh"

namespace oenet {

/**
 * Phase-separated SPSC mailbox between one inter-router link's shuttle
 * (producer, source shard) and its destination router (consumer,
 * destination shard). Also carries the reverse credit stream, with the
 * roles swapped. All methods are phase-bound — see each one's comment
 * for which thread may call it when; none of them synchronize.
 *
 * Storage is two fixed ring slabs addressed by monotonically
 * increasing indices masked on access: head <= readyEnd <= pendEnd.
 * Staging writes slab[pendEnd++ & mask]; publishing is readyEnd =
 * pendEnd; draining reads slab[head++ & mask]. Capacities are hard
 * bounds from the protocol (the link's in-flight ring caps arrivals
 * per cycle; switch allocation returns at most one credit per input
 * port per cycle), so overflow is a bug and panics.
 */
class BoundaryChannel final : public CreditSink
{
  public:
    /** @param upstream the source router (credit sink) and
     *  @param src_port its output port feeding the link. */
    BoundaryChannel(OpticalLink *link, CreditSink *upstream, int src_port)
        : link_(link), upstream_(upstream), srcPort_(src_port)
    {
    }

    /**
     * Switch to direct (same-shard) mode: stageArrival/stageFailure
     * publish immediately and returnCredit forwards synchronously, so
     * the channel needs no per-cycle swap or drain. Only legal when
     * producer and consumer run on the same thread (the shuttle ticks
     * after the destination router, the upstream router's credit
     * application is stamped) — Network::configureSharding sets it for
     * every edge whose endpoints share a shard. Configuration-time
     * only, before the first cycle.
     */
    void setDirect() { direct_ = true; }
    bool direct() const { return direct_; }

    // --- producer side: source shard's thread, parallel phase ---

    /** Stage a flit for delivery at the start of the next cycle
     *  (published immediately in direct mode). */
    void stageArrival(const Flit &flit)
    {
        if (pendEnd_ - head_ >= kArrivalCap)
            panic("BoundaryChannel %s: arrival ring overflow",
                  link_->name().c_str());
        arrivals_[pendEnd_++ & kArrivalMask] = flit;
        if (direct_)
            readyEnd_ = pendEnd_;
        else
            arrivalsDirty_ = true;
    }

    /** Stage the link's hard failure (staged once, by the shuttle). */
    void stageFailure()
    {
        if (direct_) {
            // The only reader (the destination router) ticked before
            // the shuttle this cycle, so it first observes the flag
            // next cycle — the same cycle the swap would publish it.
            failed_ = true;
        } else {
            pendingFailed_ = true;
            arrivalsDirty_ = true;
        }
    }

    // --- consumer side: destination shard's thread, parallel phase ---

    bool hasReadyArrival() const { return head_ != readyEnd_; }

    /** Pop the oldest ready flit. @pre hasReadyArrival(). */
    const Flit &popReadyArrival() { return arrivals_[head_++ & kArrivalMask]; }

    /** True once the link's hard failure has propagated (from the
     *  exact cycle a direct receiver would observe it). */
    bool failed() const { return failed_; }

    /** CreditSink: the destination router frees a buffer slot at
     *  @p now; the credit reaches the source router next cycle's
     *  pre-pass (synchronously in direct mode — either way it is
     *  stamped @p now and applies at now+1, as with a direct call). */
    void returnCredit(int port, int vc, Cycle now) override
    {
        (void)port;
        if (direct_) {
            upstream_->returnCredit(srcPort_, vc, now);
            return;
        }
        if (credPendEnd_ - credHead_ >= kCreditCap)
            panic("BoundaryChannel %s: credit ring overflow",
                  link_->name().c_str());
        credits_[credPendEnd_++ & kCreditMask] = StagedCredit{vc, now};
        creditsDirty_ = true;
    }

    // --- source shard's thread, pre-pass (cross-shard mode only) ---

    /** Forward every ready credit to the source router, stamped with
     *  its original return cycle (so it applies at that cycle + 1). */
    void drainCredits()
    {
        while (credHead_ != credReadyEnd_) {
            const StagedCredit &c = credits_[credHead_++ & kCreditMask];
            upstream_->returnCredit(srcPort_, c.vc, c.at);
        }
    }

    // --- destination shard's thread, pre-pass (cross-shard mode only) ---

    /** True if the ready side carries anything the destination router
     *  must tick for (flits, or a just-propagated failure); clears the
     *  failure edge. The caller wakes the router at the current
     *  cycle. */
    bool takeDeliveryEdge()
    {
        bool any = hasReadyArrival() || failEdge_;
        failEdge_ = false;
        return any;
    }

    // --- driving thread, between phases (cross-shard mode only) ---

    /** True if the shuttle staged flits or a failure this cycle. */
    bool arrivalsDirty() const { return arrivalsDirty_; }

    /** True if the destination router staged credits this cycle. */
    bool creditsDirty() const { return creditsDirty_; }

    /** True if either side staged something this cycle. */
    bool dirty() const { return arrivalsDirty_ || creditsDirty_; }

    /** Publish the pending region: staged flits/credits/failure become
     *  ready for the next cycle's consumers. An index flip, no copy.
     *  @pre the previous ready region was fully drained (the pre-pass
     *  wake guarantees it). */
    void swapBuffers();

    // --- any thread between steps (driving thread) ---

    /** Flits staged in the mailbox (in neither the link nor a router
     *  buffer); counted by Network::flitsInSystem. */
    int staged() const { return static_cast<int>(pendEnd_ - head_); }

    OpticalLink *link() const { return link_; }

  private:
    struct StagedCredit
    {
        int vc;
        Cycle at; ///< cycle the destination router returned it
    };

    // Ring capacities. Arrivals: the shuttle stages at most one link
    // ring's worth (kInflightCap) per tick and the ready region is
    // drained before the next publish, so 2 * kInflightCap bounds the
    // live range. Credits: switch allocation returns at most one
    // credit per input port per cycle, so pending + ready <= 2.
    static constexpr std::uint32_t kArrivalCap = 32;
    static constexpr std::uint32_t kArrivalMask = kArrivalCap - 1;
    static constexpr std::uint32_t kCreditCap = 8;
    static constexpr std::uint32_t kCreditMask = kCreditCap - 1;
    static_assert((kArrivalCap & kArrivalMask) == 0);
    static_assert(static_cast<int>(kArrivalCap) >=
                  2 * OpticalLink::kInflightCap);
    static_assert((kCreditCap & kCreditMask) == 0);

    OpticalLink *link_;
    CreditSink *upstream_;
    int srcPort_;
    bool direct_ = false;

    // Flit direction (written by producer, drained by consumer).
    // Monotonic indices, masked on access: head_ <= readyEnd_ <= pendEnd_.
    Flit arrivals_[kArrivalCap];
    std::uint32_t head_ = 0;
    std::uint32_t readyEnd_ = 0;
    std::uint32_t pendEnd_ = 0;
    bool arrivalsDirty_ = false;
    bool pendingFailed_ = false;

    // Credit direction (written by consumer, drained by producer).
    StagedCredit credits_[kCreditCap];
    std::uint32_t credHead_ = 0;
    std::uint32_t credReadyEnd_ = 0;
    std::uint32_t credPendEnd_ = 0;
    bool creditsDirty_ = false;

    // Failure propagation (published by swapBuffers; direct mode sets
    // failed_ immediately — see stageFailure).
    bool failed_ = false;
    bool failEdge_ = false;
};

/**
 * The inter-router link's registered receiver: runs in the source
 * router's shard and ferries deliveries into the BoundaryChannel one
 * cycle before their arrival stamp. Polling arrivals due by now + 1
 * makes the shuttle a faithful image of a direct every-cycle receiver
 * shifted one cycle early, so the link's lazy fault/replay walk — and
 * every RNG draw and trace emission it performs — happens at the same
 * simulated cycles as it would for a direct receiver. Identical in
 * both channel modes; in direct mode the shuttle additionally issues
 * the destination router's delivery wake itself (a same-domain wake at
 * now + 1, the cycle the cross-shard pre-pass would have issued it).
 */
class LinkShuttle final : public Ticking
{
  public:
    LinkShuttle(OpticalLink *link, BoundaryChannel *channel)
        : link_(link), channel_(channel)
    {
    }

    /** Direct-mode wake target (the destination router); set together
     *  with BoundaryChannel::setDirect. Configuration-time only. */
    void setDirectDst(Ticking *dst) { directDst_ = dst; }

    void tick(Cycle now) override
    {
        int staged = link_->drainArrivalsDue(
            now + 1, [this](const Flit &f) { channel_->stageArrival(f); });
        bool edge = staged > 0;
        if (link_->isFailed() && !failStaged_) {
            failStaged_ = true;
            channel_->stageFailure();
            edge = true;
        }
        if (edge && directDst_ != nullptr)
            directDst_->wakeAt(now + 1);
    }

    Cycle nextWakeCycle(Cycle now) override
    {
        Cycle event = link_->nextReceiverEventCycle();
        if (event == kNeverCycle)
            return kNeverCycle;
        // One cycle ahead of the event, matching the link's wake lead;
        // everything due by now+1 was just drained, so this is always
        // in the future.
        return event > now + 1 ? event - 1 : now + 1;
    }

  private:
    OpticalLink *link_;
    BoundaryChannel *channel_;
    Ticking *directDst_ = nullptr;
    bool failStaged_ = false;
};

} // namespace oenet

#endif // OENET_NETWORK_BOUNDARY_HH
