/**
 * @file
 * Deterministic boundary exchange for the sharded kernel.
 *
 * Every inter-router link is received through a two-piece proxy
 * instead of the destination router polling the link directly:
 *
 *   LinkShuttle       a Ticking in the *source* router's shard. Its
 *                     tick at cycle t pops every flit the link delivers
 *                     by t+1 and stages it into the channel — one cycle
 *                     ahead of arrival, which is exactly the phase
 *                     headroom the handoff needs (the link wakes it
 *                     with a one-cycle lead; see setReceiverWakeLead).
 *   BoundaryChannel   a double-buffered SPSC mailbox. The shuttle
 *                     writes the pending side during the parallel
 *                     phase; the driving thread swaps pending->ready
 *                     between phases; the destination router drains
 *                     the ready side — at the flit's true arrival
 *                     cycle — during the next parallel phase. Credits
 *                     ride the same mailbox in the other direction.
 *
 * No payload atomics anywhere: the producer and consumer touch
 * different buffers in any given phase, and the kernel's phase barrier
 * supplies the happens-before edge across the swap.
 *
 * The proxy is used for every inter-router link at every shard count,
 * including --shards 1 and links whose endpoints share a shard. That
 * uniformity is what makes output byte-identical at any shard count:
 * the per-link call sequence is the same by construction, so nothing
 * about timing, RNG draw order, or trace emission depends on where the
 * partition fell. Delivery timing is unchanged from a direct receiver:
 * a flit accepted at t with arrival t+k is staged at t+k-1 and drained
 * at t+k; a credit returned at t is forwarded in the t+1 pre-pass and
 * applied at t+1. See DESIGN.md section 11 and docs/DETERMINISM.md.
 */

#ifndef OENET_NETWORK_BOUNDARY_HH
#define OENET_NETWORK_BOUNDARY_HH

#include <vector>

#include "common/types.hh"
#include "link/endpoints.hh"
#include "link/link.hh"
#include "router/flit.hh"
#include "sim/kernel.hh"

namespace oenet {

/**
 * Phase-separated SPSC mailbox between one inter-router link's shuttle
 * (producer, source shard) and its destination router (consumer,
 * destination shard). Also carries the reverse credit stream, with the
 * roles swapped. All methods are phase-bound — see each one's comment
 * for which thread may call it when; none of them synchronize.
 */
class BoundaryChannel final : public CreditSink
{
  public:
    /** @param upstream the source router (credit sink) and
     *  @param src_port its output port feeding the link. */
    BoundaryChannel(OpticalLink *link, CreditSink *upstream, int src_port)
        : link_(link), upstream_(upstream), srcPort_(src_port)
    {
    }

    // --- producer side: source shard's thread, parallel phase ---

    /** Stage a flit for delivery at the start of the next cycle. */
    void stageArrival(const Flit &flit)
    {
        pendingArrivals_.push_back(flit);
        arrivalsDirty_ = true;
    }

    /** Stage the link's hard failure (staged once, by the shuttle). */
    void stageFailure()
    {
        pendingFailed_ = true;
        arrivalsDirty_ = true;
    }

    // --- consumer side: destination shard's thread, parallel phase ---

    bool hasReadyArrival() const
    {
        return readyHead_ < readyArrivals_.size();
    }

    /** Pop the oldest ready flit. @pre hasReadyArrival(). */
    const Flit &popReadyArrival() { return readyArrivals_[readyHead_++]; }

    /** True once the link's hard failure has propagated (from the
     *  exact cycle a direct receiver would observe it). */
    bool failed() const { return failed_; }

    /** CreditSink: the destination router frees a buffer slot at
     *  @p now; the credit reaches the source router next cycle's
     *  pre-pass and applies at now+1, as with a direct call. */
    void returnCredit(int port, int vc, Cycle now) override
    {
        (void)port;
        pendingCredits_.push_back(StagedCredit{vc, now});
        creditsDirty_ = true;
    }

    // --- source shard's thread, pre-pass ---

    /** Forward every ready credit to the source router, stamped with
     *  its original return cycle (so it applies at that cycle + 1). */
    void drainCredits()
    {
        for (const StagedCredit &c : readyCredits_)
            upstream_->returnCredit(srcPort_, c.vc, c.at);
        readyCredits_.clear();
    }

    // --- destination shard's thread, pre-pass ---

    /** True if the ready side carries anything the destination router
     *  must tick for (flits, or a just-propagated failure); clears the
     *  failure edge. The caller wakes the router at the current
     *  cycle. */
    bool takeDeliveryEdge()
    {
        bool any = hasReadyArrival() || failEdge_;
        failEdge_ = false;
        return any;
    }

    // --- driving thread, between phases ---

    /** True if the shuttle staged flits or a failure this cycle. */
    bool arrivalsDirty() const { return arrivalsDirty_; }

    /** True if the destination router staged credits this cycle. */
    bool creditsDirty() const { return creditsDirty_; }

    /** True if either side staged something this cycle. */
    bool dirty() const { return arrivalsDirty_ || creditsDirty_; }

    /** Publish the pending side: staged flits/credits/failure become
     *  ready for the next cycle's consumers. @pre the previous ready
     *  side was fully drained (the pre-pass wake guarantees it). */
    void swapBuffers();

    // --- any thread between steps (driving thread) ---

    /** Flits staged in the mailbox (in neither the link nor a router
     *  buffer); counted by Network::flitsInSystem. */
    int staged() const
    {
        return static_cast<int>(pendingArrivals_.size() +
                                (readyArrivals_.size() - readyHead_));
    }

    OpticalLink *link() const { return link_; }

  private:
    struct StagedCredit
    {
        int vc;
        Cycle at; ///< cycle the destination router returned it
    };

    OpticalLink *link_;
    CreditSink *upstream_;
    int srcPort_;

    // Flit direction (written by producer, drained by consumer).
    std::vector<Flit> pendingArrivals_;
    std::vector<Flit> readyArrivals_;
    std::size_t readyHead_ = 0;
    bool arrivalsDirty_ = false;
    bool pendingFailed_ = false;

    // Credit direction (written by consumer, drained by producer).
    std::vector<StagedCredit> pendingCredits_;
    std::vector<StagedCredit> readyCredits_;
    bool creditsDirty_ = false;

    // Failure propagation (published by swapBuffers).
    bool failed_ = false;
    bool failEdge_ = false;
};

/**
 * The inter-router link's registered receiver: runs in the source
 * router's shard and ferries deliveries into the BoundaryChannel one
 * cycle before their arrival stamp. Polling hasArrival(now + 1) makes
 * the shuttle a faithful image of a direct every-cycle receiver
 * shifted one cycle early, so the link's lazy fault/replay walk — and
 * every RNG draw and trace emission it performs — happens at the same
 * simulated cycles as it would for a direct receiver.
 */
class LinkShuttle final : public Ticking
{
  public:
    LinkShuttle(OpticalLink *link, BoundaryChannel *channel)
        : link_(link), channel_(channel)
    {
    }

    void tick(Cycle now) override
    {
        while (link_->hasArrival(now + 1))
            channel_->stageArrival(link_->popArrival(now + 1));
        if (link_->isFailed() && !failStaged_) {
            failStaged_ = true;
            channel_->stageFailure();
        }
    }

    Cycle nextWakeCycle(Cycle now) override
    {
        Cycle event = link_->nextReceiverEventCycle();
        if (event == kNeverCycle)
            return kNeverCycle;
        // One cycle ahead of the event, matching the link's wake lead;
        // everything due by now+1 was just drained, so this is always
        // in the future.
        return event > now + 1 ? event - 1 : now + 1;
    }

  private:
    OpticalLink *link_;
    BoundaryChannel *channel_;
    bool failStaged_ = false;
};

} // namespace oenet

#endif // OENET_NETWORK_BOUNDARY_HH
