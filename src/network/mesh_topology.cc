#include <cstdlib>

#include "common/log.hh"
#include "network/topology.hh"

namespace oenet {

MeshTopology::MeshTopology(int mesh_x, int mesh_y,
                           int nodes_per_cluster)
    : meshX_(mesh_x), meshY_(mesh_y), clusterSize_(nodes_per_cluster)
{
    if (mesh_x < 1 || mesh_y < 1)
        fatal("MeshTopology: mesh dimensions must be >= 1 (%dx%d)",
              mesh_x, mesh_y);
    if (nodes_per_cluster < 1)
        fatal("MeshTopology: need at least one node per cluster");
}

int
MeshTopology::routerOf(NodeId node) const
{
    int router = static_cast<int>(node) / clusterSize_;
    if (router >= numRouters())
        panic("MeshTopology: node %u out of range", node);
    return router;
}

PortId
MeshTopology::attachPort(NodeId node) const
{
    return PortId(static_cast<int>(node) % clusterSize_);
}

NodeId
MeshTopology::nodeAt(int router, int local) const
{
    if (router < 0 || router >= numRouters() || local < 0 ||
        local >= clusterSize_)
        panic("MeshTopology: bad (router %d, local %d)", router,
              local);
    return static_cast<NodeId>(router * clusterSize_ + local);
}

bool
MeshTopology::hasNeighbor(int x, int y, Direction dir) const
{
    switch (dir) {
      case Direction::kEast:
        return x + 1 < meshX_;
      case Direction::kWest:
        return x > 0;
      case Direction::kNorth:
        return y > 0;
      case Direction::kSouth:
        return y + 1 < meshY_;
    }
    panic("MeshTopology: bad direction %d", static_cast<int>(dir));
}

int
MeshTopology::neighborRouter(int x, int y, Direction dir) const
{
    if (!hasNeighbor(x, y, dir))
        panic("MeshTopology: no %s neighbor at (%d, %d)",
              directionName(dir), x, y);
    switch (dir) {
      case Direction::kEast:
        return routerAt(x + 1, y);
      case Direction::kWest:
        return routerAt(x - 1, y);
      case Direction::kNorth:
        return routerAt(x, y - 1);
      case Direction::kSouth:
        return routerAt(x, y + 1);
    }
    panic("MeshTopology: bad direction %d", static_cast<int>(dir));
}

void
MeshTopology::appendRouterLinks(std::vector<LinkSpec> &out) const
{
    // One link per (router, direction) that exists; a torus overrides
    // hasNeighbor/neighborRouter so the same loop emits wrap links.
    for (int r = 0; r < numRouters(); r++) {
        int x = routerX(r);
        int y = routerY(r);
        for (Direction d : kAllDirs) {
            if (!hasNeighbor(x, y, d))
                continue;
            LinkSpec s;
            s.kind = LinkKind::kInterRouter;
            s.srcRouter = r;
            s.srcPort = dirPort(d);
            s.dstRouter = neighborRouter(x, y, d);
            s.dstPort = dirPort(opposite(d));
            s.name = "rt.r" + std::to_string(r) + "." +
                     directionName(d);
            out.push_back(s);
        }
    }
}

PortId
MeshTopology::routeXy(int x, int y, NodeId dst) const
{
    int router = routerOf(dst);
    int dx = routerX(router);
    int dy = routerY(router);
    if (dx > x)
        return dirPort(Direction::kEast);
    if (dx < x)
        return dirPort(Direction::kWest);
    if (dy < y)
        return dirPort(Direction::kNorth);
    if (dy > y)
        return dirPort(Direction::kSouth);
    return attachPort(dst);
}

PortId
MeshTopology::routeYx(int x, int y, NodeId dst) const
{
    int router = routerOf(dst);
    int dx = routerX(router);
    int dy = routerY(router);
    if (dy < y)
        return dirPort(Direction::kNorth);
    if (dy > y)
        return dirPort(Direction::kSouth);
    if (dx > x)
        return dirPort(Direction::kEast);
    if (dx < x)
        return dirPort(Direction::kWest);
    return attachPort(dst);
}

int
MeshTopology::routeCandidates(RoutingAlgo algo, int router, NodeId dst,
                              RouteOption out[kMaxRouteCandidates])
    const
{
    int x = routerX(router);
    int y = routerY(router);
    switch (algo) {
      case RoutingAlgo::kXY:
        out[0] = {routeXy(x, y, dst), kAnyVcClass};
        return 1;
      case RoutingAlgo::kYX:
        out[0] = {routeYx(x, y, dst), kAnyVcClass};
        return 1;
      case RoutingAlgo::kWestFirst:
        break;
      default:
        panic("routeCandidates: bad algorithm");
    }

    int rack = routerOf(dst);
    int dx = routerX(rack) - x;
    int dy = routerY(rack) - y;
    if (dx == 0 && dy == 0) {
        out[0] = {attachPort(dst), kAnyVcClass};
        return 1;
    }
    // West-first turn model: all westward hops must come first (no
    // turn into west is ever allowed), so a west-bound packet has a
    // single choice; afterwards east/north/south are freely adaptive.
    if (dx < 0) {
        out[0] = {dirPort(Direction::kWest), kAnyVcClass};
        return 1;
    }
    int n = 0;
    if (dx > 0)
        out[n++] = {dirPort(Direction::kEast), kAnyVcClass};
    if (dy < 0)
        out[n++] = {dirPort(Direction::kNorth), kAnyVcClass};
    else if (dy > 0)
        out[n++] = {dirPort(Direction::kSouth), kAnyVcClass};
    return n;
}

int
MeshTopology::hopCount(NodeId src, NodeId dst) const
{
    int rs = routerOf(src);
    int rd = routerOf(dst);
    return std::abs(routerX(rs) - routerX(rd)) +
           std::abs(routerY(rs) - routerY(rd)) + 1;
}

} // namespace oenet
