#include "policy/history_dvs.hh"

#include "common/log.hh"

namespace oenet {

const char *
levelDecisionName(LevelDecision decision)
{
    switch (decision) {
      case LevelDecision::kHold:
        return "hold";
      case LevelDecision::kUp:
        return "up";
      case LevelDecision::kDown:
        return "down";
    }
    panic("levelDecisionName: bad decision");
}

HistoryDvsPolicy::HistoryDvsPolicy(const HistoryDvsParams &params)
    : params_(params)
{
    if (params_.slidingWindows < 1)
        fatal("HistoryDvsPolicy: sliding window depth must be >= 1");
    if (params_.thLowUncongested > params_.thHighUncongested ||
        params_.thLowCongested > params_.thHighCongested)
        fatal("HistoryDvsPolicy: T_L must not exceed T_H");
    history_.assign(static_cast<std::size_t>(params_.slidingWindows),
                    0.0);
}

void
HistoryDvsPolicy::observe(double lu)
{
    history_[static_cast<std::size_t>(head_)] = lu;
    head_ = (head_ + 1) % params_.slidingWindows;
    if (count_ < params_.slidingWindows)
        count_++;
}

double
HistoryDvsPolicy::averageUtilization() const
{
    if (count_ == 0)
        return 0.0;
    double sum = 0.0;
    for (int i = 0; i < count_; i++)
        sum += history_[static_cast<std::size_t>(
            (head_ - 1 - i + params_.slidingWindows * 2) %
            params_.slidingWindows)];
    return sum / count_;
}

double
HistoryDvsPolicy::lowThreshold(double bu) const
{
    return bu >= params_.buCongested ? params_.thLowCongested
                                     : params_.thLowUncongested;
}

double
HistoryDvsPolicy::highThreshold(double bu) const
{
    return bu >= params_.buCongested ? params_.thHighCongested
                                     : params_.thHighUncongested;
}

LevelDecision
HistoryDvsPolicy::decide(double bu) const
{
    double lu = averageUtilization();
    if (lu > highThreshold(bu))
        return LevelDecision::kUp;
    if (lu < lowThreshold(bu))
        return LevelDecision::kDown;
    return LevelDecision::kHold;
}

void
HistoryDvsPolicy::reset()
{
    std::fill(history_.begin(), history_.end(), 0.0);
    head_ = 0;
    count_ = 0;
}

} // namespace oenet
