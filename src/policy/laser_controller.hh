/**
 * @file
 * External laser source controller (Section 3.3, modulator scheme with
 * multiple optical power levels).
 *
 * The VOAs in the external laser chassis respond in ~100 us, so optical
 * levels move on a far slower time scale than the electrical bit rate.
 * Per fiber (link) the controller:
 *
 *  - P_inc: when the link policy wants a bit rate above what the
 *    current optical level sustains, a raise request goes out
 *    immediately; the electrical bit rate and voltage stay put until
 *    the light arrives (one response time later), then the electrical
 *    upgrade may proceed;
 *  - P_dec: every decision epoch (200 us) the controller checks whether
 *    the bit rate stayed low enough for the next level down during the
 *    *entire* epoch; if so the optical power is halved.
 */

#ifndef OENET_POLICY_LASER_CONTROLLER_HH
#define OENET_POLICY_LASER_CONTROLLER_HH

#include "common/types.hh"
#include "common/units.hh"
#include "phy/laser_source.hh"

namespace oenet {

class FaultInjector;
class TraceSink;

/** What a P_inc request did (feeds controller stats and tracing). */
enum class LaserRequestOutcome
{
    kDispatched, ///< a one-level increase is now in flight
    kPreempted,  ///< a pending decrease was cancelled; the level still
                 ///< in force is the top, so no increase is needed
    kPreemptedAndDispatched, ///< decrease cancelled *and* an increase
                             ///< dispatched in its place
    kAlreadyRising,          ///< an increase is already in flight;
                             ///< this request folded into it
    kAtMax,                  ///< already at the top optical level
};

class LaserPowerState
{
  public:
    struct Params
    {
        Cycle responseCycles = microsToCycles(100.0); ///< VOA response
        Cycle decisionEpochCycles = microsToCycles(200.0); ///< P_dec epoch
    };

    LaserPowerState();
    explicit LaserPowerState(const Params &params,
                             OpticalLevel initial = OpticalLevel::kHigh);

    /** Optical level currently delivered (after advance()). */
    OpticalLevel level() const { return level_; }

    /** Fraction of full optical power currently delivered. */
    double scale() const { return opticalLevelFraction(level_); }

    /** True while a VOA change is in flight. */
    bool changePending() const { return pending_; }

    /** The lowest optical level that may be in force now or once the
     *  pending change lands — the level electrical upgrades must be
     *  gated against so a scheduled P_dec cannot strand a fast link
     *  without light. */
    OpticalLevel guaranteedLevel() const
    {
        if (pending_ && static_cast<int>(pendingLevel_) <
                            static_cast<int>(level_))
            return pendingLevel_;
        return level_;
    }

    /** Apply a pending change whose response time has elapsed.
     *  @return true if the level changed. */
    bool advance(Cycle now);

    /** P_inc: request one level up; immediate dispatch, takes effect
     *  one response time later. A *pending decrease is preempted*: the
     *  scheduled step-down is cancelled (the light never dropped) and,
     *  if the preserved level is still below the top, the increase is
     *  dispatched in its place — a demand spike must never wait out a
     *  VOA ramp scheduled in the opposite direction. A request while an
     *  increase is already in flight folds into it (counted in
     *  increasesDropped()). No-op at the top level. */
    LaserRequestOutcome requestIncrease(Cycle now);

    /** Record the electrical bit rate seen during this epoch (called at
     *  every policy window). */
    void observeBitRate(double br_gbps);

    /** P_dec evaluation at an epoch boundary: step the optical power
     *  down iff the whole epoch's bit rates fit the next level down.
     *  @return true if a decrease was dispatched. */
    bool epochDecision(Cycle now);

    /**
     * Attach the fault injector: every dispatched VOA command is then
     * subject to control-plane faults — delayed (response time times
     * voaDelayFactor) or lost outright, in which case the controller
     * re-issues it when the voaTimeoutCycles watchdog expires.
     */
    void setFault(FaultInjector *faults, int link_id);

    /** Attach an event sink for VOA fault events (null detaches). */
    void setTrace(TraceSink *sink, int link_id);

    std::uint64_t increases() const { return increases_; }
    std::uint64_t decreases() const { return decreases_; }

    /** Commands that drew a delayed VOA response. */
    std::uint64_t voaDelayed() const { return voaDelayed_; }

    /** Commands lost in the control plane. */
    std::uint64_t voaLost() const { return voaLost_; }

    /** Lost commands re-issued after the watchdog timeout. */
    std::uint64_t voaRetries() const { return voaRetries_; }

    /** Increase requests folded into an already-pending increase. */
    std::uint64_t increasesDropped() const { return increasesDropped_; }

    /** Pending decreases cancelled by an increase request. */
    std::uint64_t decreasesPreempted() const
    {
        return decreasesPreempted_;
    }

    const Params &params() const { return params_; }

  private:
    /** Start (or restart) the pending change's delivery clock at
     *  @p at, drawing a control-plane fault if an injector is
     *  attached. */
    void armPending(Cycle at);

    Params params_;
    OpticalLevel level_;
    bool pending_ = false;
    OpticalLevel pendingLevel_ = OpticalLevel::kHigh;
    Cycle pendingReady_ = 0;
    bool lost_ = false; ///< pending command lost; pendingReady_ is the
                        ///< re-issue watchdog, not a delivery time
    double epochMaxBr_ = 0.0;
    FaultInjector *faults_ = nullptr;
    int faultId_ = kInvalid;
    TraceSink *traceSink_ = nullptr;
    int traceId_ = kInvalid;
    std::uint64_t increases_ = 0;
    std::uint64_t decreases_ = 0;
    std::uint64_t increasesDropped_ = 0;
    std::uint64_t decreasesPreempted_ = 0;
    std::uint64_t voaDelayed_ = 0;
    std::uint64_t voaLost_ = 0;
    std::uint64_t voaRetries_ = 0;
};

} // namespace oenet

#endif // OENET_POLICY_LASER_CONTROLLER_HH
