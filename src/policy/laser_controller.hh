/**
 * @file
 * External laser source controller (Section 3.3, modulator scheme with
 * multiple optical power levels).
 *
 * The VOAs in the external laser chassis respond in ~100 us, so optical
 * levels move on a far slower time scale than the electrical bit rate.
 * Per fiber (link) the controller:
 *
 *  - P_inc: when the link policy wants a bit rate above what the
 *    current optical level sustains, a raise request goes out
 *    immediately; the electrical bit rate and voltage stay put until
 *    the light arrives (one response time later), then the electrical
 *    upgrade may proceed;
 *  - P_dec: every decision epoch (200 us) the controller checks whether
 *    the bit rate stayed low enough for the next level down during the
 *    *entire* epoch; if so the optical power is halved.
 */

#ifndef OENET_POLICY_LASER_CONTROLLER_HH
#define OENET_POLICY_LASER_CONTROLLER_HH

#include "common/types.hh"
#include "common/units.hh"
#include "phy/laser_source.hh"

namespace oenet {

class LaserPowerState
{
  public:
    struct Params
    {
        Cycle responseCycles = microsToCycles(100.0); ///< VOA response
        Cycle decisionEpochCycles = microsToCycles(200.0); ///< P_dec epoch
    };

    LaserPowerState();
    explicit LaserPowerState(const Params &params,
                             OpticalLevel initial = OpticalLevel::kHigh);

    /** Optical level currently delivered (after advance()). */
    OpticalLevel level() const { return level_; }

    /** Fraction of full optical power currently delivered. */
    double scale() const { return opticalLevelFraction(level_); }

    /** True while a VOA change is in flight. */
    bool changePending() const { return pending_; }

    /** The lowest optical level that may be in force now or once the
     *  pending change lands — the level electrical upgrades must be
     *  gated against so a scheduled P_dec cannot strand a fast link
     *  without light. */
    OpticalLevel guaranteedLevel() const
    {
        if (pending_ && static_cast<int>(pendingLevel_) <
                            static_cast<int>(level_))
            return pendingLevel_;
        return level_;
    }

    /** Apply a pending change whose response time has elapsed.
     *  @return true if the level changed. */
    bool advance(Cycle now);

    /** P_inc: request one level up; immediate dispatch, takes effect
     *  one response time later. No-op if already at the top or a change
     *  is pending. */
    void requestIncrease(Cycle now);

    /** Record the electrical bit rate seen during this epoch (called at
     *  every policy window). */
    void observeBitRate(double br_gbps);

    /** P_dec evaluation at an epoch boundary: step the optical power
     *  down iff the whole epoch's bit rates fit the next level down. */
    void epochDecision(Cycle now);

    std::uint64_t increases() const { return increases_; }
    std::uint64_t decreases() const { return decreases_; }

    const Params &params() const { return params_; }

  private:
    Params params_;
    OpticalLevel level_;
    bool pending_ = false;
    OpticalLevel pendingLevel_ = OpticalLevel::kHigh;
    Cycle pendingReady_ = 0;
    double epochMaxBr_ = 0.0;
    std::uint64_t increases_ = 0;
    std::uint64_t decreases_ = 0;
};

} // namespace oenet

#endif // OENET_POLICY_LASER_CONTROLLER_HH
