#include "policy/laser_controller.hh"

#include "common/log.hh"

namespace oenet {

LaserPowerState::LaserPowerState()
    : LaserPowerState(Params{}, OpticalLevel::kHigh)
{
}

LaserPowerState::LaserPowerState(const Params &params, OpticalLevel initial)
    : params_(params), level_(initial)
{
    if (params_.responseCycles == 0)
        warn("LaserPowerState: zero VOA response time");
}

bool
LaserPowerState::advance(Cycle now)
{
    if (!pending_ || now < pendingReady_)
        return false;
    bool changed = pendingLevel_ != level_;
    level_ = pendingLevel_;
    pending_ = false;
    return changed;
}

LaserRequestOutcome
LaserPowerState::requestIncrease(Cycle now)
{
    bool preempted = false;
    if (pending_) {
        if (static_cast<int>(pendingLevel_) >=
            static_cast<int>(level_)) {
            // An increase is already racing the VOA; asking again
            // cannot make the light arrive sooner.
            increasesDropped_++;
            return LaserRequestOutcome::kAlreadyRising;
        }
        // A decrease is scheduled but has not landed: the fiber still
        // carries level_, so cancelling restores full service
        // immediately instead of starving the link through the whole
        // response time (the pre-fix behavior dropped the request).
        pending_ = false;
        decreasesPreempted_++;
        preempted = true;
    }
    if (level_ == OpticalLevel::kHigh) {
        return preempted ? LaserRequestOutcome::kPreempted
                         : LaserRequestOutcome::kAtMax;
    }
    pending_ = true;
    pendingLevel_ = static_cast<OpticalLevel>(static_cast<int>(level_) + 1);
    pendingReady_ = now + params_.responseCycles;
    increases_++;
    return preempted ? LaserRequestOutcome::kPreemptedAndDispatched
                     : LaserRequestOutcome::kDispatched;
}

void
LaserPowerState::observeBitRate(double br_gbps)
{
    if (br_gbps > epochMaxBr_)
        epochMaxBr_ = br_gbps;
}

bool
LaserPowerState::epochDecision(Cycle now)
{
    bool dispatched = false;
    if (!pending_ && level_ != OpticalLevel::kLow) {
        auto lower =
            static_cast<OpticalLevel>(static_cast<int>(level_) - 1);
        if (epochMaxBr_ <= maxBitRateForLevel(lower)) {
            pending_ = true;
            pendingLevel_ = lower;
            pendingReady_ = now + params_.responseCycles;
            decreases_++;
            dispatched = true;
        }
    }
    epochMaxBr_ = 0.0;
    return dispatched;
}

} // namespace oenet
