#include "policy/laser_controller.hh"

#include "common/log.hh"
#include "fault/fault_injector.hh"
#include "trace/trace.hh"

namespace oenet {

LaserPowerState::LaserPowerState()
    : LaserPowerState(Params{}, OpticalLevel::kHigh)
{
}

LaserPowerState::LaserPowerState(const Params &params, OpticalLevel initial)
    : params_(params), level_(initial)
{
    if (params_.responseCycles == 0)
        warn("LaserPowerState: zero VOA response time");
}

void
LaserPowerState::setFault(FaultInjector *faults, int link_id)
{
    faults_ = faults;
    faultId_ = link_id;
}

void
LaserPowerState::setTrace(TraceSink *sink, int link_id)
{
    traceSink_ = sink;
    traceId_ = link_id;
}

void
LaserPowerState::armPending(Cycle at)
{
    Cycle delay = params_.responseCycles;
    lost_ = false;
    if (faults_ != nullptr) {
        switch (faults_->drawVoaFault(faultId_)) {
          case VoaFault::kClean:
            break;
          case VoaFault::kDelayed:
            delay = static_cast<Cycle>(
                static_cast<double>(delay) *
                faults_->params().voaDelayFactor);
            voaDelayed_++;
            if (traceSink_) {
                traceSink_->faultEvent(
                    FaultEvent{at, traceId_, "voa_delayed", 0,
                               static_cast<double>(delay)});
            }
            break;
          case VoaFault::kLost:
            lost_ = true;
            delay = faults_->params().voaTimeoutCycles;
            if (delay == 0)
                delay = 1; // watchdog must move time forward
            voaLost_++;
            if (traceSink_) {
                traceSink_->faultEvent(
                    FaultEvent{at, traceId_, "voa_lost", 0,
                               static_cast<double>(delay)});
            }
            break;
        }
    }
    pendingReady_ = at + delay;
}

bool
LaserPowerState::advance(Cycle now)
{
    if (!pending_)
        return false;
    // A lost command is re-issued every time its watchdog expires,
    // drawing a fresh control-plane fault each attempt.
    while (lost_ && now >= pendingReady_) {
        Cycle at = pendingReady_;
        voaRetries_++;
        if (traceSink_) {
            traceSink_->faultEvent(
                FaultEvent{at, traceId_, "voa_retry", 0, 0.0});
        }
        armPending(at);
    }
    if (lost_ || now < pendingReady_)
        return false;
    bool changed = pendingLevel_ != level_;
    level_ = pendingLevel_;
    pending_ = false;
    return changed;
}

LaserRequestOutcome
LaserPowerState::requestIncrease(Cycle now)
{
    bool preempted = false;
    if (pending_) {
        if (static_cast<int>(pendingLevel_) >=
            static_cast<int>(level_)) {
            // An increase is already racing the VOA; asking again
            // cannot make the light arrive sooner.
            increasesDropped_++;
            return LaserRequestOutcome::kAlreadyRising;
        }
        // A decrease is scheduled but has not landed: the fiber still
        // carries level_, so cancelling restores full service
        // immediately instead of starving the link through the whole
        // response time (the pre-fix behavior dropped the request).
        pending_ = false;
        lost_ = false;
        decreasesPreempted_++;
        preempted = true;
    }
    if (level_ == OpticalLevel::kHigh) {
        return preempted ? LaserRequestOutcome::kPreempted
                         : LaserRequestOutcome::kAtMax;
    }
    pending_ = true;
    pendingLevel_ = static_cast<OpticalLevel>(static_cast<int>(level_) + 1);
    armPending(now);
    increases_++;
    return preempted ? LaserRequestOutcome::kPreemptedAndDispatched
                     : LaserRequestOutcome::kDispatched;
}

void
LaserPowerState::observeBitRate(double br_gbps)
{
    if (br_gbps > epochMaxBr_)
        epochMaxBr_ = br_gbps;
}

bool
LaserPowerState::epochDecision(Cycle now)
{
    bool dispatched = false;
    if (!pending_ && level_ != OpticalLevel::kLow) {
        auto lower =
            static_cast<OpticalLevel>(static_cast<int>(level_) - 1);
        if (epochMaxBr_ <= maxBitRateForLevel(lower)) {
            pending_ = true;
            pendingLevel_ = lower;
            armPending(now);
            decreases_++;
            dispatched = true;
        }
    }
    epochMaxBr_ = 0.0;
    return dispatched;
}

} // namespace oenet
