#include "policy/laser_controller.hh"

#include "common/log.hh"

namespace oenet {

LaserPowerState::LaserPowerState()
    : LaserPowerState(Params{}, OpticalLevel::kHigh)
{
}

LaserPowerState::LaserPowerState(const Params &params, OpticalLevel initial)
    : params_(params), level_(initial)
{
    if (params_.responseCycles == 0)
        warn("LaserPowerState: zero VOA response time");
}

bool
LaserPowerState::advance(Cycle now)
{
    if (!pending_ || now < pendingReady_)
        return false;
    bool changed = pendingLevel_ != level_;
    level_ = pendingLevel_;
    pending_ = false;
    return changed;
}

void
LaserPowerState::requestIncrease(Cycle now)
{
    if (pending_ || level_ == OpticalLevel::kHigh)
        return;
    pending_ = true;
    pendingLevel_ = static_cast<OpticalLevel>(static_cast<int>(level_) + 1);
    pendingReady_ = now + params_.responseCycles;
    increases_++;
}

void
LaserPowerState::observeBitRate(double br_gbps)
{
    if (br_gbps > epochMaxBr_)
        epochMaxBr_ = br_gbps;
}

void
LaserPowerState::epochDecision(Cycle now)
{
    if (!pending_ && level_ != OpticalLevel::kLow) {
        auto lower =
            static_cast<OpticalLevel>(static_cast<int>(level_) - 1);
        if (epochMaxBr_ <= maxBitRateForLevel(lower)) {
            pending_ = true;
            pendingLevel_ = lower;
            pendingReady_ = now + params_.responseCycles;
            decreases_++;
        }
    }
    epochMaxBr_ = 0.0;
}

} // namespace oenet
