#include "policy/on_off.hh"

#include "common/log.hh"

namespace oenet {

OnOffController::OnOffController(OpticalLink &link,
                                 std::function<bool()> waiting,
                                 const Params &params)
    : link_(link), waiting_(std::move(waiting)), params_(params)
{
    if (!waiting_)
        fatal("OnOffController: missing waiting predicate");
    HistoryDvsParams hp;
    hp.slidingWindows = params_.slidingWindows;
    luTracker_ = HistoryDvsPolicy(hp);
}

void
OnOffController::onWindow(Cycle now)
{
    if (link_.isOff()) {
        luTracker_.observe(0.0);
        maybeWake(now);
        return;
    }
    luTracker_.observe(link_.windowUtilization(now));
    link_.beginWindow(now);
    if (link_.transitionInProgress(now))
        return;
    if (luTracker_.averageUtilization() < params_.offThreshold &&
        !waiting_()) {
        link_.setOff(now, true);
        sleeps_++;
    }
}

void
OnOffController::maybeWake(Cycle now)
{
    if (link_.isOff() && waiting_()) {
        link_.setOff(now, false);
        wakes_++;
    }
}

} // namespace oenet
