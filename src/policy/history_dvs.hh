/**
 * @file
 * History-based DVS link policy (Section 3.3, after Shang et al.,
 * HPCA 2003).
 *
 * Per link, hardware counters collect link utilization L_u and the
 * downstream input-buffer utilization B_u over a window T_w. L_u is
 * averaged over a sliding window of N past windows (Eq. 11) to filter
 * short-term fluctuations. At each window boundary the averaged L_u is
 * compared against thresholds (T_L, T_H) selected by congestion state:
 * when B_u >= B_u,con the network is congested, queueing masks link
 * latency, and the policy can scale more aggressively (Table 1):
 *
 *                      B_u < 0.5    B_u >= 0.5
 *     T_L (step down)     0.4          0.6
 *     T_H (step up)       0.6          0.7
 *
 * Decisions move the bit rate one level at a time.
 */

#ifndef OENET_POLICY_HISTORY_DVS_HH
#define OENET_POLICY_HISTORY_DVS_HH

#include <vector>

namespace oenet {

enum class LevelDecision
{
    kHold,
    kUp,
    kDown,
};

const char *levelDecisionName(LevelDecision decision);

struct HistoryDvsParams
{
    double thLowUncongested = 0.4;
    double thHighUncongested = 0.6;
    double thLowCongested = 0.6;
    double thHighCongested = 0.7;
    double buCongested = 0.5; ///< B_u,con
    int slidingWindows = 4;   ///< N of Eq. 11
};

class HistoryDvsPolicy
{
  public:
    explicit HistoryDvsPolicy(const HistoryDvsParams &params = {});

    /** Record one window's utilization sample (capacity-normalized). */
    void observe(double lu);

    /** Sliding average over the last N observations (Eq. 11). */
    double averageUtilization() const;

    /** Decide given the current window's buffer utilization. */
    LevelDecision decide(double bu) const;

    /** Thresholds in force for a given B_u. */
    double lowThreshold(double bu) const;
    double highThreshold(double bu) const;

    void reset();

    const HistoryDvsParams &params() const { return params_; }

  private:
    HistoryDvsParams params_;
    std::vector<double> history_; ///< ring of the last N samples
    int head_ = 0;
    int count_ = 0;
};

} // namespace oenet

#endif // OENET_POLICY_HISTORY_DVS_HH
