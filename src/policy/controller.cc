#include "policy/controller.hh"

#include "common/log.hh"
#include "fault/fault_injector.hh"

namespace oenet {

const char *
opticalModeName(OpticalMode mode)
{
    switch (mode) {
      case OpticalMode::kFixed:
        return "fixed";
      case OpticalMode::kTriLevel:
        return "tri-level";
    }
    panic("opticalModeName: bad mode");
}

const char *
policyModeName(PolicyMode mode)
{
    switch (mode) {
      case PolicyMode::kDvs:
        return "dvs";
      case PolicyMode::kProportional:
        return "proportional";
      case PolicyMode::kOnOff:
        return "on-off";
      case PolicyMode::kStatic:
        return "static";
    }
    panic("policyModeName: bad mode");
}

LinkController::LinkController(OpticalLink &link,
                               const OccupancyProvider *downstream,
                               int down_port, const Params &params,
                               std::function<int()> sender_backlog)
    : link_(link), downstream_(downstream), downPort_(down_port),
      params_(params), senderBacklog_(std::move(sender_backlog)),
      policy_(params.policy), laser_(params.laser)
{
    if (downstream_ == nullptr)
        fatal("LinkController(%s): no downstream occupancy provider",
              link.name().c_str());
    if (params_.minLevel < 0 ||
        params_.minLevel > link.levels().maxLevel())
        fatal("LinkController(%s): bad min level %d",
              link.name().c_str(), params_.minLevel);
}

void
LinkController::setTrace(TraceSink *sink, int trace_id)
{
    traceSink_ = sink;
    traceId_ = trace_id;
    laser_.setTrace(sink, trace_id);
}

void
LinkController::setFault(FaultInjector *faults, int link_index)
{
    faults_ = faults;
    laser_.setFault(faults, link_index);
}

void
LinkController::setThermal(const LinkPowerLedger *ledger, int id)
{
    thermal_ = ledger;
    thermalId_ = id;
}

void
LinkController::traceLaser(Cycle now, const char *action, int from,
                           int to) const
{
    if (traceSink_) {
        traceSink_->laserEvent(
            LaserTraceEvent{now, traceId_, action, from, to});
    }
}

void
LinkController::syncLaser(Cycle now)
{
    if (params_.opticalMode != OpticalMode::kTriLevel)
        return;
    int before = static_cast<int>(laser_.level());
    if (laser_.advance(now)) {
        link_.setOpticalScale(now, laser_.scale());
        traceLaser(now, "commit", before,
                   static_cast<int>(laser_.level()));
    }
}

void
LinkController::onWindow(Cycle now)
{
    // Sample this window's statistics (retry counters before
    // beginWindow(), which zeroes them).
    double lu = link_.windowUtilization(now);
    std::uint64_t windowFlits = link_.windowFlits();
    std::uint64_t windowRetries = link_.windowRetries();
    double occ = downstream_->occupancyIntegral(downPort_, now);
    double bu = 0.0;
    Cycle span = now - lastWindowStart_;
    if (span > 0) {
        double cap = static_cast<double>(
            downstream_->bufferCapacity(downPort_));
        bu = (occ - lastOccIntegral_) /
             (static_cast<double>(span) * cap);
    }
    lastOccIntegral_ = occ;
    lastWindowStart_ = now;
    link_.beginWindow(now);

    policy_.observe(lu);
    syncLaser(now);
    if (params_.opticalMode == OpticalMode::kTriLevel) {
        // Observe the transition *target* rate, not the instantaneous
        // wire rate: a P_dec granted against a mid-ramp reading could
        // otherwise strand a fast link without light.
        laser_.observeBitRate(
            link_.levels().level(link_.currentLevel()).brGbps);
    }

    bool busy = link_.transitionInProgress(now);
    LevelDecision decision = LevelDecision::kHold;
    bool escalated = false;
    bool vetoed = false;
    if (!busy) {
        decision = policy_.decide(bu);
        // Sender-backlog escalation: queued demand the utilization
        // metric cannot see forces an upgrade, and a still-draining
        // backlog vetoes a downgrade (see Params for the rationale).
        // The asymmetric pair prevents up/down oscillation on
        // saturated links.
        if (params_.senderBacklogEscalation && senderBacklog_) {
            int backlog = senderBacklog_();
            if (decision != LevelDecision::kUp &&
                backlog >= params_.senderBacklogFlits) {
                decision = LevelDecision::kUp;
                backlogEscalations_++;
                escalated = true;
            } else if (decision == LevelDecision::kDown &&
                       backlog >= params_.senderBacklogFlits / 2) {
                decision = LevelDecision::kHold;
                vetoed = true;
            }
        }
        // Degradation clamp: a window whose retransmission rate
        // exceeds the threshold means the link is short on optical
        // margin at its current operating point. Scaling down would
        // shrink the margin further (lower Vdd / lower light), so the
        // clamp blocks down-transitions and, when configured, forces
        // an upgrade to buy margin back.
        if (faults_ != nullptr) {
            std::uint64_t attempts = windowFlits + windowRetries;
            double rate =
                attempts > 0 ? static_cast<double>(windowRetries) /
                                   static_cast<double>(attempts)
                             : 0.0;
            if (rate > faults_->params().clampErrorRate) {
                LevelDecision before = decision;
                if (faults_->params().clampForceUp)
                    decision = LevelDecision::kUp;
                else if (decision == LevelDecision::kDown)
                    decision = LevelDecision::kHold;
                if (decision != before) {
                    dvsClamps_++;
                    if (traceSink_) {
                        traceSink_->faultEvent(FaultEvent{
                            now, traceId_, "dvs_clamp", 0, rate});
                    }
                }
            }
        }
        // Thermal throttle: the ledger's effective (dynamic + leakage)
        // power view is what makes thermal runaway visible to the
        // policy. A junction at or above the throttle point is forced
        // down a level regardless of measured utilization — dropping
        // Vdd cuts dynamic *and* leakage power, breaking the hotter ->
        // leakier -> hotter loop.
        if (thermal_ != nullptr) {
            lastEffectivePowerMw_ =
                thermal_->effectivePowerMw(thermalId_);
            double temp = thermal_->tempC(thermalId_);
            double limit = thermal_->thermal().throttleC;
            if (limit > 0.0 && temp >= limit &&
                decision != LevelDecision::kDown) {
                decision = LevelDecision::kDown;
                escalated = false;
                thermalThrottles_++;
                if (traceSink_) {
                    traceSink_->faultEvent(FaultEvent{
                        now, traceId_, "thermal_throttle", 0, temp});
                }
            }
        }
    }
    int level = link_.currentLevel();
    if (traceSink_) {
        traceSink_->dvsDecision(DvsDecisionEvent{
            now, traceId_, lu, policy_.averageUtilization(), bu,
            policy_.lowThreshold(bu), policy_.highThreshold(bu),
            busy ? "in-transition" : levelDecisionName(decision),
            escalated, vetoed, level});
    }
    if (busy)
        return;

    if (decision == LevelDecision::kUp &&
        level < link_.levels().maxLevel()) {
        int target = level + 1;
        if (params_.opticalMode == OpticalMode::kTriLevel) {
            double target_br = link_.levels().level(target).brGbps;
            if (target_br >
                maxBitRateForLevel(laser_.guaranteedLevel())) {
                // Not enough guaranteed light for the faster rate:
                // request more optical power (Section 3.3, P_inc
                // semantics). The request preempts any pending P_dec.
                int before = static_cast<int>(laser_.level());
                int pending_before =
                    static_cast<int>(laser_.guaranteedLevel());
                switch (laser_.requestIncrease(now)) {
                  case LaserRequestOutcome::kDispatched:
                    traceLaser(now, "request_up", before, before + 1);
                    break;
                  case LaserRequestOutcome::kPreempted:
                    traceLaser(now, "preempt_down", pending_before,
                               before);
                    break;
                  case LaserRequestOutcome::kPreemptedAndDispatched:
                    traceLaser(now, "preempt_down", pending_before,
                               before);
                    traceLaser(now, "request_up", before, before + 1);
                    break;
                  case LaserRequestOutcome::kAlreadyRising:
                    traceLaser(now, "drop", before, before + 1);
                    break;
                  case LaserRequestOutcome::kAtMax:
                    break;
                }
                if (target_br >
                    maxBitRateForLevel(laser_.guaranteedLevel())) {
                    // Still waiting for light: hold the electrical
                    // level until the VOA responds.
                    opticalStalls_++;
                    return;
                }
                // A preempted decrease restored enough light; the
                // electrical upgrade may proceed this window.
            }
        }
        link_.requestLevel(now, target);
        decisionsUp_++;
    } else if (decision == LevelDecision::kDown &&
               level > params_.minLevel) {
        link_.requestLevel(now, level - 1);
        decisionsDown_++;
    }
}

void
LinkController::onLaserEpoch(Cycle now)
{
    if (params_.opticalMode != OpticalMode::kTriLevel)
        return;
    syncLaser(now);
    // Fold in the level in force right now — the last window's sample
    // may predate an upgrade decided in the same window.
    laser_.observeBitRate(
        link_.levels().level(link_.currentLevel()).brGbps);
    int before = static_cast<int>(laser_.level());
    if (laser_.epochDecision(now))
        traceLaser(now, "request_down", before, before - 1);
}

PolicyEngine::PolicyEngine(Kernel &kernel, Network &net,
                           const Params &params)
    : params_(params)
{
    switch (params_.mode) {
      case PolicyMode::kDvs: {
        for (std::size_t i = 0; i < net.numLinks(); i++) {
            auto [provider, port] = net.downstreamOf(i);
            const LinkSpec &spec = net.linkSpec(i);
            std::function<int()> backlog;
            if (spec.kind == LinkKind::kInjection) {
                Node *node = &net.node(spec.srcNode);
                backlog = [node]() {
                    return static_cast<int>(node->sourceQueueFlits());
                };
            } else {
                Router *router = &net.router(spec.srcRouter);
                int src_port = spec.srcPort.value();
                backlog = [router, src_port]() {
                    return router->bufferedFor(src_port);
                };
            }
            dvs_.push_back(std::make_unique<LinkController>(
                net.link(i), provider, port, params_.link,
                std::move(backlog)));
        }
        if (net.ledgerActive() && net.powerLedger().thermalEnabled()) {
            // Controller i drives link i, which is ledger row i.
            for (std::size_t i = 0; i < dvs_.size(); i++)
                dvs_[i]->setThermal(&net.powerLedger(),
                                    static_cast<int>(i));
        }
        kernel.schedulePeriodic(params_.windowCycles,
                                params_.windowCycles,
                                [this](Cycle now) { onWindow(now); });
        if (params_.link.opticalMode == OpticalMode::kTriLevel) {
            Cycle epoch = params_.link.laser.decisionEpochCycles;
            kernel.schedulePeriodic(epoch, epoch, [this](Cycle now) {
                onLaserEpoch(now);
            });
        }
        break;
      }
      case PolicyMode::kProportional: {
        for (std::size_t i = 0; i < net.numLinks(); i++) {
            const LinkSpec &spec = net.linkSpec(i);
            std::function<int()> backlog;
            if (spec.kind == LinkKind::kInjection) {
                Node *node = &net.node(spec.srcNode);
                backlog = [node]() {
                    return static_cast<int>(node->sourceQueueFlits());
                };
            } else {
                Router *router = &net.router(spec.srcRouter);
                int src_port = spec.srcPort.value();
                backlog = [router, src_port]() {
                    return router->bufferedFor(src_port);
                };
            }
            proportional_.push_back(
                std::make_unique<ProportionalController>(
                    net.link(i), params_.proportional,
                    std::move(backlog)));
        }
        kernel.schedulePeriodic(params_.windowCycles,
                                params_.windowCycles,
                                [this](Cycle now) { onWindow(now); });
        break;
      }
      case PolicyMode::kOnOff: {
        for (std::size_t i = 0; i < net.numLinks(); i++) {
            const LinkSpec &spec = net.linkSpec(i);
            std::function<bool()> waiting;
            if (spec.kind == LinkKind::kInjection) {
                Node *node = &net.node(spec.srcNode);
                waiting = [node]() {
                    return node->sourceQueueFlits() > 0;
                };
            } else {
                Router *router = &net.router(spec.srcRouter);
                int port = spec.srcPort.value();
                waiting = [router, port]() {
                    return router->outputWaiting(port);
                };
            }
            onOff_.push_back(std::make_unique<OnOffController>(
                net.link(i), std::move(waiting), params_.onOff));
        }
        kernel.schedulePeriodic(params_.windowCycles,
                                params_.windowCycles,
                                [this](Cycle now) { onWindow(now); });
        // Wake probing runs on a short sub-window cadence: waking only
        // at window boundaries would add seconds of latency.
        Cycle probe = params_.windowCycles / 10;
        if (probe == 0)
            probe = 1;
        kernel.schedulePeriodic(probe, probe, [this](Cycle now) {
            for (auto &c : onOff_)
                c->maybeWake(now);
        });
        break;
      }
      case PolicyMode::kStatic: {
        int level = params_.staticLevel;
        for (std::size_t i = 0; i < net.numLinks(); i++) {
            OpticalLink &link = net.link(i);
            int target =
                level == kInvalid ? link.levels().maxLevel() : level;
            if (link.currentLevel() != target)
                link.requestLevel(0, target);
        }
        break;
      }
    }
}

void
PolicyEngine::onWindow(Cycle now)
{
    for (auto &c : dvs_)
        c->onWindow(now);
    for (auto &c : onOff_)
        c->onWindow(now);
    for (auto &c : proportional_)
        c->onWindow(now);
}

void
PolicyEngine::onLaserEpoch(Cycle now)
{
    for (auto &c : dvs_)
        c->onLaserEpoch(now);
}

std::uint64_t
PolicyEngine::totalDecisionsUp() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->decisionsUp();
    return n;
}

std::uint64_t
PolicyEngine::totalDecisionsDown() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->decisionsDown();
    return n;
}

std::uint64_t
PolicyEngine::totalOpticalStalls() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->opticalStalls();
    return n;
}

std::uint64_t
PolicyEngine::totalDvsClamps() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->dvsClamps();
    return n;
}

std::uint64_t
PolicyEngine::totalThermalThrottles() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->thermalThrottles();
    return n;
}

std::uint64_t
PolicyEngine::totalVoaDelayed() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->laser().voaDelayed();
    return n;
}

std::uint64_t
PolicyEngine::totalVoaLost() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->laser().voaLost();
    return n;
}

std::uint64_t
PolicyEngine::totalVoaRetries() const
{
    std::uint64_t n = 0;
    for (const auto &c : dvs_)
        n += c->laser().voaRetries();
    return n;
}

void
PolicyEngine::setTraceSink(TraceSink *sink)
{
    // kDvs creates one controller per link in link-index order, so the
    // vector index *is* the link's trace id.
    for (std::size_t i = 0; i < dvs_.size(); i++)
        dvs_[i]->setTrace(sink, static_cast<int>(i));
}

void
PolicyEngine::setFaultInjector(FaultInjector *faults)
{
    // Same index correspondence as setTraceSink: controller i drives
    // link i, so the per-link fault stream index is i.
    for (std::size_t i = 0; i < dvs_.size(); i++)
        dvs_[i]->setFault(faults, static_cast<int>(i));
}

} // namespace oenet
