/**
 * @file
 * Per-link policy controllers and the network-wide PolicyEngine.
 *
 * A LinkController is the "policy controller" box of Fig. 4(b): it owns
 * one link's HistoryDvsPolicy (and, in the tri-level modulator
 * configuration, its LaserPowerState), samples L_u/B_u each window, and
 * issues bit-rate transitions. The PolicyEngine instantiates one
 * controller per link, drives them all from a single periodic kernel
 * event at window boundaries (and a slower one at laser-decision
 * epochs), and aggregates statistics.
 *
 * Alternative modes:
 *  - kDvs       the paper's policy (default);
 *  - kOnOff     on/off links (comparison/ablation);
 *  - kStatic    pin every link at a fixed level (e.g. static 3.3 Gb/s
 *               of Fig. 5(g)); no controller action after init.
 */

#ifndef OENET_POLICY_CONTROLLER_HH
#define OENET_POLICY_CONTROLLER_HH

#include <functional>
#include <memory>
#include <vector>

#include "network/network.hh"
#include "policy/history_dvs.hh"
#include "policy/laser_controller.hh"
#include "policy/on_off.hh"
#include "policy/proportional.hh"

namespace oenet {

/** How optical power is provisioned in the modulator scheme. */
enum class OpticalMode
{
    kFixed,    ///< single optical level (VOAs static)
    kTriLevel, ///< P_low / P_mid / P_high tracking bit-rate bands
};

/** Which control policy runs on the links. */
enum class PolicyMode
{
    kDvs,          ///< the paper's threshold stepper (default)
    kProportional, ///< Shang'03-style proportional retargeting
    kOnOff,        ///< links gated fully off when idle
    kStatic,       ///< pinned at a fixed level
};

const char *opticalModeName(OpticalMode mode);
const char *policyModeName(PolicyMode mode);

/** DVS controller for one link. */
class LinkController
{
  public:
    struct Params
    {
        HistoryDvsParams policy{};
        OpticalMode opticalMode = OpticalMode::kFixed;
        LaserPowerState::Params laser{};
        int minLevel = 0; ///< floor for down-scaling

        /**
         * Sender-backlog escalation. Utilization-only control has a
         * collective failure mode under backpressure: a link throttled
         * by its congested neighborhood *measures* low utilization and
         * keeps scaling down, dragging the saturated region into a
         * low-rate equilibrium. The sender's own buffers carry the
         * missing demand signal, so when at least
         * `senderBacklogFlits` flits are queued toward a link, its
         * controller escalates one level regardless of measured L_u.
         * Disable for the ablation bench.
         */
        bool senderBacklogEscalation = true;
        int senderBacklogFlits = 8;
    };


    /** @param sender_backlog returns the flits queued at the sender
     *  waiting for this link (router buffered flits toward the output
     *  port, or the node's source queue); may be empty. */
    LinkController(OpticalLink &link,
                   const OccupancyProvider *downstream, int down_port,
                   const Params &params,
                   std::function<int()> sender_backlog = {});

    /** Window-boundary hook: sample stats, decide, maybe transition. */
    void onWindow(Cycle now);

    /** Laser decision epoch hook (tri-level mode only). */
    void onLaserEpoch(Cycle now);

    /** Attach an event sink (null detaches); @p trace_id must match
     *  the link's trace id so events land on the same timeline. */
    void setTrace(TraceSink *sink, int trace_id);

    /**
     * Attach the system power ledger's thermal view (@p id = this
     * link's ledger/link index). Each window the controller samples
     * the link's *effective* (dynamic + leakage) power — the quantity
     * that exposes thermal runaway — and forces a down-transition
     * whenever the junction is at or above ThermalParams::throttleC.
     */
    void setThermal(const LinkPowerLedger *ledger, int id);

    /**
     * Attach the fault injector (null detaches). Two effects: the
     * laser state machine's VOA commands become subject to
     * control-plane faults, and the windowed degradation clamp arms —
     * a link whose per-window retransmission rate exceeds
     * FaultParams::clampErrorRate is losing optical margin, so the
     * controller converts down-decisions to holds and (when
     * clampForceUp is set) forces an up-transition to buy the margin
     * back instead of riding the link into an error floor.
     */
    void setFault(FaultInjector *faults, int link_index);

    OpticalLink &link() { return link_; }
    const HistoryDvsPolicy &policy() const { return policy_; }
    const LaserPowerState &laser() const { return laser_; }

    std::uint64_t decisionsUp() const { return decisionsUp_; }
    std::uint64_t decisionsDown() const { return decisionsDown_; }
    std::uint64_t opticalStalls() const { return opticalStalls_; }
    std::uint64_t backlogEscalations() const
    {
        return backlogEscalations_;
    }

    /** Windows where the error-rate clamp overrode the policy. */
    std::uint64_t dvsClamps() const { return dvsClamps_; }

    /** Windows where the thermal throttle forced a down-transition. */
    std::uint64_t thermalThrottles() const { return thermalThrottles_; }

    /** Effective (dynamic + leakage) power sampled at the last window
     *  boundary, mW; 0 until the thermal view is attached. */
    double lastEffectivePowerMw() const
    {
        return lastEffectivePowerMw_;
    }

  private:
    void syncLaser(Cycle now);
    void traceLaser(Cycle now, const char *action, int from,
                    int to) const;

    OpticalLink &link_;
    const OccupancyProvider *downstream_;
    int downPort_;
    Params params_;
    std::function<int()> senderBacklog_;
    HistoryDvsPolicy policy_;
    LaserPowerState laser_;
    double lastOccIntegral_ = 0.0;
    Cycle lastWindowStart_ = 0;
    std::uint64_t decisionsUp_ = 0;
    std::uint64_t decisionsDown_ = 0;
    std::uint64_t opticalStalls_ = 0;
    std::uint64_t backlogEscalations_ = 0;
    std::uint64_t dvsClamps_ = 0;
    TraceSink *traceSink_ = nullptr;
    int traceId_ = kInvalid;
    FaultInjector *faults_ = nullptr;
    const LinkPowerLedger *thermal_ = nullptr;
    int thermalId_ = kInvalid;
    std::uint64_t thermalThrottles_ = 0;
    double lastEffectivePowerMw_ = 0.0;
};

/** Drives all per-link controllers from the kernel clock. */
class PolicyEngine
{
  public:
    struct Params
    {
        PolicyMode mode = PolicyMode::kDvs;
        Cycle windowCycles = 1000; ///< T_w
        LinkController::Params link{};
        OnOffController::Params onOff{};
        ProportionalDvsParams proportional{};
        int staticLevel = kInvalid; ///< for kStatic; default max
    };

    /** Creates controllers for every link of @p net and schedules the
     *  periodic window/epoch events on @p kernel. */
    PolicyEngine(Kernel &kernel, Network &net, const Params &params);

    std::size_t numControllers() const
    {
        return dvs_.size() + onOff_.size() + proportional_.size();
    }

    const LinkController &dvsController(std::size_t i) const
    {
        return *dvs_.at(i);
    }

    /** Sum of up/down decisions across all DVS controllers. */
    std::uint64_t totalDecisionsUp() const;
    std::uint64_t totalDecisionsDown() const;
    std::uint64_t totalOpticalStalls() const;

    /** Windows where the error-rate clamp overrode a DVS decision,
     *  summed across controllers. */
    std::uint64_t totalDvsClamps() const;

    /** Thermal-throttle down-transitions across all DVS controllers
     *  (0 with the thermal model off). */
    std::uint64_t totalThermalThrottles() const;

    /** VOA control-plane fault totals across all laser controllers. */
    std::uint64_t totalVoaDelayed() const;
    std::uint64_t totalVoaLost() const;
    std::uint64_t totalVoaRetries() const;

    /** Attach @p sink to every DVS controller; ids follow the link
     *  index, matching Network::setTraceSink. */
    void setTraceSink(TraceSink *sink);

    /** Attach @p faults to every DVS controller (stream index = link
     *  index, matching Network::setFaultInjector). The other policy
     *  modes have no laser state or clamp, so this is a no-op for
     *  them; link-layer faults still apply through the links
     *  themselves. */
    void setFaultInjector(FaultInjector *faults);

    const Params &params() const { return params_; }

  private:
    void onWindow(Cycle now);
    void onLaserEpoch(Cycle now);

    Params params_;
    std::vector<std::unique_ptr<LinkController>> dvs_;
    std::vector<std::unique_ptr<OnOffController>> onOff_;
    std::vector<std::unique_ptr<ProportionalController>> proportional_;
};

} // namespace oenet

#endif // OENET_POLICY_CONTROLLER_HH
