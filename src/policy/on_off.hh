/**
 * @file
 * On/off link policy — the comparison point the paper cites as [26]
 * (Soteriou & Peh, ICCD 2004): instead of scaling bit rate, links are
 * turned completely off when idle and woken when traffic wants them.
 *
 * The controller turns a link off after its sliding-average utilization
 * stays below an off-threshold, and wakes it as soon as the sender has
 * work queued for it (probed through a caller-supplied predicate, since
 * what "waiting work" means differs for router and node senders). Wakeup
 * pays the CDR relock penalty, and the decision granularity is the same
 * window T_w the DVS policy uses — so the two policies are directly
 * comparable in the ablation bench.
 */

#ifndef OENET_POLICY_ON_OFF_HH
#define OENET_POLICY_ON_OFF_HH

#include <functional>

#include "link/link.hh"
#include "policy/history_dvs.hh"

namespace oenet {

class OnOffController
{
  public:
    struct Params
    {
        double offThreshold = 0.05; ///< sliding L_u below this -> off
        int slidingWindows = 4;
    };

    /** @param waiting returns true when the sender has flits queued for
     *  this link (wake condition). */
    OnOffController(OpticalLink &link, std::function<bool()> waiting,
                    const Params &params);

    /** Window-boundary hook (same cadence as the DVS policy). */
    void onWindow(Cycle now);

    /** Per-cycle fast path: wake as soon as work appears. Cheap —
     *  a predicate call only while the link is off. */
    void maybeWake(Cycle now);

    std::uint64_t sleeps() const { return sleeps_; }
    std::uint64_t wakes() const { return wakes_; }

  private:
    OpticalLink &link_;
    std::function<bool()> waiting_;
    Params params_;
    HistoryDvsPolicy luTracker_; ///< reuse the sliding-average machinery
    std::uint64_t sleeps_ = 0;
    std::uint64_t wakes_ = 0;
};

} // namespace oenet

#endif // OENET_POLICY_ON_OFF_HH
