#include "policy/proportional.hh"

#include "common/log.hh"
#include "common/units.hh"

namespace oenet {

ProportionalDvsPolicy::ProportionalDvsPolicy(
    const ProportionalDvsParams &params)
    : params_(params)
{
    if (params_.slidingWindows < 1)
        fatal("ProportionalDvsPolicy: sliding depth must be >= 1");
    if (params_.targetUtilization <= 0.0 ||
        params_.targetUtilization > 1.0)
        fatal("ProportionalDvsPolicy: target utilization must be in "
              "(0, 1]");
    history_.assign(static_cast<std::size_t>(params_.slidingWindows),
                    0.0);
}

void
ProportionalDvsPolicy::observe(double flits_per_cycle)
{
    history_[static_cast<std::size_t>(head_)] = flits_per_cycle;
    head_ = (head_ + 1) % params_.slidingWindows;
    if (count_ < params_.slidingWindows)
        count_++;
}

double
ProportionalDvsPolicy::predictedDemand() const
{
    if (count_ == 0)
        return 0.0;
    double sum = 0.0;
    for (int i = 0; i < count_; i++)
        sum += history_[static_cast<std::size_t>(
            (head_ - 1 - i + 2 * params_.slidingWindows) %
            params_.slidingWindows)];
    return sum / count_ * params_.headroom;
}

int
ProportionalDvsPolicy::chooseLevel(const BitrateLevelTable &levels) const
{
    double needed = predictedDemand() / params_.targetUtilization;
    for (int i = 0; i < levels.numLevels(); i++) {
        if (flitsPerCycle(levels.level(i).brGbps) >= needed)
            return i;
    }
    return levels.maxLevel();
}

void
ProportionalDvsPolicy::reset()
{
    std::fill(history_.begin(), history_.end(), 0.0);
    head_ = 0;
    count_ = 0;
}

ProportionalController::ProportionalController(
    OpticalLink &link, const ProportionalDvsParams &params,
    std::function<int()> sender_backlog)
    : link_(link), policy_(params),
      senderBacklog_(std::move(sender_backlog))
{
}

void
ProportionalController::onWindow(Cycle now)
{
    Cycle span = now - lastWindowStart_;
    double flits_per_cycle =
        span > 0 ? static_cast<double>(link_.windowFlits()) /
                       static_cast<double>(span)
                 : 0.0;
    lastWindowStart_ = now;
    link_.beginWindow(now);
    policy_.observe(flits_per_cycle);

    if (link_.transitionInProgress(now))
        return;
    int target = policy_.chooseLevel(link_.levels());
    // Demand invisible to the throughput measurement (queued upstream)
    // escalates the target, as in the threshold policy.
    if (senderBacklog_ && senderBacklog_() > 0 &&
        target <= link_.currentLevel())
        target = std::min(link_.currentLevel() + 1,
                          link_.levels().maxLevel());
    if (target != link_.currentLevel()) {
        link_.requestLevel(now, target);
        retargets_++;
    }
}

} // namespace oenet
