/**
 * @file
 * Proportional DVS policy — a design-space alternative to the paper's
 * threshold stepper, closer to the original Shang et al. (HPCA 2003)
 * formulation: predict near-future traffic from a sliding average of
 * measured flits/cycle, then jump straight to the lowest bit-rate
 * level whose capacity covers the prediction at a target utilization.
 * One transition reaches any level (physically a single voltage ramp +
 * relock), so the policy converges in one window where the stepper
 * needs one window per level — at the cost of bigger mispredictions
 * when traffic swings.
 */

#ifndef OENET_POLICY_PROPORTIONAL_HH
#define OENET_POLICY_PROPORTIONAL_HH

#include <functional>
#include <vector>

#include "link/link.hh"

namespace oenet {

struct ProportionalDvsParams
{
    double targetUtilization = 0.5; ///< provision capacity to this
    double headroom = 1.0;          ///< extra multiplier on prediction
    int slidingWindows = 4;
};

class ProportionalDvsPolicy
{
  public:
    explicit ProportionalDvsPolicy(
        const ProportionalDvsParams &params = {});

    /** Record one window's absolute traffic (flits/cycle). */
    void observe(double flits_per_cycle);

    /** Sliding-average predicted demand, flits/cycle. */
    double predictedDemand() const;

    /** Lowest level of @p levels whose capacity covers the prediction
     *  at the target utilization. */
    int chooseLevel(const BitrateLevelTable &levels) const;

    void reset();

    const ProportionalDvsParams &params() const { return params_; }

  private:
    ProportionalDvsParams params_;
    std::vector<double> history_;
    int head_ = 0;
    int count_ = 0;
};

/** Per-link controller driving a link with the proportional policy. */
class ProportionalController
{
  public:
    ProportionalController(OpticalLink &link,
                           const ProportionalDvsParams &params,
                           std::function<int()> sender_backlog = {});

    void onWindow(Cycle now);

    std::uint64_t retargets() const { return retargets_; }

  private:
    OpticalLink &link_;
    ProportionalDvsPolicy policy_;
    std::function<int()> senderBacklog_;
    Cycle lastWindowStart_ = 0;
    std::uint64_t retargets_ = 0;
};

} // namespace oenet

#endif // OENET_POLICY_PROPORTIONAL_HH
