/**
 * @file
 * Power-aware opto-electronic link (Sections 2-3.2).
 *
 * An OpticalLink is a unidirectional flit channel between a sender (a
 * router output port or a node's injection queue) and a receiver (a
 * router input port or a node's ejection buffer). It models:
 *
 *  - serialization at the current bit rate: at 10 Gb/s a 16-bit flit
 *    leaves every 625 MHz router cycle; at level br the transmitter is
 *    occupied for 10/br cycles per flit (fractional occupancy is
 *    tracked exactly);
 *  - a fixed propagation delay (fiber flight time);
 *  - the bit-rate/voltage transition state machine of Section 3.2.1:
 *    on an *up* transition the supply voltage ramps first (T_v cycles,
 *    link fully operational at the old rate), then the frequency
 *    switches (T_br cycles with the link disabled while the receiver
 *    CDR relocks); on a *down* transition the frequency drops first
 *    (T_br disabled), then the voltage ramps down (operational);
 *  - the optical power scale feeding the transmitter (set by the
 *    external-laser controller for modulator links, implied by Vdd for
 *    VCSEL links);
 *  - power/energy accounting through LinkPowerModel, integrated exactly
 *    as a piecewise-constant signal (no per-cycle work);
 *  - utilization statistics for the policy controller: flits sent and
 *    the capacity integral, giving capacity-normalized utilization L_u.
 *
 * The link is passive: it has no tick. Time advances lazily — every
 * public entry point first walks the state machine up to `now`.
 *
 * With a FaultInjector attached (setFault), the link additionally
 * carries the link-layer reliability protocol: every flit is CRC-tagged
 * (conceptually; the simulator draws corruption from the BER of the
 * current operating point instead of flipping payload bits), a
 * corrupted flit fails its check at the receiver, which NACKs over a
 * reliable reverse control channel, and the sender — which holds every
 * unacknowledged flit in the in-flight ring, its retransmission
 * buffer — replays it after a bounded exponential backoff. Later flits
 * already in flight keep their arrival stamps and wait in the ring
 * (the receiver's reorder window), preserving wormhole flit order.
 * Scheduled faults (CDR lock loss, hard failure) are processed at
 * their exact cycles during the lazy advance walk.
 */

#ifndef OENET_LINK_LINK_HH
#define OENET_LINK_LINK_HH

#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "phy/bitrate_levels.hh"
#include "phy/laser_source.hh"
#include "phy/link_power.hh"
#include "router/flit.hh"
#include "trace/trace.hh"

namespace oenet {

class FaultInjector;
class LinkPowerLedger;
class Ticking;

/** What role a link plays in the system (used for reporting). */
enum class LinkKind
{
    kInjection,   ///< node -> router
    kEjection,    ///< router -> node
    kInterRouter, ///< router -> router
};

const char *linkKindName(LinkKind kind);

class OpticalLink
{
  public:
    struct Params
    {
        LinkScheme scheme = LinkScheme::kVcsel;
        LinkPowerParams power{};
        Cycle freqTransitionCycles = 20; ///< T_br (CDR relock, disabled)
        Cycle voltTransitionCycles = 100; ///< T_v (operational)
        Cycle propagationCycles = 1;      ///< fiber flight time
        int initialLevel = kInvalid;      ///< default: highest level
        double offPowerMw = 2.0;          ///< leakage when gated off
        /**
         * Laser/CDR settle time after a wake from the gated-off state.
         * For the first min(wakeSettleCycles, T_br) cycles of the
         * relock the transmitter is still stabilizing and draws gate-
         * off power, not the target level's full power. The pre-fix
         * accounting charged the full target power for the whole T_br
         * relock from the wake instant (0 restores that behavior).
         */
        Cycle wakeSettleCycles = 10;
    };

    /** @param levels level table; must outlive the link. */
    OpticalLink(std::string name, LinkKind kind,
                const BitrateLevelTable &levels, const Params &params);

    // ------------------------------------------------------------------
    // Data path: sender side
    // ------------------------------------------------------------------

    /** True if the sender may hand over one flit this cycle. The flit
     *  is accepted as soon as the transmitter frees up *within* cycle
     *  [now, now+1), so fractional serialization credit carries across
     *  cycles and the saturated rate matches the level's bit rate
     *  exactly. Inline fast path: a stable link needs no state walk. */
    bool canAccept(Cycle now)
    {
        // With faults attached the stable fast path is unsafe: a
        // scheduled failure may be due, and only the state walk in
        // canAcceptSlow discovers it.
        if (faults_ == nullptr && phase_ == Phase::kStable) {
            return inflightCount_ < kInflightCap &&
                   static_cast<double>(now) + 1.0 > nextFree_ + 1e-9;
        }
        return canAcceptSlow(now);
    }

    /** Hand one flit to the link. @pre canAccept(now). */
    void accept(Cycle now, const Flit &flit);

    // ------------------------------------------------------------------
    // Data path: receiver side
    // ------------------------------------------------------------------

    /** True if a flit has fully arrived by cycle @p now. Arrivals are
     *  stamped at accept() time, so without faults no state walk is
     *  needed; with faults the reliability layer must first replay any
     *  corrupted head-of-line flit. */
    bool hasArrival(Cycle now)
    {
        if (faults_ != nullptr)
            reliabilityAdvance(now);
        return inflightCount_ > 0 &&
               inflight_[inflightHead_].arrives <= now;
    }

    /** Pop the oldest arrived flit. @pre hasArrival(now). */
    Flit popArrival(Cycle now);

    /** Sender-side in-flight ring capacity (doubles as the replay
     *  buffer depth with faults attached). Receivers batching a drain
     *  can size their staging to 2x this. */
    static constexpr int kInflightCap = 16;

    /**
     * Pop every flit arrived by @p now into @p sink, in order; returns
     * the count. Equivalent to `while (hasArrival(now))
     * sink(popArrival(now))` but with no fault model attached it is a
     * single branch-light ring walk — arrival stamps are final, so
     * nothing re-checks the head between pops. With faults the
     * per-flit poll loop is kept: each pop can expose a corrupt head
     * whose replay walk (RNG draws, trace events) must run before the
     * next arrival test.
     */
    template <typename SinkFn>
    int drainArrivalsDue(Cycle now, SinkFn &&sink)
    {
        if (faults_ == nullptr) {
            int head = inflightHead_;
            int n = 0;
            while (n < inflightCount_ &&
                   inflight_[head].arrives <= now) {
                sink(inflight_[head].flit);
                head = (head + 1) & (kInflightCap - 1);
                n++;
            }
            inflightHead_ = head;
            inflightCount_ -= n;
            return n;
        }
        int n = 0;
        while (hasArrival(now)) {
            sink(popArrival(now));
            n++;
        }
        return n;
    }

    /** Flits accepted but not yet popped by the receiver. */
    int inFlight() const { return inflightCount_; }

    /**
     * Attach the receiving component (null detaches). accept() wakes
     * it at the flit's arrival cycle, so a receiver parked by the
     * idle-elision scheduler never misses a delivery. Wired by
     * Router::connectInput / Node::connectEjection.
     */
    void setReceiver(Ticking *receiver) { receiver_ = receiver; }

    /**
     * Wake the receiver @p lead cycles *before* each event instead of
     * at it. A boundary shuttle receives on behalf of a router in
     * another shard and must forward a flit one cycle ahead of its
     * arrival so the phase-separated handoff delivers it on time
     * (its tick at t polls hasArrival(t+1)); everything else keeps the
     * default lead of 0. Wake cycles never go below the event's
     * request cycle minus the lead, floored at 0.
     */
    void setReceiverWakeLead(Cycle lead) { receiverWakeLead_ = lead; }

    /**
     * Earliest future cycle at which this link could hand its receiver
     * something to do — the head in-flight arrival, and, when a fault
     * injector is attached (receivers then advance the link on every
     * poll), the next scheduled lock loss, the hard-failure cycle, and
     * the end of any transition phase in progress. kNeverCycle when
     * nothing is pending. A quiescing receiver re-arms its wake from
     * this; the extra fault/phase terms keep lazily-emitted trace
     * events at the same file positions as an every-cycle poller.
     */
    Cycle nextReceiverEventCycle() const;

    // ------------------------------------------------------------------
    // Power control
    // ------------------------------------------------------------------

    /** Begin a one-step transition to @p level.
     *  @pre !transitionInProgress(now). */
    void requestLevel(Cycle now, int level);

    /** True while a voltage ramp or frequency switch is underway. */
    bool transitionInProgress(Cycle now);

    /** Stable (or transition-target) level index. */
    int currentLevel() const { return toLevel_; }

    /** Bit rate the link serializes at right now (Gb/s). */
    double currentBitRateGbps() const;

    /** Set the optical power scale (modulator scheme; VOA output). */
    void setOpticalScale(Cycle now, double scale);
    double opticalScale() const { return opticalScale_; }

    /**
     * Power-gate the whole link (on/off networks, the comparison point
     * of Soteriou & Peh cited as [26]). Turning off is immediate;
     * turning back on costs a CDR relock (T_br disabled), like any
     * frequency change. @pre off: no transition in progress.
     */
    void setOff(Cycle now, bool off);
    bool isOff() const { return phase_ == Phase::kOff; }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /**
     * Attach the system's fault injector (null detaches); @p link_id is
     * this link's index in the injector (the network's link/trace id).
     * Attaching enables the CRC/retransmission layer and scheduled
     * fault processing on this link.
     */
    void setFault(FaultInjector *faults, int link_id);

    /**
     * True once the link has hard-failed (VCSEL death / fiber cut).
     * Cheap and lazy: the failure is discovered when the link's state
     * next advances (canAccept, hasArrival, or any stats sample), so
     * this may briefly lag the scheduled failure cycle — callers that
     * must know (routing) also see canAccept() == false from the same
     * moment they would see isFailed().
     */
    bool isFailed() const { return failed_; }

    /** Flits whose corruption draw fired (CRC failures at the
     *  receiver) since construction. */
    std::uint64_t flitsCorrupted() const { return flitsCorrupted_; }

    /** Retransmissions performed by the sender since construction. */
    std::uint64_t flitRetries() const { return flitRetries_; }

    /** CDR loss-of-lock outages suffered since construction. */
    std::uint64_t lockLossEvents() const { return lockLossEvents_; }

    /** In-flight flits lost to the hard failure. */
    std::uint64_t flitsDroppedOnFail() const
    {
        return flitsDroppedOnFail_;
    }

    /** Same, but never cleared by resetStats() — the conservation
     *  audit balances whole-run flit counters, which include drops
     *  from before the measurement window. */
    std::uint64_t flitsDroppedOnFailLifetime() const
    {
        return flitsDroppedOnFailLifetime_;
    }

    /** Retransmissions since the last beginWindow() (DVS clamp
     *  input). */
    std::uint64_t windowRetries() const { return windowRetries_; }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /**
     * Attach an event sink (null detaches). Completed transitions are
     * reported with their request and completion cycles; because the
     * state machine advances lazily, the *emission* happens when the
     * link is next touched past the transition's end, but the recorded
     * cycle stamps are exact.
     */
    void setTrace(TraceSink *sink, int trace_id);

    /**
     * Restart cumulative statistics at @p now: the power integral (so
     * energyMj() measures from here), totalFlits(), and
     * numTransitions(). Called at measurement start so reported
     * energy/flit/transition counts exclude warm-up transients. The
     * capacity integral and the current utilization window are left
     * alone — resetting them would inject a bogus sample into the DVS
     * sliding history and perturb policy behavior at the boundary. */
    void resetStats(Cycle now);

    /** Reset the utilization window (policy epoch boundary). */
    void beginWindow(Cycle now);

    /** Capacity-normalized utilization since the last beginWindow():
     *  flits sent / flits the link could have sent. In [0, 1]. */
    double windowUtilization(Cycle now);

    /** Flits accepted since the last beginWindow(). */
    std::uint64_t windowFlits() const { return windowFlits_; }

    /** Flits accepted since construction or the last resetStats(). */
    std::uint64_t totalFlits() const { return totalFlits_; }

    /** Electrical power drawn right now (mW). */
    double powerMw(Cycle now);

    /** Energy consumed since construction or the last resetStats()
     *  (mJ equivalent: mW * cycles * s/cycle, in millijoules). */
    double energyMj(Cycle now);

    /** Integral of power over time in mW-cycles since construction or
     *  the last resetStats() (exact, cheap). */
    double powerIntegralMwCycles(Cycle now);

    /** Power of a non-power-aware link (always-max baseline), mW. */
    double maxPowerMw() const { return powerModel_.maxPowerMw(); }

    /**
     * Register this link with the system power ledger and mirror every
     * subsequent power change into its SoA column. Must be called
     * immediately after construction (cycle 0, stable), before any
     * traffic or transition, so the column seed matches the link's
     * TimeWeighted exactly. Returns the assigned ledger id.
     */
    int attachLedger(LinkPowerLedger &ledger);

    /** Stop mirroring (fault-attached links keep only the per-link
     *  walk; see LinkPowerLedger's header). */
    void detachLedger() { ledger_ = nullptr; }

    /** Frequency transitions since construction or resetStats(). */
    std::uint64_t numTransitions() const { return numTransitions_; }

    const std::string &name() const { return name_; }
    LinkKind kind() const { return kind_; }
    const BitrateLevelTable &levels() const { return levels_; }
    LinkScheme scheme() const { return powerModel_.scheme(); }
    const Params &params() const { return params_; }

  private:
    bool canAcceptSlow(Cycle now);

    /** Per-flit corruption probability at the current operating point:
     *  flitErrorProb over the margin-derived BER. */
    double flitCorruptProb() const;

    /** Replay corrupted head-of-line flits whose (corrupt) arrival is
     *  due by @p now: NACK turnaround, bounded exponential backoff,
     *  reserialization. Loops until the head is clean or its arrival
     *  is in the future. */
    void reliabilityAdvance(Cycle now);

    /** Process scheduled faults (lock loss, hard failure) with cycles
     *  <= @p now at their exact times. */
    void faultAdvance(Cycle now);

    /** Permanent failure at @p at: drop in-flight flits, gate off. */
    void failLink(Cycle at);

    /** Wake a parked receiver for the end of a just-started transition
     *  phase (fault-attached links only; see the definition). */
    void armReceiverTransitionWake();

    enum class Phase
    {
        kStable,
        kVoltRampUp,  ///< voltage rising ahead of a frequency increase
        kFreqSwitch,  ///< CDR relock; link disabled
        kVoltRampDown, ///< voltage falling after a frequency decrease
        kOff           ///< power-gated (on/off policy extension)
    };

    /** Walk the transition state machine up to @p now (processing any
     *  scheduled faults first, at their exact cycles). */
    void advance(Cycle now);

    /** The pre-fault phase walk: complete phases ending by @p now. */
    void phaseAdvance(Cycle now);

    /** Enter @p phase at @p at, ending at @p end; refresh accounting. */
    void enterPhase(Phase phase, Cycle at, Cycle end);

    /** Recompute power/capacity signals at time @p at. */
    void refreshSignals(Cycle at);

    /** Set the power signal to @p mw at @p at: updates powerTw_ and
     *  mirrors the identical fold into the ledger column. */
    void writePower(Cycle at, double mw, double vdd_frac);

    bool enabledNow() const
    {
        return phase_ != Phase::kFreqSwitch && phase_ != Phase::kOff;
    }

    std::string name_;
    LinkKind kind_;
    const BitrateLevelTable &levels_;
    Params params_;
    LinkPowerModel powerModel_;

    // Transition state.
    Phase phase_ = Phase::kStable;
    Cycle phaseEnd_ = 0;
    int fromLevel_ = 0;
    int toLevel_ = 0;
    double opticalScale_ = 1.0;
    std::uint64_t numTransitions_ = 0;

    // Tracing. transitionType_ doubles as the "transition underway has
    // not been reported yet" flag.
    TraceSink *traceSink_ = nullptr;
    int traceId_ = kInvalid;
    Cycle transitionStart_ = 0;
    int transitionFrom_ = 0;
    const char *transitionType_ = nullptr;

    // Receiver wake edge (idle elision).
    Ticking *receiver_ = nullptr;
    Cycle receiverWakeLead_ = 0;

    // Faults / reliability.
    FaultInjector *faults_ = nullptr;
    int faultId_ = kInvalid;
    bool failed_ = false;
    std::uint64_t flitsCorrupted_ = 0;
    std::uint64_t flitRetries_ = 0;
    std::uint64_t lockLossEvents_ = 0;
    std::uint64_t flitsDroppedOnFail_ = 0;
    std::uint64_t flitsDroppedOnFailLifetime_ = 0;
    std::uint64_t windowRetries_ = 0;

    // Serialization / in-flight flits (ring capacity kInflightCap,
    // public above; power of two so the drain walk can mask).
    static_assert((kInflightCap & (kInflightCap - 1)) == 0);
    double nextFree_ = 0.0; ///< earliest cycle the transmitter is free
    struct InFlight
    {
        Flit flit;
        Cycle arrives;
        int attempts = 0; ///< retransmissions so far
        bool corrupt = false;
    };
    InFlight inflight_[kInflightCap];
    int inflightHead_ = 0;
    int inflightCount_ = 0;
    Cycle lastArrival_ = 0;

    // Accounting.
    TimeWeighted powerTw_;    ///< mW, piecewise constant
    TimeWeighted capacityTw_; ///< flits/cycle the link could move
    std::uint64_t windowFlits_ = 0;
    std::uint64_t totalFlits_ = 0;
    double windowCapBase_ = 0.0;
    Cycle windowStart_ = 0;

    // System power ledger mirror (null when detached).
    LinkPowerLedger *ledger_ = nullptr;
    int ledgerId_ = kInvalid;

    // Wake-settle accounting (see Params::wakeSettleCycles). While the
    // transmitter settles after a wake from kOff, the power step to the
    // target level is *pending*: it is folded into the integrals at
    // exactly wakeSettleEnd_ by the next advance()/refreshSignals(),
    // or cancelled if a newer signal (fault, re-gate) supersedes it.
    Cycle wakeSettleEnd_ = kNeverCycle;
    Cycle pendingPowerAt_ = kNeverCycle;
    double pendingPowerMw_ = 0.0;
    double pendingVddFrac_ = 0.0;
};

} // namespace oenet

#endif // OENET_LINK_LINK_HH
