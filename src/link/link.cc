#include "link/link.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "fault/fault_injector.hh"
#include "phy/ber.hh"
#include "phy/power_ledger.hh"
#include "sim/kernel.hh"

namespace oenet {

const char *
linkKindName(LinkKind kind)
{
    switch (kind) {
      case LinkKind::kInjection:
        return "injection";
      case LinkKind::kEjection:
        return "ejection";
      case LinkKind::kInterRouter:
        return "inter-router";
    }
    panic("linkKindName: bad kind %d", static_cast<int>(kind));
}

OpticalLink::OpticalLink(std::string name, LinkKind kind,
                         const BitrateLevelTable &levels,
                         const Params &params)
    : name_(std::move(name)), kind_(kind), levels_(levels),
      params_(params), powerModel_(params.scheme, params.power)
{
    int init = params_.initialLevel;
    if (init == kInvalid)
        init = levels_.maxLevel();
    if (init < 0 || init > levels_.maxLevel())
        fatal("OpticalLink %s: initial level %d out of range",
              name_.c_str(), init);
    fromLevel_ = toLevel_ = init;
    refreshSignals(0);
}

double
OpticalLink::currentBitRateGbps() const
{
    // During a voltage ramp ahead of a frequency increase the link is
    // still clocked at the old rate; in every other phase the wire rate
    // is the target level's.
    int level = phase_ == Phase::kVoltRampUp ? fromLevel_ : toLevel_;
    return levels_.level(level).brGbps;
}

void
OpticalLink::writePower(Cycle at, double mw, double vdd_frac)
{
    powerTw_.update(at, mw);
    if (ledger_ != nullptr)
        ledger_->updateDynamic(ledgerId_, at, mw, vdd_frac);
}

void
OpticalLink::refreshSignals(Cycle at)
{
    // A pending wake-settle power step either lands first (it is due
    // at or before this newer signal) or is superseded by it — e.g. a
    // re-gate or hard failure mid-settle cancels the step up.
    if (pendingPowerAt_ != kNeverCycle) {
        if (pendingPowerAt_ <= at)
            writePower(pendingPowerAt_, pendingPowerMw_,
                       pendingVddFrac_);
        pendingPowerAt_ = kNeverCycle;
    }
    if (wakeSettleEnd_ != kNeverCycle && at >= wakeSettleEnd_)
        wakeSettleEnd_ = kNeverCycle;

    // Operating point used for *power*: voltage is conservatively the
    // higher of the two endpoints mid-transition (it ramps before the
    // frequency rises and after it falls).
    double br_power;
    double v_power;
    switch (phase_) {
      case Phase::kStable:
        br_power = levels_.level(toLevel_).brGbps;
        v_power = levels_.level(toLevel_).vddV;
        break;
      case Phase::kVoltRampUp:
        br_power = levels_.level(fromLevel_).brGbps;
        v_power = levels_.level(toLevel_).vddV;
        break;
      case Phase::kFreqSwitch:
        br_power = levels_.level(toLevel_).brGbps;
        v_power = std::max(levels_.level(fromLevel_).vddV,
                           levels_.level(toLevel_).vddV);
        break;
      case Phase::kVoltRampDown:
        br_power = levels_.level(toLevel_).brGbps;
        v_power = levels_.level(fromLevel_).vddV;
        break;
      case Phase::kOff:
        wakeSettleEnd_ = kNeverCycle;
        writePower(at, params_.offPowerMw, 0.0);
        capacityTw_.update(at, 0.0);
        return;
      default:
        panic("OpticalLink %s: bad phase", name_.c_str());
    }
    double mw = powerModel_.powerMw(br_power, v_power, opticalScale_);
    double vdd_frac = v_power / params_.power.vmaxV;
    if (wakeSettleEnd_ != kNeverCycle) {
        // Still settling after a wake from the gated-off state: the
        // transmitter draws gate-off power until wakeSettleEnd_, then
        // steps to the target point (the step is folded in by the
        // next advance() past the boundary).
        writePower(at, params_.offPowerMw, 0.0);
        pendingPowerAt_ = wakeSettleEnd_;
        pendingPowerMw_ = mw;
        pendingVddFrac_ = vdd_frac;
    } else {
        writePower(at, mw, vdd_frac);
    }
    double capacity =
        enabledNow() ? flitsPerCycle(currentBitRateGbps()) : 0.0;
    capacityTw_.update(at, capacity);
}

void
OpticalLink::enterPhase(Phase phase, Cycle at, Cycle end)
{
    phase_ = phase;
    phaseEnd_ = end;
    if (phase == Phase::kStable) {
        if (traceSink_ && transitionType_) {
            traceSink_->linkTransition(LinkTransitionEvent{
                transitionStart_, at, traceId_, transitionFrom_,
                toLevel_, transitionType_});
        }
        transitionType_ = nullptr;
        fromLevel_ = toLevel_;
    }
    if (ledger_ != nullptr) {
        // Stable and gated-off links hold their power until the next
        // call touches them; only mid-transition links can change at a
        // scheduled boundary with nobody calling in.
        ledger_->setStable(ledgerId_, phase == Phase::kStable ||
                                          phase == Phase::kOff);
    }
    refreshSignals(at);
}

void
OpticalLink::setTrace(TraceSink *sink, int trace_id)
{
    traceSink_ = sink;
    traceId_ = trace_id;
}

void
OpticalLink::setFault(FaultInjector *faults, int link_id)
{
    faults_ = faults;
    faultId_ = link_id;
}

void
OpticalLink::resetStats(Cycle now)
{
    advance(now);
    powerTw_.reset(now);
    if (ledger_ != nullptr)
        ledger_->resetDynamic(ledgerId_, now);
    totalFlits_ = 0;
    numTransitions_ = 0;
    flitsCorrupted_ = 0;
    flitRetries_ = 0;
    lockLossEvents_ = 0;
    flitsDroppedOnFail_ = 0;
}

void
OpticalLink::setOff(Cycle now, bool off)
{
    advance(now);
    if (failed_)
        return; // a dead link can be neither gated nor woken
    if (off) {
        if (phase_ != Phase::kStable)
            panic("OpticalLink %s: setOff during transition",
                  name_.c_str());
        if (traceSink_) {
            // Gating is immediate; report a zero-latency event.
            traceSink_->linkTransition(LinkTransitionEvent{
                now, now, traceId_, toLevel_, toLevel_, "off"});
        }
        enterPhase(Phase::kOff, now, kNeverCycle);
    } else {
        if (phase_ != Phase::kOff)
            return;
        // Wake-up: the receiver CDR must reacquire lock. For the first
        // part of the relock the transmitter is still stabilizing and
        // keeps drawing gate-off power (Params::wakeSettleCycles).
        numTransitions_++;
        transitionStart_ = now;
        transitionFrom_ = toLevel_;
        transitionType_ = "wake";
        wakeSettleEnd_ = now + std::min(params_.wakeSettleCycles,
                                        params_.freqTransitionCycles);
        enterPhase(Phase::kFreqSwitch, now,
                   now + params_.freqTransitionCycles);
        advance(now);
        armReceiverTransitionWake();
    }
}

void
OpticalLink::armReceiverTransitionWake()
{
    // With faults attached the receiver advances this link on every
    // poll, so an always-awake receiver would process (and trace) the
    // transition completion at its exact end cycle. A parked receiver
    // must come back for that cycle; later phases of the same
    // transition chain re-arm through nextReceiverEventCycle when it
    // re-parks.
    if (receiver_ != nullptr && faults_ != nullptr &&
        phase_ != Phase::kStable && phase_ != Phase::kOff)
        receiver_->wakeAt(phaseEnd_ > receiverWakeLead_
                              ? phaseEnd_ - receiverWakeLead_
                              : 0);
}

void
OpticalLink::advance(Cycle now)
{
    if (faults_ != nullptr)
        faultAdvance(now);
    phaseAdvance(now);
    if (pendingPowerAt_ <= now) {
        // Wake settle complete: step to the target power at the exact
        // boundary cycle (pendingPowerAt_ == wakeSettleEnd_).
        writePower(pendingPowerAt_, pendingPowerMw_, pendingVddFrac_);
        pendingPowerAt_ = kNeverCycle;
        wakeSettleEnd_ = kNeverCycle;
    }
}

void
OpticalLink::faultAdvance(Cycle now)
{
    if (failed_)
        return;
    Cycle fail_at = faults_->hardFailAtCycle(faultId_);
    Cycle horizon = std::min(now, fail_at);

    // CDR lock losses strictly up to the horizon, at their exact
    // cycles. A loss only bites when the link is stable: during a
    // frequency switch the CDR is relocking anyway and while gated off
    // it is dark, so the event dissolves into the ongoing outage.
    for (;;) {
        Cycle at = faults_->peekLockLoss(faultId_);
        if (at > horizon)
            break;
        faults_->consumeLockLoss(faultId_);
        phaseAdvance(at);
        if (phase_ != Phase::kStable)
            continue;
        lockLossEvents_++;
        Cycle outage = faults_->params().lockLossOutageCycles;
        transitionStart_ = at;
        transitionFrom_ = toLevel_;
        transitionType_ = "lock_loss";
        enterPhase(Phase::kFreqSwitch, at, at + outage);
        // Flits on the wire during the outage arrive scrambled.
        for (int i = 0; i < inflightCount_; ++i) {
            InFlight &f =
                inflight_[(inflightHead_ + i) % kInflightCap];
            if (f.arrives > at)
                f.corrupt = true;
        }
        if (traceSink_) {
            traceSink_->faultEvent(FaultEvent{
                at, traceId_, "lock_loss", 0,
                static_cast<double>(outage)});
        }
    }

    if (fail_at <= now) {
        phaseAdvance(fail_at);
        failLink(fail_at);
    }
}

void
OpticalLink::failLink(Cycle at)
{
    failed_ = true;
    // Any transition underway will never complete; drop its pending
    // trace report rather than fabricating a completion.
    transitionType_ = nullptr;
    int lost = inflightCount_;
    flitsDroppedOnFail_ += static_cast<std::uint64_t>(lost);
    flitsDroppedOnFailLifetime_ += static_cast<std::uint64_t>(lost);
    inflightCount_ = 0;
    enterPhase(Phase::kOff, at, kNeverCycle);
    if (traceSink_) {
        traceSink_->faultEvent(FaultEvent{at, traceId_, "hard_fail", 0,
                                          static_cast<double>(lost)});
    }
}

void
OpticalLink::phaseAdvance(Cycle now)
{
    while (phase_ != Phase::kStable && phase_ != Phase::kOff &&
           phaseEnd_ <= now) {
        Cycle at = phaseEnd_;
        switch (phase_) {
          case Phase::kVoltRampUp:
            enterPhase(Phase::kFreqSwitch, at,
                       at + params_.freqTransitionCycles);
            break;
          case Phase::kFreqSwitch:
            if (toLevel_ >= fromLevel_) {
                enterPhase(Phase::kStable, at, at);
            } else {
                enterPhase(Phase::kVoltRampDown, at,
                           at + params_.voltTransitionCycles);
            }
            break;
          case Phase::kVoltRampDown:
            enterPhase(Phase::kStable, at, at);
            break;
          default:
            panic("OpticalLink %s: advancing stable phase",
                  name_.c_str());
        }
    }
}

bool
OpticalLink::canAcceptSlow(Cycle now)
{
    advance(now);
    if (!enabledNow() || inflightCount_ >= kInflightCap)
        return false;
    return static_cast<double>(now) + 1.0 > nextFree_ + 1e-9;
}

void
OpticalLink::accept(Cycle now, const Flit &flit)
{
    advance(now);
    if (!enabledNow())
        panic("OpticalLink %s: accept while disabled", name_.c_str());
    if (inflightCount_ >= kInflightCap)
        panic("OpticalLink %s: in-flight ring overflow", name_.c_str());
    if (static_cast<double>(now) + 1.0 <= nextFree_ + 1e-9)
        panic("OpticalLink %s: accept while serializing", name_.c_str());

    // Serialization begins the instant the transmitter frees up, which
    // may fall fractionally inside this cycle; keeping the fraction is
    // what makes the saturated rate equal the level's bit rate.
    double cpf = cyclesPerFlit(currentBitRateGbps());
    nextFree_ = std::max(nextFree_, static_cast<double>(now)) + cpf;

    Cycle arrives = params_.propagationCycles +
                    static_cast<Cycle>(std::ceil(nextFree_ - 1e-9));
    if (arrives <= lastArrival_)
        arrives = lastArrival_ + 1;
    lastArrival_ = arrives;

    int slot = (inflightHead_ + inflightCount_) % kInflightCap;
    InFlight &f = inflight_[slot];
    f.flit = flit;
    f.arrives = arrives;
    f.attempts = 0;
    f.corrupt = faults_ != nullptr &&
                faults_->drawFlitCorrupt(faultId_, flitCorruptProb());
    if (f.corrupt)
        flitsCorrupted_++;
    inflightCount_++;

    windowFlits_++;
    totalFlits_++;
    if (ledger_ != nullptr)
        ledger_->countFlit(ledgerId_, flit.vc);

    // Wake edge: a parked receiver must tick when this flit lands
    // (even a corrupt copy — the receiver's poll at `arrives` is what
    // drives the CRC/NACK replay at its exact cycle).
    if (receiver_)
        receiver_->wakeAt(arrives > receiverWakeLead_
                              ? arrives - receiverWakeLead_
                              : 0);
}

Cycle
OpticalLink::nextReceiverEventCycle() const
{
    Cycle next = kNeverCycle;
    if (inflightCount_ > 0)
        next = inflight_[inflightHead_].arrives;
    if (faults_ != nullptr && !failed_) {
        // An every-cycle poller would discover these during its
        // hasArrival() walk; a parked receiver must come back at the
        // same cycles so counters and trace emission land identically.
        next = std::min(next, faults_->peekLockLoss(faultId_));
        next = std::min(next, faults_->hardFailAtCycle(faultId_));
        if (phase_ != Phase::kStable && phase_ != Phase::kOff)
            next = std::min(next, phaseEnd_);
    }
    return next;
}

double
OpticalLink::flitCorruptProb() const
{
    const FaultParams &fp = faults_->params();
    // Received optical power as a fraction of full power: the VOA
    // level for modulator links, the drive voltage for directly
    // modulated VCSELs.
    int level = phase_ == Phase::kVoltRampUp ? fromLevel_ : toLevel_;
    double frac = powerModel_.scheme() == LinkScheme::kModulator
                      ? opticalScale_
                      : levels_.level(level).vddV / params_.power.vmaxV;
    double margin = opticalMargin(frac, levels_.level(level).brGbps,
                                  params_.power.brMaxGbps);
    double ber = fp.berScale * berFromMargin(margin) + fp.berFloor;
    if (ber > 0.5)
        ber = 0.5;
    return flitErrorProb(ber, kFlitBits);
}

void
OpticalLink::reliabilityAdvance(Cycle now)
{
    advance(now); // scheduled faults first; a failure drops the ring
    const FaultParams &fp = faults_->params();
    while (inflightCount_ > 0) {
        InFlight &head = inflight_[inflightHead_];
        if (!head.corrupt || head.arrives > now)
            break;
        if (phase_ == Phase::kOff)
            break; // replay resumes when the link wakes
        // The corrupt copy reached the receiver at head.arrives, fails
        // its CRC there, and the NACK flies back; the sender replays
        // from its retransmission buffer after a bounded exponential
        // backoff, re-occupying the transmitter for one flit time.
        head.attempts++;
        flitRetries_++;
        windowRetries_++;
        if (traceSink_) {
            traceSink_->faultEvent(FaultEvent{head.arrives, traceId_,
                                              "corrupt", head.attempts,
                                              0.0});
        }
        Cycle nack = head.arrives + params_.propagationCycles +
                     fp.ackProcessingCycles;
        int shift = std::min(head.attempts - 1, 20);
        Cycle backoff =
            std::min(fp.retryBackoffCap, fp.retryBackoffBase << shift);
        double start =
            std::max(nextFree_, static_cast<double>(nack + backoff));
        if (!enabledNow())
            start = std::max(start, static_cast<double>(phaseEnd_));
        nextFree_ = start + cyclesPerFlit(currentBitRateGbps());
        Cycle arrives = params_.propagationCycles +
                        static_cast<Cycle>(std::ceil(nextFree_ - 1e-9));
        if (arrives <= head.arrives)
            arrives = head.arrives + 1;
        head.arrives = arrives;
        if (arrives > lastArrival_)
            lastArrival_ = arrives;
        head.corrupt =
            faults_->drawFlitCorrupt(faultId_, flitCorruptProb());
        if (head.corrupt)
            flitsCorrupted_++;
        if (traceSink_) {
            traceSink_->faultEvent(FaultEvent{
                static_cast<Cycle>(start), traceId_, "retry",
                head.attempts, static_cast<double>(backoff)});
        }
    }
}

Flit
OpticalLink::popArrival(Cycle now)
{
    if (!hasArrival(now))
        panic("OpticalLink %s: popArrival with nothing arrived",
              name_.c_str());
    Flit flit = inflight_[inflightHead_].flit;
    inflightHead_ = (inflightHead_ + 1) % kInflightCap;
    inflightCount_--;
    return flit;
}

void
OpticalLink::requestLevel(Cycle now, int level)
{
    advance(now);
    if (phase_ != Phase::kStable)
        panic("OpticalLink %s: level request during transition",
              name_.c_str());
    if (level < 0 || level > levels_.maxLevel())
        panic("OpticalLink %s: level %d out of range", name_.c_str(),
              level);
    if (level == toLevel_)
        return;

    fromLevel_ = toLevel_;
    toLevel_ = level;
    if (ledger_ != nullptr)
        ledger_->setLevel(ledgerId_, level);
    numTransitions_++;
    transitionStart_ = now;
    transitionFrom_ = fromLevel_;
    transitionType_ = "level";

    if (level > fromLevel_) {
        // Raise voltage first (link keeps running), then switch
        // frequency (CDR relock disables the link for T_br).
        if (params_.voltTransitionCycles > 0) {
            enterPhase(Phase::kVoltRampUp, now,
                       now + params_.voltTransitionCycles);
        } else {
            enterPhase(Phase::kFreqSwitch, now,
                       now + params_.freqTransitionCycles);
        }
    } else {
        // Drop frequency first, then ramp the voltage down.
        enterPhase(Phase::kFreqSwitch, now,
                   now + params_.freqTransitionCycles);
    }
    // Zero-length phases resolve immediately.
    advance(now);
    armReceiverTransitionWake();
}

bool
OpticalLink::transitionInProgress(Cycle now)
{
    advance(now);
    return phase_ != Phase::kStable;
}

void
OpticalLink::setOpticalScale(Cycle now, double scale)
{
    advance(now);
    if (scale <= 0.0 || scale > 1.0)
        panic("OpticalLink %s: optical scale %f out of (0, 1]",
              name_.c_str(), scale);
    opticalScale_ = scale;
    refreshSignals(now);
}

void
OpticalLink::beginWindow(Cycle now)
{
    advance(now);
    windowFlits_ = 0;
    windowRetries_ = 0;
    windowCapBase_ = capacityTw_.integral(now);
    windowStart_ = now;
}

double
OpticalLink::windowUtilization(Cycle now)
{
    advance(now);
    double cap = capacityTw_.integral(now) - windowCapBase_;
    if (cap <= 1e-9)
        return windowFlits_ > 0 ? 1.0 : 0.0;
    double u = static_cast<double>(windowFlits_) / cap;
    return u > 1.0 ? 1.0 : u;
}

int
OpticalLink::attachLedger(LinkPowerLedger &ledger)
{
    double vdd_frac = phase_ == Phase::kOff
                          ? 0.0
                          : levels_.level(toLevel_).vddV /
                                params_.power.vmaxV;
    ledgerId_ = ledger.addLink(static_cast<int>(kind_), maxPowerMw(),
                               toLevel_, powerTw_.value(), vdd_frac);
    ledger_ = &ledger;
    return ledgerId_;
}

double
OpticalLink::powerMw(Cycle now)
{
    advance(now);
    return powerTw_.value();
}

double
OpticalLink::powerIntegralMwCycles(Cycle now)
{
    advance(now);
    return powerTw_.integral(now);
}

double
OpticalLink::energyMj(Cycle now)
{
    // mW * cycles * seconds/cycle = mW*s = mJ.
    return powerIntegralMwCycles(now) * kSecondsPerCycle;
}

} // namespace oenet
