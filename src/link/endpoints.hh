/**
 * @file
 * Interfaces between a link and the entities at its two ends.
 *
 * CreditSink: the upstream sender of a link tracks credits for the
 * downstream input buffer; when the receiver drains a flit it returns a
 * credit through this interface. Implementations apply the credit with a
 * one-cycle delay so results do not depend on tick ordering.
 *
 * OccupancyProvider: the power-aware policy needs the downstream input
 * buffer utilization B_u (Section 3.3). Receivers expose the
 * time-integral of their buffer occupancy so the controller can compute
 * exact window averages without per-cycle sampling. Architecturally this
 * is the same information the sender's credit counters carry.
 */

#ifndef OENET_LINK_ENDPOINTS_HH
#define OENET_LINK_ENDPOINTS_HH

#include "common/types.hh"

namespace oenet {

class CreditSink
{
  public:
    virtual ~CreditSink() = default;

    /** Return one credit for @p vc of the sender's output @p port.
     *  Takes effect at cycle @p now + 1. */
    virtual void returnCredit(int port, int vc, Cycle now) = 0;
};

class OccupancyProvider
{
  public:
    virtual ~OccupancyProvider() = default;

    /** Time-integral (flit-cycles) of buffer occupancy at input
     *  @p port since simulation start, evaluated at @p now. */
    virtual double occupancyIntegral(int port, Cycle now) const = 0;

    /** Total flit capacity of the input buffer at @p port. */
    virtual int bufferCapacity(int port) const = 0;
};

} // namespace oenet

#endif // OENET_LINK_ENDPOINTS_HH
