/**
 * @file
 * Stress the power-aware policy with self-similar traffic — burstiness
 * at every time scale, the hardest case for a windowed controller —
 * and print periodic power reports that break the savings down by link
 * class (injection / ejection / inter-router).
 *
 * Usage: bursty_stress [model=selfsimilar|onoff] [rate=1.5]
 *                      [cycles=150000] [key=value ...]
 */

#include <cstdio>
#include <memory>

#include "common/config.hh"
#include "common/log.hh"
#include "core/poe_system.hh"
#include "network/power_report.hh"
#include "traffic/bursty.hh"

using namespace oenet;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    SystemConfig cfg = SystemConfig::fromConfig(config);

    const Cycle total = config.getUint("cycles", 150000);
    const double rate = config.getDouble("rate", 1.5);
    std::string model = config.getString("model", "selfsimilar");

    PoeSystem sys(cfg);
    std::unique_ptr<TrafficSource> traffic;
    if (model == "selfsimilar") {
        SelfSimilarTraffic::Params p;
        p.numNodes = cfg.numNodes();
        p.targetRate = rate;
        p.seed = config.getUint("seed", 3);
        traffic = std::make_unique<SelfSimilarTraffic>(p);
        std::printf("self-similar traffic: %d Pareto on/off sources, "
                    "target %.2f pkts/cycle\n",
                    p.numSources, p.targetRate);
    } else if (model == "onoff") {
        OnOffTraffic::Params p;
        p.numNodes = cfg.numNodes();
        p.burstRate = rate * 3.0;
        p.idleRate = rate / 20.0;
        p.seed = config.getUint("seed", 3);
        traffic = std::make_unique<OnOffTraffic>(p);
        std::printf("on/off traffic: bursts %.2f pkts/cycle, idle "
                    "%.3f, mean rate %.2f\n",
                    p.burstRate, p.idleRate,
                    OnOffTraffic(p).meanRate());
    } else {
        fatal("model must be selfsimilar or onoff (got '%s')",
              model.c_str());
    }
    sys.setTraffic(std::move(traffic));
    sys.startMeasurement();

    const Cycle report_every = total / 5;
    for (Cycle t = 0; t < total; t += report_every) {
        sys.run(report_every);
        PowerReport report = makePowerReport(sys.network(), sys.now());
        std::fputs(report.toString().c_str(), stdout);
    }

    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    sys.awaitDrain(300000);
    RunMetrics m = sys.metrics();
    std::printf("\nrun summary: %s\n", m.summary().c_str());
    return 0;
}
