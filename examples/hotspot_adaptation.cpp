/**
 * @file
 * Watch the power-aware network track a time-varying hot-spot load in
 * real time: prints one line per window-of-bins with the offered rate,
 * normalized power, average latency, and the live bit-rate level
 * histogram — an animated view of Section 4.3.2.
 *
 * Usage: hotspot_adaptation [key=value ...]
 *   e.g. hotspot_adaptation link.scheme=vcsel policy.window=500
 */

#include <cstdio>
#include <map>

#include "common/config.hh"
#include "core/experiment.hh"
#include "traffic/hotspot.hh"

using namespace oenet;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    SystemConfig cfg = SystemConfig::fromConfig(config);

    const Cycle total = config.getUint("cycles", 200000);
    const Cycle bin = config.getUint("bin", 10000);

    PoeSystem sys(cfg);
    TrafficSpec spec =
        TrafficSpec::hotspot(defaultHotspotSchedule(total), 4, 97);
    sys.setTraffic(makeTraffic(spec, cfg));
    sys.startMeasurement();

    std::printf("power-aware opto-electronic network, %s links, "
                "hot node %u draws 4x traffic\n",
                linkSchemeName(cfg.scheme),
                spec.hotNode % static_cast<NodeId>(cfg.numNodes()));
    std::printf("%10s %8s %8s %9s   %s\n", "cycle", "rate", "power",
                "latency", "links per bit-rate level (low..high)");

    std::uint64_t prev_created = 0;
    double prev_integral = 0.0;
    double prev_lat_sum = 0.0;
    std::size_t prev_lat_n = 0;
    double base = sys.network().baselinePowerMw();

    for (Cycle t = 0; t < total; t += bin) {
        sys.run(bin);

        double integral =
            sys.network().totalPowerIntegralMwCycles(sys.now());
        double power = (integral - prev_integral) /
                       (static_cast<double>(bin) * base);
        prev_integral = integral;

        std::uint64_t created = sys.measuredCreated();
        double rate = static_cast<double>(created - prev_created) /
                      static_cast<double>(bin);
        prev_created = created;

        double lat_sum = sys.latencyStat().sum();
        std::size_t lat_n = sys.latencyStat().count();
        double lat = lat_n > prev_lat_n
                         ? (lat_sum - prev_lat_sum) /
                               static_cast<double>(lat_n - prev_lat_n)
                         : 0.0;
        prev_lat_sum = lat_sum;
        prev_lat_n = lat_n;

        std::map<int, int> levels;
        Network &net = sys.network();
        for (std::size_t i = 0; i < net.numLinks(); i++)
            levels[net.link(i).currentLevel()]++;
        std::string hist;
        for (int l = 0; l <= net.levels().maxLevel(); l++) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%5d", levels[l]);
            hist += buf;
        }

        std::printf("%10llu %8.2f %8.3f %9.1f  %s\n",
                    static_cast<unsigned long long>(sys.now()), rate,
                    power, lat, hist.c_str());
    }

    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    sys.awaitDrain(100000);
    RunMetrics m = sys.metrics();
    std::printf("\nrun summary: %s\n", m.summary().c_str());
    std::printf("bit-rate transitions: %llu (up decisions %llu, down "
                "%llu)\n",
                static_cast<unsigned long long>(m.transitions),
                static_cast<unsigned long long>(m.decisionsUp),
                static_cast<unsigned long long>(m.decisionsDown));
    return 0;
}
