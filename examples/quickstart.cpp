/**
 * @file
 * Quickstart: build the paper's 64-rack power-aware opto-electronic
 * network with default parameters, offer uniform random traffic at a
 * medium rate, and print latency/power metrics for the power-aware
 * system next to its non-power-aware twin.
 *
 * Usage: quickstart [key=value ...]
 *   e.g. quickstart rate=2.0 link.scheme=vcsel policy.window=500
 */

#include <cstdio>

#include "common/config.hh"
#include "core/sweeps.hh"

using namespace oenet;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    SystemConfig cfg = SystemConfig::fromConfig(config);
    double rate = config.getDouble("rate", 2.0);
    int packet_len = static_cast<int>(config.getInt("packet_len", 4));

    std::printf("oenet quickstart: %dx%d mesh, %d nodes/rack, "
                "%s links, %d levels %.1f-%.1f Gb/s\n",
                cfg.meshX, cfg.meshY, cfg.clusterSize,
                linkSchemeName(cfg.scheme), cfg.numLevels, cfg.brMinGbps,
                cfg.brMaxGbps);
    std::printf("offered load: %.2f packets/cycle, %d-flit packets\n\n",
                rate, packet_len);

    RunProtocol protocol;
    protocol.warmup = 20000;
    protocol.measure = 60000;

    PairedResult r = runPaired(
        cfg, TrafficSpec::uniform(rate, packet_len), protocol);

    std::printf("%-22s %12s %12s\n", "", "power-aware", "baseline");
    std::printf("%-22s %12.1f %12.1f\n", "avg latency (cycles)",
                r.powerAware.avgLatency, r.baseline.avgLatency);
    std::printf("%-22s %12.1f %12.1f\n", "p95 latency (cycles)",
                r.powerAware.p95Latency, r.baseline.p95Latency);
    std::printf("%-22s %12.1f %12.1f\n", "link power (mW)",
                r.powerAware.avgPowerMw, r.baseline.avgPowerMw);
    std::printf("%-22s %12.3f %12.3f\n", "normalized power",
                r.powerAware.normalizedPower, r.baseline.normalizedPower);
    std::printf("%-22s %12.3f %12.3f\n", "throughput (flits/cyc)",
                r.powerAware.throughputFlitsPerCycle,
                r.baseline.throughputFlitsPerCycle);
    std::printf("%-22s %12llu %12llu\n", "bit-rate transitions",
                static_cast<unsigned long long>(r.powerAware.transitions),
                static_cast<unsigned long long>(r.baseline.transitions));
    std::printf("\nvs baseline: latency x%.2f, power x%.2f "
                "(%.0f%% saved), power-latency product x%.2f\n",
                r.normalized.latencyRatio, r.normalized.powerRatio,
                100.0 * (1.0 - r.normalized.powerRatio),
                r.normalized.plpRatio);
    return 0;
}
