/**
 * @file
 * Mini design-space exploration in the spirit of the paper's title:
 * sweep the transmitter scheme (VCSEL vs. modulator), the bit-rate
 * range (5-10 vs. 3.3-10 Gb/s), and the optical provisioning (fixed vs.
 * tri-level, modulator only) at a chosen load, and print the
 * latency/power frontier so a designer can pick an operating point.
 *
 * Usage: design_space [rate=2.0] [key=value ...]
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "core/sweeps.hh"

using namespace oenet;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    double rate = config.getDouble("rate", 2.0);

    struct Point
    {
        const char *name;
        SystemConfig config;
    };
    std::vector<Point> points;

    {
        SystemConfig c;
        c.scheme = LinkScheme::kVcsel;
        points.push_back({"vcsel   5-10G  fixed", c});
    }
    {
        SystemConfig c;
        c.scheme = LinkScheme::kVcsel;
        c.brMinGbps = 3.3;
        points.push_back({"vcsel 3.3-10G  fixed", c});
    }
    {
        SystemConfig c;
        c.scheme = LinkScheme::kModulator;
        points.push_back({"mod     5-10G  fixed", c});
    }
    {
        SystemConfig c;
        c.scheme = LinkScheme::kModulator;
        c.brMinGbps = 3.3;
        points.push_back({"mod   3.3-10G  fixed", c});
    }
    {
        SystemConfig c;
        c.scheme = LinkScheme::kModulator;
        c.opticalMode = OpticalMode::kTriLevel;
        points.push_back({"mod     5-10G  trilevel", c});
    }
    {
        SystemConfig c;
        c.policyMode = PolicyMode::kOnOff;
        points.push_back({"mod     5-10G  on/off", c});
    }

    RunProtocol protocol;
    protocol.warmup = 15000;
    protocol.measure = 30000;
    protocol.drainLimit = 40000;

    std::printf("design-space sweep at %.2f packets/cycle (uniform "
                "random, 64 racks)\n\n",
                rate);
    std::printf("%-26s %10s %10s %10s %12s\n", "design point",
                "latency_x", "power_x", "plp_x", "transitions");

    SystemConfig base;
    base.powerAware = false;
    TrafficSpec spec = TrafficSpec::uniform(rate, 4, 13);
    RunMetrics baseline = runExperiment(base, spec, protocol);

    for (const auto &pt : points) {
        RunMetrics m = runExperiment(pt.config, spec, protocol);
        NormalizedMetrics n = normalizeAgainst(m, baseline);
        std::printf("%-26s %10.3f %10.3f %10.3f %12llu\n", pt.name,
                    n.latencyRatio, n.powerRatio, n.plpRatio,
                    static_cast<unsigned long long>(m.transitions));
    }
    std::printf("\nbaseline: %.1f cycles, %.1f W across %zu links\n",
                baseline.avgLatency, baseline.avgPowerMw / 1000.0,
                static_cast<std::size_t>(1248));
    return 0;
}
