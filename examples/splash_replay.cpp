/**
 * @file
 * Trace workflow end to end: synthesize a SPLASH-2-like trace (FFT, LU
 * or Radix), write it to disk in the oenet trace format, load it back,
 * replay it through the power-aware system, and report Table-3-style
 * normalized power-performance.
 *
 * Usage: splash_replay [trace=fft|lu|radix] [file=path] [key=value...]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/log.hh"
#include "core/sweeps.hh"

using namespace oenet;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    SystemConfig cfg = SystemConfig::fromConfig(config);

    std::string kind_name = config.getString("trace", "fft");
    SplashKind kind;
    if (kind_name == "fft") {
        kind = SplashKind::kFft;
    } else if (kind_name == "lu") {
        kind = SplashKind::kLu;
    } else if (kind_name == "radix") {
        kind = SplashKind::kRadix;
    } else {
        fatal("trace must be fft, lu, or radix (got '%s')",
              kind_name.c_str());
    }
    std::string path =
        config.getString("file", "splash_" + kind_name + ".trc");

    // 1. Synthesize.
    SplashSynthParams sp;
    sp.kind = kind;
    sp.numNodes = cfg.numNodes();
    sp.duration = config.getUint("cycles", 150000);
    sp.rateScale = config.getDouble("scale", 0.6);
    sp.seed = config.getUint("seed", 61);
    TraceData generated = generateSplashTrace(sp);
    std::printf("synthesized %s trace: %zu packets, mean %.1f flits "
                "over %llu cycles\n",
                kind_name.c_str(), generated.size(),
                traceMeanPacketLen(generated),
                static_cast<unsigned long long>(sp.duration));

    // 2. Round-trip through the trace file format.
    saveTrace(path, generated);
    TraceData trace = loadTrace(path);
    validateTrace(trace, cfg.numNodes());
    std::printf("wrote and re-read %s (%zu records)\n", path.c_str(),
                trace.size());

    // 3. Replay through power-aware and baseline systems.
    RunProtocol protocol;
    protocol.warmup = 0;
    protocol.measure = sp.duration;
    protocol.drainLimit = 100000;
    PairedResult r =
        runPaired(cfg, TrafficSpec::traceReplay(trace), protocol);

    std::printf("\n%-26s %12s %12s\n", "", "power-aware", "baseline");
    std::printf("%-26s %12.1f %12.1f\n", "avg latency (cycles)",
                r.powerAware.avgLatency, r.baseline.avgLatency);
    std::printf("%-26s %12.1f %12.1f\n", "avg power (W, all links)",
                r.powerAware.avgPowerMw / 1000.0,
                r.baseline.avgPowerMw / 1000.0);
    std::printf("%-26s %12llu %12llu\n", "bit-rate transitions",
                static_cast<unsigned long long>(
                    r.powerAware.transitions),
                static_cast<unsigned long long>(
                    r.baseline.transitions));
    std::printf("\nnormalized (Table 3 style): latency x%.2f, power "
                "x%.2f, power-latency product x%.2f\n",
                r.normalized.latencyRatio, r.normalized.powerRatio,
                r.normalized.plpRatio);
    return 0;
}
