file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_injection_sweep.dir/fig5_injection_sweep.cc.o"
  "CMakeFiles/bench_fig5_injection_sweep.dir/fig5_injection_sweep.cc.o.d"
  "bench_fig5_injection_sweep"
  "bench_fig5_injection_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_injection_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
