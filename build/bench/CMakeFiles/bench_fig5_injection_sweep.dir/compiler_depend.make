# Empty compiler generated dependencies file for bench_fig5_injection_sweep.
# This may be replaced when dependencies are built.
