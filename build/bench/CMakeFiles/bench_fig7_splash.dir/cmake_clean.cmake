file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_splash.dir/fig7_splash.cc.o"
  "CMakeFiles/bench_fig7_splash.dir/fig7_splash.cc.o.d"
  "bench_fig7_splash"
  "bench_fig7_splash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_splash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
