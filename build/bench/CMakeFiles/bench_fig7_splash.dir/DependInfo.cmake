
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_splash.cc" "bench/CMakeFiles/bench_fig7_splash.dir/fig7_splash.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_splash.dir/fig7_splash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
