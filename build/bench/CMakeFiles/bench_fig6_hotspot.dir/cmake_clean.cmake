file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hotspot.dir/fig6_hotspot.cc.o"
  "CMakeFiles/bench_fig6_hotspot.dir/fig6_hotspot.cc.o.d"
  "bench_fig6_hotspot"
  "bench_fig6_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
