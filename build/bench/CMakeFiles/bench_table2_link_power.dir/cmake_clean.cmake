file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_link_power.dir/table2_link_power.cc.o"
  "CMakeFiles/bench_table2_link_power.dir/table2_link_power.cc.o.d"
  "bench_table2_link_power"
  "bench_table2_link_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_link_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
