# Empty compiler generated dependencies file for bench_table2_link_power.
# This may be replaced when dependencies are built.
