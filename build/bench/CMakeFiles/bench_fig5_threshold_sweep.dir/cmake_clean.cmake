file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_threshold_sweep.dir/fig5_threshold_sweep.cc.o"
  "CMakeFiles/bench_fig5_threshold_sweep.dir/fig5_threshold_sweep.cc.o.d"
  "bench_fig5_threshold_sweep"
  "bench_fig5_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
