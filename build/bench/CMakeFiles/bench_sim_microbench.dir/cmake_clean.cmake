file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_microbench.dir/sim_microbench.cc.o"
  "CMakeFiles/bench_sim_microbench.dir/sim_microbench.cc.o.d"
  "bench_sim_microbench"
  "bench_sim_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
