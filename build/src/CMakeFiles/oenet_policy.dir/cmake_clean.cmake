file(REMOVE_RECURSE
  "CMakeFiles/oenet_policy.dir/policy/controller.cc.o"
  "CMakeFiles/oenet_policy.dir/policy/controller.cc.o.d"
  "CMakeFiles/oenet_policy.dir/policy/history_dvs.cc.o"
  "CMakeFiles/oenet_policy.dir/policy/history_dvs.cc.o.d"
  "CMakeFiles/oenet_policy.dir/policy/laser_controller.cc.o"
  "CMakeFiles/oenet_policy.dir/policy/laser_controller.cc.o.d"
  "CMakeFiles/oenet_policy.dir/policy/on_off.cc.o"
  "CMakeFiles/oenet_policy.dir/policy/on_off.cc.o.d"
  "CMakeFiles/oenet_policy.dir/policy/proportional.cc.o"
  "CMakeFiles/oenet_policy.dir/policy/proportional.cc.o.d"
  "liboenet_policy.a"
  "liboenet_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oenet_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
