
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/controller.cc" "src/CMakeFiles/oenet_policy.dir/policy/controller.cc.o" "gcc" "src/CMakeFiles/oenet_policy.dir/policy/controller.cc.o.d"
  "/root/repo/src/policy/history_dvs.cc" "src/CMakeFiles/oenet_policy.dir/policy/history_dvs.cc.o" "gcc" "src/CMakeFiles/oenet_policy.dir/policy/history_dvs.cc.o.d"
  "/root/repo/src/policy/laser_controller.cc" "src/CMakeFiles/oenet_policy.dir/policy/laser_controller.cc.o" "gcc" "src/CMakeFiles/oenet_policy.dir/policy/laser_controller.cc.o.d"
  "/root/repo/src/policy/on_off.cc" "src/CMakeFiles/oenet_policy.dir/policy/on_off.cc.o" "gcc" "src/CMakeFiles/oenet_policy.dir/policy/on_off.cc.o.d"
  "/root/repo/src/policy/proportional.cc" "src/CMakeFiles/oenet_policy.dir/policy/proportional.cc.o" "gcc" "src/CMakeFiles/oenet_policy.dir/policy/proportional.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
