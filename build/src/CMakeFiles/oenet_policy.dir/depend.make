# Empty dependencies file for oenet_policy.
# This may be replaced when dependencies are built.
