file(REMOVE_RECURSE
  "liboenet_policy.a"
)
