
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/oenet_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/oenet_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/oenet_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/oenet_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/poe_system.cc" "src/CMakeFiles/oenet_core.dir/core/poe_system.cc.o" "gcc" "src/CMakeFiles/oenet_core.dir/core/poe_system.cc.o.d"
  "/root/repo/src/core/sweeps.cc" "src/CMakeFiles/oenet_core.dir/core/sweeps.cc.o" "gcc" "src/CMakeFiles/oenet_core.dir/core/sweeps.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/CMakeFiles/oenet_core.dir/core/system_config.cc.o" "gcc" "src/CMakeFiles/oenet_core.dir/core/system_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
