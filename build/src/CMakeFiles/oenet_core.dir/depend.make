# Empty dependencies file for oenet_core.
# This may be replaced when dependencies are built.
