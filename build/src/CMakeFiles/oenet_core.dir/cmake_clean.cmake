file(REMOVE_RECURSE
  "CMakeFiles/oenet_core.dir/core/experiment.cc.o"
  "CMakeFiles/oenet_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/oenet_core.dir/core/metrics.cc.o"
  "CMakeFiles/oenet_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/oenet_core.dir/core/poe_system.cc.o"
  "CMakeFiles/oenet_core.dir/core/poe_system.cc.o.d"
  "CMakeFiles/oenet_core.dir/core/sweeps.cc.o"
  "CMakeFiles/oenet_core.dir/core/sweeps.cc.o.d"
  "CMakeFiles/oenet_core.dir/core/system_config.cc.o"
  "CMakeFiles/oenet_core.dir/core/system_config.cc.o.d"
  "liboenet_core.a"
  "liboenet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oenet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
