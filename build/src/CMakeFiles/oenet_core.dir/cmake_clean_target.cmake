file(REMOVE_RECURSE
  "liboenet_core.a"
)
