# Empty compiler generated dependencies file for oenet_core.
# This may be replaced when dependencies are built.
