# Empty dependencies file for oenet_phy.
# This may be replaced when dependencies are built.
