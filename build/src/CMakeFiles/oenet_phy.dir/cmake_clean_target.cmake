file(REMOVE_RECURSE
  "liboenet_phy.a"
)
