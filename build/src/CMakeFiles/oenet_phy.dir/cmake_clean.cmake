file(REMOVE_RECURSE
  "CMakeFiles/oenet_phy.dir/phy/bitrate_levels.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/bitrate_levels.cc.o.d"
  "CMakeFiles/oenet_phy.dir/phy/calibration.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/calibration.cc.o.d"
  "CMakeFiles/oenet_phy.dir/phy/laser_source.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/laser_source.cc.o.d"
  "CMakeFiles/oenet_phy.dir/phy/link_power.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/link_power.cc.o.d"
  "CMakeFiles/oenet_phy.dir/phy/modulator.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/modulator.cc.o.d"
  "CMakeFiles/oenet_phy.dir/phy/receiver.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/receiver.cc.o.d"
  "CMakeFiles/oenet_phy.dir/phy/vcsel.cc.o"
  "CMakeFiles/oenet_phy.dir/phy/vcsel.cc.o.d"
  "liboenet_phy.a"
  "liboenet_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oenet_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
