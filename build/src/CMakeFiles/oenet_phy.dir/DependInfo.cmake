
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/bitrate_levels.cc" "src/CMakeFiles/oenet_phy.dir/phy/bitrate_levels.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/bitrate_levels.cc.o.d"
  "/root/repo/src/phy/calibration.cc" "src/CMakeFiles/oenet_phy.dir/phy/calibration.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/calibration.cc.o.d"
  "/root/repo/src/phy/laser_source.cc" "src/CMakeFiles/oenet_phy.dir/phy/laser_source.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/laser_source.cc.o.d"
  "/root/repo/src/phy/link_power.cc" "src/CMakeFiles/oenet_phy.dir/phy/link_power.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/link_power.cc.o.d"
  "/root/repo/src/phy/modulator.cc" "src/CMakeFiles/oenet_phy.dir/phy/modulator.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/modulator.cc.o.d"
  "/root/repo/src/phy/receiver.cc" "src/CMakeFiles/oenet_phy.dir/phy/receiver.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/receiver.cc.o.d"
  "/root/repo/src/phy/vcsel.cc" "src/CMakeFiles/oenet_phy.dir/phy/vcsel.cc.o" "gcc" "src/CMakeFiles/oenet_phy.dir/phy/vcsel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
