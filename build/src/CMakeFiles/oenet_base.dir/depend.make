# Empty dependencies file for oenet_base.
# This may be replaced when dependencies are built.
