file(REMOVE_RECURSE
  "CMakeFiles/oenet_base.dir/common/config.cc.o"
  "CMakeFiles/oenet_base.dir/common/config.cc.o.d"
  "CMakeFiles/oenet_base.dir/common/csv.cc.o"
  "CMakeFiles/oenet_base.dir/common/csv.cc.o.d"
  "CMakeFiles/oenet_base.dir/common/log.cc.o"
  "CMakeFiles/oenet_base.dir/common/log.cc.o.d"
  "CMakeFiles/oenet_base.dir/common/rng.cc.o"
  "CMakeFiles/oenet_base.dir/common/rng.cc.o.d"
  "CMakeFiles/oenet_base.dir/common/stats.cc.o"
  "CMakeFiles/oenet_base.dir/common/stats.cc.o.d"
  "CMakeFiles/oenet_base.dir/sim/event_queue.cc.o"
  "CMakeFiles/oenet_base.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/oenet_base.dir/sim/kernel.cc.o"
  "CMakeFiles/oenet_base.dir/sim/kernel.cc.o.d"
  "liboenet_base.a"
  "liboenet_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oenet_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
