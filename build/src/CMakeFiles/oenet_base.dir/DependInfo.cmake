
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/oenet_base.dir/common/config.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/common/config.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/oenet_base.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/common/csv.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/oenet_base.dir/common/log.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/oenet_base.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/oenet_base.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/common/stats.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/oenet_base.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/CMakeFiles/oenet_base.dir/sim/kernel.cc.o" "gcc" "src/CMakeFiles/oenet_base.dir/sim/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
