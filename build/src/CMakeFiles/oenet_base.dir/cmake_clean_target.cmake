file(REMOVE_RECURSE
  "liboenet_base.a"
)
