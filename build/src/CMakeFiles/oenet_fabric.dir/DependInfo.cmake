
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/link.cc" "src/CMakeFiles/oenet_fabric.dir/link/link.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/link/link.cc.o.d"
  "/root/repo/src/network/network.cc" "src/CMakeFiles/oenet_fabric.dir/network/network.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/network/network.cc.o.d"
  "/root/repo/src/network/node.cc" "src/CMakeFiles/oenet_fabric.dir/network/node.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/network/node.cc.o.d"
  "/root/repo/src/network/power_report.cc" "src/CMakeFiles/oenet_fabric.dir/network/power_report.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/network/power_report.cc.o.d"
  "/root/repo/src/network/topology.cc" "src/CMakeFiles/oenet_fabric.dir/network/topology.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/network/topology.cc.o.d"
  "/root/repo/src/router/allocators.cc" "src/CMakeFiles/oenet_fabric.dir/router/allocators.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/router/allocators.cc.o.d"
  "/root/repo/src/router/buffer.cc" "src/CMakeFiles/oenet_fabric.dir/router/buffer.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/router/buffer.cc.o.d"
  "/root/repo/src/router/flit.cc" "src/CMakeFiles/oenet_fabric.dir/router/flit.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/router/flit.cc.o.d"
  "/root/repo/src/router/router.cc" "src/CMakeFiles/oenet_fabric.dir/router/router.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/router/router.cc.o.d"
  "/root/repo/src/router/routing.cc" "src/CMakeFiles/oenet_fabric.dir/router/routing.cc.o" "gcc" "src/CMakeFiles/oenet_fabric.dir/router/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
