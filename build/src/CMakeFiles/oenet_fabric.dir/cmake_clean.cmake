file(REMOVE_RECURSE
  "CMakeFiles/oenet_fabric.dir/link/link.cc.o"
  "CMakeFiles/oenet_fabric.dir/link/link.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/network/network.cc.o"
  "CMakeFiles/oenet_fabric.dir/network/network.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/network/node.cc.o"
  "CMakeFiles/oenet_fabric.dir/network/node.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/network/power_report.cc.o"
  "CMakeFiles/oenet_fabric.dir/network/power_report.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/network/topology.cc.o"
  "CMakeFiles/oenet_fabric.dir/network/topology.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/router/allocators.cc.o"
  "CMakeFiles/oenet_fabric.dir/router/allocators.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/router/buffer.cc.o"
  "CMakeFiles/oenet_fabric.dir/router/buffer.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/router/flit.cc.o"
  "CMakeFiles/oenet_fabric.dir/router/flit.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/router/router.cc.o"
  "CMakeFiles/oenet_fabric.dir/router/router.cc.o.d"
  "CMakeFiles/oenet_fabric.dir/router/routing.cc.o"
  "CMakeFiles/oenet_fabric.dir/router/routing.cc.o.d"
  "liboenet_fabric.a"
  "liboenet_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oenet_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
