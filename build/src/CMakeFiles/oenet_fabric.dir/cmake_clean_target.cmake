file(REMOVE_RECURSE
  "liboenet_fabric.a"
)
