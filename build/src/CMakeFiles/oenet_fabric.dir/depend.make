# Empty dependencies file for oenet_fabric.
# This may be replaced when dependencies are built.
