# Empty compiler generated dependencies file for oenet_traffic.
# This may be replaced when dependencies are built.
