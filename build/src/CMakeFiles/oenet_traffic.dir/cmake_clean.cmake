file(REMOVE_RECURSE
  "CMakeFiles/oenet_traffic.dir/traffic/bursty.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/bursty.cc.o.d"
  "CMakeFiles/oenet_traffic.dir/traffic/hotspot.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/hotspot.cc.o.d"
  "CMakeFiles/oenet_traffic.dir/traffic/injection_process.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/injection_process.cc.o.d"
  "CMakeFiles/oenet_traffic.dir/traffic/permutation.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/permutation.cc.o.d"
  "CMakeFiles/oenet_traffic.dir/traffic/splash_synth.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/splash_synth.cc.o.d"
  "CMakeFiles/oenet_traffic.dir/traffic/trace.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/trace.cc.o.d"
  "CMakeFiles/oenet_traffic.dir/traffic/uniform.cc.o"
  "CMakeFiles/oenet_traffic.dir/traffic/uniform.cc.o.d"
  "liboenet_traffic.a"
  "liboenet_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oenet_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
