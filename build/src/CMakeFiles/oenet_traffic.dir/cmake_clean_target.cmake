file(REMOVE_RECURSE
  "liboenet_traffic.a"
)
