
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/bursty.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/bursty.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/bursty.cc.o.d"
  "/root/repo/src/traffic/hotspot.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/hotspot.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/hotspot.cc.o.d"
  "/root/repo/src/traffic/injection_process.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/injection_process.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/injection_process.cc.o.d"
  "/root/repo/src/traffic/permutation.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/permutation.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/permutation.cc.o.d"
  "/root/repo/src/traffic/splash_synth.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/splash_synth.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/splash_synth.cc.o.d"
  "/root/repo/src/traffic/trace.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/trace.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/trace.cc.o.d"
  "/root/repo/src/traffic/uniform.cc" "src/CMakeFiles/oenet_traffic.dir/traffic/uniform.cc.o" "gcc" "src/CMakeFiles/oenet_traffic.dir/traffic/uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
