file(REMOVE_RECURSE
  "CMakeFiles/bursty_stress.dir/bursty_stress.cpp.o"
  "CMakeFiles/bursty_stress.dir/bursty_stress.cpp.o.d"
  "bursty_stress"
  "bursty_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
