# Empty dependencies file for bursty_stress.
# This may be replaced when dependencies are built.
