file(REMOVE_RECURSE
  "CMakeFiles/hotspot_adaptation.dir/hotspot_adaptation.cpp.o"
  "CMakeFiles/hotspot_adaptation.dir/hotspot_adaptation.cpp.o.d"
  "hotspot_adaptation"
  "hotspot_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
