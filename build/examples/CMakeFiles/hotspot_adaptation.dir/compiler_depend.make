# Empty compiler generated dependencies file for hotspot_adaptation.
# This may be replaced when dependencies are built.
