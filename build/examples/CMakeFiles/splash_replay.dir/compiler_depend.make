# Empty compiler generated dependencies file for splash_replay.
# This may be replaced when dependencies are built.
