file(REMOVE_RECURSE
  "CMakeFiles/splash_replay.dir/splash_replay.cpp.o"
  "CMakeFiles/splash_replay.dir/splash_replay.cpp.o.d"
  "splash_replay"
  "splash_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
