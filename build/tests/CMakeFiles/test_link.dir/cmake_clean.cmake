file(REMOVE_RECURSE
  "CMakeFiles/test_link.dir/link/link_property_test.cc.o"
  "CMakeFiles/test_link.dir/link/link_property_test.cc.o.d"
  "CMakeFiles/test_link.dir/link/link_test.cc.o"
  "CMakeFiles/test_link.dir/link/link_test.cc.o.d"
  "CMakeFiles/test_link.dir/link/link_transition_test.cc.o"
  "CMakeFiles/test_link.dir/link/link_transition_test.cc.o.d"
  "test_link"
  "test_link.pdb"
  "test_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
