file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/bursty_test.cc.o"
  "CMakeFiles/test_traffic.dir/traffic/bursty_test.cc.o.d"
  "CMakeFiles/test_traffic.dir/traffic/hotspot_test.cc.o"
  "CMakeFiles/test_traffic.dir/traffic/hotspot_test.cc.o.d"
  "CMakeFiles/test_traffic.dir/traffic/permutation_test.cc.o"
  "CMakeFiles/test_traffic.dir/traffic/permutation_test.cc.o.d"
  "CMakeFiles/test_traffic.dir/traffic/splash_synth_test.cc.o"
  "CMakeFiles/test_traffic.dir/traffic/splash_synth_test.cc.o.d"
  "CMakeFiles/test_traffic.dir/traffic/trace_test.cc.o"
  "CMakeFiles/test_traffic.dir/traffic/trace_test.cc.o.d"
  "CMakeFiles/test_traffic.dir/traffic/uniform_test.cc.o"
  "CMakeFiles/test_traffic.dir/traffic/uniform_test.cc.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
