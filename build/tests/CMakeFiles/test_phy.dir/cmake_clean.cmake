file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/phy/bitrate_levels_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/bitrate_levels_test.cc.o.d"
  "CMakeFiles/test_phy.dir/phy/calibration_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/calibration_test.cc.o.d"
  "CMakeFiles/test_phy.dir/phy/laser_source_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/laser_source_test.cc.o.d"
  "CMakeFiles/test_phy.dir/phy/link_power_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/link_power_test.cc.o.d"
  "CMakeFiles/test_phy.dir/phy/modulator_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/modulator_test.cc.o.d"
  "CMakeFiles/test_phy.dir/phy/receiver_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/receiver_test.cc.o.d"
  "CMakeFiles/test_phy.dir/phy/vcsel_test.cc.o"
  "CMakeFiles/test_phy.dir/phy/vcsel_test.cc.o.d"
  "test_phy"
  "test_phy.pdb"
  "test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
