
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/bitrate_levels_test.cc" "tests/CMakeFiles/test_phy.dir/phy/bitrate_levels_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/bitrate_levels_test.cc.o.d"
  "/root/repo/tests/phy/calibration_test.cc" "tests/CMakeFiles/test_phy.dir/phy/calibration_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/calibration_test.cc.o.d"
  "/root/repo/tests/phy/laser_source_test.cc" "tests/CMakeFiles/test_phy.dir/phy/laser_source_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/laser_source_test.cc.o.d"
  "/root/repo/tests/phy/link_power_test.cc" "tests/CMakeFiles/test_phy.dir/phy/link_power_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/link_power_test.cc.o.d"
  "/root/repo/tests/phy/modulator_test.cc" "tests/CMakeFiles/test_phy.dir/phy/modulator_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/modulator_test.cc.o.d"
  "/root/repo/tests/phy/receiver_test.cc" "tests/CMakeFiles/test_phy.dir/phy/receiver_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/receiver_test.cc.o.d"
  "/root/repo/tests/phy/vcsel_test.cc" "tests/CMakeFiles/test_phy.dir/phy/vcsel_test.cc.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/vcsel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
