
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policy/backlog_escalation_test.cc" "tests/CMakeFiles/test_policy.dir/policy/backlog_escalation_test.cc.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/backlog_escalation_test.cc.o.d"
  "/root/repo/tests/policy/controller_test.cc" "tests/CMakeFiles/test_policy.dir/policy/controller_test.cc.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/controller_test.cc.o.d"
  "/root/repo/tests/policy/history_dvs_test.cc" "tests/CMakeFiles/test_policy.dir/policy/history_dvs_test.cc.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/history_dvs_test.cc.o.d"
  "/root/repo/tests/policy/laser_controller_test.cc" "tests/CMakeFiles/test_policy.dir/policy/laser_controller_test.cc.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/laser_controller_test.cc.o.d"
  "/root/repo/tests/policy/on_off_test.cc" "tests/CMakeFiles/test_policy.dir/policy/on_off_test.cc.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/on_off_test.cc.o.d"
  "/root/repo/tests/policy/proportional_test.cc" "tests/CMakeFiles/test_policy.dir/policy/proportional_test.cc.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/proportional_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
