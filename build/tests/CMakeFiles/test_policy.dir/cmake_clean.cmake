file(REMOVE_RECURSE
  "CMakeFiles/test_policy.dir/policy/backlog_escalation_test.cc.o"
  "CMakeFiles/test_policy.dir/policy/backlog_escalation_test.cc.o.d"
  "CMakeFiles/test_policy.dir/policy/controller_test.cc.o"
  "CMakeFiles/test_policy.dir/policy/controller_test.cc.o.d"
  "CMakeFiles/test_policy.dir/policy/history_dvs_test.cc.o"
  "CMakeFiles/test_policy.dir/policy/history_dvs_test.cc.o.d"
  "CMakeFiles/test_policy.dir/policy/laser_controller_test.cc.o"
  "CMakeFiles/test_policy.dir/policy/laser_controller_test.cc.o.d"
  "CMakeFiles/test_policy.dir/policy/on_off_test.cc.o"
  "CMakeFiles/test_policy.dir/policy/on_off_test.cc.o.d"
  "CMakeFiles/test_policy.dir/policy/proportional_test.cc.o"
  "CMakeFiles/test_policy.dir/policy/proportional_test.cc.o.d"
  "test_policy"
  "test_policy.pdb"
  "test_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
