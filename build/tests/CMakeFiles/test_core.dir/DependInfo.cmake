
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/config_file_test.cc" "tests/CMakeFiles/test_core.dir/core/config_file_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_file_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/CMakeFiles/test_core.dir/core/experiment_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/experiment_test.cc.o.d"
  "/root/repo/tests/core/poe_system_test.cc" "tests/CMakeFiles/test_core.dir/core/poe_system_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/poe_system_test.cc.o.d"
  "/root/repo/tests/core/system_config_test.cc" "tests/CMakeFiles/test_core.dir/core/system_config_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/system_config_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
