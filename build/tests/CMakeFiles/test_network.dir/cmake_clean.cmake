file(REMOVE_RECURSE
  "CMakeFiles/test_network.dir/network/network_test.cc.o"
  "CMakeFiles/test_network.dir/network/network_test.cc.o.d"
  "CMakeFiles/test_network.dir/network/node_test.cc.o"
  "CMakeFiles/test_network.dir/network/node_test.cc.o.d"
  "CMakeFiles/test_network.dir/network/power_report_test.cc.o"
  "CMakeFiles/test_network.dir/network/power_report_test.cc.o.d"
  "CMakeFiles/test_network.dir/network/topology_test.cc.o"
  "CMakeFiles/test_network.dir/network/topology_test.cc.o.d"
  "test_network"
  "test_network.pdb"
  "test_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
