file(REMOVE_RECURSE
  "CMakeFiles/test_router.dir/router/adaptive_routing_test.cc.o"
  "CMakeFiles/test_router.dir/router/adaptive_routing_test.cc.o.d"
  "CMakeFiles/test_router.dir/router/allocators_test.cc.o"
  "CMakeFiles/test_router.dir/router/allocators_test.cc.o.d"
  "CMakeFiles/test_router.dir/router/buffer_test.cc.o"
  "CMakeFiles/test_router.dir/router/buffer_test.cc.o.d"
  "CMakeFiles/test_router.dir/router/flit_test.cc.o"
  "CMakeFiles/test_router.dir/router/flit_test.cc.o.d"
  "CMakeFiles/test_router.dir/router/router_pipeline_test.cc.o"
  "CMakeFiles/test_router.dir/router/router_pipeline_test.cc.o.d"
  "CMakeFiles/test_router.dir/router/router_stress_test.cc.o"
  "CMakeFiles/test_router.dir/router/router_stress_test.cc.o.d"
  "CMakeFiles/test_router.dir/router/routing_test.cc.o"
  "CMakeFiles/test_router.dir/router/routing_test.cc.o.d"
  "test_router"
  "test_router.pdb"
  "test_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
