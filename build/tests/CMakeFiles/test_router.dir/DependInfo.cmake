
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/router/adaptive_routing_test.cc" "tests/CMakeFiles/test_router.dir/router/adaptive_routing_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/adaptive_routing_test.cc.o.d"
  "/root/repo/tests/router/allocators_test.cc" "tests/CMakeFiles/test_router.dir/router/allocators_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/allocators_test.cc.o.d"
  "/root/repo/tests/router/buffer_test.cc" "tests/CMakeFiles/test_router.dir/router/buffer_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/buffer_test.cc.o.d"
  "/root/repo/tests/router/flit_test.cc" "tests/CMakeFiles/test_router.dir/router/flit_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/flit_test.cc.o.d"
  "/root/repo/tests/router/router_pipeline_test.cc" "tests/CMakeFiles/test_router.dir/router/router_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/router_pipeline_test.cc.o.d"
  "/root/repo/tests/router/router_stress_test.cc" "tests/CMakeFiles/test_router.dir/router/router_stress_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/router_stress_test.cc.o.d"
  "/root/repo/tests/router/routing_test.cc" "tests/CMakeFiles/test_router.dir/router/routing_test.cc.o" "gcc" "tests/CMakeFiles/test_router.dir/router/routing_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oenet_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
