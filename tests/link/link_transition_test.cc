/**
 * @file
 * Tests for the bit-rate/voltage transition state machine
 * (Section 3.2.1) and the on/off gating extension.
 */

#include <gtest/gtest.h>

#include "link/link.hh"

using namespace oenet;

namespace {

Flit
makeFlit()
{
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    f.len = 1;
    return f;
}

} // namespace

class LinkTransitionTest : public ::testing::Test
{
  protected:
    LinkTransitionTest()
        : levels_(BitrateLevelTable::linear(5.0, 10.0, 6))
    {
        params_.scheme = LinkScheme::kVcsel;
        params_.freqTransitionCycles = 20;
        params_.voltTransitionCycles = 100;
        params_.initialLevel = 2;
        link_ = std::make_unique<OpticalLink>("t", LinkKind::kInterRouter,
                                              levels_, params_);
    }

    BitrateLevelTable levels_;
    OpticalLink::Params params_;
    std::unique_ptr<OpticalLink> link_;
};

TEST_F(LinkTransitionTest, UpTransitionVoltageFirstLinkStaysUsable)
{
    // Section 3.2.1: voltage is pulled up before the frequency rises,
    // and the link functions during the voltage ramp.
    link_->requestLevel(0, 3);
    EXPECT_TRUE(link_->transitionInProgress(0));
    // During the 100-cycle voltage ramp the link accepts flits at the
    // OLD bit rate.
    EXPECT_DOUBLE_EQ(link_->currentBitRateGbps(), 7.0);
    EXPECT_TRUE(link_->canAccept(50));
    // During the 20-cycle frequency switch it is disabled.
    EXPECT_FALSE(link_->canAccept(105));
    EXPECT_FALSE(link_->canAccept(119));
    // Then stable at the new rate.
    EXPECT_TRUE(link_->canAccept(120));
    EXPECT_FALSE(link_->transitionInProgress(120));
    EXPECT_DOUBLE_EQ(link_->currentBitRateGbps(), 8.0);
}

TEST_F(LinkTransitionTest, DownTransitionFrequencyFirst)
{
    link_->requestLevel(0, 1);
    // Frequency switch first: disabled 20 cycles.
    EXPECT_FALSE(link_->canAccept(5));
    EXPECT_FALSE(link_->canAccept(19));
    // Voltage ramps down afterwards with the link running at the NEW
    // rate.
    EXPECT_TRUE(link_->canAccept(20));
    EXPECT_TRUE(link_->transitionInProgress(20)); // volt ramp continues
    EXPECT_DOUBLE_EQ(link_->currentBitRateGbps(), 6.0);
    EXPECT_FALSE(link_->transitionInProgress(120));
}

TEST_F(LinkTransitionTest, PowerDuringUpTransitionUsesTargetVoltage)
{
    LinkPowerModel model(LinkScheme::kVcsel);
    link_->requestLevel(0, 3);
    // During the voltage ramp: old rate (7 Gb/s), new voltage (1.44 V).
    double expected = model.powerMw(7.0, levels_.level(3).vddV);
    EXPECT_NEAR(link_->powerMw(50), expected, 1e-9);
}

TEST_F(LinkTransitionTest, PowerDuringDownRampUsesOldVoltage)
{
    LinkPowerModel model(LinkScheme::kVcsel);
    link_->requestLevel(0, 1);
    // During the volt ramp down: new rate, old (higher) voltage.
    double expected = model.powerMw(6.0, levels_.level(2).vddV);
    EXPECT_NEAR(link_->powerMw(50), expected, 1e-9);
}

TEST_F(LinkTransitionTest, ZeroDelaysResolveImmediately)
{
    OpticalLink::Params p = params_;
    p.freqTransitionCycles = 0;
    p.voltTransitionCycles = 0;
    OpticalLink link("z", LinkKind::kInterRouter, levels_, p);
    link.requestLevel(10, 5);
    EXPECT_FALSE(link.transitionInProgress(10));
    EXPECT_DOUBLE_EQ(link.currentBitRateGbps(), 10.0);
    link.requestLevel(11, 0);
    EXPECT_FALSE(link.transitionInProgress(11));
    EXPECT_DOUBLE_EQ(link.currentBitRateGbps(), 5.0);
}

TEST_F(LinkTransitionTest, OnlyFreqDelayDisablesLink)
{
    // T_v = 0: up transitions go straight to the frequency switch.
    OpticalLink::Params p = params_;
    p.voltTransitionCycles = 0;
    OpticalLink link("f", LinkKind::kInterRouter, levels_, p);
    link.requestLevel(0, 3);
    EXPECT_FALSE(link.canAccept(10));
    EXPECT_TRUE(link.canAccept(20));
    EXPECT_FALSE(link.transitionInProgress(20));
}

TEST_F(LinkTransitionTest, InFlightFlitsDeliverAcrossTransition)
{
    ASSERT_TRUE(link_->canAccept(0));
    link_->accept(0, makeFlit());
    link_->requestLevel(0, 1); // down: disabled immediately
    // The flit accepted at cycle 0 still arrives.
    EXPECT_TRUE(link_->hasArrival(10));
    (void)link_->popArrival(10);
}

TEST_F(LinkTransitionTest, RequestSameLevelIsNoOp)
{
    link_->requestLevel(0, 2);
    EXPECT_FALSE(link_->transitionInProgress(0));
    EXPECT_EQ(link_->numTransitions(), 0u);
}

TEST_F(LinkTransitionTest, CapacityIntegralExcludesDisabledTime)
{
    // Utilization accounting must not count the dead T_br window as
    // available capacity.
    link_->beginWindow(0);
    link_->requestLevel(0, 1); // down: 20 dead cycles, then 6 Gb/s
    // Send nothing; utilization must be exactly 0 either way.
    EXPECT_DOUBLE_EQ(link_->windowUtilization(200), 0.0);

    // Saturate from 20 to 220 at the new rate (0.6 flits/cycle).
    Cycle start = 20;
    link_->beginWindow(start);
    for (Cycle t = start; t < start + 200; t++) {
        if (link_->canAccept(t))
            link_->accept(t, makeFlit());
        while (link_->hasArrival(t))
            (void)link_->popArrival(t);
    }
    EXPECT_NEAR(link_->windowUtilization(start + 200), 1.0, 0.03);
}

TEST_F(LinkTransitionTest, TransitionCountsAccumulate)
{
    link_->requestLevel(0, 3);
    link_->requestLevel(200, 2);
    EXPECT_EQ(link_->numTransitions(), 2u);
}

TEST_F(LinkTransitionTest, OffGatingStopsTrafficAndCutsPower)
{
    double active = link_->powerMw(0);
    link_->setOff(10, true);
    EXPECT_TRUE(link_->isOff());
    EXPECT_FALSE(link_->canAccept(11));
    EXPECT_NEAR(link_->powerMw(11), params_.offPowerMw, 1e-9);
    EXPECT_LT(link_->powerMw(11), active / 10.0);
}

TEST_F(LinkTransitionTest, WakeupPaysRelock)
{
    link_->setOff(0, true);
    link_->setOff(1000, false);
    EXPECT_FALSE(link_->isOff());
    EXPECT_FALSE(link_->canAccept(1010)); // relocking
    EXPECT_TRUE(link_->canAccept(1020));
    EXPECT_EQ(link_->currentLevel(), 2); // level preserved across off
}

TEST_F(LinkTransitionTest, WakeWhenNotOffIsNoOp)
{
    link_->setOff(5, false);
    EXPECT_FALSE(link_->isOff());
    EXPECT_EQ(link_->numTransitions(), 0u);
}

TEST_F(LinkTransitionTest, OffStateEnergyIntegration)
{
    link_->setOff(0, true);
    double integral = link_->powerIntegralMwCycles(1000);
    EXPECT_NEAR(integral, params_.offPowerMw * 1000.0, 1e-6);
}

TEST(LinkTransitionDeath, RequestDuringTransitionPanics)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink::Params p;
    p.initialLevel = 2;
    OpticalLink link("d", LinkKind::kInterRouter, levels, p);
    link.requestLevel(0, 3);
    EXPECT_DEATH(link.requestLevel(5, 4), "transition");
}

TEST(LinkTransitionDeath, SetOffDuringTransitionPanics)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink::Params p;
    p.initialLevel = 2;
    OpticalLink link("d", LinkKind::kInterRouter, levels, p);
    link.requestLevel(0, 3);
    EXPECT_DEATH(link.setOff(5, true), "transition");
}
