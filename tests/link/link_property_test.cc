/**
 * @file
 * Parameterized property sweeps over OpticalLink: for every level of
 * both standard tables and both schemes, the link's realized
 * throughput, power ordering, and transition energy accounting must
 * hold exactly.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "link/link.hh"

using namespace oenet;

namespace {

Flit
flit()
{
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    f.len = 1;
    return f;
}

} // namespace

// Parameter: (scheme, brMin, level index).
class LinkLevelProperty
    : public ::testing::TestWithParam<std::tuple<int, double, int>>
{
  protected:
    LinkLevelProperty()
        : levels_(BitrateLevelTable::linear(std::get<1>(GetParam()),
                                            10.0, 6))
    {
        params_.scheme = std::get<0>(GetParam()) == 0
                             ? LinkScheme::kVcsel
                             : LinkScheme::kModulator;
        params_.initialLevel = std::get<2>(GetParam());
        link_ = std::make_unique<OpticalLink>(
            "prop", LinkKind::kInterRouter, levels_, params_);
    }

    BitrateLevelTable levels_;
    OpticalLink::Params params_;
    std::unique_ptr<OpticalLink> link_;
};

TEST_P(LinkLevelProperty, SaturatedThroughputMatchesBitRate)
{
    int level = std::get<2>(GetParam());
    double expected = flitsPerCycle(levels_.level(level).brGbps);
    int sent = 0;
    const Cycle n = 3000;
    for (Cycle t = 0; t < n; t++) {
        if (link_->canAccept(t)) {
            link_->accept(t, flit());
            sent++;
        }
        while (link_->hasArrival(t))
            (void)link_->popArrival(t);
    }
    EXPECT_NEAR(static_cast<double>(sent) / static_cast<double>(n),
                expected, 0.01)
        << "level " << level;
}

TEST_P(LinkLevelProperty, PowerOrderedByLevel)
{
    int level = std::get<2>(GetParam());
    double here = link_->powerMw(0);
    if (level > 0) {
        OpticalLink::Params lower = params_;
        lower.initialLevel = level - 1;
        OpticalLink other("lower", LinkKind::kInterRouter, levels_,
                          lower);
        EXPECT_GT(here, other.powerMw(0));
    }
    EXPECT_GT(here, 0.0);
    EXPECT_LE(here, link_->maxPowerMw() + 1e-9);
}

TEST_P(LinkLevelProperty, UtilizationSaturatesAtOne)
{
    link_->beginWindow(0);
    for (Cycle t = 0; t < 2000; t++) {
        if (link_->canAccept(t))
            link_->accept(t, flit());
        while (link_->hasArrival(t))
            (void)link_->popArrival(t);
    }
    EXPECT_NEAR(link_->windowUtilization(2000), 1.0, 0.02);
}

TEST_P(LinkLevelProperty, RoundTripTransitionRestoresState)
{
    int level = std::get<2>(GetParam());
    int other = level == 0 ? levels_.maxLevel() : 0;
    double p_before = link_->powerMw(0);
    link_->requestLevel(0, other);
    Cycle settle = 1000;
    ASSERT_FALSE(link_->transitionInProgress(settle));
    link_->requestLevel(settle, level);
    Cycle done = settle + 1000;
    ASSERT_FALSE(link_->transitionInProgress(done));
    EXPECT_EQ(link_->currentLevel(), level);
    EXPECT_NEAR(link_->powerMw(done), p_before, 1e-9);
    EXPECT_EQ(link_->numTransitions(), 2u);
}

TEST_P(LinkLevelProperty, EnergyIntegralIsMonotone)
{
    double e1 = link_->powerIntegralMwCycles(100);
    link_->requestLevel(100, std::get<2>(GetParam()) == 0
                                 ? levels_.maxLevel()
                                 : 0);
    double e2 = link_->powerIntegralMwCycles(500);
    double e3 = link_->powerIntegralMwCycles(2000);
    EXPECT_GT(e2, e1);
    EXPECT_GT(e3, e2);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesRangesLevels, LinkLevelProperty,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(5.0, 3.3),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));
