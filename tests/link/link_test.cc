/** @file Tests for OpticalLink data path, stats, and power accounting. */

#include <gtest/gtest.h>

#include "link/link.hh"

using namespace oenet;

namespace {

Flit
makeFlit(int seq = 0)
{
    Flit f;
    f.packet = 1;
    f.seq = static_cast<std::uint16_t>(seq);
    f.len = 100;
    f.flags = seq == 0 ? Flit::kHeadFlag : 0;
    return f;
}

OpticalLink::Params
defaultParams()
{
    OpticalLink::Params p;
    p.scheme = LinkScheme::kVcsel;
    return p;
}

} // namespace

class LinkTest : public ::testing::Test
{
  protected:
    LinkTest()
        : levels_(BitrateLevelTable::linear(5.0, 10.0, 6)),
          link_("test", LinkKind::kInterRouter, levels_, defaultParams())
    {
    }

    BitrateLevelTable levels_;
    OpticalLink link_;
};

TEST_F(LinkTest, StartsAtMaxLevel)
{
    EXPECT_EQ(link_.currentLevel(), 5);
    EXPECT_DOUBLE_EQ(link_.currentBitRateGbps(), 10.0);
}

TEST_F(LinkTest, OneFlitPerCycleAtFullRate)
{
    EXPECT_TRUE(link_.canAccept(0));
    link_.accept(0, makeFlit(0));
    EXPECT_FALSE(link_.canAccept(0)); // serializing
    EXPECT_TRUE(link_.canAccept(1));
    link_.accept(1, makeFlit(1));
    EXPECT_TRUE(link_.canAccept(2));
}

TEST_F(LinkTest, ArrivalAfterSerializationPlusPropagation)
{
    link_.accept(0, makeFlit());
    // 1 cycle serialization + 1 cycle propagation.
    EXPECT_FALSE(link_.hasArrival(0));
    EXPECT_FALSE(link_.hasArrival(1));
    EXPECT_TRUE(link_.hasArrival(2));
}

TEST_F(LinkTest, FifoOrderPreserved)
{
    link_.accept(0, makeFlit(0));
    link_.accept(1, makeFlit(1));
    link_.accept(2, makeFlit(2));
    EXPECT_EQ(link_.popArrival(4).seq, 0);
    EXPECT_EQ(link_.popArrival(4).seq, 1);
    EXPECT_EQ(link_.popArrival(4).seq, 2);
    EXPECT_FALSE(link_.hasArrival(4));
}

TEST_F(LinkTest, InFlightCount)
{
    EXPECT_EQ(link_.inFlight(), 0);
    link_.accept(0, makeFlit());
    EXPECT_EQ(link_.inFlight(), 1);
    (void)link_.popArrival(2);
    EXPECT_EQ(link_.inFlight(), 0);
}

TEST_F(LinkTest, HalfRateAcceptsEveryOtherCycle)
{
    // Move to 5 Gb/s (2 cycles/flit). Transition first.
    link_.requestLevel(0, 0); // down several levels in one request
    Cycle done = 0 + 20 + 100 + 5; // freq switch + volt ramp
    ASSERT_FALSE(link_.transitionInProgress(done));
    EXPECT_DOUBLE_EQ(link_.currentBitRateGbps(), 5.0);

    Cycle t = done;
    ASSERT_TRUE(link_.canAccept(t));
    link_.accept(t, makeFlit(0));
    EXPECT_FALSE(link_.canAccept(t + 1));
    EXPECT_TRUE(link_.canAccept(t + 2));
}

TEST_F(LinkTest, LongRunThroughputMatchesRate)
{
    link_.requestLevel(0, 0); // 5 Gb/s
    Cycle start = 200;
    int sent = 0;
    for (Cycle t = start; t < start + 1000; t++) {
        if (link_.canAccept(t)) {
            link_.accept(t, makeFlit(sent));
            sent++;
        }
        while (link_.hasArrival(t))
            (void)link_.popArrival(t);
    }
    EXPECT_NEAR(sent, 500, 2); // 0.5 flits/cycle
}

TEST_F(LinkTest, WindowUtilization)
{
    link_.beginWindow(0);
    for (Cycle t = 0; t < 100; t++) {
        if (t % 2 == 0) { // 50% offered
            ASSERT_TRUE(link_.canAccept(t));
            link_.accept(t, makeFlit());
        }
        while (link_.hasArrival(t))
            (void)link_.popArrival(t);
    }
    EXPECT_NEAR(link_.windowUtilization(100), 0.5, 0.02);
    EXPECT_EQ(link_.windowFlits(), 50u);

    link_.beginWindow(100);
    EXPECT_EQ(link_.windowFlits(), 0u);
    EXPECT_NEAR(link_.windowUtilization(200), 0.0, 1e-9);
}

TEST_F(LinkTest, UtilizationIsCapacityNormalized)
{
    // At 5 Gb/s, sending every 2nd cycle is 100% of capacity.
    link_.requestLevel(0, 0);
    Cycle start = 200;
    link_.beginWindow(start);
    for (Cycle t = start; t < start + 100; t++) {
        if (link_.canAccept(t))
            link_.accept(t, makeFlit());
        while (link_.hasArrival(t))
            (void)link_.popArrival(t);
    }
    EXPECT_NEAR(link_.windowUtilization(start + 100), 1.0, 0.03);
}

TEST_F(LinkTest, PowerAtMaxMatchesModel)
{
    LinkPowerModel model(LinkScheme::kVcsel);
    EXPECT_NEAR(link_.powerMw(0), model.maxPowerMw(), 1e-9);
    EXPECT_NEAR(link_.maxPowerMw(), model.maxPowerMw(), 1e-9);
}

TEST_F(LinkTest, PowerDropsAtLowerLevel)
{
    double before = link_.powerMw(0);
    link_.requestLevel(0, 0);
    double after = link_.powerMw(300);
    EXPECT_LT(after, before * 0.25); // ~61/291
    EXPECT_NEAR(after, 61.25, 1e-6);
}

TEST_F(LinkTest, EnergyIntegralMatchesConstantPower)
{
    double p = link_.powerMw(0);
    double integral = link_.powerIntegralMwCycles(1000);
    EXPECT_NEAR(integral, p * 1000.0, 1e-6);
    EXPECT_NEAR(link_.energyMj(1000), p * 1000.0 * kSecondsPerCycle,
                1e-12);
}

TEST_F(LinkTest, OpticalScaleChangesDetectorPower)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink::Params p;
    p.scheme = LinkScheme::kModulator;
    OpticalLink link("mod", LinkKind::kInterRouter, levels, p);
    double full = link.powerMw(0);
    link.setOpticalScale(10, 0.25);
    EXPECT_LT(link.powerMw(10), full);
    EXPECT_DOUBLE_EQ(link.opticalScale(), 0.25);
}

TEST_F(LinkTest, CountersAccumulate)
{
    link_.accept(0, makeFlit(0));
    link_.accept(1, makeFlit(1));
    EXPECT_EQ(link_.totalFlits(), 2u);
    EXPECT_EQ(link_.numTransitions(), 0u);
    link_.requestLevel(10, 4);
    EXPECT_EQ(link_.numTransitions(), 1u);
}

TEST_F(LinkTest, KindAndName)
{
    EXPECT_EQ(link_.kind(), LinkKind::kInterRouter);
    EXPECT_EQ(link_.name(), "test");
    EXPECT_STREQ(linkKindName(LinkKind::kInjection), "injection");
    EXPECT_STREQ(linkKindName(LinkKind::kEjection), "ejection");
    EXPECT_STREQ(linkKindName(LinkKind::kInterRouter), "inter-router");
}

TEST(LinkInitialLevel, ConfigurableStart)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink::Params p;
    p.initialLevel = 2;
    OpticalLink link("init", LinkKind::kInjection, levels, p);
    EXPECT_EQ(link.currentLevel(), 2);
    EXPECT_DOUBLE_EQ(link.currentBitRateGbps(), 7.0);
}

TEST(LinkDeath, AcceptWhileSerializingPanics)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("x", LinkKind::kInjection, levels,
                     OpticalLink::Params{});
    link.accept(0, makeFlit());
    EXPECT_DEATH(link.accept(0, makeFlit()), "serializing");
}

TEST(LinkDeath, PopWithoutArrivalPanics)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("x", LinkKind::kInjection, levels,
                     OpticalLink::Params{});
    EXPECT_DEATH((void)link.popArrival(0), "nothing");
}
