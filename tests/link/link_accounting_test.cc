/**
 * @file
 * Accounting-hygiene regressions for OpticalLink power/energy:
 *
 *  - sampling idempotency: energyMj()/powerIntegralMwCycles() are
 *    pure reads — sampling twice mid-epoch (or mid-transition, or
 *    mid-wake-settle) must return identical bits and change nothing;
 *  - the wake-from-off transition window draws gate-off power for the
 *    settle interval, not full target power for the whole relock;
 *  - the LinkPowerLedger mirror stays bitwise-equal to the link's own
 *    TimeWeighted through transitions, gating, and resetStats.
 *
 * GOLDEN RE-RECORD RATIONALE (wake-settle): before this change a link
 * waking from the gated-off state was charged its full target power
 * for the entire T_br relock even though the transmitter spends the
 * first Params::wakeSettleCycles still stabilizing at gate-off drain.
 * The expected energies below charge offPowerMw for the settle
 * interval and target power for the remainder — physically the
 * measured behavior, and the reason wake-heavy (on/off policy) energy
 * totals shrank slightly. wakeSettleCycles = 0 restores the old
 * accounting exactly.
 */

#include <gtest/gtest.h>

#include "link/link.hh"
#include "phy/power_ledger.hh"

using namespace oenet;

namespace {

OpticalLink::Params
testParams()
{
    OpticalLink::Params p;
    p.scheme = LinkScheme::kVcsel;
    p.freqTransitionCycles = 20;
    p.voltTransitionCycles = 100;
    p.wakeSettleCycles = 10;
    p.initialLevel = 5;
    return p;
}

} // namespace

TEST(LinkAccounting, RepeatedSamplesAreIdempotent)
{
    // The integrator folds value*(dt) lazily; a second sample at the
    // same cycle must not fold anything twice. Checked at a stable
    // point, mid-transition, and mid-wake-settle.
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("idem", LinkKind::kInterRouter, levels,
                     testParams());

    auto sample_twice = [&](Cycle at) {
        double e1 = link.energyMj(at);
        double i1 = link.powerIntegralMwCycles(at);
        double e2 = link.energyMj(at);
        double i2 = link.powerIntegralMwCycles(at);
        EXPECT_EQ(e1, e2) << "energy changed on resample at " << at;
        EXPECT_EQ(i1, i2) << "integral changed on resample at " << at;
    };

    sample_twice(500); // stable
    link.requestLevel(1000, 2);
    sample_twice(1050); // mid volt ramp
    sample_twice(1105); // mid freq switch
    link.setOff(2000, true);
    sample_twice(2500); // gated off
    link.setOff(3000, false);
    sample_twice(3005); // mid wake settle
    sample_twice(3015); // post settle, still relocking

    // Sampling must also not perturb the *future* integral: two links
    // driven identically, one sampled obsessively, agree bitwise.
    OpticalLink quiet("q", LinkKind::kInterRouter, levels,
                      testParams());
    quiet.requestLevel(1000, 2);
    quiet.setOff(2000, true);
    quiet.setOff(3000, false);
    EXPECT_EQ(link.powerIntegralMwCycles(5000),
              quiet.powerIntegralMwCycles(5000));
}

TEST(LinkAccounting, WakeChargesSettlePowerThenTargetPower)
{
    // Satellite fix: wake from off used to charge full target power
    // for the whole relock. Expected: offPowerMw for the settle
    // interval, target power from wakeSettleEnd on.
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink::Params p = testParams();
    OpticalLink link("wake", LinkKind::kInterRouter, levels, p);

    double full = link.powerMw(0); // stable at initialLevel = max
    link.setOff(1000, true);
    EXPECT_DOUBLE_EQ(link.powerMw(1500), p.offPowerMw);
    double off_start = link.powerIntegralMwCycles(1000);

    link.setOff(2000, false); // wake: 20-cycle relock, 10-cycle settle
    // During the settle the transmitter still draws gate-off power.
    EXPECT_DOUBLE_EQ(link.powerMw(2005), p.offPowerMw);
    // After the settle boundary it draws the target power, still
    // relocking (link disabled but powered).
    EXPECT_DOUBLE_EQ(link.powerMw(2015), full);
    EXPECT_DOUBLE_EQ(link.powerMw(2020), full);

    // Energy across [1000, 2030): 1000 cycles off + 10 settle at off
    // power + 20 at full power (relock tail 10 + 10 stable).
    double integral =
        link.powerIntegralMwCycles(2030) - off_start;
    EXPECT_NEAR(integral, p.offPowerMw * 1010 + full * 20, 1e-9);
}

TEST(LinkAccounting, SettleCappedByRelockAndZeroRestoresOldModel)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);

    // wakeSettleCycles > T_br: the settle cannot outlive the relock.
    OpticalLink::Params p = testParams();
    p.wakeSettleCycles = 1000;
    OpticalLink capped("cap", LinkKind::kInterRouter, levels, p);
    capped.setOff(100, true);
    double mark = capped.powerIntegralMwCycles(1000);
    capped.setOff(1000, false);
    double full = capped.powerMw(5000); // stable again
    double integral = capped.powerIntegralMwCycles(5000) - mark;
    // All 20 relock cycles at off power, then full.
    EXPECT_NEAR(integral,
                p.offPowerMw * 20 + full * (4000 - 20), 1e-9);

    // wakeSettleCycles = 0: bitwise the pre-fix accounting.
    p.wakeSettleCycles = 0;
    OpticalLink legacy("leg", LinkKind::kInterRouter, levels, p);
    legacy.setOff(100, true);
    double lmark = legacy.powerIntegralMwCycles(1000);
    legacy.setOff(1000, false);
    double lintegral = legacy.powerIntegralMwCycles(5000) - lmark;
    EXPECT_NEAR(lintegral, full * 4000, 1e-9);
}

TEST(LinkAccounting, LedgerMirrorsLinkBitwiseThroughLifecycle)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("led", LinkKind::kInterRouter, levels,
                     testParams());
    LinkPowerLedger led;
    led.configure(2, ThermalParams{}, 1.8);
    int id = link.attachLedger(led);

    auto expect_mirror = [&](Cycle at) {
        // powerMw/powerIntegralMwCycles advance the link, which
        // pushes any pending folds into the ledger first.
        double p = link.powerMw(at);
        double i = link.powerIntegralMwCycles(at);
        EXPECT_EQ(led.dynPowerMw(id), p) << "at " << at;
        EXPECT_EQ(led.dynIntegralMwCycles(id, at), i) << "at " << at;
    };

    expect_mirror(10);
    link.requestLevel(100, 1); // down: freq first, then volt ramp
    expect_mirror(105);
    expect_mirror(130);
    expect_mirror(300);
    link.setOff(1000, true);
    expect_mirror(1500);
    link.setOff(2000, false); // wake with settle
    expect_mirror(2005);
    expect_mirror(2014);
    expect_mirror(2100);

    // resetStats restarts both integrals together.
    link.resetStats(3000);
    expect_mirror(3000);
    link.requestLevel(3100, 4);
    expect_mirror(3500);

    // Flit attribution mirrors accept().
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    f.len = 1;
    f.vc = 1;
    ASSERT_TRUE(link.canAccept(4000));
    link.accept(4000, f);
    EXPECT_EQ(led.totalFlits(id), link.totalFlits());
    EXPECT_EQ(led.vcFlits(id, 1), 1u);
    EXPECT_EQ(led.vcFlits(id, 0), 0u);
}
