/**
 * @file
 * Tests for the subprocess isolation primitives: payload round-trip,
 * exception/exit/signal classification, deadline enforcement (the
 * child is killed and reaped), and concurrent use from worker threads.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/proc.hh"

using namespace oenet;

TEST(Proc, PayloadRoundTrip)
{
    ChildResult r = runInChild(
        [](int fd) {
            const char msg[] = "hello from the child";
            writeAll(fd, msg, sizeof(msg) - 1);
        },
        0.0);
    ASSERT_EQ(r.status, ChildResult::Status::kOk);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.payload, "hello from the child");
}

TEST(Proc, BinaryPayloadSurvivesExactly)
{
    // Raw struct bytes, including embedded NULs — the sweep runner
    // ships RunMetrics this way.
    struct Blob
    {
        double d;
        std::uint64_t u;
        bool b;
    };
    Blob sent{3.14159, 0xdeadbeefcafe1234ull, true};
    ChildResult r = runInChild(
        [&](int fd) { writeAll(fd, &sent, sizeof(sent)); }, 0.0);
    ASSERT_EQ(r.status, ChildResult::Status::kOk);
    ASSERT_EQ(r.payload.size(), sizeof(Blob));
    Blob got{};
    std::memcpy(&got, r.payload.data(), sizeof(Blob));
    EXPECT_EQ(got.d, sent.d);
    EXPECT_EQ(got.u, sent.u);
    EXPECT_EQ(got.b, sent.b);
}

TEST(Proc, ExceptionBecomesExceptionExit)
{
    ChildResult r = runInChild(
        [](int) { throw std::runtime_error("boom"); }, 0.0);
    ASSERT_EQ(r.status, ChildResult::Status::kExited);
    EXPECT_EQ(r.code, kChildExceptionExit);
    EXPECT_FALSE(r.ok());
}

TEST(Proc, CrashIsReportedAsSignal)
{
    ChildResult r =
        runInChild([](int) { std::raise(SIGSEGV); }, 0.0);
    ASSERT_EQ(r.status, ChildResult::Status::kSignaled);
    EXPECT_EQ(r.code, SIGSEGV);
    EXPECT_NE(r.describe().find("signal"), std::string::npos);
}

TEST(Proc, HungChildIsKilledOnDeadline)
{
    ChildResult r = runInChild(
        [](int) {
            // Hang well past the budget; SIGKILL must end this.
            for (;;)
                ::sleep(10);
        },
        100.0);
    ASSERT_EQ(r.status, ChildResult::Status::kTimeout);
    EXPECT_EQ(r.describe(), "timeout");
}

TEST(Proc, SlowWriterWithinDeadlineStillDelivers)
{
    ChildResult r = runInChild(
        [](int fd) {
            ::usleep(20 * 1000);
            writeAll(fd, "late", 4);
        },
        5000.0);
    ASSERT_EQ(r.status, ChildResult::Status::kOk);
    EXPECT_EQ(r.payload, "late");
}

TEST(Proc, ConcurrentChildrenDoNotInterfere)
{
    constexpr int kThreads = 8;
    std::vector<std::thread> pool;
    std::vector<ChildResult> results(kThreads);
    for (int t = 0; t < kThreads; t++) {
        pool.emplace_back([t, &results] {
            results[static_cast<std::size_t>(t)] = runInChild(
                [t](int fd) {
                    std::string msg = "worker-" + std::to_string(t);
                    writeAll(fd, msg.data(), msg.size());
                },
                10000.0);
        });
    }
    for (auto &th : pool)
        th.join();
    for (int t = 0; t < kThreads; t++) {
        ASSERT_TRUE(results[static_cast<std::size_t>(t)].ok());
        EXPECT_EQ(results[static_cast<std::size_t>(t)].payload,
                  "worker-" + std::to_string(t));
    }
}
