/** @file Tests for CSV emission. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

using namespace oenet;

namespace {

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(CsvQuote, PassThroughPlain)
{
    EXPECT_EQ(csvQuote("hello"), "hello");
    EXPECT_EQ(csvQuote("1.5"), "1.5");
}

TEST(CsvQuote, QuotesCommas)
{
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
}

TEST(CsvQuote, EscapesQuotes)
{
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, HeaderAndRows)
{
    std::string path = testing::TempDir() + "/oenet_csv_test.csv";
    {
        CsvWriter w(path);
        w.header({"a", "b"});
        w.row({"1", "x"});
        w.rowNumeric({2.5, 3.0}, 1);
        EXPECT_EQ(w.rowCount(), 2u);
    }
    EXPECT_EQ(readAll(path), "a,b\n1,x\n2.5,3.0\n");
    std::remove(path.c_str());
}

TEST(CsvWriter, PathAccessor)
{
    std::string path = testing::TempDir() + "/oenet_csv_test2.csv";
    CsvWriter w(path);
    EXPECT_EQ(w.path(), path);
    std::remove(path.c_str());
}

TEST(CsvWriter, PublishesAtomicallyOnClose)
{
    std::string path = testing::TempDir() + "/oenet_csv_atomic.csv";
    {
        std::ofstream old(path, std::ios::binary | std::ios::trunc);
        old << "previous,complete,file\n";
    }
    {
        CsvWriter w(path);
        w.header({"a", "b"});
        w.row({"1", "2"});
        // The previous file stays intact until the writer publishes —
        // a killed run never leaves a torn CSV where a good one stood.
        EXPECT_EQ(readAll(path), "previous,complete,file\n");
        w.close();
        EXPECT_EQ(readAll(path), "a,b\n1,2\n");
        w.close(); // idempotent; destructor must not re-publish either
    }
    EXPECT_EQ(readAll(path), "a,b\n1,2\n");
    std::remove(path.c_str());
}
