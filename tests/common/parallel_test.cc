/** @file Tests for the worker-pool primitive behind the sweep runner. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hh"

using namespace oenet;

TEST(EffectiveJobs, NonPositiveMeansHardware)
{
    EXPECT_EQ(effectiveJobs(0, 1000), hardwareJobs());
    EXPECT_EQ(effectiveJobs(-3, 1000), hardwareJobs());
}

TEST(EffectiveJobs, NeverMoreThreadsThanItems)
{
    EXPECT_EQ(effectiveJobs(8, 3), 3);
    EXPECT_EQ(effectiveJobs(8, 8), 8);
}

TEST(EffectiveJobs, AtLeastOne)
{
    EXPECT_EQ(effectiveJobs(4, 0), 1);
    EXPECT_EQ(effectiveJobs(1, 100), 1);
}

TEST(HardwareJobs, Positive)
{
    EXPECT_GE(hardwareJobs(), 1);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce)
{
    for (int jobs : {1, 2, 4, 7}) {
        const std::size_t n = 100;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(n, jobs,
                    [&](std::size_t i, int) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; i++)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at jobs "
                                         << jobs;
    }
}

TEST(ParallelFor, WorkerIdsInRange)
{
    const int jobs = 3;
    std::atomic<bool> bad{false};
    parallelFor(50, jobs, [&](std::size_t, int worker) {
        if (worker < 0 || worker >= jobs)
            bad.store(true);
    });
    EXPECT_FALSE(bad.load());
}

TEST(ParallelFor, SerialRunsInOrderOnCallingThread)
{
    std::vector<std::size_t> order;
    std::thread::id caller = std::this_thread::get_id();
    bool sameThread = true;
    parallelFor(10, 1, [&](std::size_t i, int worker) {
        order.push_back(i);
        EXPECT_EQ(worker, 0);
        if (std::this_thread::get_id() != caller)
            sameThread = false;
    });
    EXPECT_TRUE(sameThread);
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); i++)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, EmptyIsNoop)
{
    int calls = 0;
    parallelFor(0, 4, [&](std::size_t, int) { calls++; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ExceptionPropagates)
{
    for (int jobs : {1, 4}) {
        EXPECT_THROW(
            parallelFor(20, jobs,
                        [&](std::size_t i, int) {
                            if (i == 7)
                                throw std::runtime_error("boom");
                        }),
            std::runtime_error)
            << "jobs " << jobs;
    }
}
