/** @file Tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace oenet;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, BinsAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);
    h.add(0.999);
    h.add(5.0);
    h.add(9.999);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(5), 1u);
    EXPECT_EQ(h.bin(9), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.5);
    h.add(1.0); // hi edge is exclusive
    h.add(99.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, QuantileUniformFill)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; i++)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, QuantileEmptyIsZero)
{
    Histogram h(0.0, 1.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, BinEdgesConsistent)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 12.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 18.0);
    EXPECT_DOUBLE_EQ(h.binHi(4), 20.0);
}

TEST(TimeSeries, AddAndMean)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    ts.add(0, 1.0);
    ts.add(10, 3.0);
    EXPECT_EQ(ts.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
}

TEST(TimeWeighted, ConstantSignal)
{
    TimeWeighted tw(5.0);
    EXPECT_DOUBLE_EQ(tw.integral(10), 50.0);
    EXPECT_DOUBLE_EQ(tw.average(10), 5.0);
}

TEST(TimeWeighted, PiecewiseIntegral)
{
    TimeWeighted tw(1.0);
    tw.update(10, 3.0); // [0,10): 1.0 -> 10
    tw.update(20, 0.0); // [10,20): 3.0 -> 30
    EXPECT_DOUBLE_EQ(tw.integral(20), 40.0);
    EXPECT_DOUBLE_EQ(tw.integral(25), 40.0); // zero afterwards
    EXPECT_DOUBLE_EQ(tw.average(20), 2.0);
}

TEST(TimeWeighted, UpdateAtSameCycleReplacesValue)
{
    TimeWeighted tw(1.0);
    tw.update(10, 2.0);
    tw.update(10, 7.0);
    EXPECT_DOUBLE_EQ(tw.value(), 7.0);
    EXPECT_DOUBLE_EQ(tw.integral(11), 10.0 + 7.0);
}

TEST(TimeWeighted, ResetRestartsIntegration)
{
    TimeWeighted tw(2.0);
    tw.update(10, 4.0);
    tw.reset(10);
    EXPECT_DOUBLE_EQ(tw.integral(15), 20.0);
    EXPECT_DOUBLE_EQ(tw.average(15), 4.0);
}

TEST(TimeWeighted, AverageBeforeAnyTime)
{
    TimeWeighted tw(3.0);
    EXPECT_DOUBLE_EQ(tw.average(0), 3.0);
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(RunningStatMerge, MatchesSerialAccumulation)
{
    // Split one sample stream across two accumulators; the merge must
    // reproduce the single-accumulator result (Chan et al.).
    RunningStat serial, left, right;
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, -1.5};
    int i = 0;
    for (double x : xs) {
        serial.add(x);
        (i++ % 2 ? right : left).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), serial.count());
    EXPECT_DOUBLE_EQ(left.sum(), serial.sum());
    EXPECT_DOUBLE_EQ(left.min(), serial.min());
    EXPECT_DOUBLE_EQ(left.max(), serial.max());
    EXPECT_NEAR(left.mean(), serial.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), serial.variance(), 1e-12);
}

TEST(RunningStatMerge, EmptyIsIdentity)
{
    RunningStat s, empty;
    s.add(3.0);
    s.add(5.0);
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);

    RunningStat target;
    target.merge(s);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 4.0);
    EXPECT_DOUBLE_EQ(target.min(), 3.0);
    EXPECT_DOUBLE_EQ(target.max(), 5.0);
}

TEST(RunningStatMerge, OrderIndependent)
{
    RunningStat a1, b1, a2, b2;
    for (double x : {1.0, 2.0, 3.0}) {
        a1.add(x);
        a2.add(x);
    }
    for (double x : {10.0, 20.0}) {
        b1.add(x);
        b2.add(x);
    }
    a1.merge(b1); // a then b
    b2.merge(a2); // b then a
    EXPECT_DOUBLE_EQ(a1.mean(), b2.mean());
    EXPECT_NEAR(a1.variance(), b2.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a1.min(), b2.min());
    EXPECT_DOUBLE_EQ(a1.max(), b2.max());
}

TEST(HistogramMerge, BinwiseSum)
{
    Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
    a.add(1.0);
    a.add(9.5);
    a.add(-1.0); // underflow
    b.add(1.5);
    b.add(12.0); // overflow
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.bin(0), 2u);
    EXPECT_EQ(a.bin(4), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(HistogramMergeDeathTest, LayoutMismatchPanics)
{
    Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 4);
    EXPECT_DEATH(a.merge(b), "layout mismatch");
}
