/** @file Tests for the key=value parameter store. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hh"

using namespace oenet;

TEST(Config, GetReturnsDefaultWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getString("missing", "dflt"), "dflt");
    EXPECT_EQ(c.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 2.5), 2.5);
    EXPECT_TRUE(c.getBool("missing", true));
}

TEST(Config, SetAndGet)
{
    Config c;
    c.set("a.b", "hello");
    EXPECT_TRUE(c.has("a.b"));
    EXPECT_EQ(c.getString("a.b", ""), "hello");
}

TEST(Config, ParseTokenSplitsOnFirstEquals)
{
    Config c;
    EXPECT_TRUE(c.parseToken("key=a=b"));
    EXPECT_EQ(c.getString("key", ""), "a=b");
}

TEST(Config, ParseTokenRejectsMalformed)
{
    Config c;
    EXPECT_FALSE(c.parseToken("noequals"));
    EXPECT_FALSE(c.parseToken("=value"));
}

TEST(Config, ParseTokenTrimsWhitespace)
{
    Config c;
    EXPECT_TRUE(c.parseToken("  key  =  value  "));
    EXPECT_EQ(c.getString("key", ""), "value");
}

TEST(Config, IntParsing)
{
    Config c;
    c.set("n", "123");
    c.set("hex", "0x10");
    c.set("neg", "-7");
    EXPECT_EQ(c.getInt("n", 0), 123);
    EXPECT_EQ(c.getInt("hex", 0), 16);
    EXPECT_EQ(c.getInt("neg", 0), -7);
}

TEST(Config, UintParsing)
{
    Config c;
    c.set("n", "4000000000");
    EXPECT_EQ(c.getUint("n", 0), 4000000000ul);
}

TEST(Config, DoubleParsing)
{
    Config c;
    c.set("x", "3.25");
    c.set("e", "1e-3");
    EXPECT_DOUBLE_EQ(c.getDouble("x", 0), 3.25);
    EXPECT_DOUBLE_EQ(c.getDouble("e", 0), 1e-3);
}

TEST(Config, BoolParsing)
{
    Config c;
    c.set("t1", "true");
    c.set("t2", "1");
    c.set("t3", "yes");
    c.set("t4", "on");
    c.set("f1", "false");
    c.set("f2", "0");
    c.set("f3", "no");
    c.set("f4", "off");
    EXPECT_TRUE(c.getBool("t1", false));
    EXPECT_TRUE(c.getBool("t2", false));
    EXPECT_TRUE(c.getBool("t3", false));
    EXPECT_TRUE(c.getBool("t4", false));
    EXPECT_FALSE(c.getBool("f1", true));
    EXPECT_FALSE(c.getBool("f2", true));
    EXPECT_FALSE(c.getBool("f3", true));
    EXPECT_FALSE(c.getBool("f4", true));
}

TEST(Config, OverwriteKeepsLast)
{
    Config c;
    c.set("k", "1");
    c.set("k", "2");
    EXPECT_EQ(c.getInt("k", 0), 2);
}

TEST(Config, UnusedKeysTracked)
{
    Config c;
    c.set("used", "1");
    c.set("unused", "2");
    (void)c.getInt("used", 0);
    auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "unused");
}

TEST(Config, LoadFileParsesCommentsAndBlanks)
{
    std::string path = testing::TempDir() + "/oenet_config_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment\n";
        out << "\n";
        out << "alpha = 1  # trailing comment\n";
        out << "beta.gamma=2.5\n";
    }
    Config c;
    c.loadFile(path);
    EXPECT_EQ(c.getInt("alpha", 0), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("beta.gamma", 0), 2.5);
    std::remove(path.c_str());
}

TEST(Config, ParseArgsSkipsProgramName)
{
    const char *argv[] = {"prog", "x=1", "y=2"};
    Config c;
    c.parseArgs(3, argv);
    EXPECT_EQ(c.getInt("x", 0), 1);
    EXPECT_EQ(c.getInt("y", 0), 2);
}

TEST(Config, ItemsSorted)
{
    Config c;
    c.set("b", "2");
    c.set("a", "1");
    auto items = c.items();
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].first, "a");
    EXPECT_EQ(items[1].first, "b");
}
