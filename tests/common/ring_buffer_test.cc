/** @file Tests for the power-of-two ring buffer behind hot-path FIFOs. */

#include <gtest/gtest.h>

#include <string>

#include "common/ring_buffer.hh"

using namespace oenet;

TEST(RingBuffer, StartsEmptyWithPowerOfTwoCapacity)
{
    RingBuffer<int> rb(5);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 8u); // rounded up to a power of two
}

TEST(RingBuffer, FifoOrder)
{
    RingBuffer<int> rb(4);
    for (int i = 0; i < 4; i++)
        rb.push_back(i);
    for (int i = 0; i < 4; i++) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundWithoutGrowing)
{
    RingBuffer<int> rb(4);
    int next_in = 0, next_out = 0;
    rb.push_back(next_in++);
    rb.push_back(next_in++);
    // Interleave pushes and pops so head_ laps the storage repeatedly
    // while size stays below capacity.
    for (int round = 0; round < 20; round++) {
        rb.push_back(next_in++);
        EXPECT_EQ(rb.front(), next_out++);
        rb.pop_front();
    }
    EXPECT_EQ(rb.capacity(), 4u);
    while (!rb.empty()) {
        EXPECT_EQ(rb.front(), next_out++);
        rb.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, GrowthPreservesOrderAcrossWrappedHead)
{
    RingBuffer<int> rb(4);
    // Advance head so the live region wraps, then force a grow.
    for (int i = 0; i < 3; i++) {
        rb.push_back(-1);
        rb.pop_front();
    }
    for (int i = 0; i < 9; i++) // crosses 4 -> 8 -> 16
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), 16u);
    EXPECT_EQ(rb.size(), 9u);
    for (int i = 0; i < 9; i++)
        EXPECT_EQ(rb.at(i), i);
    for (int i = 0; i < 9; i++) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
}

TEST(RingBuffer, AtIndexesFromFront)
{
    RingBuffer<std::string> rb(2);
    rb.push_back("a");
    rb.push_back("b");
    rb.push_back("c");
    EXPECT_EQ(rb.at(0), "a");
    EXPECT_EQ(rb.at(1), "b");
    EXPECT_EQ(rb.at(2), "c");
    rb.pop_front();
    EXPECT_EQ(rb.at(0), "b");
}

TEST(RingBuffer, ClearResetsAndBufferIsReusable)
{
    RingBuffer<int> rb(4);
    for (int i = 0; i < 6; i++)
        rb.push_back(i);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push_back(42);
    EXPECT_EQ(rb.front(), 42);
    EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBuffer, PopClearsSlotPayload)
{
    // Moved-from / popped slots must not retain heavy payloads.
    RingBuffer<std::string> rb(2);
    rb.push_back(std::string(1000, 'x'));
    rb.pop_front();
    rb.push_back("y");
    EXPECT_EQ(rb.front(), "y");
}
