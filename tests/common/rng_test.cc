/** @file Unit and statistical tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace oenet;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Rng, ReseedResets)
{
    Rng a(7);
    std::uint64_t first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; i++) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; i++) {
        double u = rng.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(11);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; i++)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    Rng rng(15);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(17);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        if (rng.bernoulli(0.3))
            hits++;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(21);
    double p = 0.1;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of geometric (failures before success) is (1-p)/p = 9.
    EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.3);
}

TEST(Rng, GeometricCertainSuccessIsZero)
{
    Rng rng(23);
    EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(25);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(27);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(rng.poisson(2.5));
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox)
{
    Rng rng(31);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(rng.poisson(50.0));
    EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, PoissonVarianceMatchesMean)
{
    Rng rng(33);
    const double mean = 4.0;
    const int n = 100000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; i++) {
        auto k = static_cast<double>(rng.poisson(mean));
        sum += k;
        sum2 += k * k;
    }
    double m = sum / n;
    double var = sum2 / n - m * m;
    EXPECT_NEAR(var, mean, 0.15);
}

TEST(Rng, JumpProducesIndependentStream)
{
    Rng a(42);
    Rng b(42);
    b.jump();
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 5);
}

TEST(DeriveStreamSeed, PureFunctionOfInputs)
{
    EXPECT_EQ(deriveStreamSeed(1, 0), deriveStreamSeed(1, 0));
    EXPECT_EQ(deriveStreamSeed(77, 12345), deriveStreamSeed(77, 12345));
}

TEST(DeriveStreamSeed, DistinctAcrossIndices)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; i++)
        seen.insert(deriveStreamSeed(1, i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(DeriveStreamSeed, DistinctAcrossBases)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 0; base < 10000; base++)
        seen.insert(deriveStreamSeed(base, 3));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(DeriveStreamSeed, BaseAndIndexNotInterchangeable)
{
    // A linear combination like base + index would make (2, 3) and
    // (3, 2) collide; the mixed derivation must not.
    EXPECT_NE(deriveStreamSeed(2, 3), deriveStreamSeed(3, 2));
    EXPECT_NE(deriveStreamSeed(2, 3), deriveStreamSeed(1, 4));
}

TEST(DeriveStreamSeed, StreamsAreDecorrelated)
{
    // Adjacent derived seeds must drive Rng to unrelated outputs.
    Rng a(deriveStreamSeed(9, 0));
    Rng b(deriveStreamSeed(9, 1));
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 5);
}
