/** @file Tests for the unit conversion helpers. */

#include <gtest/gtest.h>

#include "common/units.hh"

using namespace oenet;

TEST(Units, FlitsPerCycleAtFullRateIsOne)
{
    // 10 Gb/s, 16-bit flits, 625 MHz: exactly one flit per cycle.
    EXPECT_DOUBLE_EQ(flitsPerCycle(10.0), 1.0);
}

TEST(Units, FlitsPerCycleScalesLinearly)
{
    EXPECT_DOUBLE_EQ(flitsPerCycle(5.0), 0.5);
    EXPECT_NEAR(flitsPerCycle(3.3), 0.33, 1e-12);
}

TEST(Units, CyclesPerFlitIsInverse)
{
    EXPECT_DOUBLE_EQ(cyclesPerFlit(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cyclesPerFlit(5.0), 2.0);
}

TEST(Units, MicrosToCycles)
{
    // 625 cycles per microsecond.
    EXPECT_EQ(microsToCycles(1.0), 625u);
    EXPECT_EQ(microsToCycles(100.0), 62500u);
    EXPECT_EQ(microsToCycles(200.0), 125000u);
}

TEST(Units, CyclesToMicrosRoundTrip)
{
    EXPECT_NEAR(cyclesToMicros(microsToCycles(100.0)), 100.0, 0.01);
}

TEST(Units, DbmConversions)
{
    EXPECT_NEAR(dbmToMw(0.0), 1.0, 1e-12);
    EXPECT_NEAR(dbmToMw(10.0), 10.0, 1e-9);
    EXPECT_NEAR(mwToDbm(1.0), 0.0, 1e-12);
    EXPECT_NEAR(mwToDbm(dbmToMw(-3.0)), -3.0, 1e-9);
}

TEST(Units, ApplyLossDb)
{
    EXPECT_NEAR(applyLossDb(100.0, 3.0103), 50.0, 0.01);
    EXPECT_NEAR(applyLossDb(1.0, 0.0), 1.0, 1e-12);
    // The paper's example: 0 dB through 1:16 splitting with 12 dB total
    // loss leaves -12 dB.
    EXPECT_NEAR(mwToDbm(applyLossDb(1.0, 12.0)), -12.0, 1e-9);
}

TEST(Units, OpticalFrequencyAt1550nm)
{
    // ~193.4 THz.
    EXPECT_NEAR(opticalFrequencyHz(1550.0) / 1e12, 193.4, 0.1);
}
