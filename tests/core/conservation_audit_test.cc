/**
 * @file
 * Tests for the conservation audit: flit-ledger balance and credit
 * restitution on fault-free runs, flit-ledger balance across hard
 * link failures (drops, poison tails, stranded traffic), and the
 * Debug-default / config-override gating.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/poe_system.hh"
#include "core/sweeps.hh"
#include "traffic/uniform.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    c.conservationAudit = true; // run the audit in every build type
    return c;
}

RunProtocol
shortProtocol()
{
    RunProtocol p;
    p.warmup = 1000;
    p.measure = 4000;
    p.drainLimit = 6000;
    return p;
}

} // namespace

TEST(ConservationAudit, FaultFreeRunBalances)
{
    RunMetrics m = runExperiment(smallConfig(),
                                 TrafficSpec::uniform(0.5, 4, 7),
                                 shortProtocol());
    EXPECT_GT(m.packetsMeasured, 0u);
    EXPECT_EQ(m.auditFailures, 0u)
        << "flit or credit books did not balance on a clean run";
}

TEST(ConservationAudit, SaturatedRunBalances)
{
    // Past saturation the drain limit is routinely missed — the audit
    // must balance with traffic still queued at the sources.
    RunMetrics m = runExperiment(smallConfig(),
                                 TrafficSpec::uniform(4.0, 4, 7),
                                 shortProtocol());
    EXPECT_EQ(m.auditFailures, 0u);
}

TEST(ConservationAudit, HardLinkFailureStillBalances)
{
    // Kill a link mid-warmup: its in-flight flits drop, wormholes
    // strand and get poisoned, later flits die at the dead port. The
    // lifetime ledger must absorb all of it (including drops from
    // before startMeasurement resets the windowed counters).
    SystemConfig c = smallConfig();
    c.fault.enabled = true;
    c.fault.killLink = 8;
    c.fault.killCycle = 500; // inside the 1000-cycle warmup
    c.fault.orphanTimeoutCycles = 256;
    RunMetrics m = runExperiment(c, TrafficSpec::uniform(0.6, 4, 11),
                                 shortProtocol());
    EXPECT_EQ(m.linkHardFailures, 1);
    EXPECT_EQ(m.auditFailures, 0u)
        << "flit ledger lost track of dropped/poisoned traffic";
}

TEST(ConservationAudit, DirectAuditOnQuiescentSystem)
{
    SystemConfig c = smallConfig();
    PoeSystem sys(c);
    sys.setTraffic(std::make_unique<UniformRandomTraffic>(
        UniformRandomTraffic::Params{c.numNodes(), 0.4, 4, 3}));
    sys.run(3000);
    EXPECT_EQ(sys.auditConservation(), 0u);
    // The audit detached the traffic source; the system is quiescent
    // and every counter accounted for, so a second pass agrees.
    EXPECT_EQ(sys.auditConservation(), 0u);
}

TEST(ConservationAudit, TimelineRunBalances)
{
    TimelineResult r =
        runTimeline(smallConfig(), TrafficSpec::uniform(0.5, 4, 9),
                    4000, 1000, 500);
    EXPECT_EQ(r.metrics.auditFailures, 0u);
}

TEST(ConservationAudit, ConfigOverrideGatesTheAudit)
{
    SystemConfig c;
    c.conservationAudit = false;
    EXPECT_FALSE(c.conservationAuditEnabled());
    c.conservationAudit = true;
    EXPECT_TRUE(c.conservationAuditEnabled());
    c.conservationAudit.reset();
#ifdef NDEBUG
    EXPECT_FALSE(c.conservationAuditEnabled())
        << "audit must be off by default in Release builds";
#else
    EXPECT_TRUE(c.conservationAuditEnabled())
        << "audit must be on by default in Debug builds";
#endif
}
