/**
 * @file
 * Tests for the parallel sweep-execution engine: the determinism
 * contract (identical manifests at any thread count), seed derivation
 * and seedKey grouping, custom point bodies, progress reporting, and
 * manifest emission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/sweep_journal.hh"
#include "core/sweep_runner.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

/** A small but non-trivial sweep: rates x {power-aware, baseline}. */
std::vector<SweepPoint>
smallSweep()
{
    const double rates[] = {0.3, 0.6, 0.9};
    RunProtocol protocol;
    protocol.warmup = 1000;
    protocol.measure = 4000;
    protocol.drainLimit = 4000;

    std::vector<SweepPoint> points;
    for (std::size_t ri = 0; ri < std::size(rates); ri++) {
        for (bool pa : {true, false}) {
            SweepPoint p;
            p.label = "rate=" + formatDouble(rates[ri], 1) +
                      (pa ? "/pa" : "/base");
            p.params = {{"rate", rates[ri]},
                        {"pa", pa ? 1.0 : 0.0}};
            p.config = smallConfig();
            p.config.powerAware = pa;
            p.spec = TrafficSpec::uniform(rates[ri], 4);
            p.protocol = protocol;
            p.seedKey = ri; // pa/base pair shares the traffic stream
            points.push_back(std::move(p));
        }
    }
    return points;
}

SweepReport
runAt(int jobs, std::uint64_t base_seed = 5)
{
    SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.baseSeed = base_seed;
    return SweepRunner(opts).run(smallSweep());
}

} // namespace

TEST(SweepRunner, ManifestIdenticalAtAnyThreadCount)
{
    // The headline determinism contract: the manifest is byte-identical
    // whether the sweep ran serially or across four workers.
    SweepReport serial = runAt(1);
    SweepReport parallel = runAt(4);
    EXPECT_EQ(serial.jobs, 1);
    std::string a = sweepManifestJson("t", 5, serial.outcomes);
    std::string b = sweepManifestJson("t", 5, parallel.outcomes);
    EXPECT_EQ(a, b);
}

TEST(SweepRunner, BaseSeedChangesResults)
{
    SweepReport a = runAt(1, 5);
    SweepReport b = runAt(1, 6);
    EXPECT_NE(sweepManifestJson("t", 5, a.outcomes),
              sweepManifestJson("t", 6, b.outcomes));
}

TEST(SweepRunner, SeedKeyGroupsShareStreams)
{
    SweepReport report = runAt(1);
    // Layout: pairs (2*ri, 2*ri+1) share seedKey ri.
    std::set<std::uint64_t> perKey;
    for (std::size_t ri = 0; ri < 3; ri++) {
        EXPECT_EQ(report.outcomes[2 * ri].seed,
                  report.outcomes[2 * ri + 1].seed);
        perKey.insert(report.outcomes[2 * ri].seed);
    }
    EXPECT_EQ(perKey.size(), 3u) << "distinct keys, distinct streams";
}

TEST(SweepRunner, DefaultSeedKeyIsIndex)
{
    SweepPoint p;
    SweepRunner runner;
    EXPECT_NE(runner.pointSeed(p, 0), runner.pointSeed(p, 1));
    EXPECT_EQ(runner.pointSeed(p, 3),
              deriveStreamSeed(runner.options().baseSeed, 3));
}

TEST(SweepRunner, ReseedSpecsReplacesSpecSeed)
{
    std::vector<SweepPoint> points = smallSweep();
    for (auto &p : points)
        p.spec.seed = 12345;

    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.baseSeed = 5;
    std::vector<std::uint64_t> seen;
    SweepRunner(opts).run(
        points, [&](const SweepPoint &p, std::uint64_t seed) {
            EXPECT_EQ(p.spec.seed, seed) << "spec reseeded";
            seen.push_back(seed);
            return RunMetrics{};
        });
    EXPECT_EQ(seen.size(), points.size());

    opts.reseedSpecs = false;
    SweepRunner(opts).run(
        points, [&](const SweepPoint &p, std::uint64_t) {
            EXPECT_EQ(p.spec.seed, 12345u) << "spec left alone";
            return RunMetrics{};
        });
}

TEST(SweepRunner, CustomPointFnAndOutcomeFields)
{
    std::vector<SweepPoint> points = smallSweep();
    SweepRunner::Options opts;
    opts.jobs = 2;
    SweepReport report = SweepRunner(opts).run(
        points, [](const SweepPoint &p, std::uint64_t) {
            RunMetrics m;
            m.avgLatency = p.params[0].second * 10.0;
            return m;
        });
    ASSERT_EQ(report.outcomes.size(), points.size());
    for (std::size_t i = 0; i < points.size(); i++) {
        EXPECT_EQ(report.outcomes[i].index, i);
        EXPECT_EQ(report.outcomes[i].label, points[i].label);
        EXPECT_DOUBLE_EQ(report.outcomes[i].metrics.avgLatency,
                         points[i].params[0].second * 10.0);
    }
    EXPECT_EQ(report.jobs, 2);
    EXPECT_GT(report.wallMs, 0.0);
    EXPECT_EQ(report.pointWallMs.count(), points.size());
}

TEST(SweepRunner, ProgressReportsEveryPointOnce)
{
    std::atomic<std::size_t> calls{0};
    std::size_t lastDone = 0;
    SweepRunner::Options opts;
    opts.jobs = 4;
    opts.progress = [&](const SweepOutcome &, std::size_t done,
                        std::size_t total) {
        calls++;
        EXPECT_EQ(total, 6u);
        EXPECT_GT(done, lastDone) << "done is monotonically increasing";
        lastDone = done;
    };
    SweepRunner(opts).run(smallSweep(),
                          [](const SweepPoint &, std::uint64_t) {
                              return RunMetrics{};
                          });
    EXPECT_EQ(calls.load(), 6u);
    EXPECT_EQ(lastDone, 6u);
}

TEST(SweepRunner, EmptySweep)
{
    SweepReport report = SweepRunner().run({});
    EXPECT_TRUE(report.outcomes.empty());
    EXPECT_EQ(report.pointWallMs.count(), 0u);
}

TEST(SweepRunner, TimelinesDeterministicAcrossThreadCounts)
{
    std::vector<TimelinePoint> points;
    for (double rate : {0.2, 0.5, 0.8}) {
        TimelinePoint p;
        p.label = "rate=" + formatDouble(rate, 1);
        p.config = smallConfig();
        p.spec = TrafficSpec::uniform(rate, 4);
        p.total = 4000;
        p.bin = 1000;
        points.push_back(std::move(p));
    }

    SweepRunner::Options serialOpts, parallelOpts;
    serialOpts.jobs = 1;
    parallelOpts.jobs = 4;
    auto serial = runTimelines(SweepRunner(serialOpts), points);
    auto parallel = runTimelines(SweepRunner(parallelOpts), points);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        ASSERT_EQ(serial[i].timeline.normalizedPower.size(),
                  parallel[i].timeline.normalizedPower.size());
        for (std::size_t b = 0;
             b < serial[i].timeline.normalizedPower.size(); b++) {
            EXPECT_DOUBLE_EQ(serial[i].timeline.normalizedPower[b],
                             parallel[i].timeline.normalizedPower[b]);
        }
    }

    std::string a = sweepManifestJson("t", 1, timelineRollups(serial));
    std::string b = sweepManifestJson("t", 1, timelineRollups(parallel));
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Crash safety: retry, watchdog, isolation, journal/resume.
// ---------------------------------------------------------------------

namespace {

/** Deterministic synthetic metrics: a pure function of the point's
 *  first parameter and seed, so replayed and re-run points agree. */
RunMetrics
syntheticMetrics(const SweepPoint &p, std::uint64_t seed)
{
    RunMetrics m;
    m.avgLatency = p.params[0].second * 10.0 + 0.125;
    m.packetsMeasured = seed % 100000;
    m.drained = true;
    return m;
}

/** Options with instant retries so tests never sleep. */
SweepRunner::Options
fastRetryOpts(int jobs = 1)
{
    SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.retryBackoffMs = 0.0;
    return opts;
}

} // namespace

TEST(SweepRobustness, FlakyPointRecoversOnRetry)
{
    std::atomic<int> firstAttempts{0};
    SweepRunner::Options opts = fastRetryOpts();
    opts.maxRetries = 2;
    SweepReport report = SweepRunner(opts).run(
        smallSweep(), [&](const SweepPoint &p, std::uint64_t seed) {
            if (p.label == "rate=0.3/pa" && firstAttempts++ == 0)
                throw std::runtime_error("transient failure");
            return syntheticMetrics(p, seed);
        });
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.outcomes[0].attempts, 2);
    EXPECT_EQ(report.outcomes[1].attempts, 1);
    EXPECT_EQ(firstAttempts.load(), 2);
}

TEST(SweepRobustness, ExhaustedRetriesRecordFailedOutcome)
{
    SweepRunner::Options opts = fastRetryOpts(2);
    opts.maxRetries = 1;
    SweepReport report = SweepRunner(opts).run(
        smallSweep(), [&](const SweepPoint &p, std::uint64_t seed) {
            if (p.label == "rate=0.6/base")
                throw std::runtime_error("always broken");
            return syntheticMetrics(p, seed);
        });
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.failedPoints(), 1u);
    const SweepOutcome &bad = report.outcomes[3];
    EXPECT_EQ(bad.label, "rate=0.6/base");
    EXPECT_EQ(bad.status, PointStatus::kFailed);
    EXPECT_EQ(bad.attempts, 2); // 1 + maxRetries
    EXPECT_NE(bad.error.find("always broken"), std::string::npos);
    EXPECT_EQ(bad.metrics.avgLatency, 0.0) << "failed metrics zeroed";
    // The other five points are intact.
    for (std::size_t i = 0; i < report.outcomes.size(); i++) {
        if (i != 3)
            EXPECT_TRUE(report.outcomes[i].ok());
    }
}

TEST(SweepRobustness, FailedStatusAppearsInManifests)
{
    SweepRunner::Options opts = fastRetryOpts();
    opts.maxRetries = 0;
    SweepReport report = SweepRunner(opts).run(
        smallSweep(), [&](const SweepPoint &p, std::uint64_t seed) {
            if (p.label == "rate=0.9/pa")
                throw std::runtime_error("broken");
            return syntheticMetrics(p, seed);
        });
    std::string json = sweepManifestJson("t", 5, report.outcomes);
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_EQ(json.find("broken"), std::string::npos)
        << "error text must stay out of the manifest";

    std::string csvPath = "sweep_runner_test_status.csv";
    writeSweepManifestCsv(csvPath, report.outcomes);
    std::ifstream csv(csvPath);
    std::string header, row;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_NE(header.find(",status,"), std::string::npos);
    std::size_t failedRows = 0;
    while (std::getline(csv, row)) {
        if (row.find(",failed,") != std::string::npos)
            failedRows++;
    }
    EXPECT_EQ(failedRows, 1u);
    std::remove(csvPath.c_str());
}

TEST(SweepRobustness, AuditFailureIsFailedWithoutRetry)
{
    std::atomic<int> calls{0};
    SweepRunner::Options opts = fastRetryOpts();
    opts.maxRetries = 3;
    SweepReport report = SweepRunner(opts).run(
        smallSweep(), [&](const SweepPoint &p, std::uint64_t seed) {
            RunMetrics m = syntheticMetrics(p, seed);
            if (p.label == "rate=0.3/base") {
                calls++;
                m.auditFailures = 2;
            }
            return m;
        });
    EXPECT_EQ(report.failedPoints(), 1u);
    const SweepOutcome &bad = report.outcomes[1];
    EXPECT_EQ(bad.status, PointStatus::kFailed);
    // A conservation-audit violation is deterministic; retrying it
    // would just burn the retry budget.
    EXPECT_EQ(bad.attempts, 1);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_NE(bad.error.find("conservation audit"), std::string::npos);
}

TEST(SweepRobustness, IsolatedCrashIsContained)
{
    SweepRunner::Options opts = fastRetryOpts(2);
    opts.isolate = true;
    opts.maxRetries = 0;
    SweepReport report = SweepRunner(opts).run(
        smallSweep(), [&](const SweepPoint &p, std::uint64_t seed) {
            if (p.label == "rate=0.6/pa")
                std::raise(SIGSEGV); // dies in the child, not here
            return syntheticMetrics(p, seed);
        });
    ASSERT_EQ(report.outcomes.size(), 6u);
    EXPECT_EQ(report.failedPoints(), 1u);
    const SweepOutcome &bad = report.outcomes[2];
    EXPECT_EQ(bad.status, PointStatus::kFailed);
    EXPECT_NE(bad.error.find("signal 11"), std::string::npos);
    for (std::size_t i = 0; i < report.outcomes.size(); i++) {
        if (i != 2) {
            EXPECT_TRUE(report.outcomes[i].ok());
            EXPECT_GT(report.outcomes[i].metrics.avgLatency, 0.0);
        }
    }
}

TEST(SweepRobustness, IsolatedResultsMatchInProcessResults)
{
    std::vector<SweepPoint> points = smallSweep();
    SweepRunner::Options inProc = fastRetryOpts();
    SweepRunner::Options isolated = fastRetryOpts();
    isolated.isolate = true;
    SweepReport a = SweepRunner(inProc).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            return syntheticMetrics(p, seed);
        });
    SweepReport b = SweepRunner(isolated).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            return syntheticMetrics(p, seed);
        });
    EXPECT_EQ(sweepManifestJson("t", 1, a.outcomes),
              sweepManifestJson("t", 1, b.outcomes));
}

TEST(SweepRobustness, WatchdogKillsHungIsolatedPoint)
{
    SweepRunner::Options opts = fastRetryOpts();
    opts.isolate = true;
    opts.timeoutMs = 200.0;
    opts.maxRetries = 1;
    SweepReport report = SweepRunner(opts).run(
        smallSweep(), [&](const SweepPoint &p, std::uint64_t seed) {
            if (p.label == "rate=0.9/base") {
                for (;;) {
                } // hang; the watchdog must SIGKILL the child
            }
            return syntheticMetrics(p, seed);
        });
    EXPECT_EQ(report.failedPoints(), 1u);
    const SweepOutcome &bad = report.outcomes[5];
    EXPECT_EQ(bad.status, PointStatus::kFailed);
    EXPECT_EQ(bad.attempts, 2);
    EXPECT_NE(bad.error.find("watchdog"), std::string::npos);
}

TEST(SweepBudget, AbsoluteTimeoutWins)
{
    SweepRunner::Options opts;
    opts.timeoutMs = 500.0;
    opts.timeoutFactor = 10.0;
    EXPECT_EQ(sweepPointBudgetMs(opts, {}), 500.0);
    EXPECT_EQ(sweepPointBudgetMs(opts, {1.0, 2.0, 3.0}), 500.0);
}

TEST(SweepBudget, FactorNeedsThreeSamplesAndUsesMedian)
{
    SweepRunner::Options opts;
    opts.timeoutFactor = 3.0;
    EXPECT_EQ(sweepPointBudgetMs(opts, {}), 0.0);
    EXPECT_EQ(sweepPointBudgetMs(opts, {100.0, 200.0}), 0.0);
    EXPECT_EQ(sweepPointBudgetMs(opts, {100.0, 300.0, 200.0}), 600.0);
}

TEST(SweepBudget, FactorBudgetIsFloored)
{
    SweepRunner::Options opts;
    opts.timeoutFactor = 1.0;
    // 1 x median(10, 20, 30) = 20 ms — below the 100 ms floor.
    EXPECT_EQ(sweepPointBudgetMs(opts, {10.0, 20.0, 30.0}), 100.0);
}

TEST(SweepBudget, DisabledByDefault)
{
    EXPECT_EQ(sweepPointBudgetMs(SweepRunner::Options{},
                                 {50.0, 60.0, 70.0}),
              0.0);
}

TEST(SweepJournalResume, ResumeSkipsCompletedPoints)
{
    std::string path = "sweep_runner_test_resume.jsonl";
    std::remove(path.c_str());
    std::vector<SweepPoint> points = smallSweep();

    SweepRunner::Options opts = fastRetryOpts(2);
    opts.journalPath = path;
    SweepReport first = SweepRunner(opts).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            return syntheticMetrics(p, seed);
        });
    ASSERT_TRUE(first.allOk());

    std::atomic<int> executed{0};
    opts.resume = true;
    SweepReport second = SweepRunner(opts).run(
        points, [&](const SweepPoint &p, std::uint64_t seed) {
            executed++;
            return syntheticMetrics(p, seed);
        });
    EXPECT_EQ(executed.load(), 0) << "all points replayed, none re-run";
    EXPECT_EQ(second.resumedPoints, 6u);
    EXPECT_EQ(sweepManifestJson("t", 5, first.outcomes),
              sweepManifestJson("t", 5, second.outcomes));
    std::remove(path.c_str());
}

TEST(SweepJournalResume, PartialJournalRunsOnlyTheRemainder)
{
    std::string path = "sweep_runner_test_partial.jsonl";
    std::remove(path.c_str());
    std::vector<SweepPoint> points = smallSweep();

    SweepRunner::Options plain = fastRetryOpts();
    SweepReport uninterrupted = SweepRunner(plain).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            return syntheticMetrics(p, seed);
        });

    SweepRunner::Options journaled = fastRetryOpts();
    journaled.journalPath = path;
    SweepRunner(journaled).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            return syntheticMetrics(p, seed);
        });

    // Simulate a SIGKILL after two points: keep header + 2 records.
    {
        std::ifstream in(path, std::ios::binary);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::size_t pos = 0;
        for (int nl = 0; nl < 3; pos++) {
            if (all[pos] == '\n')
                nl++;
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(), static_cast<std::streamsize>(pos));
    }

    std::atomic<int> executed{0};
    journaled.resume = true;
    SweepReport resumed = SweepRunner(journaled).run(
        points, [&](const SweepPoint &p, std::uint64_t seed) {
            executed++;
            return syntheticMetrics(p, seed);
        });
    EXPECT_EQ(executed.load(), 4);
    EXPECT_EQ(resumed.resumedPoints, 2u);
    EXPECT_EQ(sweepManifestJson("t", 5, uninterrupted.outcomes),
              sweepManifestJson("t", 5, resumed.outcomes));
    std::remove(path.c_str());
}

TEST(SweepJournalResume, FailedOutcomesReplayAsFailed)
{
    std::string path = "sweep_runner_test_failed.jsonl";
    std::remove(path.c_str());
    std::vector<SweepPoint> points = smallSweep();

    SweepRunner::Options opts = fastRetryOpts();
    opts.journalPath = path;
    opts.maxRetries = 0;
    SweepReport first = SweepRunner(opts).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            if (p.label == "rate=0.3/pa")
                throw std::runtime_error("dead config");
            return syntheticMetrics(p, seed);
        });
    EXPECT_EQ(first.failedPoints(), 1u);

    // Resume replays the failed record too — it was a terminal
    // outcome, not an interrupted one.
    opts.resume = true;
    SweepReport second = SweepRunner(opts).run(
        points, [](const SweepPoint &p, std::uint64_t seed) {
            ADD_FAILURE() << "no point should re-run";
            return syntheticMetrics(p, seed);
        });
    EXPECT_EQ(second.failedPoints(), 1u);
    EXPECT_EQ(second.outcomes[0].status, PointStatus::kFailed);
    EXPECT_EQ(sweepManifestJson("t", 5, first.outcomes),
              sweepManifestJson("t", 5, second.outcomes));
    std::remove(path.c_str());
}

TEST(SweepJournalResumeDeath, ResumeWithoutJournalIsFatal)
{
    SweepRunner::Options opts;
    opts.resume = true;
    EXPECT_EXIT(SweepRunner(opts).run(
                    smallSweep(),
                    [](const SweepPoint &, std::uint64_t) {
                        return RunMetrics{};
                    }),
                ::testing::ExitedWithCode(1),
                "--resume requires a --journal");
}

TEST(SweepJournalResumeDeath, MismatchedHeaderIsFatal)
{
    std::string path = "sweep_runner_test_mismatch.jsonl";
    std::remove(path.c_str());
    {
        SweepJournal j;
        j.open(path, SweepJournal::Header{99, 3}, 0);
        j.close();
    }
    SweepRunner::Options opts;
    opts.baseSeed = 5; // journal says 99
    opts.journalPath = path;
    opts.resume = true;
    EXPECT_EXIT(SweepRunner(opts).run(
                    smallSweep(),
                    [](const SweepPoint &p, std::uint64_t seed) {
                        return syntheticMetrics(p, seed);
                    }),
                ::testing::ExitedWithCode(1),
                "belongs to a different sweep");
    std::remove(path.c_str());
}

TEST(SweepManifest, JsonShapeAndWallTimeExclusion)
{
    SweepOutcome o;
    o.index = 0;
    o.label = "demo \"quoted\"";
    o.params = {{"rate", 0.5}};
    o.seed = 42;
    o.metrics.avgLatency = 12.25;
    o.wallMs = 999.0; // must NOT appear in the manifest

    std::string json = sweepManifestJson("demo_sweep", 7, {o});
    EXPECT_NE(json.find("\"sweep\": \"demo_sweep\""), std::string::npos);
    EXPECT_NE(json.find("\"base_seed\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"demo \\\"quoted\\\"\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"rate\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"avg_latency\": 12.25"), std::string::npos);
    EXPECT_EQ(json.find("999"), std::string::npos)
        << "wall time leaked into the manifest";
    EXPECT_EQ(json.find("jobs"), std::string::npos)
        << "thread count leaked into the manifest";
}

TEST(SweepManifest, FilesRoundTrip)
{
    SweepReport report = runAt(2);
    std::string jsonPath = "sweep_runner_test_manifest.json";
    std::string csvPath = "sweep_runner_test_manifest.csv";
    writeSweepManifest(jsonPath, "t", 5, report.outcomes);
    writeSweepManifestCsv(csvPath, report.outcomes);

    std::ifstream in(jsonPath, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), sweepManifestJson("t", 5, report.outcomes));

    std::ifstream csv(csvPath);
    std::string header;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_NE(header.find("index"), std::string::npos);
    EXPECT_NE(header.find("rate"), std::string::npos);
    EXPECT_NE(header.find("avg_latency"), std::string::npos);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(csv, line))
        rows++;
    EXPECT_EQ(rows, report.outcomes.size());

    std::remove(jsonPath.c_str());
    std::remove(csvPath.c_str());
}
