/** @file Tests for the assembled PoeSystem and its measurement logic. */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

std::unique_ptr<TrafficSource>
uniform(double rate, const SystemConfig &cfg, std::uint64_t seed = 1)
{
    return makeTraffic(TrafficSpec::uniform(rate, 4, seed), cfg);
}

} // namespace

TEST(PoeSystem, RunsWithoutTraffic)
{
    PoeSystem sys(smallConfig());
    sys.run(1000);
    EXPECT_EQ(sys.now(), 1000u);
    EXPECT_EQ(sys.network().packetsInjected(), 0u);
}

TEST(PoeSystem, MeasurementCountsOnlyWindowPackets)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(uniform(0.5, cfg));
    sys.run(2000); // pre-measurement traffic
    sys.startMeasurement();
    sys.run(4000);
    sys.stopMeasurement();
    ASSERT_TRUE(sys.awaitDrain(10000));
    RunMetrics m = sys.metrics();
    EXPECT_NEAR(static_cast<double>(m.packetsMeasured), 0.5 * 4000,
                200.0);
    EXPECT_LT(m.packetsMeasured, sys.network().packetsInjected());
    EXPECT_TRUE(m.drained);
}

TEST(PoeSystem, StartMeasurementRestartsLinkCounters)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(uniform(0.5, cfg));
    sys.run(2000); // warm-up moves flits and changes levels
    Network &net = sys.network();
    std::uint64_t flits = 0;
    for (std::size_t i = 0; i < net.numLinks(); i++)
        flits += net.link(i).totalFlits();
    ASSERT_GT(flits, 0u);

    sys.startMeasurement();
    // The warm-up transient must not leak into per-link reports.
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        EXPECT_EQ(net.link(i).totalFlits(), 0u);
        EXPECT_EQ(net.link(i).numTransitions(), 0u);
    }
    // The delta-based window metrics still work after the reset.
    sys.run(2000);
    sys.stopMeasurement();
    ASSERT_TRUE(sys.awaitDrain(10000));
    RunMetrics m = sys.metrics();
    EXPECT_GT(m.avgPowerMw, 0.0);
    EXPECT_GT(m.packetsMeasured, 0u);
}

TEST(PoeSystem, LatencyIncludesSourceQueueing)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(uniform(0.05, cfg));
    sys.startMeasurement();
    sys.run(5000);
    sys.stopMeasurement();
    sys.awaitDrain(5000);
    RunMetrics m = sys.metrics();
    ASSERT_GT(m.packetsMeasured, 0u);
    // Zero-load-ish latency: a handful of pipeline stages per hop plus
    // serialization; must be well above the single-hop minimum and
    // bounded.
    EXPECT_GT(m.avgLatency, 10.0);
    EXPECT_LT(m.avgLatency, 200.0);
    EXPECT_LE(m.p50Latency, m.p95Latency);
    EXPECT_LE(m.p95Latency, m.maxLatency);
}

TEST(PoeSystem, PowerMeasurementWindowed)
{
    SystemConfig cfg = smallConfig();
    cfg.powerAware = false;
    PoeSystem sys(cfg);
    sys.setTraffic(uniform(0.2, cfg));
    sys.run(500);
    sys.startMeasurement();
    sys.run(1000);
    sys.stopMeasurement();
    RunMetrics m = sys.metrics();
    // Non-power-aware: measured power equals the baseline exactly.
    EXPECT_NEAR(m.avgPowerMw, m.baselinePowerMw, 1e-6);
    EXPECT_NEAR(m.normalizedPower, 1.0, 1e-9);
    EXPECT_EQ(m.measuredCycles, 1000u);
}

TEST(PoeSystem, PowerAwareIdleSavesPower)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.run(8000); // policy settles everything at minimum
    sys.startMeasurement();
    sys.run(2000);
    sys.stopMeasurement();
    RunMetrics m = sys.metrics();
    EXPECT_LT(m.normalizedPower, 0.25);
    EXPECT_GT(m.normalizedPower, 0.05);
}

TEST(PoeSystem, ThroughputReflectsDelivery)
{
    SystemConfig cfg = smallConfig();
    cfg.powerAware = false;
    PoeSystem sys(cfg);
    sys.setTraffic(uniform(0.5, cfg));
    sys.run(2000);
    sys.startMeasurement();
    sys.run(5000);
    sys.stopMeasurement();
    sys.awaitDrain(5000);
    RunMetrics m = sys.metrics();
    // 0.5 pkts/cycle * 4 flits = 2 flits/cycle through the fabric.
    EXPECT_NEAR(m.throughputFlitsPerCycle, 2.0, 0.3);
    EXPECT_NEAR(m.offeredRate, 0.5, 0.1);
}

TEST(PoeSystem, MetricsSummaryNonEmpty)
{
    PoeSystem sys(smallConfig());
    sys.startMeasurement();
    sys.run(100);
    sys.stopMeasurement();
    EXPECT_FALSE(sys.metrics().summary().empty());
}

TEST(PoeSystem, NormalizeAgainstBaseline)
{
    RunMetrics pa;
    pa.avgLatency = 60.0;
    pa.avgPowerMw = 100.0;
    RunMetrics base;
    base.avgLatency = 40.0;
    base.avgPowerMw = 400.0;
    NormalizedMetrics n = normalizeAgainst(pa, base);
    EXPECT_DOUBLE_EQ(n.latencyRatio, 1.5);
    EXPECT_DOUBLE_EQ(n.powerRatio, 0.25);
    EXPECT_DOUBLE_EQ(n.plpRatio, 0.375);
}
