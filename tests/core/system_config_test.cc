/** @file Tests for SystemConfig parsing and parameter plumbing. */

#include <gtest/gtest.h>

#include "core/system_config.hh"

using namespace oenet;

TEST(SystemConfig, DefaultsMatchPaperSection41)
{
    SystemConfig c;
    EXPECT_EQ(c.meshX, 8);
    EXPECT_EQ(c.meshY, 8);
    EXPECT_EQ(c.clusterSize, 8);
    EXPECT_EQ(c.numNodes(), 512);
    EXPECT_EQ(c.bufferDepthPerPort, 16);
    EXPECT_DOUBLE_EQ(c.brMinGbps, 5.0);
    EXPECT_DOUBLE_EQ(c.brMaxGbps, 10.0);
    EXPECT_EQ(c.numLevels, 6);
    EXPECT_EQ(c.freqTransitionCycles, 20u); // T_br
    EXPECT_EQ(c.voltTransitionCycles, 100u); // T_v
    EXPECT_EQ(c.windowCycles, 1000u);        // T_w
    EXPECT_TRUE(c.powerAware);
    EXPECT_EQ(c.scheme, LinkScheme::kModulator);
    EXPECT_EQ(c.opticalMode, OpticalMode::kFixed);
}

TEST(SystemConfig, FromConfigOverrides)
{
    Config raw;
    raw.set("mesh.x", "4");
    raw.set("mesh.y", "4");
    raw.set("mesh.cluster", "2");
    raw.set("link.scheme", "vcsel");
    raw.set("link.br_min", "3.3");
    raw.set("policy.window", "500");
    raw.set("policy.th_high", "0.8");
    raw.set("policy.mode", "onoff");
    SystemConfig c = SystemConfig::fromConfig(raw);
    EXPECT_EQ(c.meshX, 4);
    EXPECT_EQ(c.numNodes(), 32);
    EXPECT_EQ(c.scheme, LinkScheme::kVcsel);
    EXPECT_DOUBLE_EQ(c.brMinGbps, 3.3);
    EXPECT_EQ(c.windowCycles, 500u);
    EXPECT_DOUBLE_EQ(c.policy.thHighUncongested, 0.8);
    EXPECT_EQ(c.policyMode, PolicyMode::kOnOff);
}

TEST(SystemConfig, TriLevelParsing)
{
    Config raw;
    raw.set("optical.mode", "trilevel");
    SystemConfig c = SystemConfig::fromConfig(raw);
    EXPECT_EQ(c.opticalMode, OpticalMode::kTriLevel);
}

TEST(SystemConfig, NetworkParamsPlumbed)
{
    SystemConfig c;
    c.brMinGbps = 3.3;
    c.numLevels = 4;
    c.freqTransitionCycles = 7;
    Network::Params p = c.networkParams();
    EXPECT_EQ(p.levels.numLevels(), 4);
    EXPECT_DOUBLE_EQ(p.levels.minBitRateGbps(), 3.3);
    EXPECT_EQ(p.link.freqTransitionCycles, 7u);
    EXPECT_EQ(p.link.initialLevel, kInvalid); // start at max
}

TEST(SystemConfig, EngineParamsPlumbed)
{
    SystemConfig c;
    c.windowCycles = 777;
    c.policy.slidingWindows = 9;
    c.opticalMode = OpticalMode::kTriLevel;
    PolicyEngine::Params p = c.engineParams();
    EXPECT_EQ(p.windowCycles, 777u);
    EXPECT_EQ(p.link.policy.slidingWindows, 9);
    EXPECT_EQ(p.link.opticalMode, OpticalMode::kTriLevel);
}

TEST(SystemConfigDeath, BadSchemeFatal)
{
    Config raw;
    raw.set("link.scheme", "quantum");
    EXPECT_EXIT((void)SystemConfig::fromConfig(raw),
                ::testing::ExitedWithCode(1), "scheme");
}

TEST(SystemConfigDeath, TriLevelRequiresModulator)
{
    Config raw;
    raw.set("optical.mode", "trilevel");
    raw.set("link.scheme", "vcsel");
    EXPECT_EXIT((void)SystemConfig::fromConfig(raw),
                ::testing::ExitedWithCode(1), "modulator");
}
