/**
 * @file
 * Tests for the crash-safety journal: exact outcome round-trips
 * (doubles, counters, escaped labels), CRC rejection of corrupted
 * bytes, torn-tail truncation recovery, header validation, and the
 * truncate-to-valid-prefix reopen contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep_journal.hh"

using namespace oenet;

namespace {

/** Unique-ish per-test scratch path under the build tree. */
std::string
scratchPath(const char *name)
{
    return std::string("journal_test_") + name + ".jsonl";
}

SweepOutcome
sampleOutcome(std::size_t index)
{
    SweepOutcome o;
    o.index = index;
    o.label = "rate=0.5/pa \"quoted\"\nnewline";
    o.params = {{"rate", 0.5}, {"pa", 1.0}};
    o.seed = 0x9e3779b97f4a7c15ull + index;
    o.status = index % 3 == 2 ? PointStatus::kFailed : PointStatus::kOk;
    o.attempts = static_cast<int>(index % 3) + 1;
    o.error = o.status == PointStatus::kFailed ? "watchdog: killed" : "";
    o.wallMs = 12.625 + static_cast<double>(index);
    o.metrics.avgLatency = 123.4567890123456789; // exercises %.17g
    o.metrics.normalizedPower = 0.1 + static_cast<double>(index) * 1e-17;
    o.metrics.packetsMeasured = 1'000'000'007ull + index;
    o.metrics.packetsInjected = (1ull << 60) + index; // > 2^53
    o.metrics.drained = index % 2 == 0;
    o.metrics.auditFailures = index == 4 ? 2 : 0;
    o.metrics.measuredCycles = 50'000;
    return o;
}

void
writeJournal(const std::string &path, std::uint64_t base_seed,
             std::size_t n)
{
    SweepJournal j;
    j.open(path, SweepJournal::Header{base_seed, n}, 0);
    for (std::size_t i = 0; i < n; i++)
        j.append(sampleOutcome(i));
    j.close();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

class JournalFile : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (!path_.empty())
            std::remove(path_.c_str());
    }

    std::string path_;
};

} // namespace

TEST(Crc32, KnownVectors)
{
    // The classic check value for "123456789" (IEEE 802.3 reflected).
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(Crc32, SingleBitFlipChangesValue)
{
    std::string a = "conservation";
    std::string b = a;
    b[5] ^= 0x01;
    EXPECT_NE(crc32(a.data(), a.size()), crc32(b.data(), b.size()));
}

TEST_F(JournalFile, MissingFileLoadsAsAbsent)
{
    path_ = scratchPath("missing");
    std::remove(path_.c_str());
    SweepJournal::Loaded l = SweepJournal::load(path_);
    EXPECT_FALSE(l.exists);
    EXPECT_FALSE(l.hasHeader);
    EXPECT_TRUE(l.outcomes.empty());
}

TEST_F(JournalFile, RoundTripIsExact)
{
    path_ = scratchPath("roundtrip");
    writeJournal(path_, 42, 6);

    SweepJournal::Loaded l = SweepJournal::load(path_);
    ASSERT_TRUE(l.exists);
    ASSERT_TRUE(l.hasHeader);
    EXPECT_EQ(l.header.baseSeed, 42u);
    EXPECT_EQ(l.header.points, 6u);
    EXPECT_EQ(l.droppedLines, 0u);
    EXPECT_EQ(l.validBytes, slurp(path_).size());
    ASSERT_EQ(l.outcomes.size(), 6u);
    for (std::size_t i = 0; i < 6; i++) {
        const SweepOutcome want = sampleOutcome(i);
        const SweepOutcome &got = l.outcomes[i];
        EXPECT_EQ(got.index, want.index);
        EXPECT_EQ(got.label, want.label);
        EXPECT_EQ(got.seed, want.seed);
        EXPECT_EQ(got.status, want.status);
        EXPECT_EQ(got.attempts, want.attempts);
        EXPECT_EQ(got.error, want.error);
        EXPECT_EQ(got.wallMs, want.wallMs);
        // Every metrics field must round-trip bit-exactly — the
        // resumed manifest is byte-compared against the
        // uninterrupted one.
        EXPECT_EQ(got.metrics.avgLatency, want.metrics.avgLatency);
        EXPECT_EQ(got.metrics.normalizedPower,
                  want.metrics.normalizedPower);
        EXPECT_EQ(got.metrics.packetsMeasured,
                  want.metrics.packetsMeasured);
        EXPECT_EQ(got.metrics.packetsInjected,
                  want.metrics.packetsInjected);
        EXPECT_EQ(got.metrics.drained, want.metrics.drained);
        EXPECT_EQ(got.metrics.auditFailures,
                  want.metrics.auditFailures);
        EXPECT_EQ(got.metrics.measuredCycles,
                  want.metrics.measuredCycles);
    }
    // Re-serializing a loaded record reproduces the exact line.
    EXPECT_EQ(SweepJournal::recordLine(l.outcomes[0]),
              SweepJournal::recordLine(sampleOutcome(0)));
}

TEST_F(JournalFile, CorruptedByteEndsTheValidPrefix)
{
    path_ = scratchPath("corrupt");
    writeJournal(path_, 7, 4);
    std::string bytes = slurp(path_);

    // Flip one byte inside the third record line (header + 2 records
    // stay intact).
    std::size_t nl = 0, pos = 0;
    for (std::size_t i = 0; i < bytes.size(); i++) {
        if (bytes[i] == '\n' && ++nl == 3) {
            pos = i + 10;
            break;
        }
    }
    ASSERT_GT(pos, 0u);
    bytes[pos] ^= 0x20;
    spit(path_, bytes);

    SweepJournal::Loaded l = SweepJournal::load(path_);
    ASSERT_TRUE(l.hasHeader);
    // Records after the corrupt line are dropped even if intact —
    // the journal is an append-only log, so a bad line means
    // everything after it is suspect.
    EXPECT_EQ(l.outcomes.size(), 2u);
    EXPECT_EQ(l.droppedLines, 2u);
    EXPECT_LT(l.validBytes, bytes.size());
}

TEST_F(JournalFile, TornTailLineIsDiscarded)
{
    path_ = scratchPath("torn");
    writeJournal(path_, 7, 3);
    std::string bytes = slurp(path_);
    // SIGKILL mid-write: the last line loses its tail (and newline).
    spit(path_, bytes.substr(0, bytes.size() - 17));

    SweepJournal::Loaded l = SweepJournal::load(path_);
    ASSERT_TRUE(l.hasHeader);
    EXPECT_EQ(l.outcomes.size(), 2u);
    EXPECT_EQ(l.droppedLines, 1u);

    // Reopening with keep_bytes == validBytes truncates the torn
    // tail; a fresh append then yields a fully valid journal again.
    SweepJournal j;
    j.open(path_, SweepJournal::Header{7, 3}, l.validBytes);
    j.append(sampleOutcome(2));
    j.close();

    SweepJournal::Loaded l2 = SweepJournal::load(path_);
    EXPECT_EQ(l2.outcomes.size(), 3u);
    EXPECT_EQ(l2.droppedLines, 0u);
}

TEST_F(JournalFile, GarbageFileHasNoHeader)
{
    path_ = scratchPath("garbage");
    spit(path_, "this is not a journal\n{\"r\": nope}\n");
    SweepJournal::Loaded l = SweepJournal::load(path_);
    EXPECT_TRUE(l.exists);
    EXPECT_FALSE(l.hasHeader);
    EXPECT_TRUE(l.outcomes.empty());
}

TEST_F(JournalFile, EmptyFileHasNoHeader)
{
    path_ = scratchPath("empty");
    spit(path_, "");
    SweepJournal::Loaded l = SweepJournal::load(path_);
    EXPECT_TRUE(l.exists);
    EXPECT_FALSE(l.hasHeader);
}

TEST_F(JournalFile, HeaderCarriesSweepIdentity)
{
    path_ = scratchPath("header");
    writeJournal(path_, 1234567890123456789ull, 17);
    SweepJournal::Loaded l = SweepJournal::load(path_);
    ASSERT_TRUE(l.hasHeader);
    EXPECT_EQ(l.header.baseSeed, 1234567890123456789ull);
    EXPECT_EQ(l.header.points, 17u);
}

TEST_F(JournalFile, FreshOpenDiscardsOldContents)
{
    path_ = scratchPath("fresh");
    writeJournal(path_, 1, 5);
    // keep_bytes == 0: a fresh journal for a different sweep.
    SweepJournal j;
    j.open(path_, SweepJournal::Header{2, 1}, 0);
    j.append(sampleOutcome(0));
    j.close();

    SweepJournal::Loaded l = SweepJournal::load(path_);
    ASSERT_TRUE(l.hasHeader);
    EXPECT_EQ(l.header.baseSeed, 2u);
    EXPECT_EQ(l.outcomes.size(), 1u);
}
