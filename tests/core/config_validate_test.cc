/**
 * @file
 * SystemConfig::validate(): nonsensical configurations must die with a
 * clear message instead of silently simulating garbage; legitimate
 * edge cases (zero transition times, defaults) must pass.
 */

#include <gtest/gtest.h>

#include "core/system_config.hh"

using namespace oenet;

namespace {

/** validate() calls fatal(), which exits with code 1 after logging. */
void
expectRejected(const SystemConfig &c, const char *pattern)
{
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), pattern);
}

} // namespace

TEST(ConfigValidate, DefaultConfigIsValid)
{
    SystemConfig c;
    c.validate(); // must not die
    SUCCEED();
}

TEST(ConfigValidate, ZeroTransitionTimesAreValid)
{
    // The no_tv / no_tbr ablations from the paper zero these out.
    SystemConfig c;
    c.voltTransitionCycles = 0;
    c.freqTransitionCycles = 0;
    c.validate();
    SUCCEED();
}

TEST(ConfigValidate, RejectsBadMesh)
{
    SystemConfig c;
    c.meshX = 0;
    expectRejected(c, "mesh.x/mesh.y must be >= 1");
    c = SystemConfig{};
    c.meshY = -2;
    expectRejected(c, "mesh.x/mesh.y must be >= 1");
    c = SystemConfig{};
    c.clusterSize = 0;
    expectRejected(c, "mesh.cluster must be >= 1");
}

TEST(ConfigValidate, RejectsBadRouter)
{
    SystemConfig c;
    c.numVcs = 0;
    expectRejected(c, "router.vcs must be >= 1");
    c = SystemConfig{};
    c.bufferDepthPerPort = c.numVcs - 1;
    expectRejected(c, "must be >= router.vcs");
}

TEST(ConfigValidate, RejectsBadLinkRates)
{
    SystemConfig c;
    c.brMinGbps = 0.0;
    expectRejected(c, "link.br_min must be > 0");
    c = SystemConfig{};
    c.brMaxGbps = c.brMinGbps - 1.0;
    expectRejected(c, "must be >= link.br_min");
    c = SystemConfig{};
    c.numLevels = 0;
    expectRejected(c, "link.levels must be >= 1");
}

TEST(ConfigValidate, RejectsBadPolicyLevels)
{
    SystemConfig c;
    c.staticLevel = c.numLevels;
    expectRejected(c, "policy.static_level");
    c = SystemConfig{};
    c.minLevel = -1;
    expectRejected(c, "policy.min_level");
    c = SystemConfig{};
    c.powerAware = true;
    c.windowCycles = 0;
    expectRejected(c, "policy.window must be > 0");
}

TEST(ConfigValidate, RejectsTrilevelWithVcsel)
{
    SystemConfig c;
    c.opticalMode = OpticalMode::kTriLevel;
    c.scheme = LinkScheme::kVcsel;
    expectRejected(c, "requires the modulator");
}

TEST(ConfigValidate, RejectsBadFaultProbabilities)
{
    SystemConfig c;
    c.fault.berFloor = 1.5;
    expectRejected(c, "fault.ber_floor must be a probability");
    c = SystemConfig{};
    c.fault.lockLossPerCycle = -0.1;
    expectRejected(c, "fault.lock_loss must be a probability");
    c = SystemConfig{};
    c.fault.berScale = -1.0;
    expectRejected(c, "fault.ber_scale must be >= 0");
    c = SystemConfig{};
    c.fault.voaDelayProb = 0.7;
    c.fault.voaLossProb = 0.7;
    expectRejected(c, "fault.voa_delay \\+ fault.voa_loss");
    c = SystemConfig{};
    c.fault.voaDelayFactor = 0.5;
    expectRejected(c, "fault.voa_delay_factor must be >= 1");
}

TEST(ConfigValidate, RejectsBadFaultScripting)
{
    SystemConfig c;
    c.fault.killLink = -7;
    expectRejected(c, "fault.kill_link must be a link index or -1");
    c = SystemConfig{};
    c.fault.retryBackoffBase = 64;
    c.fault.retryBackoffCap = 8;
    expectRejected(c, "fault.backoff_cap");
}

TEST(ConfigValidate, FaultDefaultsAreValid)
{
    SystemConfig c;
    c.fault.enabled = true;
    c.validate();
    c.fault.killLink = 0; // any non-negative index is fine here
    c.validate();
    SUCCEED();
}

TEST(ConfigValidate, RejectsZeroMetricsInterval)
{
    // A zero snapshot interval used to be accepted and silently meant
    // "no snapshots", aliasing the detached-sink path; now the
    // explicit way (don't attach a sink) is the only way.
    SystemConfig c;
    c.metricsIntervalCycles = 0;
    expectRejected(c, "trace.metrics_interval must be > 0");
}

TEST(ConfigValidate, ThermalDefaultsAreValid)
{
    SystemConfig c;
    c.thermal.enabled = true;
    c.validate();
    c.thermal.throttleC = 0.0; // throttle off, model on: legal
    c.validate();
    SUCCEED();
}

TEST(ConfigValidate, RejectsBadThermalParams)
{
    SystemConfig c;
    c.thermal.enabled = true;
    c.thermal.tauCycles = 0;
    expectRejected(c, "thermal.tau must be > 0");
    c = SystemConfig{};
    c.thermal.enabled = true;
    c.thermal.epochCycles = 0;
    expectRejected(c, "thermal.epoch must be > 0");
    c = SystemConfig{};
    c.thermal.enabled = true;
    c.thermal.subLeakMw = -1.0;
    expectRejected(c, "leakage.sub_mw must be >= 0");
    c = SystemConfig{};
    c.thermal.enabled = true;
    c.thermal.subTempSlopeC = 0.0;
    expectRejected(c, "leakage.sub_slope must be > 0");

    // Disabled thermal params are never inspected: garbage is fine.
    c = SystemConfig{};
    c.thermal.tauCycles = 0;
    c.validate();
    SUCCEED();
}

TEST(ConfigValidate, RejectsThermalWithFaults)
{
    // Fault-attached links bypass the power ledger (receiver-side
    // advances would race the thermal epoch), so the combination is
    // rejected rather than silently un-thermal.
    SystemConfig c;
    c.thermal.enabled = true;
    c.fault.enabled = true;
    expectRejected(c, "mutually");
}
