/** @file Tests for the experiment protocol and sweep drivers. */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

RunProtocol
quickProtocol()
{
    RunProtocol p;
    p.warmup = 2000;
    p.measure = 6000;
    p.drainLimit = 20000;
    return p;
}

} // namespace

TEST(Experiment, MakeTrafficBuildsEachKind)
{
    SystemConfig cfg = smallConfig();
    EXPECT_NE(makeTraffic(TrafficSpec::uniform(1.0), cfg), nullptr);
    EXPECT_NE(makeTraffic(
                  TrafficSpec::hotspot({{0, 1.0}, {100, 2.0}}), cfg),
              nullptr);
    TraceData trace = {{0, 0, 1, 4}};
    EXPECT_NE(makeTraffic(TrafficSpec::traceReplay(trace), cfg),
              nullptr);
    TrafficSpec perm;
    perm.kind = TrafficSpec::Kind::kPermutation;
    perm.pattern = PermutationPattern::kBitComplement;
    perm.rate = 0.5;
    EXPECT_NE(makeTraffic(perm, cfg), nullptr);
}

TEST(Experiment, HotspotSpecUsesConfiguredHotNode)
{
    SystemConfig cfg = smallConfig();
    TrafficSpec spec = TrafficSpec::hotspot({{0, 1.0}});
    spec.hotNode = 3;
    auto src = makeTraffic(spec, cfg);
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 2000; t++)
        src->arrivals(t, out);
    int hot = 0;
    for (const auto &d : out)
        if (d.dst == 3u)
            hot++;
    // Weight 4 among 8 nodes: expect well above the 1/8 uniform share.
    EXPECT_GT(static_cast<double>(hot) / out.size(), 0.2);
}

TEST(Experiment, RunExperimentProducesSaneMetrics)
{
    RunMetrics m = runExperiment(smallConfig(),
                                 TrafficSpec::uniform(0.3, 4, 9),
                                 quickProtocol());
    EXPECT_GT(m.packetsMeasured, 500u);
    EXPECT_TRUE(m.drained);
    EXPECT_GT(m.avgLatency, 0.0);
    EXPECT_GT(m.normalizedPower, 0.0);
    EXPECT_LT(m.normalizedPower, 1.0);
}

TEST(Experiment, ZeroLoadLatencyIsSmall)
{
    double z = zeroLoadLatency(smallConfig(), 4);
    EXPECT_GT(z, 10.0);
    EXPECT_LT(z, 100.0);
}

TEST(Experiment, BaselineConfigDisablesPolicy)
{
    SystemConfig cfg = smallConfig();
    SystemConfig base = baselineConfig(cfg);
    EXPECT_TRUE(cfg.powerAware);
    EXPECT_FALSE(base.powerAware);
    EXPECT_EQ(base.meshX, cfg.meshX);
}

TEST(Experiment, PairedRunNormalizes)
{
    PairedResult r = runPaired(smallConfig(),
                               TrafficSpec::uniform(0.3, 4, 9),
                               quickProtocol());
    EXPECT_NEAR(r.baseline.normalizedPower, 1.0, 1e-9);
    EXPECT_LT(r.normalized.powerRatio, 1.0);
    EXPECT_GE(r.normalized.latencyRatio, 0.9);
    EXPECT_NEAR(r.normalized.plpRatio,
                r.normalized.latencyRatio * r.normalized.powerRatio,
                1e-9);
}

TEST(Experiment, FindSaturationRateBrackets)
{
    // On the tiny 2x2x2 mesh with 4-flit packets, saturation sits well
    // below 2 pkts/cycle and above 0.2.
    SystemConfig cfg = baselineConfig(smallConfig());
    RunProtocol p = quickProtocol();
    double sat = findSaturationRate(cfg, 4, 3.0, p);
    EXPECT_GT(sat, 0.2);
    EXPECT_LT(sat, 2.5);
}

TEST(Experiment, TimelineCapturesSeries)
{
    SystemConfig cfg = smallConfig();
    TrafficSpec spec =
        TrafficSpec::hotspot({{0, 0.1}, {3000, 1.0}, {6000, 0.1}});
    TimelineResult r = runTimeline(cfg, spec, 9000, 1000);
    ASSERT_EQ(r.normalizedPower.size(), 9u);
    ASSERT_EQ(r.offeredRate.size(), 9u);
    // Offered rate tracks the schedule.
    EXPECT_LT(r.offeredRate[0], 0.4);
    EXPECT_GT(r.offeredRate[4], 0.6);
    EXPECT_LT(r.offeredRate[8], 0.4);
    // Power is within physical bounds.
    for (double p : r.normalizedPower) {
        EXPECT_GT(p, 0.0);
        EXPECT_LE(p, 1.01);
    }
}

TEST(Experiment, TraceReplayThroughSystem)
{
    SystemConfig cfg = smallConfig();
    TraceData trace;
    for (Cycle t = 0; t < 500; t += 5)
        trace.push_back({t, static_cast<NodeId>(t % 8),
                         static_cast<NodeId>((t + 3) % 8), 4});
    RunProtocol p;
    p.warmup = 0;
    p.measure = 600;
    p.drainLimit = 5000;
    RunMetrics m =
        runExperiment(cfg, TrafficSpec::traceReplay(trace), p);
    EXPECT_EQ(m.packetsMeasured, trace.size());
    EXPECT_TRUE(m.drained);
}
