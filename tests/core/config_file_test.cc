/**
 * @file
 * Tests that the shipped config files in configs/ parse into the
 * intended SystemConfigs — guarding the documented user entry points.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "core/system_config.hh"

using namespace oenet;

namespace {

/** Locate the repo's configs/ directory from the test's run dir. */
std::string
configsDir()
{
    for (const char *prefix : {"../configs", "../../configs",
                               "../../../configs", "configs"}) {
        std::ifstream probe(std::string(prefix) +
                            "/paper_defaults.cfg");
        if (probe)
            return prefix;
    }
    return "";
}

} // namespace

TEST(ConfigFiles, PaperDefaultsMatchBuiltinDefaults)
{
    std::string dir = configsDir();
    if (dir.empty())
        GTEST_SKIP() << "configs/ not reachable from test run dir";
    Config raw;
    raw.loadFile(dir + "/paper_defaults.cfg");
    SystemConfig c = SystemConfig::fromConfig(raw);
    SystemConfig d; // built-in defaults
    EXPECT_EQ(c.meshX, d.meshX);
    EXPECT_EQ(c.clusterSize, d.clusterSize);
    EXPECT_EQ(c.numVcs, d.numVcs);
    EXPECT_EQ(c.bufferDepthPerPort, d.bufferDepthPerPort);
    EXPECT_EQ(c.scheme, d.scheme);
    EXPECT_DOUBLE_EQ(c.brMinGbps, d.brMinGbps);
    EXPECT_EQ(c.numLevels, d.numLevels);
    EXPECT_EQ(c.freqTransitionCycles, d.freqTransitionCycles);
    EXPECT_EQ(c.voltTransitionCycles, d.voltTransitionCycles);
    EXPECT_EQ(c.windowCycles, d.windowCycles);
    EXPECT_DOUBLE_EQ(c.policy.thLowUncongested,
                     d.policy.thLowUncongested);
    EXPECT_DOUBLE_EQ(c.policy.thHighCongested,
                     d.policy.thHighCongested);
    EXPECT_EQ(c.policy.slidingWindows, d.policy.slidingWindows);
}

TEST(ConfigFiles, AggressivePowerVariantParses)
{
    std::string dir = configsDir();
    if (dir.empty())
        GTEST_SKIP() << "configs/ not reachable from test run dir";
    Config raw;
    raw.loadFile(dir + "/aggressive_power.cfg");
    SystemConfig c = SystemConfig::fromConfig(raw);
    EXPECT_EQ(c.scheme, LinkScheme::kVcsel);
    EXPECT_DOUBLE_EQ(c.brMinGbps, 3.3);
    EXPECT_DOUBLE_EQ(c.policy.thHighUncongested, 0.65);
}

TEST(ConfigFiles, TestchipCalibrationLoads)
{
    std::string dir = configsDir();
    if (dir.empty())
        GTEST_SKIP() << "configs/ not reachable from test run dir";
    Config raw;
    raw.set("link.calibration", dir + "/testchip_example.cal");
    SystemConfig c = SystemConfig::fromConfig(raw);
    ASSERT_TRUE(c.measuredLevels.has_value());
    EXPECT_EQ(c.measuredLevels->numLevels(), 6);
    EXPECT_DOUBLE_EQ(c.measuredLevels->minBitRateGbps(), 5.1);
    EXPECT_DOUBLE_EQ(c.brMinGbps, 5.1);
    // The measured table must drive the network build.
    Network::Params p = c.networkParams();
    EXPECT_DOUBLE_EQ(p.levels.level(1).brGbps, 6.0);
}
