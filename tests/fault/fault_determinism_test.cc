/**
 * @file
 * Determinism of faulted sweeps under the parallel runner: a sweep
 * with corruption, lock loss, and a scripted kill must produce
 * byte-identical manifests and identical fault counters at any
 * --jobs value.
 */

#include <gtest/gtest.h>

#include "core/sweep_runner.hh"

using namespace oenet;

namespace {

std::vector<SweepPoint>
faultedSweep()
{
    RunProtocol protocol;
    protocol.warmup = 1000;
    protocol.measure = 4000;
    protocol.drainLimit = 4000;

    const double floors[] = {0.0, 1e-4, 1e-3};
    std::vector<SweepPoint> points;
    for (std::size_t fi = 0; fi < std::size(floors); fi++) {
        for (bool pa : {false, true}) {
            SweepPoint p;
            p.label = "floor=" + formatDouble(floors[fi] * 1e4, 1) +
                      "e-4" + (pa ? "/pa" : "/base");
            p.params = {{"ber_floor", floors[fi]},
                        {"pa", pa ? 1.0 : 0.0}};
            p.config.meshX = 2;
            p.config.meshY = 2;
            p.config.clusterSize = 2;
            p.config.windowCycles = 200;
            p.config.powerAware = pa;
            p.config.fault.enabled = true;
            p.config.fault.berFloor = floors[fi];
            p.config.fault.lockLossPerCycle = 1e-5;
            p.spec = TrafficSpec::uniform(0.5, 4);
            p.protocol = protocol;
            p.seedKey = fi; // pa/base pair shares streams
            points.push_back(std::move(p));
        }
    }
    // One point with a scripted mid-run hard failure.
    SweepPoint kill = points.front();
    kill.label = "killed";
    kill.params = {{"ber_floor", 0.0}, {"pa", 0.0}};
    kill.config.fault.killLink = 0;
    kill.config.fault.killCycle = 3000;
    kill.seedKey = std::size(floors);
    points.push_back(std::move(kill));
    return points;
}

SweepReport
runAt(int jobs)
{
    SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.baseSeed = 11;
    return SweepRunner(opts).run(faultedSweep());
}

} // namespace

TEST(FaultDeterminism, ManifestIdenticalAtAnyThreadCount)
{
    SweepReport serial = runAt(1);
    SweepReport parallel = runAt(3);
    EXPECT_EQ(sweepManifestJson("faulted", 11, serial.outcomes),
              sweepManifestJson("faulted", 11, parallel.outcomes));
}

TEST(FaultDeterminism, FaultCountersIdenticalAtAnyThreadCount)
{
    // The manifest's metric columns are frozen and exclude the fault
    // counters, so check those directly on the outcome records.
    SweepReport serial = runAt(1);
    SweepReport parallel = runAt(3);
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    bool sawFaults = false;
    for (std::size_t i = 0; i < serial.outcomes.size(); i++) {
        const RunMetrics &a = serial.outcomes[i].metrics;
        const RunMetrics &b = parallel.outcomes[i].metrics;
        EXPECT_EQ(a.flitsCorrupted, b.flitsCorrupted) << i;
        EXPECT_EQ(a.flitRetries, b.flitRetries) << i;
        EXPECT_EQ(a.lockLossEvents, b.lockLossEvents) << i;
        EXPECT_EQ(a.linkHardFailures, b.linkHardFailures) << i;
        EXPECT_EQ(a.flitsDroppedOnFail, b.flitsDroppedOnFail) << i;
        EXPECT_EQ(a.dvsClamps, b.dvsClamps) << i;
        sawFaults = sawFaults || a.flitsCorrupted > 0 ||
                    a.linkHardFailures > 0;
    }
    EXPECT_TRUE(sawFaults)
        << "the sweep must actually exercise the fault machinery";
}

TEST(FaultDeterminism, KilledPointRecordsTheFailure)
{
    SweepReport report = runAt(2);
    const SweepOutcome &killed = report.outcomes.back();
    ASSERT_EQ(killed.label, "killed");
    EXPECT_EQ(killed.metrics.linkHardFailures, 1);
    EXPECT_GT(killed.metrics.throughputFlitsPerCycle, 0.0);
}
