/**
 * @file
 * Link-layer reliability on a single OpticalLink: CRC-failure
 * retransmission, in-order delivery, lock-loss outages, hard failure,
 * and determinism of the whole machinery.
 */

#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "link/link.hh"

using namespace oenet;

namespace {

struct Pump
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link;
    FaultInjector injector;

    Pump(const FaultParams &fp, OpticalLink::Params lp = {})
        : link("pump", LinkKind::kInterRouter, levels, lp),
          injector(fp, 1)
    {
        link.setFault(&injector, 0);
    }

    /** Push @p total flits through the link, cycle by cycle, popping
     *  arrivals as they land. Returns (seq, cycle) of each arrival in
     *  pop order. */
    std::vector<std::pair<std::uint16_t, Cycle>>
    run(int total, Cycle horizon)
    {
        std::vector<std::pair<std::uint16_t, Cycle>> out;
        int sent = 0;
        for (Cycle now = 0; now < horizon; now++) {
            if (sent < total && link.canAccept(now)) {
                Flit f;
                f.packet = 1;
                f.seq = static_cast<std::uint16_t>(sent);
                f.len = static_cast<std::uint16_t>(total);
                link.accept(now, f);
                sent++;
            }
            while (link.hasArrival(now))
                out.emplace_back(link.popArrival(now).seq, now);
        }
        return out;
    }
};

FaultParams
corruptingParams(double ber_floor)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 99;
    p.berScale = 0.0; // isolate the floor from the margin physics
    p.berFloor = ber_floor;
    return p;
}

} // namespace

TEST(Retransmission, CleanLinkNeverRetries)
{
    Pump pump(corruptingParams(0.0));
    auto got = pump.run(200, 2000);
    EXPECT_EQ(got.size(), 200u);
    EXPECT_EQ(pump.link.flitsCorrupted(), 0u);
    EXPECT_EQ(pump.link.flitRetries(), 0u);
}

TEST(Retransmission, CorruptedFlitsAreReplayedInOrder)
{
    Pump pump(corruptingParams(0.01)); // ~15% per 16-bit flit
    const int total = 300;
    auto got = pump.run(total, 20000);

    ASSERT_EQ(got.size(), static_cast<std::size_t>(total))
        << "every flit must eventually be delivered";
    for (int i = 0; i < total; i++)
        EXPECT_EQ(got[static_cast<std::size_t>(i)].first, i)
            << "delivery must preserve wormhole flit order";
    EXPECT_GT(pump.link.flitsCorrupted(), 0u);
    EXPECT_GT(pump.link.flitRetries(), 0u);
    // Every corruption triggers exactly one replay attempt (a replay
    // may itself corrupt and retry again).
    EXPECT_EQ(pump.link.flitRetries(), pump.link.flitsCorrupted());
}

TEST(Retransmission, RetriesCostLatencyNotFlits)
{
    Pump clean(corruptingParams(0.0));
    Pump noisy(corruptingParams(0.02));
    auto a = clean.run(200, 30000);
    auto b = noisy.run(200, 30000);
    ASSERT_EQ(a.size(), 200u);
    ASSERT_EQ(b.size(), 200u);
    // Same flits delivered; the noisy link finishes strictly later.
    EXPECT_GT(b.back().second, a.back().second);
}

TEST(Retransmission, DeterministicAcrossRuns)
{
    auto once = []() {
        Pump pump(corruptingParams(0.01));
        auto got = pump.run(250, 20000);
        return std::make_tuple(got, pump.link.flitRetries(),
                               pump.link.flitsCorrupted());
    };
    auto a = once();
    auto b = once();
    EXPECT_EQ(std::get<0>(a), std::get<0>(b));
    EXPECT_EQ(std::get<1>(a), std::get<1>(b));
    EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(Retransmission, WindowRetriesResetAtBeginWindow)
{
    Pump pump(corruptingParams(0.02));
    (void)pump.run(300, 20000);
    EXPECT_GT(pump.link.windowRetries(), 0u);
    pump.link.beginWindow(20000);
    EXPECT_EQ(pump.link.windowRetries(), 0u);
    // The cumulative counter is untouched by the window reset.
    EXPECT_GT(pump.link.flitRetries(), 0u);
}

TEST(LockLoss, OutagesAreCountedAndRecovered)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 7;
    p.lockLossPerCycle = 0.005;
    p.lockLossOutageCycles = 25;
    Pump pump(p);
    auto got = pump.run(400, 40000);
    EXPECT_EQ(got.size(), 400u) << "outages delay, never drop";
    EXPECT_GT(pump.link.lockLossEvents(), 0u);
    for (std::size_t i = 0; i < got.size(); i++)
        ASSERT_EQ(got[i].first, static_cast<std::uint16_t>(i));
}

TEST(HardFail, KillDropsInFlightAndClosesTheLink)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 5;
    p.killLink = 0;
    p.killCycle = 40;
    OpticalLink::Params lp;
    lp.propagationCycles = 30; // keep flits in flight across the kill
    Pump pump(p, lp);

    int accepted = 0;
    for (Cycle now = 0; now < 39; now++) {
        if (pump.link.canAccept(now)) {
            Flit f;
            f.seq = static_cast<std::uint16_t>(accepted++);
            pump.link.accept(now, f);
        }
        while (pump.link.hasArrival(now))
            (void)pump.link.popArrival(now);
    }
    ASSERT_GT(pump.link.inFlight(), 0);

    // Touch the link past the kill cycle: the failure is discovered,
    // in-flight flits are gone, and the link never accepts again.
    EXPECT_FALSE(pump.link.canAccept(100));
    EXPECT_TRUE(pump.link.isFailed());
    EXPECT_EQ(pump.link.inFlight(), 0);
    EXPECT_GT(pump.link.flitsDroppedOnFail(), 0u);
    EXPECT_FALSE(pump.link.hasArrival(1000));
    EXPECT_FALSE(pump.link.canAccept(100000));
}

TEST(HardFail, FailedLinkReportsOffPower)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 5;
    p.killLink = 0;
    p.killCycle = 10;
    OpticalLink::Params lp;
    lp.offPowerMw = 1.25;
    Pump pump(p, lp);
    EXPECT_FALSE(pump.link.canAccept(50));
    EXPECT_DOUBLE_EQ(pump.link.powerMw(60), 1.25);
}
