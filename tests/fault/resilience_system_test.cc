/**
 * @file
 * Whole-system resilience: a 4x4 mesh with a hard-failed inter-router
 * link keeps delivering under west-first adaptive routing, fault
 * counters surface in RunMetrics, and faulted runs repeat
 * bit-identically.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

SystemConfig
meshConfig()
{
    SystemConfig c;
    c.meshX = 4;
    c.meshY = 4;
    c.clusterSize = 1;
    c.routing = RoutingAlgo::kWestFirst;
    c.powerAware = false;
    return c;
}

int
firstInterRouterLink(const SystemConfig &config)
{
    PoeSystem sys(config);
    for (std::size_t i = 0; i < sys.network().numLinks(); i++) {
        if (sys.network().linkSpec(i).kind == LinkKind::kInterRouter)
            return static_cast<int>(i);
    }
    return kInvalid;
}

RunMetrics
runFaulted(const SystemConfig &config, std::uint64_t seed)
{
    RunProtocol p;
    p.warmup = 2000;
    p.measure = 10000;
    p.drainLimit = 10000;
    return runExperiment(config, TrafficSpec::uniform(0.4, 4, seed), p);
}

} // namespace

TEST(Resilience, RoutesAroundHardFailedLink)
{
    SystemConfig c = meshConfig();
    int kill = firstInterRouterLink(c);
    ASSERT_NE(kill, kInvalid);
    c.fault.enabled = true;
    c.fault.killLink = kill;
    c.fault.killCycle = 5000; // mid-measurement

    RunMetrics m = runFaulted(c, 21);
    EXPECT_EQ(m.linkHardFailures, 1);
    EXPECT_GT(m.throughputFlitsPerCycle, 0.0)
        << "the mesh must keep delivering around the dead link";
    EXPECT_GT(m.packetsMeasured, 0u);
    // Traffic aimed at the dead port is discarded there, not wedged.
    EXPECT_GT(m.flitsDroppedDeadPort, 0u);
}

TEST(Resilience, NoFaultsMeansZeroFaultCounters)
{
    SystemConfig c = meshConfig();
    RunMetrics m = runFaulted(c, 21);
    EXPECT_EQ(m.linkHardFailures, 0);
    EXPECT_EQ(m.flitsCorrupted, 0u);
    EXPECT_EQ(m.flitRetries, 0u);
    EXPECT_EQ(m.lockLossEvents, 0u);
    EXPECT_EQ(m.flitsDroppedOnFail, 0u);
    EXPECT_EQ(m.flitsDroppedDeadPort, 0u);
    EXPECT_EQ(m.poisonedWormholes, 0u);
    EXPECT_EQ(m.dvsClamps, 0u);
    EXPECT_TRUE(m.drained);
}

TEST(Resilience, BerFloorCausesRetriesButDelivers)
{
    SystemConfig c = meshConfig();
    c.fault.enabled = true;
    c.fault.berFloor = 5e-4;
    RunMetrics m = runFaulted(c, 33);
    EXPECT_GT(m.flitsCorrupted, 0u);
    EXPECT_GT(m.flitRetries, 0u);
    EXPECT_TRUE(m.drained)
        << "transient corruption must never lose flits";
    EXPECT_GT(m.packetsMeasured, 0u);
}

TEST(Resilience, FaultedRunRepeatsBitIdentically)
{
    SystemConfig c = meshConfig();
    c.fault.enabled = true;
    c.fault.berFloor = 5e-4;
    c.fault.lockLossPerCycle = 1e-5;
    RunMetrics a = runFaulted(c, 13);
    RunMetrics b = runFaulted(c, 13);
    EXPECT_EQ(a.flitsCorrupted, b.flitsCorrupted);
    EXPECT_EQ(a.flitRetries, b.flitRetries);
    EXPECT_EQ(a.lockLossEvents, b.lockLossEvents);
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
}

TEST(Resilience, DifferentFaultSeedsDifferentHistories)
{
    SystemConfig c = meshConfig();
    c.fault.enabled = true;
    c.fault.berFloor = 5e-4;
    // Same traffic seed, different explicit fault seeds.
    c.fault.seed = 100;
    RunMetrics a = runFaulted(c, 13);
    c.fault.seed = 200;
    RunMetrics b = runFaulted(c, 13);
    EXPECT_NE(a.flitsCorrupted, b.flitsCorrupted);
}

TEST(Resilience, DvsClampHoldsLevelUnderErrors)
{
    // A power-aware run with an error floor past the clamp threshold:
    // the clamp must fire and keep links from scaling down into the
    // noise.
    SystemConfig c = meshConfig();
    c.powerAware = true;
    c.windowCycles = 500;
    c.fault.enabled = true;
    c.fault.berFloor = 4e-3; // ~6% flit error rate > 5% threshold
    RunMetrics m = runFaulted(c, 17);
    EXPECT_GT(m.dvsClamps, 0u);

    // Ablation: threshold 1.0 can never be exceeded, so no clamps.
    c.fault.clampErrorRate = 1.0;
    RunMetrics noclamp = runFaulted(c, 17);
    EXPECT_EQ(noclamp.dvsClamps, 0u);
    // Without the clamp the policy scales down more aggressively.
    EXPECT_LE(noclamp.avgPowerMw, m.avgPowerMw);
}
