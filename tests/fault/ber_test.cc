/**
 * @file
 * Q-factor BER model: calibration, monotonicity, flit error math.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "phy/ber.hh"

using namespace oenet;

TEST(Ber, NominalMarginGivesDesignBer)
{
    double ber = berFromMargin(1.0);
    // Calibrated point: margin 1.0 -> 1e-15 (erfc evaluation keeps a
    // few ulp of slack).
    EXPECT_NEAR(ber / kNominalBer, 1.0, 1e-6);
}

TEST(Ber, MonotoneDecreasingInMargin)
{
    double prev = 0.6;
    for (double m = 0.1; m <= 1.5; m += 0.1) {
        double ber = berFromMargin(m);
        EXPECT_LT(ber, prev) << "margin " << m;
        prev = ber;
    }
}

TEST(Ber, NoLightIsCoinFlip)
{
    EXPECT_DOUBLE_EQ(berFromMargin(0.0), 0.5);
    EXPECT_DOUBLE_EQ(berFromMargin(-1.0), 0.5);
}

TEST(Ber, MarginScalesWithLightAndRate)
{
    // Full light at full rate: margin 1.
    EXPECT_DOUBLE_EQ(opticalMargin(1.0, 10.0, 10.0), 1.0);
    // Half light at full rate: margin 0.5.
    EXPECT_DOUBLE_EQ(opticalMargin(0.5, 10.0, 10.0), 0.5);
    // Half light at half rate: the requirement halved too.
    EXPECT_DOUBLE_EQ(opticalMargin(0.5, 5.0, 10.0), 1.0);
    // Full light at reduced rate: margin above 1 (extra headroom).
    EXPECT_GT(opticalMargin(1.0, 5.0, 10.0), 1.0);
    // Degenerate rates.
    EXPECT_DOUBLE_EQ(opticalMargin(1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(opticalMargin(1.0, 10.0, 0.0), 0.0);
}

TEST(Ber, FlitErrorProbEdges)
{
    EXPECT_DOUBLE_EQ(flitErrorProb(0.0, 16), 0.0);
    EXPECT_DOUBLE_EQ(flitErrorProb(-1.0, 16), 0.0);
    // Coin-flip bits: 1 - 0.5^16.
    EXPECT_NEAR(flitErrorProb(0.5, 16), 1.0 - std::pow(0.5, 16),
                1e-12);
}

TEST(Ber, FlitErrorProbSmallBerIsLinear)
{
    // For tiny BER, P(flit error) ~ bits * BER.
    double p = flitErrorProb(1e-9, 16);
    EXPECT_NEAR(p, 16e-9, 1e-12);
    // And exact: 1 - (1-ber)^bits.
    double ber = 1e-3;
    EXPECT_NEAR(flitErrorProb(ber, 16),
                1.0 - std::pow(1.0 - ber, 16), 1e-12);
}

TEST(Ber, FlitErrorProbMonotoneInBits)
{
    EXPECT_LT(flitErrorProb(1e-4, 8), flitErrorProb(1e-4, 16));
    EXPECT_LT(flitErrorProb(1e-4, 16), flitErrorProb(1e-4, 32));
}
