/**
 * @file
 * CRC-16/CCITT-FALSE known-answer and flit-hash behavior.
 */

#include <gtest/gtest.h>

#include "fault/crc.hh"
#include "router/flit.hh"

using namespace oenet;

TEST(Crc16, KnownAnswerCheckString)
{
    // The standard CRC-16/CCITT-FALSE check value for "123456789".
    EXPECT_EQ(crc16("123456789", 9), 0x29B1);
}

TEST(Crc16, EmptyIsInit)
{
    EXPECT_EQ(crc16("", 0), 0xFFFF);
}

TEST(Crc16, SingleBitSensitivity)
{
    unsigned char a[4] = {0x12, 0x34, 0x56, 0x78};
    unsigned char b[4] = {0x12, 0x34, 0x56, 0x79};
    EXPECT_NE(crc16(a, 4), crc16(b, 4));
}

TEST(FlitCrc, EqualFlitsEqualCrc)
{
    Flit a;
    a.packet = 77;
    a.src = 3;
    a.dst = 9;
    a.seq = 2;
    a.len = 4;
    a.flags = Flit::kHeadFlag;
    Flit b = a;
    EXPECT_EQ(flitCrc(a), flitCrc(b));
}

TEST(FlitCrc, IdentityFieldsChangeCrc)
{
    Flit base;
    base.packet = 77;
    base.src = 3;
    base.dst = 9;
    base.seq = 2;
    base.len = 4;
    base.flags = Flit::kHeadFlag;

    Flit f = base;
    f.packet = 78;
    EXPECT_NE(flitCrc(f), flitCrc(base));
    f = base;
    f.src = 4;
    EXPECT_NE(flitCrc(f), flitCrc(base));
    f = base;
    f.dst = 10;
    EXPECT_NE(flitCrc(f), flitCrc(base));
    f = base;
    f.seq = 3;
    EXPECT_NE(flitCrc(f), flitCrc(base));
    f = base;
    f.flags = Flit::kTailFlag;
    EXPECT_NE(flitCrc(f), flitCrc(base));
}

TEST(FlitCrc, VcIsNotIdentity)
{
    // The VC is rewritten hop by hop; it must not perturb the CRC a
    // sender stamped.
    Flit a;
    a.packet = 5;
    a.vc = 0;
    Flit b = a;
    b.vc = 1;
    EXPECT_EQ(flitCrc(a), flitCrc(b));
}
