/**
 * @file
 * FaultInjector: deterministic per-link streams, scheduled-event
 * anchoring, scripted kills, and the VOA fault draw.
 */

#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"

using namespace oenet;

namespace {

FaultParams
baseParams()
{
    FaultParams p;
    p.enabled = true;
    p.seed = 12345;
    return p;
}

} // namespace

TEST(FaultInjector, SameSeedSameDraws)
{
    FaultParams p = baseParams();
    p.lockLossPerCycle = 1e-3;
    p.hardFailPerCycle = 1e-5;
    FaultInjector a(p, 4);
    FaultInjector b(p, 4);
    for (int link = 0; link < 4; link++) {
        EXPECT_EQ(a.peekLockLoss(link), b.peekLockLoss(link));
        EXPECT_EQ(a.hardFailAtCycle(link), b.hardFailAtCycle(link));
        for (int i = 0; i < 100; i++) {
            EXPECT_EQ(a.drawFlitCorrupt(link, 0.3),
                      b.drawFlitCorrupt(link, 0.3));
        }
    }
}

TEST(FaultInjector, LinksAreIndependentStreams)
{
    FaultParams p = baseParams();
    p.lockLossPerCycle = 1e-3;
    FaultInjector inj(p, 2);
    // Draining link 0's stream must not move link 1's scheduled events.
    Cycle before = inj.peekLockLoss(1);
    for (int i = 0; i < 1000; i++)
        (void)inj.drawFlitCorrupt(0, 0.5);
    EXPECT_EQ(inj.peekLockLoss(1), before);
}

TEST(FaultInjector, NoFaultsMeansNever)
{
    FaultInjector inj(baseParams(), 3);
    for (int link = 0; link < 3; link++) {
        EXPECT_EQ(inj.peekLockLoss(link), kNeverCycle);
        EXPECT_EQ(inj.hardFailAtCycle(link), kNeverCycle);
        EXPECT_FALSE(inj.drawFlitCorrupt(link, 0.0));
        EXPECT_EQ(inj.drawVoaFault(link), VoaFault::kClean);
    }
}

TEST(FaultInjector, ScriptedKillOverridesGeometric)
{
    FaultParams p = baseParams();
    p.killLink = 2;
    p.killCycle = 7777;
    FaultInjector inj(p, 4);
    EXPECT_EQ(inj.hardFailAtCycle(2), 7777u);
    EXPECT_EQ(inj.hardFailAtCycle(0), kNeverCycle);
    EXPECT_EQ(inj.hardFailAtCycle(1), kNeverCycle);
    EXPECT_EQ(inj.hardFailAtCycle(3), kNeverCycle);
}

TEST(FaultInjector, ConsumedLockLossAdvancesPastOutage)
{
    FaultParams p = baseParams();
    p.lockLossPerCycle = 0.05;
    p.lockLossOutageCycles = 100;
    FaultInjector inj(p, 1);
    Cycle prev = inj.peekLockLoss(0);
    ASSERT_NE(prev, kNeverCycle);
    for (int i = 0; i < 20; i++) {
        inj.consumeLockLoss(0);
        Cycle next = inj.peekLockLoss(0);
        ASSERT_NE(next, kNeverCycle);
        // The next event must clear the previous outage window
        // entirely — events cannot stack inside a relock.
        EXPECT_GT(next, prev + p.lockLossOutageCycles);
        prev = next;
    }
}

TEST(FaultInjector, CorruptDrawTracksProbability)
{
    FaultInjector inj(baseParams(), 1);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        hits += inj.drawFlitCorrupt(0, 0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(FaultInjector, VoaDrawSplitsLossAndDelay)
{
    FaultParams p = baseParams();
    p.voaDelayProb = 0.3;
    p.voaLossProb = 0.1;
    FaultInjector inj(p, 1);
    int lost = 0, delayed = 0, clean = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        switch (inj.drawVoaFault(0)) {
          case VoaFault::kLost:
            lost++;
            break;
          case VoaFault::kDelayed:
            delayed++;
            break;
          case VoaFault::kClean:
            clean++;
            break;
        }
    }
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.02);
    EXPECT_NEAR(static_cast<double>(delayed) / n, 0.3, 0.02);
    EXPECT_NEAR(static_cast<double>(clean) / n, 0.6, 0.02);
}
