/**
 * @file
 * Parameterized property sweeps: the fabric must deliver every flit
 * and settle cleanly across router microarchitectures (VC counts,
 * buffer depths), bit-rate ranges, schemes, and policies — the
 * combinations a user of the library is most likely to configure.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

SystemConfig
baseConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

/** Run a fixed load and assert conservation + drain. */
void
checkDelivery(SystemConfig cfg, double rate = 0.4)
{
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(rate, 4, 21), cfg));
    sys.startMeasurement();
    sys.run(8000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    ASSERT_TRUE(sys.awaitDrain(40000));
    sys.run(2000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
    EXPECT_GT(sys.metrics().packetsMeasured, 500u);
}

} // namespace

// ---------------------------------------------------------------------
// Router microarchitecture sweep: (numVcs, bufferDepthPerPort).
// ---------------------------------------------------------------------

class RouterGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RouterGeometrySweep, DeliversAndDrains)
{
    SystemConfig cfg = baseConfig();
    cfg.numVcs = std::get<0>(GetParam());
    cfg.bufferDepthPerPort = std::get<1>(GetParam());
    checkDelivery(cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RouterGeometrySweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(8, 16, 32)));

// ---------------------------------------------------------------------
// Link configuration sweep: (scheme, brMin, levels).
// ---------------------------------------------------------------------

class LinkConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>>
{
};

TEST_P(LinkConfigSweep, DeliversAndDrains)
{
    SystemConfig cfg = baseConfig();
    cfg.scheme = std::get<0>(GetParam()) == 0 ? LinkScheme::kVcsel
                                              : LinkScheme::kModulator;
    cfg.brMinGbps = std::get<1>(GetParam());
    cfg.numLevels = std::get<2>(GetParam());
    checkDelivery(cfg);
}

INSTANTIATE_TEST_SUITE_P(
    LinkConfigs, LinkConfigSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(3.3, 5.0),
                       ::testing::Values(2, 4, 6)));

// ---------------------------------------------------------------------
// Policy sweep across packet sizes.
// ---------------------------------------------------------------------

class PolicyPacketSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PolicyPacketSweep, DeliversAndDrains)
{
    SystemConfig cfg = baseConfig();
    switch (std::get<0>(GetParam())) {
      case 0:
        cfg.policyMode = PolicyMode::kDvs;
        break;
      case 1:
        cfg.policyMode = PolicyMode::kProportional;
        break;
      case 2:
        cfg.policyMode = PolicyMode::kOnOff;
        break;
      case 3:
        cfg.policyMode = PolicyMode::kStatic;
        cfg.staticLevel = 0;
        break;
    }
    int packet_len = std::get<1>(GetParam());

    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(
        TrafficSpec::uniform(0.2, packet_len, 23), cfg));
    sys.startMeasurement();
    sys.run(8000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    ASSERT_TRUE(sys.awaitDrain(60000));
    sys.run(2000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyPacketSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 4, 16, 48)));

// ---------------------------------------------------------------------
// Transition-delay sweep: extreme T_br / T_v must never lose flits.
// ---------------------------------------------------------------------

class TransitionDelaySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TransitionDelaySweep, DeliversAndDrains)
{
    SystemConfig cfg = baseConfig();
    cfg.freqTransitionCycles =
        static_cast<Cycle>(std::get<0>(GetParam()));
    cfg.voltTransitionCycles =
        static_cast<Cycle>(std::get<1>(GetParam()));
    cfg.windowCycles = 150; // transition churn
    checkDelivery(cfg, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Delays, TransitionDelaySweep,
    ::testing::Combine(::testing::Values(0, 20, 200),
                       ::testing::Values(0, 100, 500)));

// ---------------------------------------------------------------------
// Mesh shape sweep, including non-square and single-row meshes.
// ---------------------------------------------------------------------

class MeshShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MeshShapeSweep, DeliversAndDrains)
{
    SystemConfig cfg = baseConfig();
    cfg.meshX = std::get<0>(GetParam());
    cfg.meshY = std::get<1>(GetParam());
    cfg.clusterSize = std::get<2>(GetParam());
    checkDelivery(cfg, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 4),
                      std::make_tuple(4, 1, 2),
                      std::make_tuple(1, 4, 2),
                      std::make_tuple(3, 2, 3),
                      std::make_tuple(4, 4, 1),
                      std::make_tuple(2, 2, 8)));
