/**
 * @file
 * Full-system delivery and drain across every pluggable fabric. Each
 * topology runs under uniform random and hotspot traffic through the
 * real five-stage routers, credit flow control, and power policy; the
 * system must deliver every injected flit and drain to empty. For the
 * torus this exercises the dateline VC classes (a deadlock would show
 * up as a drain timeout); for the fat-tree it exercises up/down
 * routing the same way.
 */
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/poe_system.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig(TopologyKind kind)
{
    SystemConfig cfg;
    cfg.topology = kind;
    cfg.windowCycles = 200;
    switch (kind) {
      case TopologyKind::kMesh:
      case TopologyKind::kTorus:
        cfg.meshX = 4;
        cfg.meshY = 4;
        cfg.clusterSize = 2;
        break;
      case TopologyKind::kCMesh:
        cfg.meshX = 3;
        cfg.meshY = 3;
        cfg.clusterSize = 4; // 2x2 tile blocks
        break;
      case TopologyKind::kFatTree:
        cfg.fatTreeArity = 4; // 16 nodes, 20 switches
        break;
    }
    return cfg;
}

void
runAndExpectDrain(const SystemConfig &cfg, const TrafficSpec &spec)
{
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(spec, cfg));
    sys.startMeasurement();
    sys.run(10000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    ASSERT_TRUE(sys.awaitDrain(60000)) << "fabric failed to drain";
    Network &net = sys.network();
    EXPECT_GT(net.flitsInjected(), 0u);
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
}

class TopologySystemSweep
    : public ::testing::TestWithParam<TopologyKind>
{
};

} // namespace

TEST_P(TopologySystemSweep, UniformDeliversAndDrains)
{
    SystemConfig cfg = smallConfig(GetParam());
    runAndExpectDrain(cfg, TrafficSpec::uniform(0.5, 4, 29));
}

TEST_P(TopologySystemSweep, HotspotDeliversAndDrains)
{
    SystemConfig cfg = smallConfig(GetParam());
    // Load skewed toward one node stresses a single ejection port and
    // the tree links above it.
    TrafficSpec spec = TrafficSpec::hotspot({{0, 0.4}}, 4, 31);
    spec.hotNode = 5;
    spec.hotWeight = 8;
    runAndExpectDrain(cfg, spec);
}

TEST_P(TopologySystemSweep, SaturatingBurstStillDrains)
{
    // Overdrive the fabric past saturation, then stop injecting: a
    // deadlock-free fabric always empties once sources go quiet.
    SystemConfig cfg = smallConfig(GetParam());
    runAndExpectDrain(cfg, TrafficSpec::uniform(2.0, 4, 37));
}

INSTANTIATE_TEST_SUITE_P(
    AllFabrics, TopologySystemSweep,
    ::testing::Values(TopologyKind::kMesh, TopologyKind::kTorus,
                      TopologyKind::kCMesh, TopologyKind::kFatTree),
    [](const ::testing::TestParamInfo<TopologyKind> &info) {
        return topologyKindName(info.param);
    });

TEST(TopologySystem, TorusYxRoutingAlsoDrains)
{
    // The dateline VC discipline must hold for YX dimension order too.
    SystemConfig cfg = smallConfig(TopologyKind::kTorus);
    cfg.routing = RoutingAlgo::kYX;
    runAndExpectDrain(cfg, TrafficSpec::uniform(0.6, 4, 41));
}

TEST(TopologySystem, TorusDeterministicAcrossElisionModes)
{
    // Wrap links and dateline VCs must not perturb the idle-elision
    // equivalence guarantee.
    RunMetrics m[2];
    for (int pass = 0; pass < 2; pass++) {
        SystemConfig cfg = smallConfig(TopologyKind::kTorus);
        cfg.idleElision = (pass == 1);
        PoeSystem sys(cfg);
        sys.setTraffic(
            makeTraffic(TrafficSpec::uniform(0.5, 4, 43), cfg));
        sys.startMeasurement();
        sys.run(5000);
        sys.stopMeasurement();
        sys.setTraffic(nullptr);
        ASSERT_TRUE(sys.awaitDrain(60000));
        m[pass] = sys.metrics();
    }
    EXPECT_EQ(m[0].packetsInjected, m[1].packetsInjected);
    EXPECT_EQ(m[0].packetsEjected, m[1].packetsEjected);
    EXPECT_DOUBLE_EQ(m[0].avgLatency, m[1].avgLatency);
    EXPECT_DOUBLE_EQ(m[0].avgPowerMw, m[1].avgPowerMw);
}
