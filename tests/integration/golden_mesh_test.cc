/**
 * @file
 * Golden-output regression for the topology redesign: the paper's 8x8
 * mesh must produce byte-identical traces and metrics to the
 * pre-redesign implementation. Every trace event and the final run
 * metrics are folded into one FNV-1a fingerprint; the expected values
 * were recorded against the seed build, so any change to link
 * enumeration order, link names, routing decisions, VC allocation, or
 * power accounting shows up as a hash mismatch.
 *
 * If one of these tests fails, the mesh fast path is no longer
 * bit-compatible with published results — that is a bug, not a test to
 * update. Only a deliberate, documented output-format change may
 * re-record the constants.
 *
 * Re-recorded once for the sharded kernel (docs/DETERMINISM.md): the
 * phased step canonicalizes per-cycle trace order — link transitions
 * flush before packet retires within a cycle — so the event *stream*
 * permuted while every CSV, manifest, and metric stayed byte-identical
 * (CI's golden fig5 CSV compare pinned that). The constants are
 * shard-count- and elision-invariant; sharded_kernel_test.cc holds the
 * grid to them.
 */
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/poe_system.hh"
#include "fault/fault_injector.hh"

using namespace oenet;

namespace {

struct HashSink final : public TraceSink
{
    std::uint64_t h = 1469598103934665603ull;

    void mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    void mixD(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
    void mixS(const char *s)
    {
        while (*s) {
            h ^= static_cast<unsigned char>(*s++);
            h *= 1099511628211ull;
        }
    }

    void beginRun(const std::vector<TraceLinkInfo> &links) override
    {
        mix(links.size());
        for (const auto &l : links) {
            mix(static_cast<std::uint64_t>(l.id));
            mixS(l.name.c_str());
            mixS(l.kind);
        }
    }
    void linkTransition(const LinkTransitionEvent &e) override
    {
        mix(e.startedAt);
        mix(e.completedAt);
        mix(static_cast<std::uint64_t>(e.linkId));
        mix(static_cast<std::uint64_t>(e.fromLevel));
        mix(static_cast<std::uint64_t>(e.toLevel));
        mixS(e.type);
    }
    void dvsDecision(const DvsDecisionEvent &e) override
    {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.linkId));
        mixD(e.lu);
        mixD(e.avgLu);
        mixD(e.bu);
        mixD(e.thLow);
        mixD(e.thHigh);
        mixS(e.decision);
        mix(e.backlogEscalated ? 1 : 0);
        mix(e.downgradeVetoed ? 1 : 0);
        mix(static_cast<std::uint64_t>(e.level));
    }
    void laserEvent(const LaserTraceEvent &e) override
    {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.linkId));
        mixS(e.action);
        mix(static_cast<std::uint64_t>(e.fromLevel));
        mix(static_cast<std::uint64_t>(e.toLevel));
    }
    void packetRetire(const PacketRetireEvent &e) override
    {
        mix(e.at);
        mix(e.packet);
        mix(e.src);
        mix(e.dst);
        mix(e.createdAt);
        mix(e.latency);
        mix(static_cast<std::uint64_t>(e.lenFlits));
    }
    void faultEvent(const FaultEvent &e) override
    {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.linkId));
        mixS(e.kind);
        mix(static_cast<std::uint64_t>(e.attempts));
        mixD(e.aux);
    }
    void powerSnapshot(const PowerSnapshotEvent &e) override
    {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.numKinds));
        for (int i = 0; i < e.numKinds; i++) {
            mixS(e.kinds[i].kind);
            mix(static_cast<std::uint64_t>(e.kinds[i].count));
            mixD(e.kinds[i].powerMw);
            mixD(e.kinds[i].baselineMw);
            mixD(e.kinds[i].meanLevel);
            mix(e.kinds[i].totalFlits);
        }
        mixD(e.totalPowerMw);
        mixD(e.baselinePowerMw);
        mixD(e.normalizedPower);
    }
};

std::uint64_t
fingerprintRun(const SystemConfig &cfg, double rate, std::uint64_t seed)
{
    HashSink sink;
    {
        PoeSystem sys(cfg);
        sys.setTraceSink(&sink, 500);
        sys.setTraffic(makeTraffic(TrafficSpec::uniform(rate, 4, seed),
                                   cfg));
        sys.run(1000);
        sys.startMeasurement();
        sys.run(3000);
        sys.stopMeasurement();
        sys.setTraffic(nullptr);
        sys.awaitDrain(20000);
        RunMetrics m = sys.metrics();
        sink.mixD(m.avgLatency);
        sink.mixD(m.p95Latency);
        sink.mixD(m.avgPowerMw);
        sink.mixD(m.normalizedPower);
        sink.mixD(m.throughputFlitsPerCycle);
        sink.mix(m.packetsInjected);
        sink.mix(m.packetsEjected);
        sink.mix(m.transitions);
        sink.mix(m.flitsDroppedDeadPort);
        sink.mix(m.poisonedWormholes);
        sys.setTraceSink(nullptr);
    }
    return sink.h;
}

} // namespace

TEST(GoldenMesh, PaperDefaultsMatchPreRedesignBytes)
{
    // 8x8 mesh, 8 nodes per rack, DVS policy — the paper configuration.
    SystemConfig paper;
    EXPECT_EQ(fingerprintRun(paper, 2.0, 7), 0xe2d9530371ba8045ull);
}

TEST(GoldenMesh, WestFirstSmallMeshMatchesPreRedesignBytes)
{
    SystemConfig wf;
    wf.meshX = 4;
    wf.meshY = 4;
    wf.clusterSize = 4;
    wf.routing = RoutingAlgo::kWestFirst;
    wf.windowCycles = 200;
    EXPECT_EQ(fingerprintRun(wf, 1.0, 11), 0x6f8215ec8c6e58e8ull);
}

TEST(GoldenMesh, FaultRerouteMatchesPreRedesignBytes)
{
    // Scripted inter-router link kill exercises the route-around path.
    SystemConfig fk;
    fk.meshX = 4;
    fk.meshY = 4;
    fk.clusterSize = 2;
    fk.routing = RoutingAlgo::kWestFirst;
    fk.windowCycles = 200;
    fk.fault.enabled = true;
    fk.fault.killLink = 70; // an inter-router link on the 4x4x2 system
    fk.fault.killCycle = 1500;
    fk.fault.orphanTimeoutCycles = 300;
    EXPECT_EQ(fingerprintRun(fk, 0.8, 13), 0x61cd1d1fcc437c54ull);
}
