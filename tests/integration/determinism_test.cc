/**
 * @file
 * Reproducibility: identical configuration and seed must give
 * bit-identical results — the property every debugging and sweep
 * workflow in this repo leans on.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

RunMetrics
once(std::uint64_t seed)
{
    RunProtocol p;
    p.warmup = 2000;
    p.measure = 8000;
    return runExperiment(smallConfig(),
                         TrafficSpec::uniform(0.6, 4, seed), p);
}

} // namespace

TEST(Determinism, IdenticalSeedsIdenticalResults)
{
    RunMetrics a = once(42);
    RunMetrics b = once(42);
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
}

TEST(Determinism, DifferentSeedsDifferentTraffic)
{
    RunMetrics a = once(1);
    RunMetrics b = once(2);
    EXPECT_NE(a.packetsMeasured, b.packetsMeasured);
}

TEST(Determinism, TimelineReproducible)
{
    SystemConfig cfg = smallConfig();
    TrafficSpec spec = TrafficSpec::hotspot({{0, 0.2}, {2000, 0.8}});
    TimelineResult a = runTimeline(cfg, spec, 6000, 1000);
    TimelineResult b = runTimeline(cfg, spec, 6000, 1000);
    ASSERT_EQ(a.normalizedPower.size(), b.normalizedPower.size());
    for (std::size_t i = 0; i < a.normalizedPower.size(); i++) {
        EXPECT_DOUBLE_EQ(a.normalizedPower[i], b.normalizedPower[i]);
        EXPECT_DOUBLE_EQ(a.offeredRate[i], b.offeredRate[i]);
    }
}

TEST(Determinism, SplashTraceRunsReproducible)
{
    SystemConfig cfg = smallConfig();
    SplashSynthParams sp;
    sp.kind = SplashKind::kRadix;
    sp.numNodes = cfg.numNodes();
    sp.duration = 8000;
    sp.seed = 99;
    TraceData trace = generateSplashTrace(sp);
    RunProtocol p;
    p.warmup = 0;
    p.measure = 8000;
    RunMetrics a =
        runExperiment(cfg, TrafficSpec::traceReplay(trace), p);
    RunMetrics b =
        runExperiment(cfg, TrafficSpec::traceReplay(trace), p);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
}
