/**
 * @file
 * End-to-end tests at the paper's full 64-rack scale: delivery,
 * latency sanity, and the headline power-saving behaviour.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

TEST(EndToEnd, FullScaleLightLoadDeliversEverything)
{
    SystemConfig cfg; // 8x8x8 paper system
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.5, 4, 1), cfg));
    sys.run(3000);
    sys.startMeasurement();
    sys.run(10000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr); // stop the source before draining
    ASSERT_TRUE(sys.awaitDrain(30000));
    sys.run(5000);
    RunMetrics m = sys.metrics();
    EXPECT_GT(m.packetsMeasured, 4000u);
    EXPECT_TRUE(m.drained);
    EXPECT_EQ(sys.network().flitsInSystem(), 0u);
}

TEST(EndToEnd, PowerAwareSavesSubstantiallyAtLightLoad)
{
    // The headline claim: > 75% power saving on low-variance light
    // traffic with bounded latency cost.
    SystemConfig cfg;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 30000;
    PairedResult r =
        runPaired(cfg, TrafficSpec::uniform(1.25, 4, 2), p);
    EXPECT_LT(r.normalized.powerRatio, 0.30);
    EXPECT_LT(r.normalized.latencyRatio, 2.0);
    EXPECT_GT(r.normalized.latencyRatio, 0.95);
}

TEST(EndToEnd, VcselSchemeSlightlyBeatsModulator)
{
    // Fig. 6(d): VCSEL power-aware links scale with V^2*BR on the
    // transmitter and so save a bit more.
    RunProtocol p;
    p.warmup = 12000;
    p.measure = 20000;
    SystemConfig mod;
    mod.scheme = LinkScheme::kModulator;
    SystemConfig vcsel;
    vcsel.scheme = LinkScheme::kVcsel;
    TrafficSpec spec = TrafficSpec::uniform(2.0, 4, 3);
    PairedResult rm = runPaired(mod, spec, p);
    PairedResult rv = runPaired(vcsel, spec, p);
    EXPECT_LT(rv.normalized.powerRatio, rm.normalized.powerRatio);
}

TEST(EndToEnd, HotspotScheduleTracked)
{
    // The network must follow rate swings: power in the quiet phase is
    // clearly below power in the busy phase.
    SystemConfig cfg;
    cfg.windowCycles = 1000;
    TrafficSpec spec = TrafficSpec::hotspot(
        {{0, 0.3}, {20000, 4.0}, {40000, 0.3}}, 4, 4);
    // Measurement starts after an 8k warmup, so bins are offset by
    // 8000 cycles against the phase schedule: bin 0 = [8k,13k) quiet,
    // bin 4 = [28k,33k) deep inside the busy phase, bin 10 = [58k,63k)
    // well after the back-off.
    TimelineResult r = runTimeline(cfg, spec, 60000, 5000, 8000);
    ASSERT_EQ(r.normalizedPower.size(), 12u);
    double quiet = r.normalizedPower[0];
    double busy = r.normalizedPower[4];
    double quiet2 = r.normalizedPower[10];
    // Most links are lightly-used injection/ejection fibers that stay
    // at the bottom rate throughout, so the aggregate swing is modest
    // but must be clearly present and reversible.
    EXPECT_GT(busy, quiet * 1.12);
    EXPECT_LT(quiet2, busy * 0.95);
}

TEST(EndToEnd, SaturationThroughputNotHurtBy5To10Range)
{
    // Fig. 5(g): the 5-10 Gb/s power-aware network saturates with the
    // non-power-aware one (we check it sustains the same heavy load).
    RunProtocol p;
    p.warmup = 10000;
    p.measure = 20000;
    SystemConfig pa;
    SystemConfig base = baselineConfig(pa);
    double rate = 4.0;
    RunMetrics mp =
        runExperiment(pa, TrafficSpec::uniform(rate, 4, 5), p);
    RunMetrics mb =
        runExperiment(base, TrafficSpec::uniform(rate, 4, 5), p);
    // Table 1's congestion-adaptive thresholds deliberately hold lower
    // bit rates when queueing masks the latency, so the power-aware
    // network gives up a modest slice of deep-saturation throughput;
    // the paper's Fig. 5(g) shows the same saturation point within
    // reading accuracy. Require at least 80%.
    EXPECT_GT(mp.throughputFlitsPerCycle,
              0.80 * mb.throughputFlitsPerCycle);
}
