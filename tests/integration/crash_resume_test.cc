/**
 * @file
 * Crash-and-resume integration test, the tentpole acceptance check:
 * run a journaled sweep in a forked child, SIGKILL it roughly halfway
 * (by watching the journal grow), resume in this process, and require
 * the final manifest to be byte-identical to an uninterrupted run's.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/stats.hh"
#include "core/sweep_journal.hh"
#include "core/sweep_runner.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

std::vector<SweepPoint>
sweepPoints()
{
    const double rates[] = {0.3, 0.5, 0.7, 0.9};
    RunProtocol protocol;
    protocol.warmup = 1000;
    protocol.measure = 4000;
    protocol.drainLimit = 4000;

    std::vector<SweepPoint> points;
    for (std::size_t ri = 0; ri < std::size(rates); ri++) {
        for (bool pa : {true, false}) {
            SweepPoint p;
            p.label = "rate=" + formatDouble(rates[ri], 1) +
                      (pa ? "/pa" : "/base");
            p.params = {{"rate", rates[ri]}, {"pa", pa ? 1.0 : 0.0}};
            p.config = smallConfig();
            p.config.powerAware = pa;
            p.spec = TrafficSpec::uniform(rates[ri], 4);
            p.protocol = protocol;
            p.seedKey = ri;
            points.push_back(std::move(p));
        }
    }
    return points;
}

std::size_t
journalLineCount(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::size_t lines = 0;
    std::string line;
    while (std::getline(in, line))
        lines++;
    return lines;
}

} // namespace

TEST(CrashResume, KilledSweepResumesToIdenticalManifest)
{
    const std::string path = "crash_resume_test.jsonl";
    std::remove(path.c_str());
    std::vector<SweepPoint> points = sweepPoints();

    SweepRunner::Options opts;
    opts.jobs = 2;
    opts.baseSeed = 21;

    // The reference: the same sweep, uninterrupted, no journal.
    SweepReport uninterrupted = SweepRunner(opts).run(points);
    ASSERT_TRUE(uninterrupted.allOk());
    const std::string want =
        sweepManifestJson("crash_resume", 21, uninterrupted.outcomes);

    // Child: run the journaled sweep; each point's real simulation is
    // long enough (Debug, ~tens of ms) that the parent can catch the
    // journal mid-growth. The child never exits this test's gtest
    // machinery — it _exit()s straight after the sweep.
    pid_t child = fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
        SweepRunner::Options jopts = opts;
        jopts.journalPath = path;
        SweepRunner(jopts).run(points);
        _exit(0);
    }

    // Parent: wait for header + ~half the records, then SIGKILL.
    const std::size_t killAt = 1 + points.size() / 2;
    bool killed = false;
    for (int spins = 0; spins < 30000; spins++) {
        if (journalLineCount(path) >= killAt) {
            kill(child, SIGKILL);
            killed = true;
            break;
        }
        int status = 0;
        if (waitpid(child, &status, WNOHANG) == child) {
            // Child outran us and finished cleanly — resume will
            // replay everything; the byte-compare below still holds.
            child = -1;
            break;
        }
        usleep(1000);
    }
    if (child > 0) {
        if (!killed)
            kill(child, SIGKILL);
        int status = 0;
        waitpid(child, &status, 0);
    }
    ASSERT_GE(journalLineCount(path), 1u) << "no journal ever appeared";

    // The journal must replay: every record that made it in is valid
    // (fsync'd line by line; at most the tail is torn).
    SweepJournal::Loaded loaded = SweepJournal::load(path);
    ASSERT_TRUE(loaded.hasHeader);
    EXPECT_EQ(loaded.header.baseSeed, 21u);
    EXPECT_EQ(loaded.header.points, points.size());

    // Resume in-process and byte-compare against the reference.
    SweepRunner::Options ropts = opts;
    ropts.journalPath = path;
    ropts.resume = true;
    SweepReport resumed = SweepRunner(ropts).run(points);
    EXPECT_EQ(resumed.resumedPoints, loaded.outcomes.size());
    EXPECT_EQ(sweepManifestJson("crash_resume", 21, resumed.outcomes),
              want)
        << "resumed manifest differs from the uninterrupted run";

    // And the journal is now complete: a second resume replays all
    // points without running anything.
    SweepReport replayed = SweepRunner(ropts).run(points);
    EXPECT_EQ(replayed.resumedPoints, points.size());
    EXPECT_EQ(sweepManifestJson("crash_resume", 21, replayed.outcomes),
              want);

    std::remove(path.c_str());
}

TEST(CrashResume, ResumeAcrossDifferentJobCounts)
{
    // A sweep journaled at --jobs 2 must resume byte-identically at
    // --jobs 1 (and vice versa): records are keyed by point index and
    // seeds derive from (baseSeed, seedKey), never from scheduling.
    const std::string path = "crash_resume_jobs_test.jsonl";
    std::remove(path.c_str());
    std::vector<SweepPoint> points = sweepPoints();

    SweepRunner::Options opts;
    opts.jobs = 2;
    opts.baseSeed = 33;
    opts.journalPath = path;
    SweepReport first = SweepRunner(opts).run(points);
    ASSERT_TRUE(first.allOk());

    // Truncate to header + 3 records, as a kill after 3 points would.
    {
        std::ifstream in(path, std::ios::binary);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::size_t pos = 0;
        for (int nl = 0; nl < 4; pos++) {
            if (all[pos] == '\n')
                nl++;
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(), static_cast<std::streamsize>(pos));
    }

    SweepRunner::Options ropts = opts;
    ropts.jobs = 1;
    ropts.resume = true;
    SweepReport resumed = SweepRunner(ropts).run(points);
    EXPECT_EQ(resumed.resumedPoints, 3u);
    EXPECT_EQ(sweepManifestJson("j", 33, first.outcomes),
              sweepManifestJson("j", 33, resumed.outcomes));
    std::remove(path.c_str());
}
