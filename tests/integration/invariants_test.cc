/**
 * @file
 * System invariants under stress: flit conservation across bit-rate
 * transitions, credit sanity, power bounds, and optical-band safety.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

SystemConfig
stressConfig()
{
    // Small mesh + tiny window = maximal transition churn.
    SystemConfig c;
    c.meshX = 3;
    c.meshY = 3;
    c.clusterSize = 2;
    c.windowCycles = 100;
    c.policy.slidingWindows = 1;
    return c;
}

} // namespace

TEST(Invariants, NoFlitLossAcrossManyTransitions)
{
    SystemConfig cfg = stressConfig();
    PoeSystem sys(cfg);
    // Strongly oscillating load forces constant up/down transitions.
    std::vector<RatePhase> phases;
    for (Cycle t = 0; t < 40000; t += 2000)
        phases.push_back({t, (t / 2000) % 2 == 0 ? 0.05 : 0.6});
    TrafficSpec spec = TrafficSpec::hotspot(phases, 4, 7);
    spec.hotNode = 5;
    sys.setTraffic(makeTraffic(spec, cfg));
    sys.startMeasurement();
    sys.run(42000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr); // stop the source so the fabric can empty
    ASSERT_TRUE(sys.awaitDrain(120000));

    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
    // The policy must actually have exercised transitions.
    RunMetrics m = sys.metrics();
    EXPECT_GT(m.transitions, 50u);
}

TEST(Invariants, PowerAlwaysWithinPhysicalBounds)
{
    SystemConfig cfg = stressConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(
        TrafficSpec::hotspot({{0, 0.1}, {5000, 1.0}, {10000, 0.1}}, 4,
                             8),
        cfg));
    double min_power = 1e18, max_power = 0.0;
    for (int i = 0; i < 150; i++) {
        sys.run(100);
        double p = sys.normalizedPowerNow();
        min_power = std::min(min_power, p);
        max_power = std::max(max_power, p);
    }
    EXPECT_GT(min_power, 0.0);
    EXPECT_LE(max_power, 1.0 + 1e-9);
}

TEST(Invariants, LinkLevelsAlwaysWithinTable)
{
    SystemConfig cfg = stressConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.8, 4, 9), cfg));
    for (int i = 0; i < 100; i++) {
        sys.run(200);
        Network &net = sys.network();
        for (std::size_t l = 0; l < net.numLinks(); l++) {
            int level = net.link(l).currentLevel();
            EXPECT_GE(level, 0);
            EXPECT_LE(level, net.levels().maxLevel());
        }
    }
}

TEST(Invariants, TriLevelNeverRunsFasterThanLight)
{
    SystemConfig cfg = stressConfig();
    cfg.scheme = LinkScheme::kModulator;
    cfg.opticalMode = OpticalMode::kTriLevel;
    cfg.laser.responseCycles = 1000;
    cfg.laser.decisionEpochCycles = 2000;
    PoeSystem sys(cfg);
    std::vector<RatePhase> phases;
    for (Cycle t = 0; t < 60000; t += 3000)
        phases.push_back({t, (t / 3000) % 2 == 0 ? 0.05 : 1.2});
    TrafficSpec spec = TrafficSpec::hotspot(phases, 4, 10);
    spec.hotNode = 3;
    sys.setTraffic(makeTraffic(spec, cfg));
    for (int i = 0; i < 300; i++) {
        sys.run(200);
        Network &net = sys.network();
        for (std::size_t l = 0; l < net.numLinks(); l++) {
            OpticalLink &link = net.link(l);
            double scale = link.opticalScale();
            OpticalLevel level = scale >= 0.99
                                     ? OpticalLevel::kHigh
                                     : (scale >= 0.49
                                            ? OpticalLevel::kMid
                                            : OpticalLevel::kLow);
            EXPECT_LE(link.currentBitRateGbps(),
                      maxBitRateForLevel(level) + 1e-9)
                << link.name() << " at " << sys.now();
        }
    }
}

TEST(Invariants, DrainAfterSourceStops)
{
    // Whatever the policy state, stopping the source must empty the
    // network (no livelock from transitions).
    SystemConfig cfg = stressConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(1.2, 8, 11), cfg));
    sys.startMeasurement();
    sys.run(15000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    sys.run(30000);
    EXPECT_EQ(sys.network().flitsInSystem(), 0u);
}

TEST(Invariants, OnOffNeverLosesFlits)
{
    SystemConfig cfg = stressConfig();
    cfg.policyMode = PolicyMode::kOnOff;
    PoeSystem sys(cfg);
    std::vector<RatePhase> phases;
    for (Cycle t = 0; t < 30000; t += 3000)
        phases.push_back({t, (t / 3000) % 2 == 0 ? 0.0 : 0.8});
    // Rate 0 phases let links sleep; bursts must wake them without
    // losing anything.
    TrafficSpec spec = TrafficSpec::hotspot(
        [&] {
            // HotspotTraffic requires positive-rate schedule entries;
            // use a tiny epsilon for the quiet phases.
            for (auto &ph : phases)
                if (ph.rate == 0.0)
                    ph.rate = 0.001;
            return phases;
        }(),
        4, 12);
    spec.hotNode = 1;
    sys.setTraffic(makeTraffic(spec, cfg));
    sys.run(32000);
    sys.setTraffic(nullptr);
    sys.run(20000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
}
