/**
 * @file
 * Shard-count invariance: the sharded kernel must produce the same
 * bytes as the single-shard reference — same trace event stream, same
 * metrics — at every shard count, with idle elision on or off, with
 * and without faults. This is the determinism contract of
 * docs/DETERMINISM.md exercised as a soak: an asymmetric 5x3 mesh (so
 * row stripes are uneven and shard 7 leaves shards empty) driven by
 * seeded random traffic, fingerprinted across the full
 * {shards} x {elision} grid.
 */

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/poe_system.hh"

using namespace oenet;

namespace {

/** FNV-1a over every trace event and the final metrics. */
struct FingerprintSink final : public TraceSink
{
    std::uint64_t h = 1469598103934665603ull;

    void mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    void mixD(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
    void mixS(const char *s)
    {
        while (*s) {
            h ^= static_cast<unsigned char>(*s++);
            h *= 1099511628211ull;
        }
    }

    void linkTransition(const LinkTransitionEvent &e) override
    {
        mix(e.startedAt);
        mix(e.completedAt);
        mix(static_cast<std::uint64_t>(e.linkId));
        mix(static_cast<std::uint64_t>(e.toLevel));
        mixS(e.type);
    }
    void dvsDecision(const DvsDecisionEvent &e) override
    {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.linkId));
        mixD(e.lu);
        mixS(e.decision);
        mix(static_cast<std::uint64_t>(e.level));
    }
    void packetRetire(const PacketRetireEvent &e) override
    {
        mix(e.at);
        mix(e.packet);
        mix(e.latency);
    }
    void faultEvent(const FaultEvent &e) override
    {
        mix(e.at);
        mix(static_cast<std::uint64_t>(e.linkId));
        mixS(e.kind);
    }
    void powerSnapshot(const PowerSnapshotEvent &e) override
    {
        mix(e.at);
        mixD(e.totalPowerMw);
    }
};

SystemConfig
asymmetricMesh(int shards, bool elision)
{
    SystemConfig c;
    c.meshX = 5;
    c.meshY = 3;
    c.clusterSize = 2;
    c.windowCycles = 200;
    c.shards = shards;
    c.idleElision = elision;
    return c;
}

std::uint64_t
fingerprint(const SystemConfig &cfg, double rate, std::uint64_t seed,
            std::uint64_t &packets_out)
{
    FingerprintSink sink;
    PoeSystem sys(cfg);
    sys.setTraceSink(&sink, 500);
    sys.setTraffic(
        makeTraffic(TrafficSpec::uniform(rate, 4, seed), cfg));
    sys.run(500);
    sys.startMeasurement();
    sys.run(2500);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    sys.awaitDrain(10000);
    RunMetrics m = sys.metrics();
    sink.mixD(m.avgLatency);
    sink.mixD(m.p95Latency);
    sink.mixD(m.avgPowerMw);
    sink.mixD(m.throughputFlitsPerCycle);
    sink.mix(m.packetsInjected);
    sink.mix(m.packetsEjected);
    sink.mix(m.transitions);
    sys.setTraceSink(nullptr);
    packets_out = m.packetsInjected;
    return sink.h;
}

} // namespace

TEST(ShardedKernel, FingerprintInvariantAcrossShardsAndElision)
{
    // Shard counts straddle the interesting cases: 1 = reference path,
    // 2/4 = balanced and uneven row stripes of the 3-row mesh, 7 = more
    // shards than rows (empty shards).
    for (std::uint64_t seed : {17ull, 400000041ull}) {
        std::uint64_t ref_packets = 0;
        std::uint64_t ref = fingerprint(asymmetricMesh(1, true), 0.8,
                                        seed, ref_packets);
        ASSERT_GT(ref_packets, 0u);
        for (int shards : {1, 2, 4, 7}) {
            for (bool elision : {true, false}) {
                std::uint64_t packets = 0;
                EXPECT_EQ(fingerprint(asymmetricMesh(shards, elision),
                                      0.8, seed, packets),
                          ref)
                    << "shards=" << shards << " elision=" << elision
                    << " seed=" << seed;
                EXPECT_EQ(packets, ref_packets);
            }
        }
    }
}

TEST(ShardedKernel, FingerprintInvariantUnderLinkFailure)
{
    // A scripted inter-router link kill crosses every sharded
    // mechanism at once: failure propagation through the boundary
    // proxy, poison drains, credit reclamation, reroute.
    auto cfg = [](int shards, bool elision) {
        SystemConfig c = asymmetricMesh(shards, elision);
        c.routing = RoutingAlgo::kWestFirst; // route-around capable
        c.fault.enabled = true;
        c.fault.killLink = 64; // an inter-router link on the 5x3x2 mesh
        c.fault.killCycle = 900;
        c.fault.orphanTimeoutCycles = 300;
        return c;
    };
    std::uint64_t ref_packets = 0;
    std::uint64_t ref =
        fingerprint(cfg(1, true), 0.6, 23, ref_packets);
    for (int shards : {2, 4, 7}) {
        for (bool elision : {true, false}) {
            std::uint64_t packets = 0;
            EXPECT_EQ(fingerprint(cfg(shards, elision), 0.6, 23,
                                  packets),
                      ref)
                << "shards=" << shards << " elision=" << elision;
        }
    }
}

TEST(ShardedKernel, DirectBoundaryEquivalenceSoak)
{
    // The same-shard zero-copy specialization (immediate publish,
    // synchronous credits, no per-cycle swap/drain hooks) must be
    // call-sequence-identical to the generic cross-shard channel path.
    // Soak it with randomized seeded traffic across shard counts and
    // elision modes: every (shards, elision, seed) cell must
    // fingerprint identically with the specialization on and off.
    for (std::uint64_t seed : {11ull, 90210ull, 400000087ull}) {
        for (int shards : {1, 2, 4}) {
            for (bool elision : {true, false}) {
                SystemConfig direct = asymmetricMesh(shards, elision);
                SystemConfig generic = direct;
                generic.directBoundary = false;
                std::uint64_t pd = 0, pg = 0;
                EXPECT_EQ(fingerprint(direct, 0.8, seed, pd),
                          fingerprint(generic, 0.8, seed, pg))
                    << "shards=" << shards << " elision=" << elision
                    << " seed=" << seed;
                EXPECT_EQ(pd, pg);
                EXPECT_GT(pd, 0u);
            }
        }
    }
}

TEST(ShardedKernel, DirectBoundaryEquivalenceUnderLinkFailure)
{
    // Same soak through the failure machinery: the direct channel's
    // immediate failure flag and poison-credit path must match the
    // generic swap-published ones cycle for cycle.
    auto cfg = [](bool direct, int shards, bool elision) {
        SystemConfig c = asymmetricMesh(shards, elision);
        c.routing = RoutingAlgo::kWestFirst;
        c.fault.enabled = true;
        c.fault.killLink = 64;
        c.fault.killCycle = 900;
        c.fault.orphanTimeoutCycles = 300;
        c.directBoundary = direct;
        return c;
    };
    for (int shards : {1, 2, 4}) {
        for (bool elision : {true, false}) {
            std::uint64_t pd = 0, pg = 0;
            EXPECT_EQ(fingerprint(cfg(true, shards, elision), 0.6, 23,
                                  pd),
                      fingerprint(cfg(false, shards, elision), 0.6, 23,
                                  pg))
                << "shards=" << shards << " elision=" << elision;
            EXPECT_EQ(pd, pg);
        }
    }
}

TEST(ShardedKernel, RepeatedShardedRunsAreReproducible)
{
    // Same binary, same config, threads and all: run-to-run equality
    // (no hidden dependence on scheduling).
    std::uint64_t pa = 0, pb = 0;
    std::uint64_t a = fingerprint(asymmetricMesh(4, true), 0.8, 5, pa);
    std::uint64_t b = fingerprint(asymmetricMesh(4, true), 0.8, 5, pb);
    EXPECT_EQ(a, b);
    EXPECT_EQ(pa, pb);
}
