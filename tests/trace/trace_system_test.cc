/** @file End-to-end tests of trace emission through a live PoeSystem. */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

#include "core/experiment.hh"
#include "trace/trace_sinks.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

SystemConfig
triLevelConfig()
{
    SystemConfig c = smallConfig();
    c.opticalMode = OpticalMode::kTriLevel;
    // Compress the optical plant so VOA traffic fits a short test run.
    c.laser.responseCycles = 300;
    c.laser.decisionEpochCycles = 600;
    return c;
}

std::unique_ptr<TrafficSource>
uniform(double rate, const SystemConfig &cfg, std::uint64_t seed = 1)
{
    return makeTraffic(TrafficSpec::uniform(rate, 4, seed), cfg);
}

} // namespace

TEST(TraceSystem, BeginRunAnnouncesTheLinkTable)
{
    RecordingTraceSink sink;
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.setTraceSink(&sink, 0);
    ASSERT_EQ(sink.links().size(), sys.network().numLinks());
    std::set<int> ids;
    for (const TraceLinkInfo &l : sink.links()) {
        ids.insert(l.id);
        EXPECT_FALSE(l.name.empty());
        EXPECT_GT(std::strlen(l.kind), 0u);
    }
    EXPECT_EQ(ids.size(), sink.links().size()); // dense, unique
}

TEST(TraceSystem, RecordsTransitionsDecisionsAndRetires)
{
    RecordingTraceSink sink;
    SystemConfig cfg = smallConfig();
    {
        PoeSystem sys(cfg);
        sys.setTraceSink(&sink, 500);
        sys.setTraffic(uniform(0.4, cfg));
        sys.run(3000);
    } // destructor ends the run

    ASSERT_FALSE(sink.transitions().empty());
    int num_links = static_cast<int>(sink.links().size());
    for (const LinkTransitionEvent &t : sink.transitions()) {
        EXPECT_LE(t.startedAt, t.completedAt);
        EXPECT_GE(t.linkId, 0);
        EXPECT_LT(t.linkId, num_links);
        EXPECT_NE(t.fromLevel, t.toLevel);
        EXPECT_STREQ(t.type, "level"); // no gating in this config
    }

    ASSERT_FALSE(sink.decisions().empty());
    for (const DvsDecisionEvent &d : sink.decisions()) {
        EXPECT_EQ(d.at % cfg.windowCycles, 0u);
        EXPECT_GE(d.lu, 0.0);
        EXPECT_LE(d.lu, 1.0 + 1e-9);
        EXPECT_LT(d.thLow, d.thHigh);
    }

    ASSERT_FALSE(sink.packets().empty());
    for (const PacketRetireEvent &p : sink.packets())
        EXPECT_EQ(p.latency, p.at - p.createdAt);

    // metrics_interval 500 over 3000 cycles: snapshots at 500..2500.
    ASSERT_EQ(sink.snapshots().size(), 5u);
    Cycle expect_at = 500;
    for (const PowerSnapshotEvent &s : sink.snapshots()) {
        EXPECT_EQ(s.at, expect_at);
        expect_at += 500;
        EXPECT_GT(s.baselinePowerMw, 0.0);
        EXPECT_GT(s.normalizedPower, 0.0);
        EXPECT_LE(s.normalizedPower, 1.0 + 1e-9);
        EXPECT_EQ(s.numKinds, 3);
    }
    EXPECT_EQ(sink.endedAt(), 3000u);
}

TEST(TraceSystem, TriLevelRunEmitsLaserEvents)
{
    RecordingTraceSink sink;
    SystemConfig cfg = triLevelConfig();
    {
        PoeSystem sys(cfg);
        sys.setTraceSink(&sink, 0);
        sys.setTraffic(uniform(0.3, cfg));
        sys.run(6000);
    }
    ASSERT_FALSE(sink.laser().empty());
    const std::set<std::string> known = {"request_up", "request_down",
                                         "commit", "preempt_down",
                                         "drop"};
    bool saw_commit = false;
    for (const LaserTraceEvent &e : sink.laser()) {
        EXPECT_TRUE(known.count(e.action)) << e.action;
        if (std::strcmp(e.action, "commit") == 0) {
            saw_commit = true;
            EXPECT_NE(e.fromLevel, e.toLevel);
        }
    }
    EXPECT_TRUE(saw_commit);
}

TEST(TraceSystem, DetachStopsEmission)
{
    RecordingTraceSink sink;
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.setTraceSink(&sink, 500);
    sys.setTraffic(uniform(0.4, cfg));
    sys.run(1000);
    std::size_t transitions = sink.transitions().size();
    std::size_t snapshots = sink.snapshots().size();
    sys.setTraceSink(nullptr);
    sys.run(2000);
    EXPECT_EQ(sink.transitions().size(), transitions);
    EXPECT_EQ(sink.snapshots().size(), snapshots);
}

TEST(TraceSystem, ReattachReplacesTheSnapshotHook)
{
    // Regression: re-attaching a sink used to leave the previous epoch
    // hook installed, so the old cadence kept firing into the new
    // sink — and re-attaching with snapshots disabled (interval 0)
    // didn't disable anything.
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);

    RecordingTraceSink first;
    sys.setTraceSink(&first, 250);
    sys.run(1000);
    std::size_t firstCount = first.snapshots().size();
    EXPECT_GE(firstCount, 3u);

    // Re-attach at a coarser cadence: only the new interval fires.
    RecordingTraceSink second;
    sys.setTraceSink(&second, 1000);
    sys.run(3000); // now 1000 -> 4000: hook due at 2000 and 3000
    EXPECT_EQ(first.snapshots().size(), firstCount);
    ASSERT_EQ(second.snapshots().size(), 2u);
    for (const PowerSnapshotEvent &e : second.snapshots())
        EXPECT_EQ(e.at % 1000, 0u) << "stale 250-cycle hook fired";

    // Re-attach with snapshots disabled: nothing may fire at all.
    RecordingTraceSink third;
    sys.setTraceSink(&third, 0);
    sys.run(2000);
    EXPECT_EQ(third.snapshots().size(), 0u);
    EXPECT_EQ(second.snapshots().size(), 2u);
}

TEST(TraceSystem, JsonlOutputIsRunToRunDeterministic)
{
    auto capture = []() {
        std::ostringstream os;
        JsonlTraceSink sink(os);
        SystemConfig cfg = smallConfig();
        {
            PoeSystem sys(cfg);
            sys.setTraceSink(&sink, 500);
            sys.setTraffic(uniform(0.4, cfg));
            sys.run(2000);
        }
        return os.str();
    };
    std::string a = capture();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, capture());
}

TEST(TraceSystem, UntracedRunMatchesTracedMetrics)
{
    // Attaching a sink must observe, never perturb: metrics of a traced
    // and an untraced run of the same (config, seed) are identical.
    auto metricsOf = [](bool traced) {
        RecordingTraceSink sink;
        SystemConfig cfg = smallConfig();
        PoeSystem sys(cfg);
        if (traced)
            sys.setTraceSink(&sink, 250);
        sys.setTraffic(uniform(0.4, cfg));
        sys.run(1000);
        sys.startMeasurement();
        sys.run(2000);
        sys.stopMeasurement();
        sys.awaitDrain(5000);
        return sys.metrics();
    };
    RunMetrics t = metricsOf(true);
    RunMetrics u = metricsOf(false);
    EXPECT_EQ(t.packetsMeasured, u.packetsMeasured);
    EXPECT_DOUBLE_EQ(t.avgLatency, u.avgLatency);
    EXPECT_DOUBLE_EQ(t.avgPowerMw, u.avgPowerMw);
    EXPECT_EQ(t.transitions, u.transitions);
}
