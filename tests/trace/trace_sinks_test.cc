/** @file Unit tests for the trace sinks (JSONL / Chrome / recording). */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/trace_sinks.hh"

using namespace oenet;

namespace {

std::vector<TraceLinkInfo>
twoLinks()
{
    return {{0, "inj0", "injection"}, {1, "rtr0", "inter-router"}};
}

LinkTransitionEvent
sampleTransition()
{
    LinkTransitionEvent e;
    e.startedAt = 100;
    e.completedAt = 220;
    e.linkId = 1;
    e.fromLevel = 5;
    e.toLevel = 4;
    e.type = "level";
    return e;
}

std::size_t
countLines(const std::string &s)
{
    return static_cast<std::size_t>(
        std::count(s.begin(), s.end(), '\n'));
}

} // namespace

TEST(TraceFormat, ParseAndNameRoundTrip)
{
    EXPECT_EQ(parseTraceFormat("jsonl"), TraceFormat::kJsonl);
    EXPECT_EQ(parseTraceFormat("chrome"), TraceFormat::kChrome);
    EXPECT_STREQ(traceFormatName(TraceFormat::kJsonl), "jsonl");
    EXPECT_STREQ(traceFormatName(TraceFormat::kChrome), "chrome");
}

TEST(JsonlTraceSink, OneObjectPerLine)
{
    std::ostringstream os;
    {
        JsonlTraceSink sink(os);
        sink.beginRun(twoLinks());
        sink.linkTransition(sampleTransition());
        sink.endRun(5000);
    }
    std::string out = os.str();
    // run_begin + 2 link rows + 1 transition + run_end.
    EXPECT_EQ(countLines(out), 5u);
    EXPECT_NE(out.find("\"type\": \"run_begin\""), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"link\""), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"transition\""), std::string::npos);
    EXPECT_NE(out.find("\"latency\": 120"), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"run_end\""), std::string::npos);
}

TEST(JsonlTraceSink, OutputIsDeterministic)
{
    auto emit = []() {
        std::ostringstream os;
        JsonlTraceSink sink(os);
        sink.beginRun(twoLinks());
        DvsDecisionEvent d{};
        d.at = 400;
        d.linkId = 0;
        d.lu = 1.0 / 3.0; // exercises the %.17g formatting
        d.avgLu = 0.1;
        d.bu = 0.25;
        d.thLow = 0.4;
        d.thHigh = 0.6;
        d.decision = "down";
        d.level = 5;
        sink.dvsDecision(d);
        sink.endRun(1000);
        return os.str();
    };
    EXPECT_EQ(emit(), emit());
}

TEST(ChromeTraceSink, ProducesBalancedJsonWrapper)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os);
        sink.beginRun(twoLinks());
        sink.linkTransition(sampleTransition());
        LaserTraceEvent l{300, 0, "request_up", 1, 2};
        sink.laserEvent(l);
        sink.endRun(5000);
    }
    std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\": 120"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
    EXPECT_EQ(out.back(), '\n');
}

TEST(ChromeTraceSink, EndWithoutBeginIsValidEmptyTrace)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os); // destructor closes an unbegun run
    }
    std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\": []"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(ChromeTraceSink, DoubleEndRunWritesOneWrapper)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os);
        sink.beginRun(twoLinks());
        sink.endRun(100);
        // The destructor must not close the array a second time.
    }
    std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST(RecordingTraceSink, StoresEveryEventKind)
{
    RecordingTraceSink sink;
    sink.beginRun(twoLinks());
    sink.linkTransition(sampleTransition());
    sink.dvsDecision(DvsDecisionEvent{});
    sink.laserEvent(LaserTraceEvent{10, 0, "commit", 1, 2});
    sink.packetRetire(PacketRetireEvent{50, 7, 0, 3, 20, 30, 4});
    sink.powerSnapshot(PowerSnapshotEvent{});
    sink.endRun(99);
    EXPECT_EQ(sink.links().size(), 2u);
    EXPECT_EQ(sink.transitions().size(), 1u);
    EXPECT_EQ(sink.decisions().size(), 1u);
    EXPECT_EQ(sink.laser().size(), 1u);
    ASSERT_EQ(sink.packets().size(), 1u);
    EXPECT_EQ(sink.packets()[0].latency, 30u);
    EXPECT_EQ(sink.snapshots().size(), 1u);
    EXPECT_EQ(sink.endedAt(), 99u);
}

TEST(MakeTraceSink, CreatesRequestedFlavor)
{
    std::string dir = ::testing::TempDir();
    auto j = makeTraceSink(dir + "/t.jsonl", TraceFormat::kJsonl);
    auto c = makeTraceSink(dir + "/t.json", TraceFormat::kChrome);
    EXPECT_NE(dynamic_cast<JsonlTraceSink *>(j.get()), nullptr);
    EXPECT_NE(dynamic_cast<ChromeTraceSink *>(c.get()), nullptr);
}

TEST(NullTraceSink, HandlersAreNoOps)
{
    NullTraceSink sink;
    sink.beginRun(twoLinks());
    sink.linkTransition(sampleTransition());
    sink.endRun(10); // nothing observable; must simply not crash
}
