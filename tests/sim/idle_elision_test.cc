/**
 * @file
 * Tests for the idle-elision scheduler: the kernel's sleep/wake
 * protocol on stub components, the quiescence invariants of the real
 * system (idle PoeSystem parks everything; injection wakes exactly the
 * path that needs to move), and a randomized soak asserting that
 * elision-on and elision-off runs emit byte-identical trace streams
 * and identical metrics — the property the CI cmp checks enforce at
 * bench scale.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "sim/kernel.hh"
#include "trace/trace_sinks.hh"

using namespace oenet;

namespace {

/** Ticking stub whose wake policy is a per-test knob. */
class Sleeper : public Ticking
{
  public:
    std::vector<Cycle> ticks;
    Cycle wake = kNeverCycle; ///< absolute cycle returned by nextWakeCycle
    std::vector<int> *log = nullptr;
    int id = 0;

    void tick(Cycle now) override
    {
        ticks.push_back(now);
        if (log)
            log->push_back(id);
    }
    Cycle nextWakeCycle(Cycle now) override
    {
        // One-shot alarm: once the armed cycle has been reached the
        // stub has no further work and parks indefinitely.
        return wake > now ? wake : kNeverCycle;
    }
};

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

std::unique_ptr<TrafficSource>
uniform(double rate, const SystemConfig &cfg, std::uint64_t seed = 1)
{
    return makeTraffic(TrafficSpec::uniform(rate, 4, seed), cfg);
}

} // namespace

// ---------------------------------------------------------------------
// Kernel scheduler mechanics (stub components).
// ---------------------------------------------------------------------

TEST(IdleElision, ComponentReportingNeverParksAfterOneTick)
{
    Kernel k;
    Sleeper s; // wake = kNeverCycle
    k.addTicking(&s);
    EXPECT_EQ(k.activeCount(), 1u);
    k.run(5);
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0})); // ticked once, parked
    EXPECT_TRUE(s.asleep());
    EXPECT_EQ(k.activeCount(), 0u);
    EXPECT_EQ(k.tickingCount(), 1u);
}

TEST(IdleElision, TimedWakeLandsOnTheExactCycle)
{
    Kernel k;
    Sleeper s;
    s.wake = 7; // park until cycle 7 after the first tick
    k.addTicking(&s);
    k.run(8);
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0, 7}));
}

TEST(IdleElision, SelfReArmingComponentTicksPeriodically)
{
    Kernel k;
    struct Periodic : Ticking
    {
        std::vector<Cycle> ticks;
        void tick(Cycle now) override { ticks.push_back(now); }
        Cycle nextWakeCycle(Cycle now) override { return now + 5; }
    } p;
    k.addTicking(&p);
    k.run(16);
    EXPECT_EQ(p.ticks, (std::vector<Cycle>{0, 5, 10, 15}));
}

TEST(IdleElision, WakeAtPullsASleeperInEarlier)
{
    Kernel k;
    Sleeper s; // parks indefinitely after cycle 0
    k.addTicking(&s);
    k.run(2);
    ASSERT_TRUE(s.asleep());
    s.wakeAt(4);
    k.run(4); // through cycle 5
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0, 4}));
    EXPECT_TRUE(s.asleep()); // re-parked after the woken tick
}

TEST(IdleElision, EarlierWakeOverridesLaterPendingWake)
{
    Kernel k;
    Sleeper s;
    s.wake = 50;
    k.addTicking(&s);
    k.step(); // tick at 0, park until 50
    s.wakeAt(3);
    k.run(9);
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0, 3}));
}

TEST(IdleElision, LaterWakeAtDoesNotDelayPendingWake)
{
    Kernel k;
    Sleeper s;
    s.wake = 5;
    k.addTicking(&s);
    k.step();
    s.wakeAt(30); // hint later than the armed wake: must not postpone
    k.run(7);
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0, 5}));
}

TEST(IdleElision, WakeAtIsANoOpWhileActive)
{
    Kernel k;
    struct Active : Ticking
    {
        std::vector<Cycle> ticks;
        void tick(Cycle now) override { ticks.push_back(now); }
        // default nextWakeCycle: stays active every cycle
    } a;
    k.addTicking(&a);
    k.step();
    a.wakeAt(100); // must not park or reschedule an active component
    k.run(3);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0, 1, 2, 3}));
}

TEST(IdleElision, MidPassWakeOfLaterComponentLandsSameCycle)
{
    // A (order 0) hands work to sleeping B (order 1) during its tick.
    // B is behind the pass cursor, so it can still run this cycle --
    // exactly what an always-awake B would have observed.
    Kernel k;
    struct Waker : Ticking
    {
        Ticking *target = nullptr;
        Cycle fireAt = kNeverCycle;
        void tick(Cycle now) override
        {
            if (now == fireAt)
                target->wakeAt(now);
        }
    } a;
    Sleeper b;
    k.addTicking(&a);
    k.addTicking(&b);
    k.run(2); // b parks after cycle 0
    ASSERT_TRUE(b.asleep());
    a.fireAt = 3;
    a.target = &b;
    k.run(3); // through cycle 4
    EXPECT_EQ(b.ticks, (std::vector<Cycle>{0, 3}));
}

TEST(IdleElision, MidPassWakeOfEarlierComponentDefersOneCycle)
{
    // B (order 1) wakes sleeping A (order 0) with at=now. The pass
    // cursor already passed A's slot, so A runs at now+1 -- the first
    // cycle an always-awake A would have seen the interaction too
    // (time-tagged handoffs are never consumed the cycle they are
    // produced against tick order).
    Kernel k;
    Sleeper a;
    struct Waker : Ticking
    {
        Ticking *target = nullptr;
        Cycle fireAt = kNeverCycle;
        void tick(Cycle now) override
        {
            if (now == fireAt)
                target->wakeAt(now);
        }
    } b;
    k.addTicking(&a);
    k.addTicking(&b);
    k.run(2); // a parks after cycle 0
    ASSERT_TRUE(a.asleep());
    b.fireAt = 3;
    b.target = &a;
    k.run(3); // through cycle 4
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0, 4}));
}

TEST(IdleElision, ReAdmittedComponentKeepsRegistrationOrder)
{
    Kernel k;
    std::vector<int> log;
    struct Always : Ticking
    {
        std::vector<int> *log = nullptr;
        int id = 0;
        void tick(Cycle) override { log->push_back(id); }
    };
    Always first, last;
    first.log = &log;
    first.id = 1;
    last.log = &log;
    last.id = 3;
    Sleeper middle;
    middle.log = &log;
    middle.id = 2;
    k.addTicking(&first);
    k.addTicking(&middle);
    k.addTicking(&last);
    k.run(2); // cycle 0: 1,2,3; cycle 1: 1,3 (middle parked)
    ASSERT_TRUE(middle.asleep());
    middle.wakeAt(2);
    log.clear();
    k.step(); // cycle 2: middle must tick between first and last
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(IdleElision, DisablingElisionReAdmitsEverything)
{
    Kernel k;
    Sleeper s;
    k.addTicking(&s);
    k.run(3);
    ASSERT_TRUE(s.asleep());
    k.setIdleElision(false);
    EXPECT_FALSE(s.asleep());
    EXPECT_EQ(k.activeCount(), 1u);
    k.run(3);
    // Ticks every cycle now, nextWakeCycle answers ignored.
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0, 3, 4, 5}));
}

TEST(IdleElision, ElisionOffNeverSleeps)
{
    Kernel k;
    k.setIdleElision(false);
    Sleeper s; // reports kNeverCycle, but elision is off
    k.addTicking(&s);
    k.run(4);
    EXPECT_FALSE(s.asleep());
    EXPECT_EQ(s.ticks, (std::vector<Cycle>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------
// Real-system quiescence and wake edges.
// ---------------------------------------------------------------------

TEST(IdleElisionSystem, IdleSystemFullyQuiesces)
{
    PoeSystem sys(smallConfig());
    EXPECT_GT(sys.kernel().tickingCount(), 0u);
    sys.run(2000);
    // No traffic: the pump, every router, and every node park.
    EXPECT_EQ(sys.kernel().activeCount(), 0u);
    EXPECT_EQ(sys.now(), 2000u);
}

TEST(IdleElisionSystem, InjectionWakesPathDeliversAndReParks)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.run(2000);
    ASSERT_EQ(sys.kernel().activeCount(), 0u);
    std::uint64_t ejected = sys.network().packetsEjected();
    // Hand a packet directly to a sleeping node: the enqueue wake edge
    // must rouse it, the flit handoffs must rouse each router on the
    // route, and the whole path must go back to sleep after delivery.
    sys.network().injectPacket(0, 7, 4, sys.now());
    EXPECT_GT(sys.kernel().activeCount(), 0u);
    sys.run(2000);
    EXPECT_EQ(sys.network().packetsEjected(), ejected + 1);
    EXPECT_EQ(sys.kernel().activeCount(), 0u);
}

TEST(IdleElisionSystem, TrafficKeepsPumpAwakeAndQuiescesAfterDetach)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(uniform(0.3, cfg));
    sys.run(1000);
    // The pump draws RNG every cycle while a source is attached.
    EXPECT_GT(sys.kernel().activeCount(), 0u);
    EXPECT_GT(sys.network().packetsInjected(), 0u);
    sys.setTraffic(nullptr);
    sys.run(3000); // in-flight packets drain, then everything parks
    EXPECT_EQ(sys.kernel().activeCount(), 0u);
    EXPECT_EQ(sys.network().flitsInSystem(), 0u);
}

// ---------------------------------------------------------------------
// Randomized soak: elision on vs off must be indistinguishable.
// ---------------------------------------------------------------------

namespace {

struct SoakResult
{
    std::string trace; ///< full JSONL stream, byte-for-byte
    RunMetrics metrics;
    std::uint64_t injected = 0;
    std::uint64_t ejected = 0;
};

SoakResult
soakRun(SystemConfig cfg, bool elision, double rate, std::uint64_t seed)
{
    cfg.idleElision = elision;
    SoakResult r;
    std::ostringstream os;
    JsonlTraceSink sink(os);
    PoeSystem sys(cfg);
    sys.setTraceSink(&sink, 500);
    sys.setTraffic(uniform(rate, cfg, seed));
    sys.run(1000);
    sys.startMeasurement();
    sys.run(2000);
    sys.stopMeasurement();
    sys.awaitDrain(8000);
    r.metrics = sys.metrics();
    sys.setTraceSink(nullptr);
    r.trace = os.str();
    r.injected = sys.network().packetsInjected();
    r.ejected = sys.network().packetsEjected();
    return r;
}

void
expectIdentical(const SoakResult &on, const SoakResult &off)
{
    // Byte-identical trace stream: same events, same order, same
    // emission positions (the lazy link-walk property).
    EXPECT_EQ(on.trace, off.trace);
    EXPECT_GT(on.trace.size(), 0u);
    EXPECT_EQ(on.injected, off.injected);
    EXPECT_EQ(on.ejected, off.ejected);
    EXPECT_EQ(on.metrics.avgLatency, off.metrics.avgLatency);
    EXPECT_EQ(on.metrics.packetsMeasured, off.metrics.packetsMeasured);
    EXPECT_EQ(on.metrics.avgPowerMw, off.metrics.avgPowerMw);
    EXPECT_EQ(on.metrics.transitions, off.metrics.transitions);
    EXPECT_EQ(on.metrics.flitsCorrupted, off.metrics.flitsCorrupted);
}

} // namespace

TEST(IdleElisionSoak, UniformTrafficHistoriesIdentical)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        for (double rate : {0.2, 1.0}) {
            SoakResult on = soakRun(smallConfig(), true, rate, seed);
            SoakResult off = soakRun(smallConfig(), false, rate, seed);
            SCOPED_TRACE("seed=" + std::to_string(seed) +
                         " rate=" + std::to_string(rate));
            expectIdentical(on, off);
        }
    }
}

TEST(IdleElisionSoak, FaultedRunHistoriesIdentical)
{
    // Faults exercise the receiver-side wake edges: lock-loss outages,
    // scripted hard failure, and transition-completion walks on links
    // whose receivers may be asleep.
    SystemConfig cfg = smallConfig();
    cfg.fault.enabled = true;
    cfg.fault.seed = 9;
    cfg.fault.berFloor = 1e-5;
    cfg.fault.lockLossPerCycle = 2e-4;
    cfg.fault.killLink = 3;
    cfg.fault.killCycle = 1500;
    for (std::uint64_t seed : {5u, 6u}) {
        SoakResult on = soakRun(cfg, true, 0.5, seed);
        SoakResult off = soakRun(cfg, false, 0.5, seed);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        expectIdentical(on, off);
        EXPECT_GT(on.metrics.flitsCorrupted +
                      static_cast<std::uint64_t>(
                          on.metrics.linkHardFailures),
                  0u); // the fault machinery actually ran
    }
}

TEST(IdleElisionSoak, OnOffPolicyHistoriesIdentical)
{
    // The on/off policy power-gates links (wake transitions), the
    // other wake-edge family the DVS default doesn't exercise.
    SystemConfig cfg = smallConfig();
    cfg.policyMode = PolicyMode::kOnOff;
    SoakResult on = soakRun(cfg, true, 0.4, 11);
    SoakResult off = soakRun(cfg, false, 0.4, 11);
    expectIdentical(on, off);
}
