/** @file Tests for the delta event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace oenet;

TEST(EventQueue, EmptyQueue)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventCycle(), kNeverCycle);
    q.runDue(100); // no-op
}

TEST(EventQueue, FiresAtScheduledCycle)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { fired++; });
    q.runDue(9);
    EXPECT_EQ(fired, 0);
    q.runDue(10);
    EXPECT_EQ(fired, 1);
    q.runDue(11);
    EXPECT_EQ(fired, 1); // one-shot
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runDue(30);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; i++)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.runDue(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleForSameCycle)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] {
        fired++;
        q.schedule(5, [&] { fired++; });
    });
    q.runDue(5);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsMayScheduleFuture)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { q.schedule(3, [&] { fired++; }); });
    q.runDue(2);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.nextEventCycle(), 3u);
    q.runDue(3);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    q.schedule(42, [] {});
    q.schedule(17, [] {});
    EXPECT_EQ(q.nextEventCycle(), 17u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.runDue(100);
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}
