/** @file Tests for the simulation kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hh"

using namespace oenet;

namespace {

class CountingComponent : public Ticking
{
  public:
    std::vector<Cycle> ticks;

    void tick(Cycle now) override { ticks.push_back(now); }
};

} // namespace

TEST(Kernel, StartsAtCycleZero)
{
    Kernel k;
    EXPECT_EQ(k.now(), 0u);
}

TEST(Kernel, StepAdvancesTime)
{
    Kernel k;
    k.step();
    k.step();
    EXPECT_EQ(k.now(), 2u);
}

TEST(Kernel, TicksComponentsEveryCycle)
{
    Kernel k;
    CountingComponent c;
    k.addTicking(&c);
    k.run(5);
    EXPECT_EQ(c.ticks, (std::vector<Cycle>{0, 1, 2, 3, 4}));
}

TEST(Kernel, TickOrderFollowsRegistration)
{
    Kernel k;
    std::vector<int> order;
    struct Probe : Ticking
    {
        std::vector<int> *order = nullptr;
        int id = 0;
        void tick(Cycle) override { order->push_back(id); }
    };
    Probe a, b;
    a.order = &order;
    a.id = 1;
    b.order = &order;
    b.id = 2;
    k.addTicking(&a);
    k.addTicking(&b);
    k.step();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, EventsFireBeforeTicks)
{
    Kernel k;
    std::vector<std::string> order;
    struct Probe : Ticking
    {
        std::vector<std::string> *order = nullptr;
        void tick(Cycle) override { order->push_back("tick"); }
    };
    Probe p;
    p.order = &order;
    k.addTicking(&p);
    k.schedule(0, [&] { order.push_back("event"); });
    k.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "event");
    EXPECT_EQ(order[1], "tick");
}

TEST(Kernel, ScheduledEventFiresAtRightCycle)
{
    Kernel k;
    Cycle fired_at = kNeverCycle;
    k.schedule(3, [&] { fired_at = k.now(); });
    k.run(5);
    EXPECT_EQ(fired_at, 3u);
}

TEST(Kernel, PeriodicFiresRepeatedly)
{
    Kernel k;
    std::vector<Cycle> fires;
    k.schedulePeriodic(10, 10, [&](Cycle now) { fires.push_back(now); });
    k.run(45);
    EXPECT_EQ(fires, (std::vector<Cycle>{10, 20, 30, 40}));
}

TEST(Kernel, PeriodicReceivesScheduledTime)
{
    Kernel k;
    std::vector<Cycle> args;
    k.schedulePeriodic(5, 7, [&](Cycle t) { args.push_back(t); });
    k.run(20);
    EXPECT_EQ(args, (std::vector<Cycle>{5, 12, 19}));
}

TEST(KernelDeath, NullComponentPanics)
{
    Kernel k;
    EXPECT_DEATH(k.addTicking(nullptr), "null");
}

TEST(KernelDeath, ZeroPeriodPanics)
{
    Kernel k;
    EXPECT_DEATH(k.schedulePeriodic(0, 0, [](Cycle) {}), "period");
}
