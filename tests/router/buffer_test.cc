/** @file Tests for the shared input-VC flit slab. */

#include <gtest/gtest.h>

#include "router/buffer.hh"

using namespace oenet;

namespace {

Flit
numbered(int seq)
{
    Flit f;
    f.seq = static_cast<std::uint16_t>(seq);
    return f;
}

FlitSlab
slab(int segments, int depth)
{
    FlitSlab s;
    s.configure(segments, depth);
    return s;
}

} // namespace

TEST(FlitSlab, StartsEmpty)
{
    FlitSlab s = slab(4, 8);
    EXPECT_EQ(s.segments(), 4);
    EXPECT_EQ(s.depth(), 8);
    for (int seg = 0; seg < 4; seg++) {
        EXPECT_TRUE(s.empty(seg));
        EXPECT_FALSE(s.full(seg));
        EXPECT_EQ(s.size(seg), 0);
        EXPECT_EQ(s.freeSlots(seg), 8);
    }
}

TEST(FlitSlab, FifoOrder)
{
    FlitSlab s = slab(1, 4);
    for (int i = 0; i < 4; i++)
        s.push(0, numbered(i));
    EXPECT_TRUE(s.full(0));
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(s.pop(0).seq, i);
    EXPECT_TRUE(s.empty(0));
}

TEST(FlitSlab, FrontDoesNotPop)
{
    FlitSlab s = slab(1, 4);
    s.push(0, numbered(42));
    EXPECT_EQ(s.front(0).seq, 42);
    EXPECT_EQ(s.size(0), 1);
}

TEST(FlitSlab, WrapsAround)
{
    FlitSlab s = slab(1, 3);
    for (int round = 0; round < 10; round++) {
        s.push(0, numbered(round));
        EXPECT_EQ(s.pop(0).seq, round);
    }
    EXPECT_TRUE(s.empty(0));
}

TEST(FlitSlab, InterleavedPushPop)
{
    FlitSlab s = slab(1, 4);
    s.push(0, numbered(0));
    s.push(0, numbered(1));
    EXPECT_EQ(s.pop(0).seq, 0);
    s.push(0, numbered(2));
    s.push(0, numbered(3));
    s.push(0, numbered(4));
    EXPECT_TRUE(s.full(0));
    for (int i = 1; i <= 4; i++)
        EXPECT_EQ(s.pop(0).seq, i);
}

TEST(FlitSlab, SegmentsAreIndependent)
{
    FlitSlab s = slab(3, 2);
    s.push(0, numbered(10));
    s.push(2, numbered(20));
    s.push(2, numbered(21));
    EXPECT_EQ(s.size(0), 1);
    EXPECT_TRUE(s.empty(1));
    EXPECT_TRUE(s.full(2));
    EXPECT_EQ(s.pop(2).seq, 20);
    EXPECT_EQ(s.pop(0).seq, 10);
    EXPECT_EQ(s.pop(2).seq, 21);
    EXPECT_TRUE(s.empty(0));
    EXPECT_TRUE(s.empty(2));
}

TEST(FlitSlab, ReconfigureResets)
{
    FlitSlab s = slab(2, 2);
    s.push(1, numbered(7));
    s.configure(3, 4);
    EXPECT_EQ(s.segments(), 3);
    EXPECT_EQ(s.depth(), 4);
    for (int seg = 0; seg < 3; seg++)
        EXPECT_TRUE(s.empty(seg));
}

TEST(FlitSlabDeath, OverflowPanics)
{
    FlitSlab s = slab(2, 1);
    s.push(0, numbered(0));
    EXPECT_DEATH(s.push(0, numbered(1)), "overflow");
}

TEST(FlitSlabDeath, UnderflowPanics)
{
    FlitSlab s = slab(2, 1);
    s.push(1, numbered(0)); // a full neighbor must not mask segment 0
    EXPECT_DEATH((void)s.pop(0), "underflow");
}

TEST(FlitSlabDeath, FrontOfEmptyPanics)
{
    FlitSlab s = slab(1, 1);
    EXPECT_DEATH((void)s.front(0), "empty");
}

TEST(FlitSlabDeath, ZeroDepthPanics)
{
    FlitSlab s;
    EXPECT_DEATH(s.configure(1, 0), "capacity");
}

TEST(FlitSlabDeath, ZeroSegmentsPanics)
{
    FlitSlab s;
    EXPECT_DEATH(s.configure(0, 1), "segment");
}
