/** @file Tests for the per-VC flit FIFO. */

#include <gtest/gtest.h>

#include "router/buffer.hh"

using namespace oenet;

namespace {

Flit
numbered(int seq)
{
    Flit f;
    f.seq = static_cast<std::uint16_t>(seq);
    return f;
}

} // namespace

TEST(FlitFifo, StartsEmpty)
{
    FlitFifo f(8);
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.full());
    EXPECT_EQ(f.size(), 0);
    EXPECT_EQ(f.capacity(), 8);
    EXPECT_EQ(f.freeSlots(), 8);
}

TEST(FlitFifo, FifoOrder)
{
    FlitFifo f(4);
    for (int i = 0; i < 4; i++)
        f.push(numbered(i));
    EXPECT_TRUE(f.full());
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(f.pop().seq, i);
    EXPECT_TRUE(f.empty());
}

TEST(FlitFifo, FrontDoesNotPop)
{
    FlitFifo f(4);
    f.push(numbered(42));
    EXPECT_EQ(f.front().seq, 42);
    EXPECT_EQ(f.size(), 1);
}

TEST(FlitFifo, WrapsAround)
{
    FlitFifo f(3);
    for (int round = 0; round < 10; round++) {
        f.push(numbered(round));
        EXPECT_EQ(f.pop().seq, round);
    }
    EXPECT_TRUE(f.empty());
}

TEST(FlitFifo, InterleavedPushPop)
{
    FlitFifo f(4);
    f.push(numbered(0));
    f.push(numbered(1));
    EXPECT_EQ(f.pop().seq, 0);
    f.push(numbered(2));
    f.push(numbered(3));
    f.push(numbered(4));
    EXPECT_TRUE(f.full());
    for (int i = 1; i <= 4; i++)
        EXPECT_EQ(f.pop().seq, i);
}

TEST(FlitFifoDeath, OverflowPanics)
{
    FlitFifo f(1);
    f.push(numbered(0));
    EXPECT_DEATH(f.push(numbered(1)), "overflow");
}

TEST(FlitFifoDeath, UnderflowPanics)
{
    FlitFifo f(1);
    EXPECT_DEATH((void)f.pop(), "underflow");
}

TEST(FlitFifoDeath, FrontOfEmptyPanics)
{
    FlitFifo f(1);
    EXPECT_DEATH((void)f.front(), "empty");
}

TEST(FlitFifoDeath, ZeroCapacityPanics)
{
    EXPECT_DEATH(FlitFifo f(0), "capacity");
}
