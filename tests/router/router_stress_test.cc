/**
 * @file
 * Randomized stress of a single router: many packets from random
 * inputs to random destinations, with credits returned after random
 * delays. Properties: nothing is lost, per-packet flit order holds,
 * per-VC wormhole integrity holds, and the router empties.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>

#include "common/rng.hh"
#include "router/router.hh"

using namespace oenet;

namespace {

struct CreditProbe : CreditSink
{
    std::map<std::pair<int, int>, int> credits;
    void returnCredit(int port, int vc, Cycle) override
    {
        credits[{port, vc}]++;
    }
};

} // namespace

class RouterStressTest : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static constexpr int kCluster = 4;
    static constexpr int kPorts = kCluster + 4;
    static constexpr int kVcs = 2;
    static constexpr int kVcDepth = 8;

    RouterStressTest()
        : mesh_(3, 3, kCluster),
          levels_(BitrateLevelTable::linear(5.0, 10.0, 6))
    {
        Router::Params rp;
        rp.numVcs = kVcs;
        rp.bufferDepthPerPort = kVcs * kVcDepth;
        // Center router: all four directions wired.
        router_ = std::make_unique<Router>("rc", mesh_.routerAt(1, 1), mesh_, rp);
        OpticalLink::Params lp;
        for (int p = 0; p < kPorts; p++) {
            in_.push_back(std::make_unique<OpticalLink>(
                "in" + std::to_string(p), LinkKind::kInterRouter,
                levels_, lp));
            out_.push_back(std::make_unique<OpticalLink>(
                "out" + std::to_string(p), LinkKind::kInterRouter,
                levels_, lp));
            router_->connectInput(p, in_[static_cast<std::size_t>(p)].get(),
                                  &probe_, p);
            router_->connectOutput(
                p, out_[static_cast<std::size_t>(p)].get(), kVcDepth);
        }
    }

    MeshTopology mesh_;
    BitrateLevelTable levels_;
    CreditProbe probe_;
    std::unique_ptr<Router> router_;
    std::vector<std::unique_ptr<OpticalLink>> in_;
    std::vector<std::unique_ptr<OpticalLink>> out_;
};

TEST_P(RouterStressTest, ConservationOrderAndDrain)
{
    Rng rng(GetParam());

    // Pending feed per (input port, vc): flits not yet offered.
    std::map<std::pair<int, int>, std::deque<Flit>> feed;
    std::map<std::pair<int, int>, int> outstanding; // credits in use
    std::uint64_t flits_in = 0;

    // Generate packets. Destinations chosen so XY routing spreads them
    // over several output ports of the center router at (1,1).
    PacketId next_id = 1;
    for (int i = 0; i < 60; i++) {
        int in_port = static_cast<int>(rng.uniformInt(kPorts));
        int vc = static_cast<int>(rng.uniformInt(kVcs));
        auto dst = static_cast<NodeId>(
            rng.uniformInt(static_cast<std::uint64_t>(mesh_.numNodes())));
        int len = 1 + static_cast<int>(rng.uniformInt(6));
        std::vector<Flit> flits;
        flitizePacket(flits, next_id++, 0, dst, len, 0);
        for (Flit &f : flits) {
            f.vc = static_cast<std::uint8_t>(vc);
            feed[{in_port, vc}].push_back(f);
        }
    }

    // Delayed credit returns for output ports.
    std::deque<std::pair<Cycle, std::pair<int, int>>> credit_queue;
    std::map<PacketId, int> last_seq;
    std::map<std::pair<int, int>, PacketId> open_packet; // (port,vc)
    std::uint64_t flits_out = 0;

    for (Cycle t = 0; t < 30000; t++) {
        router_->tick(t);

        // Offer one flit per input port, respecting credits.
        for (int p = 0; p < kPorts; p++) {
            for (int vc = 0; vc < kVcs; vc++) {
                auto key = std::make_pair(p, vc);
                auto &q = feed[key];
                if (q.empty())
                    continue;
                // Wormhole: one packet at a time per VC from upstream;
                // the feed queue is already packet-ordered.
                int returned = probe_.credits[key];
                if (outstanding[key] - returned >= kVcDepth)
                    continue;
                if (!in_[static_cast<std::size_t>(p)]->canAccept(t))
                    continue;
                in_[static_cast<std::size_t>(p)]->accept(t, q.front());
                q.pop_front();
                outstanding[key]++;
                flits_in++;
            }
        }

        // Drain outputs with randomly delayed credit returns.
        for (int q = 0; q < kPorts; q++) {
            auto *link = out_[static_cast<std::size_t>(q)].get();
            while (link->hasArrival(t)) {
                Flit f = link->popArrival(t);
                flits_out++;

                // Per-packet order.
                auto it = last_seq.find(f.packet);
                if (it != last_seq.end()) {
                    EXPECT_EQ(static_cast<int>(f.seq), it->second + 1)
                        << "packet " << f.packet;
                }
                last_seq[f.packet] = f.seq;

                // Wormhole integrity: one packet owns (port, vc) from
                // head to tail.
                auto channel = std::make_pair(q, static_cast<int>(f.vc));
                if (f.isHead()) {
                    EXPECT_EQ(open_packet.count(channel), 0u)
                        << "head interleaved on open channel";
                    if (!f.isTail())
                        open_packet[channel] = f.packet;
                } else {
                    auto open = open_packet.find(channel);
                    ASSERT_NE(open, open_packet.end());
                    EXPECT_EQ(open->second, f.packet);
                }
                if (f.isTail())
                    open_packet.erase(channel);

                credit_queue.push_back(
                    {t + 1 + rng.uniformInt(20), channel});
            }
        }
        while (!credit_queue.empty() &&
               credit_queue.front().first <= t) {
            auto [port, vc] = credit_queue.front().second;
            router_->returnCredit(port, vc, t);
            credit_queue.pop_front();
        }
    }

    std::uint64_t total_fed = 0;
    for (auto &kv : feed)
        total_fed += kv.second.size();
    EXPECT_EQ(total_fed, 0u) << "feed did not finish";
    EXPECT_EQ(flits_out, flits_in);
    EXPECT_EQ(router_->totalBufferedFlits(), 0);
    EXPECT_TRUE(open_packet.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterStressTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
