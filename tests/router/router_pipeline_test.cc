/**
 * @file
 * Single-router pipeline tests: a router is wired by hand to stub
 * endpoints and driven cycle by cycle, checking routing, pipeline
 * depth, wormhole semantics, credit flow, and backpressure.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "router/router.hh"

using namespace oenet;

namespace {

/** Records credits returned by the router for its input ports. */
struct CreditProbe : CreditSink
{
    std::map<std::pair<int, int>, int> credits; // (port, vc) -> count

    void returnCredit(int port, int vc, Cycle) override
    {
        credits[{port, vc}]++;
    }

    int total() const
    {
        int n = 0;
        for (const auto &kv : credits)
            n += kv.second;
        return n;
    }
};

} // namespace

class RouterPipelineTest : public ::testing::Test
{
  protected:
    static constexpr int kCluster = 2;
    static constexpr int kPorts = kCluster + 4;
    static constexpr int kVcDepth = 8; // 16 / 2 VCs

    RouterPipelineTest()
        : mesh_(2, 2, kCluster),
          levels_(BitrateLevelTable::linear(5.0, 10.0, 6))
    {
        Router::Params rp;
        rp.numVcs = 2;
        rp.bufferDepthPerPort = 16;
        router_ = std::make_unique<Router>("r0", 0, mesh_, rp);

        OpticalLink::Params lp;
        for (int p = 0; p < kPorts; p++) {
            inLinks_.push_back(std::make_unique<OpticalLink>(
                "in" + std::to_string(p), LinkKind::kInterRouter,
                levels_, lp));
            outLinks_.push_back(std::make_unique<OpticalLink>(
                "out" + std::to_string(p), LinkKind::kInterRouter,
                levels_, lp));
            router_->connectInput(p, inLinks_[p].get(), &probe_, p);
            router_->connectOutput(p, outLinks_[p].get(), kVcDepth);
        }
    }

    /** Feed one packet's flits into input @p port on @p vc as fast as
     *  the link takes them, while ticking the router and draining all
     *  outputs. Returns (output port -> flits seen) after settling. */
    void
    drive(Cycle cycles, std::vector<Flit> feed, int port,
          int vc, std::map<int, std::vector<Flit>> *out,
          bool return_credits = true)
    {
        std::size_t next = 0;
        int sent_on_vc = 0;
        for (Cycle t = 0; t < cycles; t++) {
            router_->tick(t);
            // Respect downstream credits like a real upstream would:
            // at most kVcDepth flits outstanding per VC.
            int returned = probe_.credits[{port, vc}];
            if (next < feed.size() && inLinks_[port]->canAccept(t) &&
                sent_on_vc - returned < kVcDepth) {
                Flit f = feed[next++];
                f.vc = static_cast<std::uint8_t>(vc);
                inLinks_[port]->accept(t, f);
                sent_on_vc++;
            }
            for (int q = 0; q < kPorts; q++) {
                while (outLinks_[q]->hasArrival(t)) {
                    Flit f = outLinks_[q]->popArrival(t);
                    (*out)[q].push_back(f);
                    if (return_credits)
                        router_->returnCredit(q, f.vc, t);
                }
            }
        }
    }

    std::vector<Flit> packet(PacketId id, NodeId dst, int len)
    {
        std::vector<Flit> flits;
        flitizePacket(flits, id, 0, dst, len, 0);
        return flits;
    }

    MeshTopology mesh_;
    BitrateLevelTable levels_;
    CreditProbe probe_;
    std::unique_ptr<Router> router_;
    std::vector<std::unique_ptr<OpticalLink>> inLinks_;
    std::vector<std::unique_ptr<OpticalLink>> outLinks_;
};

TEST_F(RouterPipelineTest, RoutesToLocalEjectionPort)
{
    std::map<int, std::vector<Flit>> out;
    // Node 1 lives in rack 0 at local index 1.
    drive(60, packet(1, 1, 4), 2, 0, &out);
    ASSERT_EQ(out[1].size(), 4u);
    for (int q = 0; q < kPorts; q++)
        if (q != 1)
            EXPECT_TRUE(out[q].empty()) << "port " << q;
}

TEST_F(RouterPipelineTest, RoutesEastByXy)
{
    std::map<int, std::vector<Flit>> out;
    // Rack (1,0) = rack 1; node = 1*2+0 = 2. From (0,0): east.
    drive(60, packet(1, 2, 3), 0, 0, &out);
    EXPECT_EQ(out[mesh_.dirPort(Direction::kEast).value()].size(), 3u);
}

TEST_F(RouterPipelineTest, RoutesSouthByXy)
{
    std::map<int, std::vector<Flit>> out;
    // Rack (0,1) = rack 2; node 4. From (0,0): south.
    drive(60, packet(1, 4, 3), 0, 0, &out);
    EXPECT_EQ(out[mesh_.dirPort(Direction::kSouth).value()].size(), 3u);
}

TEST_F(RouterPipelineTest, FlitsStayInOrder)
{
    std::map<int, std::vector<Flit>> out;
    drive(80, packet(1, 1, 8), 0, 0, &out);
    ASSERT_EQ(out[1].size(), 8u);
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(out[1][static_cast<std::size_t>(i)].seq, i);
}

TEST_F(RouterPipelineTest, PipelineLatencyIsFiveishCycles)
{
    // Head flit: accept at t=0, arrives at router t=2 (ser+prop),
    // RC/VA/SA/ST are one cycle each, plus output link traversal.
    std::map<int, std::vector<Flit>> out;
    Cycle first_seen = 0;
    std::vector<Flit> feed = packet(1, 1, 1);
    std::size_t next = 0;
    for (Cycle t = 0; t < 40 && out[1].empty(); t++) {
        router_->tick(t);
        if (next < feed.size() && inLinks_[0]->canAccept(t)) {
            Flit f = feed[next++];
            f.vc = 0;
            inLinks_[0]->accept(t, f);
        }
        if (outLinks_[1]->hasArrival(t)) {
            out[1].push_back(outLinks_[1]->popArrival(t));
            first_seen = t;
        }
    }
    ASSERT_EQ(out[1].size(), 1u);
    // 2 (input LT) + 4 (RC,VA,SA,ST) + 2 (output LT) = 8, +-1 for
    // stage alignment.
    EXPECT_GE(first_seen, 7u);
    EXPECT_LE(first_seen, 10u);
}

TEST_F(RouterPipelineTest, CreditsReturnedPerFlit)
{
    std::map<int, std::vector<Flit>> out;
    drive(80, packet(1, 1, 6), 0, 0, &out);
    ASSERT_EQ(out[1].size(), 6u);
    EXPECT_EQ((probe_.credits[{0, 0}]), 6);
}

TEST_F(RouterPipelineTest, BackpressureWithoutCredits)
{
    // Never return credits on the output: the router can forward at
    // most kVcDepth flits on that VC, then must stall.
    std::map<int, std::vector<Flit>> out;
    drive(200, packet(1, 1, 20), 0, 0, &out, false);
    EXPECT_EQ(out[1].size(), static_cast<std::size_t>(kVcDepth));
    // The stalled flits sit in the router, not lost.
    EXPECT_GT(router_->totalBufferedFlits(), 0);
}

TEST_F(RouterPipelineTest, TailReleasesVcForNextPacket)
{
    auto feed = packet(1, 1, 3);
    auto second = packet(2, 3, 3); // east (rack 1, node 3)
    feed.insert(feed.end(), second.begin(), second.end());
    std::map<int, std::vector<Flit>> out;
    drive(120, feed, 0, 0, &out);
    EXPECT_EQ(out[1].size(), 3u);
    EXPECT_EQ(out[mesh_.dirPort(Direction::kEast).value()].size(), 3u);
}

TEST_F(RouterPipelineTest, TwoInputsContendingShareOutput)
{
    // Both inputs send to node 1; both packets must complete.
    std::map<int, std::vector<Flit>> out;
    auto feed_a = packet(1, 1, 5);
    auto feed_b = packet(2, 1, 5);
    std::size_t na = 0, nb = 0;
    for (Cycle t = 0; t < 150; t++) {
        router_->tick(t);
        if (na < feed_a.size() && inLinks_[2]->canAccept(t)) {
            Flit f = feed_a[na++];
            f.vc = 0;
            inLinks_[2]->accept(t, f);
        }
        if (nb < feed_b.size() && inLinks_[3]->canAccept(t)) {
            Flit f = feed_b[nb++];
            f.vc = 0;
            inLinks_[3]->accept(t, f);
        }
        while (outLinks_[1]->hasArrival(t)) {
            Flit f = outLinks_[1]->popArrival(t);
            out[1].push_back(f);
            router_->returnCredit(1, f.vc, t);
        }
    }
    ASSERT_EQ(out[1].size(), 10u);
    // Wormhole on distinct VCs: flits of each packet stay in order.
    std::map<PacketId, int> last_seq;
    for (const Flit &f : out[1]) {
        auto it = last_seq.find(f.packet);
        if (it != last_seq.end()) {
            EXPECT_GT(static_cast<int>(f.seq), it->second);
        }
        last_seq[f.packet] = f.seq;
    }
}

TEST_F(RouterPipelineTest, VcsCarrySeparatePackets)
{
    // Two packets on different VCs of the SAME input port proceed
    // concurrently.
    std::map<int, std::vector<Flit>> out;
    auto feed_a = packet(1, 1, 4); // vc 0 -> local 1
    auto feed_b = packet(2, 0, 4); // vc 1 -> local 0
    std::size_t na = 0, nb = 0;
    for (Cycle t = 0; t < 150; t++) {
        router_->tick(t);
        if (inLinks_[2]->canAccept(t)) {
            if (na < feed_a.size()) {
                Flit f = feed_a[na++];
                f.vc = 0;
                inLinks_[2]->accept(t, f);
            } else if (nb < feed_b.size()) {
                Flit f = feed_b[nb++];
                f.vc = 1;
                inLinks_[2]->accept(t, f);
            }
        }
        for (int q : {0, 1}) {
            while (outLinks_[q]->hasArrival(t)) {
                Flit f = outLinks_[q]->popArrival(t);
                out[q].push_back(f);
                router_->returnCredit(q, f.vc, t);
            }
        }
    }
    EXPECT_EQ(out[1].size(), 4u);
    EXPECT_EQ(out[0].size(), 4u);
}

TEST_F(RouterPipelineTest, OccupancyIntegralGrowsUnderBackpressure)
{
    std::map<int, std::vector<Flit>> out;
    drive(100, packet(1, 1, 20), 0, 0, &out, false);
    // Buffered flits linger: the integral must be well above zero.
    EXPECT_GT(router_->occupancyIntegral(0, 100), 10.0);
    EXPECT_EQ(router_->bufferCapacity(0), 16);
}

TEST_F(RouterPipelineTest, OutputWaitingProbe)
{
    EXPECT_FALSE(router_->outputWaiting(1));
    std::map<int, std::vector<Flit>> out;
    drive(100, packet(1, 1, 20), 0, 0, &out, false);
    EXPECT_TRUE(router_->outputWaiting(1));
}

TEST_F(RouterPipelineTest, FlitsSwitchedCounter)
{
    std::map<int, std::vector<Flit>> out;
    drive(80, packet(1, 1, 6), 0, 0, &out);
    EXPECT_EQ(router_->flitsSwitched(), 6u);
}
