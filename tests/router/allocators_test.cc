/** @file Tests for the round-robin arbiter. */

#include <gtest/gtest.h>

#include <map>

#include "router/allocators.hh"

using namespace oenet;

TEST(RoundRobinArbiter, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.pick(0), -1);
    EXPECT_EQ(arb.peek(0), -1);
}

TEST(RoundRobinArbiter, SingleRequesterWins)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.pick(0b0100), 2);
    EXPECT_EQ(arb.pick(0b0100), 2); // keeps winning if alone
}

TEST(RoundRobinArbiter, RotatesAmongPersistentRequesters)
{
    RoundRobinArbiter arb(4);
    std::uint64_t all = 0b1111;
    EXPECT_EQ(arb.pick(all), 0);
    EXPECT_EQ(arb.pick(all), 1);
    EXPECT_EQ(arb.pick(all), 2);
    EXPECT_EQ(arb.pick(all), 3);
    EXPECT_EQ(arb.pick(all), 0);
}

TEST(RoundRobinArbiter, SkipsNonRequesters)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.pick(0b1010), 1);
    EXPECT_EQ(arb.pick(0b1010), 3);
    EXPECT_EQ(arb.pick(0b1010), 1);
}

TEST(RoundRobinArbiter, PeekDoesNotRotate)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.peek(0b1111), 0);
    EXPECT_EQ(arb.peek(0b1111), 0);
    EXPECT_EQ(arb.pick(0b1111), 0);
    EXPECT_EQ(arb.peek(0b1111), 1);
}

TEST(RoundRobinArbiter, WrapAroundPriority)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.pick(0b1000), 3);
    // Priority wrapped past the top: bit 0 is next.
    EXPECT_EQ(arb.pick(0b1001), 0);
}

TEST(RoundRobinArbiter, FairnessOverManyRounds)
{
    RoundRobinArbiter arb(8);
    std::map<int, int> wins;
    std::uint64_t req = 0b10110101;
    for (int i = 0; i < 800; i++)
        wins[arb.pick(req)]++;
    // Five requesters share 800 grants: each gets 160.
    for (int idx : {0, 2, 4, 5, 7})
        EXPECT_EQ(wins[idx], 160) << "requester " << idx;
}

TEST(RoundRobinArbiter, ResizeResetsPriority)
{
    RoundRobinArbiter arb(4);
    arb.pick(0b1111);
    arb.resize(2);
    EXPECT_EQ(arb.size(), 2);
    EXPECT_EQ(arb.pick(0b11), 0);
}

TEST(RoundRobinArbiter, FullWidth64)
{
    RoundRobinArbiter arb(64);
    EXPECT_EQ(arb.pick(1ull << 63), 63);
    EXPECT_EQ(arb.pick(1ull), 0);
}

TEST(RoundRobinArbiterDeath, RequestBeyondSizePanics)
{
    RoundRobinArbiter arb(4);
    EXPECT_DEATH((void)arb.peek(0b10000), "beyond");
}

TEST(RoundRobinArbiterDeath, BadSizePanics)
{
    EXPECT_DEATH(RoundRobinArbiter arb(65), "size");
}
