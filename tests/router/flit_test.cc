/** @file Tests for flits and packet flitization. */

#include <gtest/gtest.h>

#include "router/flit.hh"

using namespace oenet;

TEST(Flit, FlitizeSetsHeadAndTail)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 7, 1, 2, 4, 100);
    ASSERT_EQ(flits.size(), 4u);
    EXPECT_TRUE(flits[0].isHead());
    EXPECT_FALSE(flits[0].isTail());
    EXPECT_FALSE(flits[1].isHead());
    EXPECT_FALSE(flits[2].isTail());
    EXPECT_TRUE(flits[3].isTail());
    EXPECT_FALSE(flits[3].isHead());
}

TEST(Flit, SingleFlitPacketIsHeadAndTail)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 1, 0, 1, 1, 0);
    ASSERT_EQ(flits.size(), 1u);
    EXPECT_TRUE(flits[0].isHead());
    EXPECT_TRUE(flits[0].isTail());
}

TEST(Flit, MetadataCarriedInEveryFlit)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 99, 3, 5, 3, 1234);
    for (std::size_t i = 0; i < flits.size(); i++) {
        EXPECT_EQ(flits[i].packet, 99u);
        EXPECT_EQ(flits[i].src, 3u);
        EXPECT_EQ(flits[i].dst, 5u);
        EXPECT_EQ(flits[i].createdAt, 1234u);
        EXPECT_EQ(flits[i].seq, i);
        EXPECT_EQ(flits[i].len, 3u);
    }
}

TEST(Flit, AppendsWithoutClearing)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 1, 0, 1, 2, 0);
    flitizePacket(flits, 2, 0, 1, 2, 0);
    EXPECT_EQ(flits.size(), 4u);
    EXPECT_EQ(flits[2].packet, 2u);
}

TEST(Flit, KindNames)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 1, 0, 1, 3, 0);
    EXPECT_STREQ(flitKindName(flits[0]), "head");
    EXPECT_STREQ(flitKindName(flits[1]), "body");
    EXPECT_STREQ(flitKindName(flits[2]), "tail");
    std::vector<Flit> single;
    flitizePacket(single, 2, 0, 1, 1, 0);
    EXPECT_STREQ(flitKindName(single[0]), "head+tail");
}

TEST(FlitDeath, ZeroLengthPanics)
{
    std::vector<Flit> flits;
    EXPECT_DEATH(flitizePacket(flits, 1, 0, 1, 0, 0), "length");
}
