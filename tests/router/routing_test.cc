/** @file Tests for mesh-topology addressing and XY routing. */

#include <gtest/gtest.h>

#include "network/topology.hh"
#include "router/routing.hh"

using namespace oenet;

namespace {

/** Single-candidate route at @p router (XY unless stated). */
PortId
routeAt(const Topology &topo, int router, NodeId dst,
        RoutingAlgo algo = RoutingAlgo::kXY)
{
    RouteOption out[kMaxRouteCandidates];
    int n = topo.routeCandidates(algo, router, dst, out);
    EXPECT_EQ(n, 1);
    return out[0].port;
}

} // namespace

TEST(MeshTopology, PaperGeometry)
{
    MeshTopology m(8, 8, 8);
    EXPECT_EQ(m.numRouters(), 64);
    EXPECT_EQ(m.numNodes(), 512);
    EXPECT_EQ(m.portsPerRouter(), 12);
    EXPECT_EQ(m.numVcClasses(), 1);
    EXPECT_STREQ(m.name(), "mesh");
}

TEST(MeshTopology, NodeAddressing)
{
    MeshTopology m(8, 8, 8);
    EXPECT_EQ(m.routerOf(0), 0);
    EXPECT_EQ(m.routerOf(7), 0);
    EXPECT_EQ(m.routerOf(8), 1);
    EXPECT_EQ(m.attachPort(13), PortId(5));
    EXPECT_EQ(m.nodeAt(43, 4), 348u); // rack (3,5) node 4: the hot node
    EXPECT_EQ(m.routerX(43), 3);
    EXPECT_EQ(m.routerY(43), 5);
    EXPECT_EQ(m.routerAt(3, 5), 43);
}

TEST(MeshTopology, NeighborEdges)
{
    MeshTopology m(8, 8, 8);
    EXPECT_FALSE(m.hasNeighbor(0, 0, Direction::kWest));
    EXPECT_FALSE(m.hasNeighbor(0, 0, Direction::kNorth));
    EXPECT_TRUE(m.hasNeighbor(0, 0, Direction::kEast));
    EXPECT_TRUE(m.hasNeighbor(0, 0, Direction::kSouth));
    EXPECT_FALSE(m.hasNeighbor(7, 7, Direction::kEast));
    EXPECT_FALSE(m.hasNeighbor(7, 7, Direction::kSouth));
}

TEST(MeshTopology, NeighborRouters)
{
    MeshTopology m(8, 8, 8);
    EXPECT_EQ(m.neighborRouter(3, 5, Direction::kEast), m.routerAt(4, 5));
    EXPECT_EQ(m.neighborRouter(3, 5, Direction::kWest), m.routerAt(2, 5));
    EXPECT_EQ(m.neighborRouter(3, 5, Direction::kNorth),
              m.routerAt(3, 4));
    EXPECT_EQ(m.neighborRouter(3, 5, Direction::kSouth),
              m.routerAt(3, 6));
}

TEST(MeshTopology, RouteLocalEjection)
{
    MeshTopology m(8, 8, 8);
    // Destination in this rack: local port = attach port.
    NodeId dst = m.nodeAt(m.routerAt(2, 3), 5);
    EXPECT_EQ(routeAt(m, m.routerAt(2, 3), dst), PortId(5));
}

TEST(MeshTopology, RouteXBeforeY)
{
    MeshTopology m(8, 8, 8);
    // Destination east and south: X corrected first.
    NodeId dst = m.nodeAt(m.routerAt(5, 6), 0);
    EXPECT_EQ(routeAt(m, m.routerAt(2, 3), dst),
              m.dirPort(Direction::kEast));
    // Once X matches, go south.
    EXPECT_EQ(routeAt(m, m.routerAt(5, 3), dst),
              m.dirPort(Direction::kSouth));
}

TEST(MeshTopology, RouteAllDirections)
{
    MeshTopology m(8, 8, 8);
    int center = m.routerAt(4, 4);
    EXPECT_EQ(routeAt(m, center, m.nodeAt(m.routerAt(6, 4), 0)),
              m.dirPort(Direction::kEast));
    EXPECT_EQ(routeAt(m, center, m.nodeAt(m.routerAt(1, 4), 0)),
              m.dirPort(Direction::kWest));
    EXPECT_EQ(routeAt(m, center, m.nodeAt(m.routerAt(4, 1), 0)),
              m.dirPort(Direction::kNorth));
    EXPECT_EQ(routeAt(m, center, m.nodeAt(m.routerAt(4, 7), 0)),
              m.dirPort(Direction::kSouth));
}

TEST(MeshTopology, HopCount)
{
    MeshTopology m(8, 8, 8);
    // Same rack: one router visited.
    EXPECT_EQ(m.hopCount(0, 1), 1);
    // Corner to corner: 7 + 7 + 1 routers.
    EXPECT_EQ(m.hopCount(m.nodeAt(m.routerAt(0, 0), 0),
                         m.nodeAt(m.routerAt(7, 7), 0)),
              15);
}

TEST(Direction, Names)
{
    EXPECT_STREQ(directionName(Direction::kEast), "east");
    EXPECT_STREQ(directionName(Direction::kWest), "west");
    EXPECT_STREQ(directionName(Direction::kNorth), "north");
    EXPECT_STREQ(directionName(Direction::kSouth), "south");
}

TEST(Direction, Opposites)
{
    EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
    EXPECT_EQ(opposite(Direction::kWest), Direction::kEast);
    EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
    EXPECT_EQ(opposite(Direction::kSouth), Direction::kNorth);
}

TEST(PortId, Typing)
{
    EXPECT_FALSE(kInvalidPort.valid());
    EXPECT_FALSE(PortId{}.valid());
    EXPECT_TRUE(PortId(0).valid());
    EXPECT_EQ(PortId(3).value(), 3);
    EXPECT_EQ(PortId(3), PortId(3));
    EXPECT_NE(PortId(3), PortId(4));
    EXPECT_LT(PortId(3), PortId(4));
}

TEST(TopologyKind, ParseAndName)
{
    EXPECT_EQ(parseTopologyKind("mesh"), TopologyKind::kMesh);
    EXPECT_EQ(parseTopologyKind("torus"), TopologyKind::kTorus);
    EXPECT_EQ(parseTopologyKind("cmesh"), TopologyKind::kCMesh);
    EXPECT_EQ(parseTopologyKind("fattree"), TopologyKind::kFatTree);
    EXPECT_STREQ(topologyKindName(TopologyKind::kTorus), "torus");
}

TEST(MakeTopology, BuildsEveryKind)
{
    TopologyParams p;
    p.kind = TopologyKind::kTorus;
    p.meshX = 4;
    p.meshY = 4;
    p.clusterSize = 2;
    EXPECT_STREQ(makeTopology(p)->name(), "torus");
    p.kind = TopologyKind::kCMesh;
    p.clusterSize = 4;
    EXPECT_STREQ(makeTopology(p)->name(), "cmesh");
    p.kind = TopologyKind::kFatTree;
    p.fatTreeArity = 4;
    auto ft = makeTopology(p);
    EXPECT_STREQ(ft->name(), "fattree");
    EXPECT_EQ(ft->numNodes(), 16);
    EXPECT_EQ(ft->numRouters(), 20);
}

/**
 * Property: XY routing delivers every (src, dst) pair. Walk the route
 * hop by hop from the source rack and confirm arrival at the
 * destination's attach port within the mesh diameter.
 */
class XyDeliveryProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(XyDeliveryProperty, EveryPairDelivers)
{
    MeshTopology m(4, 4, 4);
    auto src = static_cast<NodeId>(GetParam());
    for (NodeId dst = 0; dst < static_cast<NodeId>(m.numNodes());
         dst++) {
        int router = m.routerOf(src);
        int hops = 0;
        for (;;) {
            PortId port = routeAt(m, router, dst);
            if (port.value() < m.nodesPerCluster()) {
                EXPECT_EQ(port, m.attachPort(dst));
                break;
            }
            auto dir = static_cast<Direction>(port.value() -
                                              m.nodesPerCluster());
            int x = m.routerX(router);
            int y = m.routerY(router);
            ASSERT_TRUE(m.hasNeighbor(x, y, dir))
                << "route walked off the mesh";
            router = m.neighborRouter(x, y, dir);
            hops++;
            ASSERT_LE(hops, m.meshX() + m.meshY())
                << "route did not converge";
        }
        EXPECT_EQ(hops,
                  m.hopCount(src, dst) - 1); // minimal (XY is minimal)
    }
}

INSTANTIATE_TEST_SUITE_P(AllSources, XyDeliveryProperty,
                         ::testing::Range(0, 64));
