/** @file Tests for clustered-mesh addressing and XY routing. */

#include <gtest/gtest.h>

#include "router/routing.hh"

using namespace oenet;

TEST(ClusteredMesh, PaperGeometry)
{
    ClusteredMesh m(8, 8, 8);
    EXPECT_EQ(m.numRouters(), 64);
    EXPECT_EQ(m.numNodes(), 512);
    EXPECT_EQ(m.portsPerRouter(), 12);
}

TEST(ClusteredMesh, NodeAddressing)
{
    ClusteredMesh m(8, 8, 8);
    EXPECT_EQ(m.rackOf(0), 0);
    EXPECT_EQ(m.rackOf(7), 0);
    EXPECT_EQ(m.rackOf(8), 1);
    EXPECT_EQ(m.localIndexOf(13), 5);
    EXPECT_EQ(m.nodeAt(43, 4), 348u); // rack (3,5) node 4: the hot node
    EXPECT_EQ(m.rackX(43), 3);
    EXPECT_EQ(m.rackY(43), 5);
    EXPECT_EQ(m.rackAt(3, 5), 43);
}

TEST(ClusteredMesh, NeighborEdges)
{
    ClusteredMesh m(8, 8, 8);
    EXPECT_FALSE(m.hasNeighbor(0, 0, kDirWest));
    EXPECT_FALSE(m.hasNeighbor(0, 0, kDirNorth));
    EXPECT_TRUE(m.hasNeighbor(0, 0, kDirEast));
    EXPECT_TRUE(m.hasNeighbor(0, 0, kDirSouth));
    EXPECT_FALSE(m.hasNeighbor(7, 7, kDirEast));
    EXPECT_FALSE(m.hasNeighbor(7, 7, kDirSouth));
}

TEST(ClusteredMesh, NeighborRacks)
{
    ClusteredMesh m(8, 8, 8);
    EXPECT_EQ(m.neighborRack(3, 5, kDirEast), m.rackAt(4, 5));
    EXPECT_EQ(m.neighborRack(3, 5, kDirWest), m.rackAt(2, 5));
    EXPECT_EQ(m.neighborRack(3, 5, kDirNorth), m.rackAt(3, 4));
    EXPECT_EQ(m.neighborRack(3, 5, kDirSouth), m.rackAt(3, 6));
}

TEST(ClusteredMesh, RouteLocalEjection)
{
    ClusteredMesh m(8, 8, 8);
    // Destination in this rack: local port = local index.
    NodeId dst = m.nodeAt(m.rackAt(2, 3), 5);
    EXPECT_EQ(m.route(2, 3, dst), 5);
}

TEST(ClusteredMesh, RouteXBeforeY)
{
    ClusteredMesh m(8, 8, 8);
    // Destination east and south: X corrected first.
    NodeId dst = m.nodeAt(m.rackAt(5, 6), 0);
    EXPECT_EQ(m.route(2, 3, dst), m.dirPort(kDirEast));
    // Once X matches, go south.
    EXPECT_EQ(m.route(5, 3, dst), m.dirPort(kDirSouth));
}

TEST(ClusteredMesh, RouteAllDirections)
{
    ClusteredMesh m(8, 8, 8);
    EXPECT_EQ(m.route(4, 4, m.nodeAt(m.rackAt(6, 4), 0)),
              m.dirPort(kDirEast));
    EXPECT_EQ(m.route(4, 4, m.nodeAt(m.rackAt(1, 4), 0)),
              m.dirPort(kDirWest));
    EXPECT_EQ(m.route(4, 4, m.nodeAt(m.rackAt(4, 1), 0)),
              m.dirPort(kDirNorth));
    EXPECT_EQ(m.route(4, 4, m.nodeAt(m.rackAt(4, 7), 0)),
              m.dirPort(kDirSouth));
}

TEST(ClusteredMesh, HopCount)
{
    ClusteredMesh m(8, 8, 8);
    // Same rack: one router visited.
    EXPECT_EQ(m.hopCount(0, 1), 1);
    // Corner to corner: 7 + 7 + 1 routers.
    EXPECT_EQ(m.hopCount(m.nodeAt(m.rackAt(0, 0), 0),
                         m.nodeAt(m.rackAt(7, 7), 0)),
              15);
}

TEST(MeshDir, Names)
{
    EXPECT_STREQ(meshDirName(kDirEast), "east");
    EXPECT_STREQ(meshDirName(kDirWest), "west");
    EXPECT_STREQ(meshDirName(kDirNorth), "north");
    EXPECT_STREQ(meshDirName(kDirSouth), "south");
}

/**
 * Property: XY routing delivers every (src, dst) pair. Walk the route
 * hop by hop from the source rack and confirm arrival at the
 * destination's local port within the mesh diameter.
 */
class XyDeliveryProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(XyDeliveryProperty, EveryPairDelivers)
{
    ClusteredMesh m(4, 4, 4);
    auto src = static_cast<NodeId>(GetParam());
    for (NodeId dst = 0; dst < static_cast<NodeId>(m.numNodes());
         dst++) {
        int x = m.rackX(m.rackOf(src));
        int y = m.rackY(m.rackOf(src));
        int hops = 0;
        for (;;) {
            int port = m.route(x, y, dst);
            if (port < m.nodesPerCluster()) {
                EXPECT_EQ(port, m.localIndexOf(dst));
                break;
            }
            int dir = port - m.nodesPerCluster();
            ASSERT_TRUE(m.hasNeighbor(x, y, dir))
                << "route walked off the mesh";
            int rack = m.neighborRack(x, y, dir);
            x = m.rackX(rack);
            y = m.rackY(rack);
            hops++;
            ASSERT_LE(hops, m.meshX() + m.meshY())
                << "route did not converge";
        }
        EXPECT_EQ(hops,
                  m.hopCount(src, dst) - 1); // minimal (XY is minimal)
    }
}

INSTANTIATE_TEST_SUITE_P(AllSources, XyDeliveryProperty,
                         ::testing::Range(0, 64));
