/**
 * @file
 * Tests for the routing-algorithm extension: YX dimension order and
 * the west-first partially adaptive turn model, including turn-model
 * safety (west is never a later hop) and full-system delivery.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"
#include "network/topology.hh"
#include "router/routing.hh"

using namespace oenet;

namespace {

/** Single-candidate route at mesh coordinates (x, y). */
PortId
routeAt(const MeshTopology &m, RoutingAlgo algo, int x, int y,
        NodeId dst)
{
    RouteOption out[kMaxRouteCandidates];
    int n = m.routeCandidates(algo, m.routerAt(x, y), dst, out);
    EXPECT_EQ(n, 1);
    return out[0].port;
}

} // namespace

TEST(RoutingAlgo, Names)
{
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::kXY), "xy");
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::kYX), "yx");
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::kWestFirst),
                 "west-first");
}

TEST(RoutingAlgo, YxCorrectsYFirst)
{
    MeshTopology m(8, 8, 8);
    NodeId dst = m.nodeAt(m.routerAt(5, 6), 0);
    EXPECT_EQ(routeAt(m, RoutingAlgo::kYX, 2, 3, dst),
              m.dirPort(Direction::kSouth));
    EXPECT_EQ(routeAt(m, RoutingAlgo::kYX, 2, 6, dst),
              m.dirPort(Direction::kEast));
    EXPECT_EQ(routeAt(m, RoutingAlgo::kYX, 5, 6, dst), PortId(0));
}

TEST(RoutingAlgo, WestFirstGoesWestAlone)
{
    MeshTopology m(8, 8, 8);
    RouteOption out[kMaxRouteCandidates];
    // Destination west and south: only west is permitted.
    NodeId dst = m.nodeAt(m.routerAt(1, 6), 0);
    int n = m.routeCandidates(RoutingAlgo::kWestFirst,
                              m.routerAt(4, 3), dst, out);
    ASSERT_EQ(n, 1);
    EXPECT_EQ(out[0].port, m.dirPort(Direction::kWest));
}

TEST(RoutingAlgo, WestFirstAdaptiveEastAndVertical)
{
    MeshTopology m(8, 8, 8);
    RouteOption out[kMaxRouteCandidates];
    // Destination east and south: both productive ports offered.
    NodeId dst = m.nodeAt(m.routerAt(6, 6), 0);
    int n = m.routeCandidates(RoutingAlgo::kWestFirst,
                              m.routerAt(4, 3), dst, out);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0].port, m.dirPort(Direction::kEast));
    EXPECT_EQ(out[1].port, m.dirPort(Direction::kSouth));
}

TEST(RoutingAlgo, WestFirstSingleDimensionCases)
{
    MeshTopology m(8, 8, 8);
    RouteOption out[kMaxRouteCandidates];
    int at = m.routerAt(4, 3);
    // Pure east.
    NodeId east = m.nodeAt(m.routerAt(6, 3), 0);
    EXPECT_EQ(m.routeCandidates(RoutingAlgo::kWestFirst, at, east, out),
              1);
    EXPECT_EQ(out[0].port, m.dirPort(Direction::kEast));
    // Pure north.
    NodeId north = m.nodeAt(m.routerAt(4, 1), 0);
    EXPECT_EQ(m.routeCandidates(RoutingAlgo::kWestFirst, at, north,
                                out),
              1);
    EXPECT_EQ(out[0].port, m.dirPort(Direction::kNorth));
    // Local.
    NodeId local = m.nodeAt(m.routerAt(4, 3), 5);
    EXPECT_EQ(m.routeCandidates(RoutingAlgo::kWestFirst, at, local,
                                out),
              1);
    EXPECT_EQ(out[0].port, PortId(5));
}

TEST(RoutingAlgo, DeterministicAlgosAreMinimalAndConsistent)
{
    MeshTopology m(4, 4, 2);
    RouteOption out[kMaxRouteCandidates];
    for (NodeId dst = 0; dst < static_cast<NodeId>(m.numNodes());
         dst++) {
        int drack = m.routerOf(dst);
        for (int r = 0; r < m.numRouters(); r++) {
            for (RoutingAlgo algo :
                 {RoutingAlgo::kXY, RoutingAlgo::kYX}) {
                ASSERT_EQ(m.routeCandidates(algo, r, dst, out), 1);
                EXPECT_EQ(out[0].vcClass, kAnyVcClass);
                if (r == drack) {
                    EXPECT_EQ(out[0].port, m.attachPort(dst));
                    continue;
                }
                // Minimal: the hop strictly reduces distance.
                auto dir = static_cast<Direction>(
                    out[0].port.value() - m.nodesPerCluster());
                int x = m.routerX(r), y = m.routerY(r);
                ASSERT_TRUE(m.hasNeighbor(x, y, dir));
                int next = m.neighborRouter(x, y, dir);
                int before = std::abs(m.routerX(drack) - x) +
                             std::abs(m.routerY(drack) - y);
                int after =
                    std::abs(m.routerX(drack) - m.routerX(next)) +
                    std::abs(m.routerY(drack) - m.routerY(next));
                EXPECT_EQ(after, before - 1);
            }
        }
    }
}

/** Walk every (position, dst) pair and confirm candidates are always
 *  productive (reduce the distance) and never point west after a
 *  non-west hop could have been taken — turn-model safety. */
TEST(RoutingAlgo, WestFirstCandidatesAlwaysProductive)
{
    MeshTopology m(6, 5, 2);
    RouteOption out[kMaxRouteCandidates];
    for (NodeId dst = 0; dst < static_cast<NodeId>(m.numNodes());
         dst++) {
        int drack = m.routerOf(dst);
        for (int x = 0; x < m.meshX(); x++) {
            for (int y = 0; y < m.meshY(); y++) {
                int n = m.routeCandidates(RoutingAlgo::kWestFirst,
                                          m.routerAt(x, y), dst, out);
                ASSERT_GE(n, 1);
                ASSERT_LE(n, 2);
                for (int i = 0; i < n; i++) {
                    if (out[i].port.value() < m.nodesPerCluster()) {
                        EXPECT_EQ(m.routerAt(x, y), drack);
                        continue;
                    }
                    auto dir = static_cast<Direction>(
                        out[i].port.value() - m.nodesPerCluster());
                    ASSERT_TRUE(m.hasNeighbor(x, y, dir));
                    int next = m.neighborRouter(x, y, dir);
                    // Distance strictly decreases: minimal routing.
                    int before = std::abs(m.routerX(drack) - x) +
                                 std::abs(m.routerY(drack) - y);
                    int after =
                        std::abs(m.routerX(drack) - m.routerX(next)) +
                        std::abs(m.routerY(drack) - m.routerY(next));
                    EXPECT_EQ(after, before - 1);
                    // West only appears when dst is strictly west.
                    if (dir == Direction::kWest) {
                        EXPECT_LT(m.routerX(drack), x);
                        EXPECT_EQ(n, 1); // and then it travels alone
                    }
                }
            }
        }
    }
}

class RoutingAlgoSystemSweep
    : public ::testing::TestWithParam<RoutingAlgo>
{
};

TEST_P(RoutingAlgoSystemSweep, FullSystemDeliversAndDrains)
{
    SystemConfig cfg;
    cfg.meshX = 3;
    cfg.meshY = 3;
    cfg.clusterSize = 2;
    cfg.routing = GetParam();
    cfg.windowCycles = 200;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.5, 4, 29), cfg));
    sys.startMeasurement();
    sys.run(10000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    ASSERT_TRUE(sys.awaitDrain(60000));
    sys.run(2000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, RoutingAlgoSystemSweep,
                         ::testing::Values(RoutingAlgo::kXY,
                                           RoutingAlgo::kYX,
                                           RoutingAlgo::kWestFirst));

TEST(RoutingAlgo, WestFirstSurvivesTransposeStress)
{
    // Transpose concentrates traffic on the diagonal; the adaptive
    // algorithm must stay deadlock-free and deliver everything.
    SystemConfig cfg;
    cfg.meshX = 4;
    cfg.meshY = 4;
    cfg.clusterSize = 2;
    cfg.routing = RoutingAlgo::kWestFirst;
    PoeSystem sys(cfg);
    TrafficSpec spec;
    spec.kind = TrafficSpec::Kind::kPermutation;
    spec.pattern = PermutationPattern::kTranspose;
    spec.rate = 1.5;
    spec.seed = 31;
    sys.setTraffic(makeTraffic(spec, cfg));
    sys.run(20000);
    sys.setTraffic(nullptr);
    sys.run(40000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
}
