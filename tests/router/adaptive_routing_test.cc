/**
 * @file
 * Tests for the routing-algorithm extension: YX dimension order and
 * the west-first partially adaptive turn model, including turn-model
 * safety (west is never a later hop) and full-system delivery.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"
#include "router/routing.hh"

using namespace oenet;

TEST(RoutingAlgo, Names)
{
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::kXY), "xy");
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::kYX), "yx");
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::kWestFirst),
                 "west-first");
}

TEST(RoutingAlgo, YxCorrectsYFirst)
{
    ClusteredMesh m(8, 8, 8);
    NodeId dst = m.nodeAt(m.rackAt(5, 6), 0);
    EXPECT_EQ(m.routeYx(2, 3, dst), m.dirPort(kDirSouth));
    EXPECT_EQ(m.routeYx(2, 6, dst), m.dirPort(kDirEast));
    EXPECT_EQ(m.routeYx(5, 6, dst), 0);
}

TEST(RoutingAlgo, WestFirstGoesWestAlone)
{
    ClusteredMesh m(8, 8, 8);
    int out[2];
    // Destination west and south: only west is permitted.
    NodeId dst = m.nodeAt(m.rackAt(1, 6), 0);
    int n = m.routeCandidates(RoutingAlgo::kWestFirst, 4, 3, dst, out);
    ASSERT_EQ(n, 1);
    EXPECT_EQ(out[0], m.dirPort(kDirWest));
}

TEST(RoutingAlgo, WestFirstAdaptiveEastAndVertical)
{
    ClusteredMesh m(8, 8, 8);
    int out[2];
    // Destination east and south: both productive ports offered.
    NodeId dst = m.nodeAt(m.rackAt(6, 6), 0);
    int n = m.routeCandidates(RoutingAlgo::kWestFirst, 4, 3, dst, out);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], m.dirPort(kDirEast));
    EXPECT_EQ(out[1], m.dirPort(kDirSouth));
}

TEST(RoutingAlgo, WestFirstSingleDimensionCases)
{
    ClusteredMesh m(8, 8, 8);
    int out[2];
    // Pure east.
    NodeId east = m.nodeAt(m.rackAt(6, 3), 0);
    EXPECT_EQ(m.routeCandidates(RoutingAlgo::kWestFirst, 4, 3, east,
                                out),
              1);
    EXPECT_EQ(out[0], m.dirPort(kDirEast));
    // Pure north.
    NodeId north = m.nodeAt(m.rackAt(4, 1), 0);
    EXPECT_EQ(m.routeCandidates(RoutingAlgo::kWestFirst, 4, 3, north,
                                out),
              1);
    EXPECT_EQ(out[0], m.dirPort(kDirNorth));
    // Local.
    NodeId local = m.nodeAt(m.rackAt(4, 3), 5);
    EXPECT_EQ(m.routeCandidates(RoutingAlgo::kWestFirst, 4, 3, local,
                                out),
              1);
    EXPECT_EQ(out[0], 5);
}

TEST(RoutingAlgo, DeterministicAlgosMatchDedicatedFunctions)
{
    ClusteredMesh m(4, 4, 2);
    int out[2];
    for (NodeId dst = 0; dst < static_cast<NodeId>(m.numNodes());
         dst++) {
        for (int x = 0; x < 4; x++) {
            for (int y = 0; y < 4; y++) {
                EXPECT_EQ(m.routeCandidates(RoutingAlgo::kXY, x, y,
                                            dst, out),
                          1);
                EXPECT_EQ(out[0], m.route(x, y, dst));
                EXPECT_EQ(m.routeCandidates(RoutingAlgo::kYX, x, y,
                                            dst, out),
                          1);
                EXPECT_EQ(out[0], m.routeYx(x, y, dst));
            }
        }
    }
}

/** Walk every (position, dst) pair and confirm candidates are always
 *  productive (reduce the distance) and never point west after a
 *  non-west hop could have been taken — turn-model safety. */
TEST(RoutingAlgo, WestFirstCandidatesAlwaysProductive)
{
    ClusteredMesh m(6, 5, 2);
    int out[2];
    for (NodeId dst = 0; dst < static_cast<NodeId>(m.numNodes());
         dst++) {
        int drack = m.rackOf(dst);
        for (int x = 0; x < m.meshX(); x++) {
            for (int y = 0; y < m.meshY(); y++) {
                int n = m.routeCandidates(RoutingAlgo::kWestFirst, x,
                                          y, dst, out);
                ASSERT_GE(n, 1);
                ASSERT_LE(n, 2);
                for (int i = 0; i < n; i++) {
                    if (out[i] < m.nodesPerCluster()) {
                        EXPECT_EQ(m.rackAt(x, y), drack);
                        continue;
                    }
                    int dir = out[i] - m.nodesPerCluster();
                    ASSERT_TRUE(m.hasNeighbor(x, y, dir));
                    int next = m.neighborRack(x, y, dir);
                    // Distance strictly decreases: minimal routing.
                    int before = std::abs(m.rackX(drack) - x) +
                                 std::abs(m.rackY(drack) - y);
                    int after =
                        std::abs(m.rackX(drack) - m.rackX(next)) +
                        std::abs(m.rackY(drack) - m.rackY(next));
                    EXPECT_EQ(after, before - 1);
                    // West only appears when dst is strictly west.
                    if (dir == kDirWest) {
                        EXPECT_LT(m.rackX(drack), x);
                        EXPECT_EQ(n, 1); // and then it travels alone
                    }
                }
            }
        }
    }
}

class RoutingAlgoSystemSweep
    : public ::testing::TestWithParam<RoutingAlgo>
{
};

TEST_P(RoutingAlgoSystemSweep, FullSystemDeliversAndDrains)
{
    SystemConfig cfg;
    cfg.meshX = 3;
    cfg.meshY = 3;
    cfg.clusterSize = 2;
    cfg.routing = GetParam();
    cfg.windowCycles = 200;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.5, 4, 29), cfg));
    sys.startMeasurement();
    sys.run(10000);
    sys.stopMeasurement();
    sys.setTraffic(nullptr);
    ASSERT_TRUE(sys.awaitDrain(60000));
    sys.run(2000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, RoutingAlgoSystemSweep,
                         ::testing::Values(RoutingAlgo::kXY,
                                           RoutingAlgo::kYX,
                                           RoutingAlgo::kWestFirst));

TEST(RoutingAlgo, WestFirstSurvivesTransposeStress)
{
    // Transpose concentrates traffic on the diagonal; the adaptive
    // algorithm must stay deadlock-free and deliver everything.
    SystemConfig cfg;
    cfg.meshX = 4;
    cfg.meshY = 4;
    cfg.clusterSize = 2;
    cfg.routing = RoutingAlgo::kWestFirst;
    PoeSystem sys(cfg);
    TrafficSpec spec;
    spec.kind = TrafficSpec::Kind::kPermutation;
    spec.pattern = PermutationPattern::kTranspose;
    spec.rate = 1.5;
    spec.seed = 31;
    sys.setTraffic(makeTraffic(spec, cfg));
    sys.run(20000);
    sys.setTraffic(nullptr);
    sys.run(40000);
    Network &net = sys.network();
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
    EXPECT_EQ(net.flitsInSystem(), 0u);
}
