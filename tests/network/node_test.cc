/** @file Tests for the processing-node endpoint. */

#include <gtest/gtest.h>

#include <memory>

#include "network/node.hh"

using namespace oenet;

namespace {

struct CreditProbe : CreditSink
{
    int count = 0;
    void returnCredit(int, int, Cycle) override { count++; }
};

struct SinkProbe : PacketSink
{
    std::vector<std::pair<PacketId, Cycle>> ejections;
    void packetEjected(const Flit &tail, Cycle now) override
    {
        ejections.push_back({tail.packet, now});
    }
};

} // namespace

class NodeTest : public ::testing::Test
{
  protected:
    NodeTest() : levels_(BitrateLevelTable::linear(5.0, 10.0, 6))
    {
        Node::Params np;
        np.numVcs = 2;
        np.vcDepth = 8;
        node_ = std::make_unique<Node>(0, np);
        injLink_ = std::make_unique<OpticalLink>(
            "inj", LinkKind::kInjection, levels_,
            OpticalLink::Params{});
        ejLink_ = std::make_unique<OpticalLink>(
            "ej", LinkKind::kEjection, levels_, OpticalLink::Params{});
        node_->connectInjection(injLink_.get());
        node_->connectEjection(ejLink_.get(), &probe_, 3);
        node_->setPacketSink(&sink_);
    }

    BitrateLevelTable levels_;
    CreditProbe probe_;
    SinkProbe sink_;
    std::unique_ptr<Node> node_;
    std::unique_ptr<OpticalLink> injLink_;
    std::unique_ptr<OpticalLink> ejLink_;
};

TEST_F(NodeTest, EnqueueFlitizes)
{
    node_->enqueuePacket(1, 5, 4, 0);
    EXPECT_EQ(node_->sourceQueueFlits(), 4u);
    EXPECT_EQ(node_->packetsEnqueued(), 1u);
}

TEST_F(NodeTest, InjectsAtLinkRate)
{
    node_->enqueuePacket(1, 5, 4, 0);
    for (Cycle t = 0; t < 10; t++)
        node_->tick(t);
    EXPECT_EQ(node_->flitsInjected(), 4u);
    EXPECT_EQ(node_->sourceQueueFlits(), 0u);
    // All flits entered the link at one per cycle.
    EXPECT_EQ(injLink_->totalFlits(), 4u);
}

TEST_F(NodeTest, RespectsCredits)
{
    // 8 credits per VC, 2 VCs; a 20-flit packet stays on ONE VC
    // (wormhole), so only 8 flits can leave without credit returns.
    node_->enqueuePacket(1, 5, 20, 0);
    for (Cycle t = 0; t < 50; t++)
        node_->tick(t);
    EXPECT_EQ(node_->flitsInjected(), 8u);

    // Returning credits releases more flits (1-cycle delay applies).
    node_->returnCredit(0, injLink_->popArrival(50).vc, 50);
    node_->tick(51);
    node_->tick(52);
    EXPECT_EQ(node_->flitsInjected(), 9u);
}

TEST_F(NodeTest, SeparatePacketsUseRoundRobinVcs)
{
    node_->enqueuePacket(1, 5, 2, 0);
    node_->enqueuePacket(2, 5, 2, 0);
    for (Cycle t = 0; t < 10; t++)
        node_->tick(t);
    // Drain the link: first packet on one VC, second on the other.
    std::vector<int> vcs;
    while (injLink_->hasArrival(20))
        vcs.push_back(injLink_->popArrival(20).vc);
    ASSERT_EQ(vcs.size(), 4u);
    EXPECT_EQ(vcs[0], vcs[1]);
    EXPECT_EQ(vcs[2], vcs[3]);
    EXPECT_NE(vcs[0], vcs[2]);
}

TEST_F(NodeTest, EjectionReportsLatencyOnTail)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 42, 3, 0, 2, 100);
    ejLink_->accept(200, flits[0]);
    ejLink_->accept(201, flits[1]);
    for (Cycle t = 200; t < 210; t++)
        node_->tick(t);
    ASSERT_EQ(sink_.ejections.size(), 1u);
    EXPECT_EQ(sink_.ejections[0].first, 42u);
    EXPECT_GE(sink_.ejections[0].second, 203u);
    EXPECT_EQ(node_->packetsEjected(), 1u);
    EXPECT_EQ(node_->flitsEjected(), 2u);
}

TEST_F(NodeTest, EjectionReturnsCreditsUpstream)
{
    std::vector<Flit> flits;
    flitizePacket(flits, 1, 3, 0, 3, 0);
    for (std::size_t i = 0; i < flits.size(); i++)
        ejLink_->accept(static_cast<Cycle>(i), flits[i]);
    for (Cycle t = 0; t < 10; t++)
        node_->tick(t);
    EXPECT_EQ(probe_.count, 3);
}

TEST_F(NodeTest, EjectionOccupancyIsZero)
{
    EXPECT_DOUBLE_EQ(node_->occupancyIntegral(0, 1000), 0.0);
    EXPECT_EQ(node_->bufferCapacity(0), 16);
}

TEST_F(NodeTest, HandlesNoTrafficGracefully)
{
    for (Cycle t = 0; t < 100; t++)
        node_->tick(t);
    EXPECT_EQ(node_->flitsInjected(), 0u);
    EXPECT_EQ(node_->packetsEjected(), 0u);
}
