/**
 * @file
 * BoundaryChannel unit tests: the double-buffered SPSC mailbox that
 * carries flits, credits, and failure markers across a shard boundary.
 * Everything here runs single-threaded — the channel has no internal
 * synchronization to test (the kernel's phase barrier provides it);
 * what matters is the phase discipline: nothing staged is visible
 * before swapBuffers(), and everything staged is visible, in order,
 * after it.
 */

#include <gtest/gtest.h>

#include "network/boundary.hh"

using namespace oenet;

namespace {

struct RecordingCreditSink final : public CreditSink
{
    struct Credit
    {
        int port;
        int vc;
        Cycle at;
    };
    std::vector<Credit> credits;

    void returnCredit(int port, int vc, Cycle now) override
    {
        credits.push_back(Credit{port, vc, now});
    }
};

Flit
makeFlit(PacketId id, std::uint16_t seq)
{
    Flit f;
    f.packet = id;
    f.seq = seq;
    return f;
}

} // namespace

TEST(BoundaryChannel, StagedArrivalsInvisibleUntilSwap)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 3);

    chan.stageArrival(makeFlit(7, 0));
    chan.stageArrival(makeFlit(7, 1));
    EXPECT_FALSE(chan.hasReadyArrival());
    EXPECT_TRUE(chan.arrivalsDirty());
    EXPECT_TRUE(chan.dirty());
    EXPECT_EQ(chan.staged(), 2);

    chan.swapBuffers();
    EXPECT_FALSE(chan.dirty());
    EXPECT_EQ(chan.staged(), 2); // now on the ready side
    ASSERT_TRUE(chan.hasReadyArrival());
    EXPECT_EQ(chan.popReadyArrival().seq, 0); // FIFO
    ASSERT_TRUE(chan.hasReadyArrival());
    EXPECT_EQ(chan.popReadyArrival().seq, 1);
    EXPECT_FALSE(chan.hasReadyArrival());
    EXPECT_EQ(chan.staged(), 0);
}

TEST(BoundaryChannel, ArrivalsStagedDuringDrainWaitOneMorePhase)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 0);

    chan.stageArrival(makeFlit(1, 0));
    chan.swapBuffers();
    // Producer stages the next cycle's flit while the consumer still
    // holds the previous ready buffer.
    chan.stageArrival(makeFlit(2, 0));
    ASSERT_TRUE(chan.hasReadyArrival());
    EXPECT_EQ(chan.popReadyArrival().packet, 1u);
    EXPECT_FALSE(chan.hasReadyArrival()); // packet 2 not published yet
    EXPECT_EQ(chan.staged(), 1);

    chan.swapBuffers();
    ASSERT_TRUE(chan.hasReadyArrival());
    EXPECT_EQ(chan.popReadyArrival().packet, 2u);
}

TEST(BoundaryChannel, CreditsForwardWithOriginalStampAndSourcePort)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 5);

    chan.returnCredit(/*port=*/2, /*vc=*/1, /*now=*/40);
    chan.returnCredit(2, 0, 41);
    EXPECT_TRUE(chan.creditsDirty());
    EXPECT_FALSE(chan.arrivalsDirty());
    EXPECT_TRUE(upstream.credits.empty()); // nothing until swap + drain

    chan.swapBuffers();
    EXPECT_TRUE(upstream.credits.empty()); // drain is explicit
    chan.drainCredits();
    ASSERT_EQ(upstream.credits.size(), 2u);
    // The destination port the credit came in on is irrelevant; the
    // source router hears its own output port number.
    EXPECT_EQ(upstream.credits[0].port, 5);
    EXPECT_EQ(upstream.credits[0].vc, 1);
    EXPECT_EQ(upstream.credits[0].at, 40u);
    EXPECT_EQ(upstream.credits[1].vc, 0);
    EXPECT_EQ(upstream.credits[1].at, 41u);

    chan.drainCredits(); // idempotent once drained
    EXPECT_EQ(upstream.credits.size(), 2u);
}

TEST(BoundaryChannel, FailurePublishesOnceWithSingleDeliveryEdge)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 0);

    EXPECT_FALSE(chan.failed());
    chan.stageFailure();
    EXPECT_FALSE(chan.failed()); // not before the swap
    EXPECT_TRUE(chan.arrivalsDirty());

    chan.swapBuffers();
    EXPECT_TRUE(chan.failed());
    EXPECT_TRUE(chan.takeDeliveryEdge());  // one wake edge...
    EXPECT_FALSE(chan.takeDeliveryEdge()); // ...consumed
    EXPECT_TRUE(chan.failed());            // the level persists
}

TEST(BoundaryChannel, DeliveryEdgeFollowsReadyFlits)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 0);

    EXPECT_FALSE(chan.takeDeliveryEdge());
    chan.stageArrival(makeFlit(9, 0));
    EXPECT_FALSE(chan.takeDeliveryEdge()); // still pending
    chan.swapBuffers();
    EXPECT_TRUE(chan.takeDeliveryEdge());
    chan.popReadyArrival();
    EXPECT_FALSE(chan.takeDeliveryEdge());
}

TEST(BoundaryChannel, RingsWrapAcrossManyCycles)
{
    // The slabs are fixed rings addressed by monotonically increasing
    // masked indices; push enough traffic through to wrap both rings
    // several times and confirm FIFO order and credit stamps survive.
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 1);

    std::uint16_t seq = 0;
    for (Cycle t = 0; t < 100; t++) {
        chan.stageArrival(makeFlit(1, seq));
        chan.stageArrival(makeFlit(1, static_cast<std::uint16_t>(seq + 1)));
        chan.returnCredit(0, static_cast<int>(t % 2), t);
        chan.swapBuffers();
        ASSERT_TRUE(chan.hasReadyArrival());
        EXPECT_EQ(chan.popReadyArrival().seq, seq);
        EXPECT_EQ(chan.popReadyArrival().seq, seq + 1);
        EXPECT_FALSE(chan.hasReadyArrival());
        chan.drainCredits();
        ASSERT_EQ(upstream.credits.size(), static_cast<std::size_t>(t + 1));
        EXPECT_EQ(upstream.credits.back().at, t);
        EXPECT_EQ(upstream.credits.back().vc, static_cast<int>(t % 2));
        seq = static_cast<std::uint16_t>(seq + 2);
    }
}

TEST(BoundaryChannelDirect, ArrivalsPublishImmediately)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 0);
    chan.setDirect();

    chan.stageArrival(makeFlit(3, 0));
    chan.stageArrival(makeFlit(3, 1));
    // No swap: the flits are ready the moment they are staged (the
    // destination router ticked before the shuttle this cycle, so it
    // cannot observe them early), and the channel never reports dirty
    // (the per-cycle swap pass skips direct edges entirely).
    EXPECT_FALSE(chan.dirty());
    EXPECT_EQ(chan.staged(), 2);
    ASSERT_TRUE(chan.hasReadyArrival());
    EXPECT_EQ(chan.popReadyArrival().seq, 0);
    EXPECT_EQ(chan.popReadyArrival().seq, 1);
    EXPECT_FALSE(chan.hasReadyArrival());
}

TEST(BoundaryChannelDirect, CreditsForwardSynchronously)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 5);
    chan.setDirect();

    chan.returnCredit(/*port=*/2, /*vc=*/1, /*now=*/40);
    // The upstream router hears the credit at the call site, on its
    // own output port, with the original stamp — identical arguments
    // to what drainCredits would forward one phase later, so the
    // credit still applies at cycle 41 either way.
    EXPECT_FALSE(chan.creditsDirty());
    ASSERT_EQ(upstream.credits.size(), 1u);
    EXPECT_EQ(upstream.credits[0].port, 5);
    EXPECT_EQ(upstream.credits[0].vc, 1);
    EXPECT_EQ(upstream.credits[0].at, 40u);
}

TEST(BoundaryChannelDirect, FailureVisibleImmediately)
{
    RecordingCreditSink upstream;
    BoundaryChannel chan(nullptr, &upstream, 0);
    chan.setDirect();

    EXPECT_FALSE(chan.failed());
    chan.stageFailure();
    EXPECT_TRUE(chan.failed());
    EXPECT_FALSE(chan.dirty()); // no swap needed to publish
}

TEST(BoundaryChannelDeath, ArrivalRingOverflowPanics)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("bnd", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    RecordingCreditSink upstream;
    BoundaryChannel chan(&link, &upstream, 0);

    // Staging past the ring capacity without a drain must trip the
    // capacity panic, not silently wrap over undelivered flits.
    auto flood = [&] {
        for (int i = 0; i < 64; i++)
            chan.stageArrival(makeFlit(1, static_cast<std::uint16_t>(i)));
    };
    EXPECT_DEATH(flood(), "arrival ring overflow");
}
